#!/bin/sh
# Regenerate every paper table/figure. Results go to results/*.json and
# results/*.txt. Pass --quick for a fast smoke run.
set -e
ARGS="$1"
for bin in table1_alloc table2_configs fig01_motivation fig02_lp_inputs \
           fig03_precision_loss fig04_hp_inputs fig05_comp_waste \
           fig09_insensitive_r56 fig10_insensitive_r20 fig11_static_idle \
           fig17_workflow fig18_accuracy fig19_exec_time fig20_odq_idle \
           fig21_energy fig22_threshold table3_thresholds \
           ablate_weight_coding ablate_scheduling ablate_predictor \
           ablate_threshold_granularity ablate_clusters ext_int8_odq; do
    echo "=== $bin ==="
    cargo run -q -p odq-bench --bin "$bin" -- $ARGS 2>&1 | tee "results/$bin.txt"
done
echo "=== report ==="
cargo run -q -p odq-bench --bin report 2>&1 | tee results/report.txt
