//! Adaptive threshold search (paper Sec. 3): calibrate an initial
//! threshold from the predictor-output distribution, retrain with the
//! threshold in the loop, halve until ODQ accuracy meets the tolerance.
//!
//! ```sh
//! cargo run --example threshold_tuning
//! ```

use odq::core::{search_threshold, SearchCfg};
use odq::data::SynthSpec;
use odq::nn::layers::QatCfg;
use odq::nn::models::{Model, ModelCfg};
use odq::nn::param::init_rng;
use odq::nn::train::{train_epoch, SgdCfg};
use odq::nn::Arch;

fn main() {
    // Train a small ResNet-20 with 4-bit QAT (the search's precondition).
    let mut spec = SynthSpec::cifar10(10);
    spec.num_classes = 6;
    let (train, test) = spec.generate_split(180, 90);
    let mut cfg = ModelCfg::small(Arch::ResNet20, 6);
    cfg.input_hw = 10;
    let mut model = Model::build(cfg);
    let mut rng = init_rng(21);
    let sgd = SgdCfg::default();
    for _ in 0..6 {
        train_epoch(&mut model, &train.images, &train.labels, 24, &sgd, &mut rng);
    }
    model.set_qat(Some(QatCfg::int4()));
    let ft = SgdCfg { lr: 0.02, ..SgdCfg::default() };
    for _ in 0..3 {
        train_epoch(&mut model, &train.images, &train.labels, 24, &ft, &mut rng);
    }

    // Run the adaptive search.
    let search = SearchCfg {
        calib_images: 8,
        init_quantile: 0.85,
        acc_tolerance: 0.05,
        max_halvings: 5,
        retrain_epochs: 3,
        ..Default::default()
    };
    println!("running adaptive threshold search (Sec. 3)...");
    let result = search_threshold(
        &mut model,
        (&train.images, &train.labels),
        (&test.images, &test.labels),
        &search,
        &mut rng,
    );

    println!("\nINT4 static baseline accuracy: {:.1}%", 100.0 * result.baseline_accuracy);
    println!("{:<12} {:>12} {:>22}", "threshold", "ODQ acc %", "insensitive outputs %");
    for t in &result.trials {
        println!(
            "{:<12.4} {:>12.1} {:>22.1}",
            t.threshold,
            100.0 * t.accuracy,
            100.0 * t.insensitive_fraction
        );
    }
    println!(
        "\nselected threshold {:.4} ({}; {} trial(s))",
        result.threshold,
        if result.converged { "met tolerance" } else { "tolerance not met, kept last" },
        result.trials.len(),
    );
}
