//! Real-time streaming inference — the paper's motivating deployment
//! scenario ("real-time inference with low energy consumption on
//! resource-constrained systems", Sec. 1).
//!
//! A camera produces frames at a fixed rate; each frame must finish
//! inference before the next arrives. We replay a full-size ResNet-20
//! workload on each Table 2 accelerator and check which configurations
//! hold the deadline, how much slack they have, and what a frame costs in
//! energy. Frame content drifts over time (busy street vs empty road), so
//! the per-frame sensitive fraction varies — exercising ODQ's dynamic
//! PE-array reallocation frame over frame.
//!
//! ```sh
//! cargo run --example streaming_inference [fps]
//! ```

use odq::accel::pipeline::simulate_network_pipeline;
use odq::accel::sim::simulate_network;
use odq::accel::{AccelConfig, EnergyModel, LayerWorkload};
use odq::nn::Arch;

fn workload_for_frame(frame: usize) -> Vec<LayerWorkload> {
    // Scene "busyness" drifts sinusoidally between 10% and 45% sensitive.
    let busy = 0.275 + 0.175 * ((frame as f64) * 0.7).sin();
    Arch::ResNet20
        .conv_geometries(32)
        .iter()
        .enumerate()
        .map(|(i, nc)| {
            // Later layers are a little more sensitive (as Figs. 9/10 show).
            let s = (busy * (0.8 + 0.02 * i as f64)).clamp(0.0, 0.9);
            LayerWorkload::uniform(nc.name.clone(), nc.geom, s)
        })
        .collect()
}

fn main() {
    let fps: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(6000.0);
    let deadline_us = 1e6 / fps;
    let frames = 24;
    let em = EnergyModel::default();

    println!("streaming ResNet-20 at {fps:.0} fps (deadline {deadline_us:.0} us/frame), {frames} frames\n");
    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>12} {:>10}",
        "config", "mean (us)", "worst (us)", "misses", "energy (uJ)", "verdict"
    );

    for cfg in AccelConfig::table2() {
        let mut worst = 0.0f64;
        let mut total_time = 0.0;
        let mut total_energy = 0.0;
        let mut misses = 0;
        for f in 0..frames {
            let ws = workload_for_frame(f);
            let r = simulate_network(&cfg, &ws, &em);
            let us = r.time_s * 1e6;
            worst = worst.max(us);
            total_time += us;
            total_energy += r.energy.total_nj() / 1e3;
            if us > deadline_us {
                misses += 1;
            }
        }
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>6}/{:<2} {:>12.1} {:>10}",
            cfg.name,
            total_time / frames as f64,
            worst,
            misses,
            frames,
            total_energy / frames as f64,
            if misses == 0 { "OK" } else { "MISSES" }
        );
    }

    // ODQ's frame-to-frame adaptation, through the event-driven pipeline.
    println!("\nODQ dynamic reallocation across drifting frames (event-driven pipeline):");
    let mut last_alloc = String::new();
    for f in 0..8 {
        let ws = workload_for_frame(f);
        let r = simulate_network_pipeline(&ws);
        let busy = ws.iter().map(|w| w.odq_sensitive_fraction).sum::<f64>() / ws.len() as f64;
        let alloc = format!("{:.1} predictor arrays (mean)",
                            r.layers.iter().map(|l| l.mean_predictor_arrays).sum::<f64>()
                            / r.layers.len() as f64);
        println!(
            "  frame {f}: sensitive {:>4.1}%  ->  {}  {} reconfig(s), {} cycles{}",
            100.0 * busy,
            alloc,
            r.reconfigurations,
            r.total_cycles,
            if alloc != last_alloc { "  [adapted]" } else { "" }
        );
        last_alloc = alloc;
    }
}
