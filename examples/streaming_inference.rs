//! Real-time streaming inference — the paper's motivating deployment
//! scenario ("real-time inference with low energy consumption on
//! resource-constrained systems", Sec. 1), now served end-to-end through
//! the `odq-serve` subsystem.
//!
//! A camera produces frames at a fixed rate and submits each one to a
//! running [`odq::serve::Server`] with a per-frame deadline (the next
//! frame's arrival). Frames flow through the bounded admission queue, the
//! micro-batcher, and an engine-owning worker pool; each frame's response
//! carries its measured queue wait and service time, and the server's
//! ledger reports what every served batch would cost on the ODQ
//! accelerator (cycles + energy from the Table 2 simulator).
//!
//! Frame content drifts over time (busy street vs empty road), so the
//! per-frame sensitive fraction varies — visible in the ledger's
//! per-batch sensitive-output fractions.
//!
//! ```sh
//! cargo run --release --example streaming_inference [fps] [frames]
//! ```

use std::time::{Duration, Instant};

use odq::nn::models::{Model, ModelCfg};
use odq::nn::Arch;
use odq::serve::{EngineKind, InferRequest, ServeConfig, Server};
use odq::tensor::Tensor;

/// Deterministic synthetic frame whose "busyness" (mean magnitude) drifts
/// sinusoidally — busy frames light up more sensitive outputs.
fn frame_input(frame: usize, channels: usize, hw: usize) -> Tensor {
    let busy = 0.55 + 0.45 * ((frame as f32) * 0.7).sin();
    let len = channels * hw * hw;
    let v: Vec<f32> = (0..len)
        .map(|i| {
            let noise = ((i * 2654435761 + frame * 97) % 997) as f32 / 997.0;
            (busy * noise).clamp(0.0, 1.0)
        })
        .collect();
    Tensor::from_vec(vec![1, channels, hw, hw], v)
}

fn main() {
    let fps: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(60.0);
    let frames: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(48);
    let deadline = Duration::from_secs_f64(1.0 / fps);

    let model = Model::build(ModelCfg::small(Arch::ResNet20, 10));
    let (channels, hw) = (model.cfg.in_channels, model.cfg.input_hw);

    let server = Server::builder(ServeConfig {
        queue_depth: 32,
        max_batch: 4,
        max_wait: deadline / 4,
        workers: 2,
        default_deadline: Some(deadline),
        simulate_accel: true,
        ..ServeConfig::default()
    })
    .engine(EngineKind::Odq { threshold: 0.3 })
    .model("camera", model)
    .start();

    println!(
        "streaming ResNet-20 at {fps:.0} fps (deadline {:.1} ms/frame), {frames} frames\n",
        deadline.as_secs_f64() * 1e3
    );

    let mut handles = Vec::new();
    let mut dropped_at_admission = 0u64;
    let start = Instant::now();
    for f in 0..frames {
        // Pace the camera: frame f arrives at f/fps seconds.
        let due = start + deadline * f as u32;
        if let Some(sleep) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
        match server.submit(InferRequest::new("camera", frame_input(f, channels, hw))) {
            Ok(h) => handles.push((f, h)),
            Err(_) => dropped_at_admission += 1,
        }
    }

    let mut met = 0u64;
    let mut missed = 0u64;
    let mut worst = Duration::ZERO;
    let mut slack_sum = 0.0f64;
    for (f, h) in handles {
        match h.wait() {
            Ok(resp) => {
                let lat = resp.timing.total;
                worst = worst.max(lat);
                if lat <= deadline {
                    met += 1;
                    slack_sum += (deadline - lat).as_secs_f64();
                } else {
                    missed += 1;
                }
                if f < 6 {
                    println!(
                        "  frame {f}: {:>6.2} ms total ({:>5.2} ms queued, batch of {}) -> {}",
                        lat.as_secs_f64() * 1e3,
                        resp.timing.queue_wait.as_secs_f64() * 1e3,
                        resp.timing.batch_size,
                        if lat <= deadline { "met" } else { "MISSED" }
                    );
                }
            }
            Err(_) => missed += 1,
        }
    }

    let sum = server.shutdown();
    println!("\ndeadline report:");
    println!(
        "  met {met}/{frames}  (missed {missed}, dropped at admission {dropped_at_admission})"
    );
    println!("  worst frame latency {:.2} ms", worst.as_secs_f64() * 1e3);
    if met > 0 {
        println!("  mean slack when met {:.2} ms", 1e3 * slack_sum / met as f64);
    }
    println!("\nserving ledger:");
    println!("  {} batches, mean size {:.2}", sum.batches, sum.mean_batch_size);
    println!(
        "  latency p50 {:.2} ms, p99 {:.2} ms",
        sum.p50_latency.as_secs_f64() * 1e3,
        sum.p99_latency.as_secs_f64() * 1e3
    );
    if let Some(fr) = sum.mean_sensitive_fraction {
        println!("  mean sensitive-output fraction {fr:.3} (drifts with scene busyness)");
    }
    if sum.batches > 0 {
        println!(
            "  simulated ODQ accelerator: {:.0} cycles/batch, {:.2} uJ/batch",
            sum.sim_cycles / sum.batches as f64,
            sum.sim_energy_nj / sum.batches as f64 / 1e3
        );
    }
}
