//! Accelerator comparison: simulate the paper's four equal-area
//! accelerators (Table 2) running a full-size DNN workload and report
//! execution time, idle PEs and energy (Figs. 19–21 in miniature).
//!
//! ```sh
//! cargo run --example accelerator_comparison [resnet20|resnet56|vgg16|densenet]
//! ```

use odq::accel::sim::simulate_network;
use odq::accel::{AccelConfig, EnergyModel, LayerWorkload};
use odq::nn::Arch;

fn main() {
    let arch = match std::env::args().nth(1).as_deref() {
        Some("resnet56") => Arch::ResNet56,
        Some("vgg16") => Arch::Vgg16,
        Some("densenet") => Arch::DenseNet,
        _ => Arch::ResNet20,
    };
    println!(
        "workload: full-size {} on 32x32 inputs ({} conv layers, {:.1}M MACs/image)",
        arch.name(),
        arch.conv_geometries(32).len(),
        arch.total_macs(32) as f64 / 1e6
    );

    // Per-layer ODQ sensitive fractions: use a representative profile in the
    // paper's observed 8-50% range (bench binaries measure real profiles
    // from trained models; this example keeps the workload self-contained).
    let workloads: Vec<LayerWorkload> = arch
        .conv_geometries(32)
        .iter()
        .enumerate()
        .map(|(i, nc)| {
            let s = 0.15 + 0.25 * ((i * 7) % 10) as f64 / 10.0;
            LayerWorkload::uniform(nc.name.clone(), nc.geom, s)
        })
        .collect();

    let em = EnergyModel::default();
    println!(
        "\n{:<8} {:>14} {:>10} {:>10} {:>12} {:>8}",
        "config", "cycles", "time (us)", "idle PEs", "energy (uJ)", "norm."
    );
    let mut base_cycles = 0.0;
    let mut base_energy = 0.0;
    for cfg in AccelConfig::table2() {
        let r = simulate_network(&cfg, &workloads, &em);
        if base_cycles == 0.0 {
            base_cycles = r.total_cycles;
            base_energy = r.energy.total_nj();
        }
        println!(
            "{:<8} {:>14.0} {:>10.1} {:>9.1}% {:>12.2} {:>8.3}",
            r.config,
            r.total_cycles,
            r.time_s * 1e6,
            100.0 * r.idle_fraction,
            r.energy.total_nj() / 1e3,
            r.total_cycles / base_cycles
        );
    }

    // Show ODQ's per-layer dynamic allocation decisions for a few layers.
    let odq = simulate_network(&AccelConfig::odq(), &workloads, &em);
    println!("\nODQ per-layer PE allocation (first 8 layers):");
    for l in odq.layers.iter().take(8) {
        let a = l.allocation.expect("odq allocation");
        println!(
            "  {:>4}: {:>2} predictor / {:>2} executor arrays, idle {:>4.1}%",
            l.name,
            a.predictor_arrays,
            a.executor_arrays,
            100.0 * l.idle_fraction
        );
    }
    println!(
        "\nenergy breakdown for ODQ: DRAM {:.1}% / Buffer {:.1}% / Cores {:.1}%",
        100.0 * odq.energy.dram_nj / odq.energy.total_nj(),
        100.0 * odq.energy.buffer_nj / odq.energy.total_nj(),
        100.0 * odq.energy.cores_nj / odq.energy.total_nj()
    );
    let _ = base_energy;
}
