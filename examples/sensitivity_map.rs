//! Visualize the paper's Fig. 1 story: on LeNet-5 over (Synth)MNIST,
//! print ASCII maps of (a) an input image, (b) the first conv layer's
//! output sensitivity mask under ODQ, and (c) where input-directed (DRQ)
//! quantization mis-spends precision.
//!
//! ```sh
//! cargo run --example sensitivity_map
//! ```

use odq::core::{odq_conv2d, OdqCfg};
use odq::data::SynthSpec;
use odq::drq::{drq_conv2d, DrqCfg};
use odq::nn::models::{Model, ModelCfg};
use odq::nn::param::init_rng;
use odq::nn::train::{train_epoch, SgdCfg};
use odq::nn::{Arch, Layer};
use odq::tensor::stats::quantile;
use odq::tensor::Tensor;

fn ascii_map(title: &str, values: &[f32], h: usize, w: usize) {
    println!("\n{title}");
    let ramp: Vec<char> = " .:-=+*#%@".chars().collect();
    let max = values.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-9);
    for y in 0..h {
        let row: String = (0..w)
            .map(|x| {
                let v = values[y * w + x].abs() / max;
                ramp[((v * (ramp.len() - 1) as f32).round() as usize).min(ramp.len() - 1)]
            })
            .collect();
        println!("  {row}");
    }
}

fn main() {
    let hw = 16;
    let spec = SynthSpec::mnist(hw);
    let (train, test) = spec.generate_split(120, 20);

    // Briefly train LeNet-5 so the first conv layer has meaningful filters.
    let mut cfg = ModelCfg::small(Arch::LeNet5, 10);
    cfg.in_channels = 1;
    cfg.input_hw = hw;
    cfg.width_div = 1;
    let mut model = Model::build(cfg);
    let mut rng = init_rng(5);
    for _ in 0..5 {
        train_epoch(&mut model, &train.images, &train.labels, 20, &SgdCfg::default(), &mut rng);
    }

    // One test image through the first conv layer, by hand.
    let img = Tensor::from_vec([1, 1, hw, hw], test.images.outer(0).to_vec());
    ascii_map("input image (|value|):", img.as_slice(), hw, hw);

    // Extract the first conv's weights via the conv visitor.
    let mut w0 = None;
    let mut g0 = None;
    model.net.visit_convs_mut(&mut |c| {
        if c.name == "C1" {
            w0 = Some(c.weight.value.clone());
            g0 = Some(c.geom_for(hw, hw));
        }
    });
    let (w, g) = (w0.expect("C1 exists"), g0.expect("C1 geom"));

    // ODQ on that layer: threshold at the 70th percentile of |outputs|.
    let probe = odq_conv2d(&img, &w, None, &g, &OdqCfg::int4(0.0));
    let abs: Vec<f32> = probe.reference.as_slice().iter().map(|v| v.abs()).collect();
    let thr = quantile(&abs, 0.7);
    let r = odq_conv2d(&img, &w, None, &g, &OdqCfg::int4(thr));

    // Sensitivity mask of output channel 0 (black squares in Fig. 1).
    let spatial = g.out_spatial();
    let mask0: Vec<f32> =
        (0..spatial).map(|s| if r.mask.get(0, 0, s) { 1.0 } else { 0.0 }).collect();
    ascii_map(
        &format!("ODQ sensitivity mask, output channel 0 (thr {thr:.3}; # = sensitive):"),
        &mask0,
        g.out_h(),
        g.out_w(),
    );
    println!(
        "layer C1: {:.1}% of outputs sensitive -> executor computes only those",
        100.0 * r.mask.sensitive_fraction()
    );

    // DRQ on the same layer: show the two Fig. 1 failure cases.
    let d = drq_conv2d(&img, &w, None, &g, &DrqCfg::int8_int4(0.3));
    let (mut case1, mut case2, mut sens, mut insens) = (0usize, 0usize, 0usize, 0usize);
    for ch in 0..g.out_channels {
        for s in 0..spatial {
            let i = ch * spatial + s;
            let sensitive = d.reference_hp.as_slice()[i].abs() >= thr;
            let lp = d.lp_share[s];
            if sensitive {
                sens += 1;
                if lp > 0.5 {
                    case1 += 1;
                }
            } else {
                insens += 1;
                if lp < 0.5 {
                    case2 += 1;
                }
            }
        }
    }
    println!("\nDRQ (input-directed) on the same layer:");
    println!(
        "  case 1 (Fig. 1 top): {}/{} sensitive outputs computed from >50% low-precision inputs",
        case1, sens
    );
    println!(
        "  case 2 (Fig. 1 bottom): {}/{} insensitive outputs computed from >50% high-precision inputs",
        case2, insens
    );
    println!("both cases waste precision exactly as the paper's Fig. 1 illustrates.");
}
