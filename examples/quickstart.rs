//! Quickstart: train a small CNN on synthetic data, then run it under
//! output-directed dynamic quantization (ODQ) and compare against the
//! static INT4 baseline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use odq::core::OdqEngine;
use odq::data::SynthSpec;
use odq::nn::executor::{FloatConvExecutor, StaticQuantExecutor};
use odq::nn::layers::QatCfg;
use odq::nn::models::{Model, ModelCfg};
use odq::nn::param::init_rng;
use odq::nn::train::{evaluate, train_epoch, SgdCfg};
use odq::nn::Arch;

fn main() {
    // 1. Synthetic 10-class dataset (stand-in for CIFAR-10; see DESIGN.md).
    let spec = SynthSpec::cifar10(12);
    let (train, test) = spec.generate_split(280, 120);
    println!(
        "dataset: {} train / {} test images of {:?}",
        train.len(),
        test.len(),
        train.images.dims()
    );

    // 2. Build a width-scaled ResNet-20 and train it: float epochs, then
    //    4-bit quantization-aware fine-tuning (the paper's DoReFa setup).
    let mut cfg = ModelCfg::small(Arch::ResNet20, 10);
    cfg.input_hw = 12;
    let mut model = Model::build(cfg);
    let (params, convs) = (model.param_count(), model.conv_count());
    println!("model: {} with {params} parameters, {convs} conv layers", model.name);

    let mut rng = init_rng(7);
    let sgd = SgdCfg::default();
    for epoch in 0..7 {
        let loss = train_epoch(&mut model, &train.images, &train.labels, 28, &sgd, &mut rng);
        println!("epoch {epoch}: loss {loss:.3}");
    }
    model.set_qat(Some(QatCfg::int4()));
    let ft = SgdCfg { lr: 0.02, ..SgdCfg::default() };
    for epoch in 0..4 {
        let loss = train_epoch(&mut model, &train.images, &train.labels, 28, &ft, &mut rng);
        println!("QAT epoch {epoch}: loss {loss:.3}");
    }

    // 3. Evaluate: float, static INT4, and ODQ.
    let acc_float = evaluate(&model, &test.images, &test.labels, 24, &mut FloatConvExecutor);
    let mut int4 = StaticQuantExecutor::int(4);
    let acc_int4 = evaluate(&model, &test.images, &test.labels, 24, &mut int4);

    // ODQ with a threshold calibrated at the 65th percentile of the
    // predictor-output distribution (Sec. 3's initialization).
    let thr = odq::core::threshold::calibrate_initial_threshold(&model, &test.images, 8, 0.65);
    let mut odq_engine = OdqEngine::new(thr);
    let acc_odq = evaluate(&model, &test.images, &test.labels, 24, &mut odq_engine);

    println!(
        "\nTop-1 accuracy:  float {:.1}%   INT4 static {:.1}%   ODQ {:.1}%",
        100.0 * acc_float,
        100.0 * acc_int4,
        100.0 * acc_odq
    );
    println!("ODQ threshold {thr:.3}; per-layer insensitive fractions (skipped executor work):");
    for layer in &odq_engine.stats.layers {
        println!(
            "  {:>4}: {:5.1}% insensitive  ({} outputs)",
            layer.name,
            100.0 * layer.insensitive_fraction(),
            layer.total_outputs
        );
    }
    println!(
        "overall: {:.1}% of output features skipped the high-precision pass",
        100.0 * (1.0 - odq_engine.stats.overall_sensitive_fraction())
    );
}
