//! End-to-end tour of the odq-net TCP front-end.
//!
//! Publishes a model, puts the server on a loopback socket **with the
//! odq-obs metrics endpoint attached**, infers remotely (pinning a
//! client trace id through the ODQ1 `FLAG_TRACE` extension), hot-swaps
//! to a retrained version **while remote connections are live and
//! submitting**, rolls back (bit-exact against the original answers),
//! scrapes its own `/metrics` and `/traces/recent`, and prints the final
//! ledger — serving and transport counters in one JSON snapshot.
//!
//! ```sh
//! cargo run --release --example net_serve
//! # ...and from another terminal while it runs:
//! curl -s http://127.0.0.1:<printed port>/metrics
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use odq::net::{NetClient, NetConfig, NetServer};
use odq::nn::models::{Model, ModelCfg};
use odq::nn::Arch;
use odq::obs::{http_get, MetricsServer, TraceBuffer};
use odq::serve::{EngineKind, InferRequest, ServeConfig, Server, TraceSink};
use odq::tensor::Tensor;

fn lenet(seed: u64) -> Model {
    let mut cfg = ModelCfg::small(Arch::LeNet5, 10);
    cfg.input_hw = 8;
    cfg.in_channels = 1;
    cfg.seed = seed;
    Model::build(cfg)
}

fn image(seed: usize) -> Tensor {
    let v: Vec<f32> = (0..64).map(|i| ((i * 13 + seed * 29) % 89) as f32 / 89.0).collect();
    Tensor::from_vec(vec![1, 1, 8, 8], v)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn main() {
    // 1. Publish v1 and open the TCP front-end on an ephemeral port,
    //    with request tracing (sample everything — this is a demo) and
    //    the metrics endpoint attached.
    let traces = Arc::new(TraceBuffer::sample_all(4096));
    let server = Server::builder(ServeConfig {
        max_wait: Duration::from_micros(300),
        trace: Some(Arc::clone(&traces) as Arc<dyn TraceSink>),
        ..ServeConfig::default()
    })
    .engine(EngineKind::Odq { threshold: 0.3 })
    .model("lenet", lenet(1))
    .start();
    let metrics = MetricsServer::bind(
        "127.0.0.1:0",
        Arc::new(server.stats_handle()),
        Some(Arc::clone(&traces)),
    )
    .expect("bind metrics endpoint");
    let ns = NetServer::bind(server, "127.0.0.1:0", NetConfig::default()).expect("bind");
    let addr = ns.local_addr();
    println!("serving \"lenet\" v1 on {addr}");
    println!(
        "metrics on http://{0}/metrics, traces on http://{0}/traces/recent",
        metrics.local_addr()
    );

    // 2. Remote inference through a client connection, with a pinned
    //    trace id: FLAG_TRACE carries it to the server and the response
    //    frame echoes it back.
    let client = NetClient::connect(addr).expect("connect");
    let v1 = client
        .infer(InferRequest::new("lenet", image(7)).with_trace(0x0D05_7ACE))
        .expect("remote inference");
    println!(
        "remote infer: shape {:?}, batch {}, total {:?}, trace echo {:#x}",
        v1.output.dims(),
        v1.timing.batch_size,
        v1.timing.total,
        v1.trace.expect("FLAG_TRACE echoes the id"),
    );

    // 3. Hot swap under live connections: a second client hammers the
    //    server while v2 is published and deployed. Every response is
    //    whole — served entirely by the version its request was admitted
    //    under — and the connection never drops.
    let stop = Arc::new(AtomicBool::new(false));
    let hammer_stop = Arc::clone(&stop);
    let hammer = std::thread::spawn(move || {
        let c = NetClient::connect(addr).expect("hammer connect");
        let mut served = 0u64;
        while !hammer_stop.load(Ordering::Relaxed) {
            c.infer(InferRequest::new("lenet", image(served as usize % 5)))
                .expect("requests keep completing across the swap");
            served += 1;
        }
        c.close();
        served
    });

    let v2 = ns.server().registry().publish("lenet", lenet(2), vec![]).expect("publish v2");
    ns.server().deploy("lenet", v2).expect("hot swap");
    println!("hot-swapped to v2 (version {v2}) under live traffic");
    let swapped = client.infer(InferRequest::new("lenet", image(7))).expect("post-swap inference");
    assert_ne!(bits(&v1.output), bits(&swapped.output), "v2 must answer differently");

    // 4. Roll back: remote answers are bit-identical to v1's again.
    ns.server().rollback("lenet").expect("rollback");
    let back = client.infer(InferRequest::new("lenet", image(7))).expect("post-rollback inference");
    assert_eq!(bits(&v1.output), bits(&back.output), "rollback must be bit-exact over the wire");
    println!("rolled back to v1: remote answers bit-identical again");

    stop.store(true, Ordering::Relaxed);
    let served = hammer.join().expect("hammer thread");
    println!("hammer connection served {served} requests across swap and rollback");
    assert!(served > 0);

    // 5. Scrape our own metrics endpoint, exactly as Prometheus would.
    let (status, body) = http_get(metrics.local_addr(), "/metrics").expect("self-scrape");
    assert_eq!(status, 200);
    odq::obs::parse(&body).expect("exposition must be valid Prometheus text");
    let shown: Vec<&str> = body
        .lines()
        .filter(|l| {
            l.starts_with("odq_requests_completed_total")
                || l.starts_with("odq_layer_mask_density")
                || l.starts_with("odq_net_frames_total")
        })
        .collect();
    println!("\nscraped /metrics ({} bytes); highlights:", body.len());
    for line in shown {
        println!("  {line}");
    }
    let (status, tbody) = http_get(metrics.local_addr(), "/traces/recent").expect("traces scrape");
    assert_eq!(status, 200);
    assert!(tbody.contains("\"response_scatter\""), "sampled traces reach the scatter stage");
    println!("scraped /traces/recent ({} bytes of five-stage spans)", tbody.len());

    // 6. Graceful drain; the final ledger carries the transport counters.
    client.close();
    metrics.shutdown();
    let sum = ns.shutdown();
    assert!(sum.net.connections_opened >= 2);
    assert_eq!(sum.net.connections_opened, sum.net.connections_closed);
    assert_eq!(sum.net.protocol_errors, 0);
    println!(
        "\nfinal ledger: {} completed, {} connections, {} frames in, {} bytes out",
        sum.completed, sum.net.connections_opened, sum.net.frames_in, sum.net.bytes_out
    );
    println!("{}", serde_json::to_string_pretty(&sum).expect("summary serializes"));
}
