//! End-to-end tour of the odq-net TCP front-end.
//!
//! Publishes a model, puts the server on a loopback socket, infers
//! remotely, hot-swaps to a retrained version **while remote connections
//! are live and submitting**, rolls back (bit-exact against the original
//! answers), and prints the final ledger — serving and transport counters
//! in one JSON snapshot.
//!
//! ```sh
//! cargo run --release --example net_serve
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use odq::net::{NetClient, NetConfig, NetServer};
use odq::nn::models::{Model, ModelCfg};
use odq::nn::Arch;
use odq::serve::{EngineKind, InferRequest, ServeConfig, Server};
use odq::tensor::Tensor;

fn lenet(seed: u64) -> Model {
    let mut cfg = ModelCfg::small(Arch::LeNet5, 10);
    cfg.input_hw = 8;
    cfg.in_channels = 1;
    cfg.seed = seed;
    Model::build(cfg)
}

fn image(seed: usize) -> Tensor {
    let v: Vec<f32> = (0..64).map(|i| ((i * 13 + seed * 29) % 89) as f32 / 89.0).collect();
    Tensor::from_vec(vec![1, 1, 8, 8], v)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn main() {
    // 1. Publish v1 and open the TCP front-end on an ephemeral port.
    let server = Server::builder(ServeConfig {
        max_wait: Duration::from_micros(300),
        ..ServeConfig::default()
    })
    .engine(EngineKind::Odq { threshold: 0.3 })
    .model("lenet", lenet(1))
    .start();
    let ns = NetServer::bind(server, "127.0.0.1:0", NetConfig::default()).expect("bind");
    let addr = ns.local_addr();
    println!("serving \"lenet\" v1 on {addr}");

    // 2. Remote inference through a client connection.
    let client = NetClient::connect(addr).expect("connect");
    let v1 = client.infer(InferRequest::new("lenet", image(7))).expect("remote inference");
    println!(
        "remote infer: shape {:?}, batch {}, total {:?}",
        v1.output.dims(),
        v1.timing.batch_size,
        v1.timing.total
    );

    // 3. Hot swap under live connections: a second client hammers the
    //    server while v2 is published and deployed. Every response is
    //    whole — served entirely by the version its request was admitted
    //    under — and the connection never drops.
    let stop = Arc::new(AtomicBool::new(false));
    let hammer_stop = Arc::clone(&stop);
    let hammer = std::thread::spawn(move || {
        let c = NetClient::connect(addr).expect("hammer connect");
        let mut served = 0u64;
        while !hammer_stop.load(Ordering::Relaxed) {
            c.infer(InferRequest::new("lenet", image(served as usize % 5)))
                .expect("requests keep completing across the swap");
            served += 1;
        }
        c.close();
        served
    });

    let v2 = ns.server().registry().publish("lenet", lenet(2), vec![]).expect("publish v2");
    ns.server().deploy("lenet", v2).expect("hot swap");
    println!("hot-swapped to v2 (version {v2}) under live traffic");
    let swapped = client.infer(InferRequest::new("lenet", image(7))).expect("post-swap inference");
    assert_ne!(bits(&v1.output), bits(&swapped.output), "v2 must answer differently");

    // 4. Roll back: remote answers are bit-identical to v1's again.
    ns.server().rollback("lenet").expect("rollback");
    let back = client.infer(InferRequest::new("lenet", image(7))).expect("post-rollback inference");
    assert_eq!(bits(&v1.output), bits(&back.output), "rollback must be bit-exact over the wire");
    println!("rolled back to v1: remote answers bit-identical again");

    stop.store(true, Ordering::Relaxed);
    let served = hammer.join().expect("hammer thread");
    println!("hammer connection served {served} requests across swap and rollback");
    assert!(served > 0);

    // 5. Graceful drain; the final ledger carries the transport counters.
    client.close();
    let sum = ns.shutdown();
    assert!(sum.net.connections_opened >= 2);
    assert_eq!(sum.net.connections_opened, sum.net.connections_closed);
    assert_eq!(sum.net.protocol_errors, 0);
    println!(
        "\nfinal ledger: {} completed, {} connections, {} frames in, {} bytes out",
        sum.completed, sum.net.connections_opened, sum.net.frames_in, sum.net.bytes_out
    );
    println!("{}", serde_json::to_string_pretty(&sum).expect("summary serializes"));
}
