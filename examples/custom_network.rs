//! Build a *custom* CNN with the layer API (rather than a predefined
//! architecture), train it, and run it under ODQ — the downstream-user
//! path: bring your own network, get output-directed quantization for
//! free through the `ConvExecutor` seam.
//!
//! ```sh
//! cargo run --example custom_network
//! ```

use odq::core::OdqEngine;
use odq::data::SynthSpec;
use odq::nn::executor::FloatConvExecutor;
use odq::nn::layers::{
    AvgPool2d, BatchNorm2d, Conv2d, GlobalAvgPool, Linear, QatCfg, ReLU, Sequential,
};
use odq::nn::models::{Model, ModelCfg};
use odq::nn::param::init_rng;
use odq::nn::train::{evaluate, train_epoch, SgdCfg};
use odq::nn::Arch;

fn main() {
    let hw = 12;
    let classes = 6;
    let mut spec = SynthSpec::cifar10(hw);
    spec.num_classes = classes;
    let (train, test) = spec.generate_split(240, 96);

    // A hand-rolled 4-conv network. Conv names (C1..) feed the per-layer
    // statistics, exactly like the predefined models.
    let mut rng = init_rng(11);
    let mut net = Sequential::new();
    net.push(Conv2d::new("C1", 3, 8, 3, 1, 1, false, &mut rng));
    net.push(BatchNorm2d::new(8));
    net.push(ReLU::clipped(1.0));
    net.push(Conv2d::new("C2", 8, 8, 3, 1, 1, false, &mut rng));
    net.push(BatchNorm2d::new(8));
    net.push(ReLU::clipped(1.0));
    net.push(AvgPool2d::new(2));
    net.push(Conv2d::new("C3", 8, 16, 3, 1, 1, false, &mut rng));
    net.push(BatchNorm2d::new(16));
    net.push(ReLU::clipped(1.0));
    net.push(Conv2d::new("C4", 16, 16, 3, 1, 1, false, &mut rng));
    net.push(BatchNorm2d::new(16));
    net.push(ReLU::clipped(1.0));
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(16, classes, &mut rng));

    // Wrap it in a Model (metadata only; the cfg records provenance).
    let mut cfg = ModelCfg::small(Arch::ResNet20, classes);
    cfg.input_hw = hw;
    let mut model = Model { name: "custom-cnn".into(), arch: Arch::ResNet20, net, cfg };
    println!("custom model: {} parameters", model.param_count());

    // Train float, then 4-bit QAT.
    let mut rng = init_rng(12);
    for epoch in 0..8 {
        let loss =
            train_epoch(&mut model, &train.images, &train.labels, 24, &SgdCfg::default(), &mut rng);
        if epoch % 2 == 0 {
            println!("epoch {epoch}: loss {loss:.3}");
        }
    }
    model.set_qat(Some(QatCfg::int4()));
    let ft = SgdCfg { lr: 0.02, ..SgdCfg::default() };
    for _ in 0..4 {
        train_epoch(&mut model, &train.images, &train.labels, 24, &ft, &mut rng);
    }

    let acc_float = evaluate(&model, &test.images, &test.labels, 24, &mut FloatConvExecutor);

    // Checkpoint round-trip through the ODQW format.
    let path = std::env::temp_dir().join("custom_cnn.odqw");
    odq::nn::serialize::save_model(&mut model, &path).expect("save");
    println!(
        "checkpoint saved to {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    // ODQ inference. A custom network's layers have very different output
    // scales, so use the per-layer threshold search (the extension beyond
    // the paper's single global threshold) with retraining in the loop.
    let search = odq::core::SearchCfg {
        calib_images: 8,
        retrain_epochs: 3,
        max_halvings: 3,
        acc_tolerance: 0.05,
        ..Default::default()
    };
    let (map, trials) = odq::core::search_per_layer_thresholds(
        &mut model,
        (&train.images, &train.labels),
        (&test.images, &test.labels),
        0.6,
        &search,
        &mut rng,
    );
    let mean_thr = map.values().sum::<f32>() / map.len() as f32;
    let mut engine = OdqEngine::with_per_layer(map, mean_thr);
    let acc_odq = evaluate(&model, &test.images, &test.labels, 24, &mut engine);

    println!(
        "\nfloat accuracy {:.1}%   ODQ accuracy {:.1}% ({} search trial(s))",
        100.0 * acc_float,
        100.0 * acc_odq,
        trials.len()
    );
    for l in &engine.stats.layers {
        println!("  {:>3}: {:4.1}% insensitive", l.name, 100.0 * l.insensitive_fraction());
    }
    let _ = std::fs::remove_file(&path);
}
