//! Zero-downtime weight reload: publish → serve → canary → deploy →
//! rollback, all against one running [`odq::serve::Server`].
//!
//! The registry ([`odq::registry::ModelRegistry`]) owns the versioned
//! weights; the server routes each admitted request to exactly one
//! published version. A deploy is an atomic routing swap — in-flight
//! requests finish on the version they were admitted under, and the
//! predecessor stays warm (plan caches intact) so rollback is instant.
//!
//! ```sh
//! cargo run --release --example hot_reload
//! ```

use std::sync::Arc;
use std::time::Duration;

use odq::nn::models::{Model, ModelCfg};
use odq::nn::param::init_rng;
use odq::nn::train::{train_epoch, SgdCfg};
use odq::nn::Arch;
use odq::registry::{FiniteGate, ModelRegistry};
use odq::serve::{EngineKind, InferRequest, ServeConfig, Server, TrafficSplit};
use odq::tensor::Tensor;

/// Deterministic synthetic "camera frame".
fn frame(i: usize, channels: usize, hw: usize) -> Tensor {
    let len = channels * hw * hw;
    let v: Vec<f32> = (0..len).map(|j| ((j * 31 + i * 97) % 251) as f32 / 251.0).collect();
    Tensor::from_vec(vec![1, channels, hw, hw], v)
}

/// A freshly "trained" candidate: same architecture, new weights.
fn train_candidate(seed: u64, epochs: usize) -> Model {
    let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
    cfg.input_hw = 8;
    cfg.in_channels = 1;
    cfg.seed = seed;
    let mut model = Model::build(cfg);
    let spec = odq::data::SynthSpec { num_classes: 4, channels: 1, hw: 8, noise: 0.1, seed };
    let (train, _) = spec.generate_split(64, 8);
    let mut rng = init_rng(seed);
    for _ in 0..epochs {
        train_epoch(&mut model, &train.images, &train.labels, 16, &SgdCfg::default(), &mut rng);
    }
    model
}

fn serve_some(server: &Server, name: &str, ids: std::ops::Range<u64>) {
    for id in ids {
        let input = frame(id as usize, 1, 8);
        let req = InferRequest::new(name, input).with_deadline(Duration::from_secs(2)).with_id(id);
        let resp = server.submit(req).expect("admitted").wait().expect("served");
        let top = resp
            .output
            .as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(c, _)| c)
            .unwrap();
        println!(
            "  request {id:>2} -> class {top} (batch of {}, {:>6.1?} total)",
            resp.timing.batch_size, resp.timing.total
        );
    }
}

fn main() {
    // 1. A gated registry: candidates with non-finite weights never
    //    become routable. Swap in `odq::conformance::OracleGate` to also
    //    pin every publish to the scalar golden oracle.
    let registry = Arc::new(ModelRegistry::gated(FiniteGate));
    let v1 = registry.publish("lenet", train_candidate(7, 2), vec![]).unwrap();
    println!(
        "published lenet v{v1} (fingerprint {:#018x})",
        registry.fingerprint("lenet", v1).unwrap()
    );

    // 2. Serve the latest published version.
    let server = Server::builder(ServeConfig::default())
        .engine(EngineKind::Odq { threshold: 0.3 })
        .registry(Arc::clone(&registry))
        .serve("lenet")
        .try_start()
        .expect("latest version is publishable");
    println!("serving lenet v{}", server.current_version("lenet").unwrap());
    serve_some(&server, "lenet", 0..4);

    // 3. Retraining finished: publish v2 into the same registry. The
    //    running server is untouched — publishing is not deploying.
    let v2 = server.registry().publish("lenet", train_candidate(8, 3), vec![]).unwrap();
    println!(
        "\npublished lenet v{v2}; still serving v{}",
        server.current_version("lenet").unwrap()
    );

    // 4. Canary: route a deterministic 25% of request ids to v2. The
    //    ledger accounts each version separately, so the canary's service
    //    latencies are directly comparable to the incumbent's.
    server.canary("lenet", v2, TrafficSplit::new(0.25).with_seed(42)).unwrap();
    println!("canarying v{v2} at 25%:");
    serve_some(&server, "lenet", 4..12);

    // 5. Promote: atomically make v2 current. In-flight requests finish
    //    on v1; v1 stays warm as the rollback target.
    server.deploy("lenet", v2).unwrap();
    println!("\ndeployed v{v2}:");
    serve_some(&server, "lenet", 12..16);

    // 6. Regret it: rollback swaps v1 back in — a pointer swap, no plan
    //    rebuilds, no dropped requests.
    let back = server.rollback("lenet").unwrap();
    println!("\nrolled back to v{back}:");
    serve_some(&server, "lenet", 16..20);

    // 7. The ledger shows every version that served traffic.
    println!("\nstats: {}", server.stats_json());
    server.shutdown();
}
