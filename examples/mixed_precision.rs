//! Mixed-precision serving, end to end: record per-layer ODQ sensitivity
//! → auto-build a [`PrecisionPolicy`] (greedy cheapest bits subject to an
//! SQNR floor) → publish model + policy to the registry → serve through a
//! policy-routed engine → read per-route accelerator cost out of the
//! stats ledger.
//!
//! The policy is the paper's output-directed idea lifted to deployment
//! granularity: layers whose outputs are mostly insensitive run under
//! ODQ (work skipped in proportion), the rest get the smallest static
//! width whose weight SQNR clears the floor, and anything too fragile
//! for integer math stays in float.
//!
//! ```sh
//! cargo run --release --example mixed_precision
//! ```

use std::sync::Arc;
use std::time::Duration;

use odq::core::engine::OdqEngine;
use odq::nn::models::{Model, ModelCfg};
use odq::nn::param::init_rng;
use odq::nn::policy::{auto_policy, AutoPolicyCfg};
use odq::nn::train::{train_epoch, SgdCfg};
use odq::nn::Arch;
use odq::registry::ModelRegistry;
use odq::serve::{EngineKind, InferRequest, ServeConfig, Server};
use odq::tensor::Tensor;

fn frame(i: usize, channels: usize, hw: usize) -> Tensor {
    let len = channels * hw * hw;
    let v: Vec<f32> = (0..len).map(|j| ((j * 31 + i * 97) % 251) as f32 / 251.0).collect();
    Tensor::from_vec(vec![1, channels, hw, hw], v)
}

fn main() {
    // 1. Train a small ResNet-20 on synthetic data so sensitivity and
    //    SQNR are measured on meaningful weights.
    let hw = 8;
    let mut cfg = ModelCfg::small(Arch::ResNet20, 4);
    cfg.input_hw = hw;
    let mut model = Model::build(cfg);
    let spec = odq::data::SynthSpec { num_classes: 4, channels: 3, hw, noise: 0.1, seed: 11 };
    let (train, calib) = spec.generate_split(64, 8);
    let mut rng = init_rng(11);
    for _ in 0..2 {
        train_epoch(&mut model, &train.images, &train.labels, 16, &SgdCfg::default(), &mut rng);
    }

    // 2. Record per-layer ODQ sensitivity on a calibration batch: run the
    //    recording engine and keep each layer's sensitive-output fraction.
    let mut recorder = OdqEngine::new(0.3);
    for i in 0..calib.images.dims()[0] {
        let img = Tensor::from_vec(vec![1, 3, hw, hw], calib.images.outer(i).to_vec());
        let _ = model.forward_eval(&img, &mut recorder);
    }
    let sensitivity: Vec<(String, f64)> =
        recorder.stats.layers.iter().map(|l| (l.name.clone(), l.sensitive_fraction())).collect();
    println!("calibration sensitivity (sensitive fraction per conv layer):");
    for (name, frac) in &sensitivity {
        println!("  {name:<4} {frac:.3}");
    }

    // 3. Greedy auto-policy: ODQ where mostly insensitive, else the
    //    cheapest static width clearing the SQNR floor, else float.
    let cfg = AutoPolicyCfg { odq_ceiling: 0.6, sqnr_floor_db: 18.0, ..Default::default() };
    let policy = auto_policy(&mut model, &sensitivity, &cfg);
    println!("\nauto-built policy (default {}):", policy.default_route().label());
    for (name, route) in policy.layers() {
        println!("  {name:<4} -> {}", route.label());
    }

    // 4. Publish weights *with* their policy. The registry validates the
    //    route table against the candidate's real conv layers before a
    //    version number is allocated.
    let registry = Arc::new(ModelRegistry::new());
    let v1 = registry
        .publish_with_policy("resnet", model, vec![], Some(policy.clone()))
        .expect("policy names only real conv layers");
    println!("\npublished resnet v{v1} with its policy");

    // 5. Serve through a policy-routed engine. The deployment carries the
    //    published policy, so a future hot swap to a version published
    //    with a different policy re-routes atomically with the weights.
    let server = Server::builder(ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_micros(300),
        workers: 2,
        ..ServeConfig::default()
    })
    .engine(EngineKind::Policy(Arc::new(policy)))
    .registry(registry)
    .serve("resnet")
    .start();

    for i in 0..12 {
        let resp = server
            .submit(InferRequest::new("resnet", frame(i, 3, hw)).with_id(i as u64))
            .expect("admitted")
            .wait()
            .expect("served");
        let top = resp
            .output
            .as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(c, _)| c)
            .unwrap();
        println!("  request {i:>2} -> class {top} (batch of {})", resp.timing.batch_size);
    }

    // 6. The ledger splits simulated accelerator cost by route, so the
    //    policy's spend is visible per precision class.
    println!("\nstats: {}", server.stats_json());
    let summary = server.shutdown();
    println!("\nper-route accelerator cost:");
    for r in &summary.routes {
        println!(
            "  {:<6} {:>4} layers over {:>3} batches, {:>12.0} cycles, {:>12.0} nJ",
            r.route, r.layers, r.batches, r.cycles, r.energy_nj
        );
    }
}
