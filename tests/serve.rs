//! Serving-subsystem integration properties.
//!
//! 1. **Batching invariance** — whatever way the micro-batcher interleaves
//!    and coalesces requests, every response is *element-wise identical*
//!    (exact f32 equality, not approximate) to running that input alone
//!    through a fresh engine. This holds because convolution is per-sample
//!    im2col/GEMM and every quantization scale is batch-independent.
//! 2. **Graceful shutdown** — shutting down immediately after a burst
//!    drains the queue: every admitted request gets exactly one response,
//!    none lost, none fabricated.

use std::time::Duration;

use proptest::prelude::*;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use odq::core::engine::OdqEngine;
use odq::nn::executor::{ConvExecutor, FloatConvExecutor, StaticQuantExecutor};
use odq::nn::models::{Model, ModelCfg};
use odq::nn::Arch;
use odq::serve::{EngineKind, InferRequest, ServeConfig, ServeError, Server};
use odq::tensor::Tensor;

fn build_models() -> (Model, Model) {
    let mut r_cfg = ModelCfg::small(Arch::ResNet20, 10);
    r_cfg.input_hw = 8;
    let resnet = Model::build(r_cfg);
    let mut l_cfg = ModelCfg::small(Arch::LeNet5, 10);
    l_cfg.input_hw = 8;
    l_cfg.in_channels = 1;
    let lenet = Model::build(l_cfg);
    (resnet, lenet)
}

fn random_image(rng: &mut ChaCha8Rng, channels: usize, hw: usize) -> Tensor {
    let v: Vec<f32> = (0..channels * hw * hw).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    Tensor::from_vec(vec![1, channels, hw, hw], v)
}

fn solo_engine(kind: u8) -> Box<dyn ConvExecutor> {
    match kind {
        0 => Box::new(FloatConvExecutor),
        1 => Box::new(StaticQuantExecutor::int(8)),
        _ => Box::new(OdqEngine::new(0.3)),
    }
}

fn serve_engine(kind: u8) -> EngineKind {
    match kind {
        0 => EngineKind::Float,
        1 => EngineKind::Static { bits: 8 },
        _ => EngineKind::Odq { threshold: 0.3 },
    }
}

/// Acceptance: the stats ledger is O(1) in requests. Drive 100k+ requests
/// through the full pipeline and assert the ledger's resident footprint
/// stays under a fixed byte budget and does not grow between the 200th and
/// the 100_200th request, while counters and percentiles stay correct.
///
/// Most of the flood carries an already-expired deadline, so the batcher
/// and workers process every request (admission, grouping, dequeue,
/// rejection accounting) without paying for 100k debug-mode forward
/// passes; a served prefix populates the latency histograms for real.
#[test]
fn ledger_memory_is_constant_over_100k_requests() {
    const SERVED: u64 = 200;
    const FLOOD: u64 = 100_000;
    const BUDGET_BYTES: usize = 64 * 1024;

    let (_, lenet) = build_models();
    let server = Server::builder(ServeConfig {
        queue_depth: 256,
        max_batch: 64,
        max_wait: Duration::from_micros(100),
        workers: 2,
        default_deadline: None,
        simulate_accel: false,
        ..ServeConfig::default()
    })
    .engine(EngineKind::Float)
    .model("lenet", lenet)
    .start();

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let handles: Vec<_> = (0..SERVED)
        .map(|_| {
            server
                .submit(InferRequest::new("lenet", random_image(&mut rng, 1, 8)))
                .expect("queue_depth covers the served prefix")
        })
        .collect();
    for h in handles {
        h.wait().expect("no deadline set");
    }
    // The worker records each batch *before* responding, so the completed
    // waits above are a barrier: the ledger has absorbed every served
    // request by now.
    assert_eq!(server.stats().completed, SERVED);
    let footprint_before_flood = server.ledger_bytes();
    assert!(
        footprint_before_flood < BUDGET_BYTES,
        "ledger footprint {footprint_before_flood} B exceeds the {BUDGET_BYTES} B budget"
    );

    let img = random_image(&mut rng, 1, 8);
    let mut admitted_flood = 0u64;
    let mut queue_full = 0u64;
    while admitted_flood < FLOOD {
        match server.submit(InferRequest::new("lenet", img.clone()).with_deadline(Duration::ZERO)) {
            // Handle dropped on purpose: the rejection is still counted.
            Ok(_) => admitted_flood += 1,
            Err(ServeError::QueueFull) => {
                queue_full += 1;
                std::thread::yield_now();
            }
            Err(e) => panic!("unexpected admission error {e}"),
        }
    }

    let footprint_after_flood = server.ledger_bytes();
    let sum = server.shutdown();

    // O(1) memory: the flood left the footprint exactly where it was.
    assert_eq!(
        footprint_before_flood, footprint_after_flood,
        "ledger footprint grew during a 100k-request flood"
    );

    // The ledger's own reconciliation agrees, with every gauge at zero.
    let rec = sum.reconcile();
    assert!(rec.is_balanced(), "final ledger does not reconcile: {rec}");
    assert!(rec.gauges_clear(), "gauges not clear after shutdown: {rec}");

    // Counters: every admitted request is accounted for exactly once.
    assert_eq!(sum.admitted, SERVED + admitted_flood);
    assert_eq!(sum.completed, SERVED);
    assert_eq!(sum.rejected_deadline, admitted_flood);
    assert_eq!(sum.rejected_queue_full, queue_full);
    assert_eq!(sum.internal_errors, 0);

    // Percentiles: sane ordering from the log-bucketed histograms.
    assert!(sum.latency.p50 > Duration::ZERO);
    assert!(sum.latency.p50 <= sum.latency.p95);
    assert!(sum.latency.p95 <= sum.latency.p99);
    assert!(sum.latency.p99 <= sum.latency.max);
    assert!(sum.queue_wait.p50 <= sum.queue_wait.max);
    assert!(sum.mean_batch_size >= 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any interleaving of requests across two models, any batch size and
    /// worker count, any engine: batched output == solo output, exactly.
    #[test]
    fn batched_outputs_identical_to_solo(
        seed in 0u64..1_000_000,
        n_requests in 1usize..14,
        max_batch in 1usize..6,
        workers in 1usize..4,
        engine_kind in 0u8..3,
    ) {
        let (resnet, lenet) = build_models();
        let server = Server::builder(ServeConfig {
            queue_depth: 64,
            max_batch,
            max_wait: Duration::from_micros(300),
            workers,
            default_deadline: None,
            simulate_accel: false,
            ..ServeConfig::default()
        })
        .engine(serve_engine(engine_kind))
        .model("resnet", resnet)
        .model("lenet", lenet)
        .start();

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut submitted = Vec::new();
        for _ in 0..n_requests {
            let (name, channels) = if rng.gen_bool(0.5) { ("resnet", 3) } else { ("lenet", 1) };
            let img = random_image(&mut rng, channels, 8);
            let h = server
                .submit(InferRequest::new(name, img.clone()))
                .expect("queue_depth covers the burst");
            submitted.push((name, img, h));
        }

        // Solo references: a fresh engine per request.
        let (resnet, lenet) = build_models();
        for (name, img, h) in submitted {
            let resp = h.wait().expect("no deadlines, no rejects");
            let model = if name == "resnet" { &resnet } else { &lenet };
            let expect = model.forward_eval(&img, &mut *solo_engine(engine_kind));
            prop_assert_eq!(resp.output.dims(), expect.dims());
            let got = resp.output.as_slice();
            let want = expect.as_slice();
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                prop_assert!(
                    g.to_bits() == w.to_bits(),
                    "elem {} differs: batched {} vs solo {} (batch of {})",
                    i, g, w, resp.timing.batch_size
                );
            }
        }
        server.shutdown();
    }

    /// Submit a burst and shut down immediately: every admitted request is
    /// answered exactly once, and the ledger agrees.
    #[test]
    fn shutdown_drains_without_losing_or_duplicating(
        seed in 0u64..1_000_000,
        n_requests in 1usize..20,
        max_batch in 1usize..6,
        workers in 1usize..4,
    ) {
        let (resnet, lenet) = build_models();
        let server = Server::builder(ServeConfig {
            queue_depth: 64,
            max_batch,
            // Longer than the test: batches flush by size or by drain.
            max_wait: Duration::from_secs(5),
            workers,
            default_deadline: None,
            simulate_accel: false,
            ..ServeConfig::default()
        })
        .engine(EngineKind::Float)
        .model("resnet", resnet)
        .model("lenet", lenet)
        .start();

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let handles: Vec<_> = (0..n_requests)
            .map(|_| {
                let (name, channels) = if rng.gen_bool(0.5) { ("resnet", 3) } else { ("lenet", 1) };
                server
                    .submit(InferRequest::new(name, random_image(&mut rng, channels, 8)))
                    .expect("queue_depth covers the burst")
            })
            .collect();

        let summary = server.shutdown();
        prop_assert_eq!(summary.completed, n_requests as u64, "ledger counts every request");
        let rec = summary.reconcile();
        prop_assert!(rec.is_balanced(), "final ledger does not reconcile: {}", rec);
        prop_assert!(rec.gauges_clear(), "gauges not clear after shutdown: {}", rec);

        for h in handles {
            // Exactly one response per handle: the first wait succeeds...
            let first = h.try_wait().expect("drained before shutdown returned");
            prop_assert!(first.is_ok(), "no deadline was set: {:?}", first.err());
            // ...and the response slot is now empty and disconnected.
            prop_assert!(matches!(
                h.try_wait(),
                None | Some(Err(odq::serve::ServeError::WorkerLost))
            ));
        }
    }
}
