//! Property-based tests on the core invariants of the reproduction.

use odq::core::{odq_conv2d, OdqCfg};
use odq::quant::plan::{PlanSpec, QConvPlan};
use odq::quant::qconv::{
    combine_planes, qconv2d, qconv2d_codes, qconv2d_planes, qconv2d_planes_fused, qconv2d_with,
    receptive_sums,
};
use odq::quant::{join_planes, quantize_activation, quantize_weights, split_codes, split_qtensor};
use odq::tensor::im2col::{col2im, im2col};
use odq::tensor::workspace::WorkspacePool;
use odq::tensor::{ConvGeom, Tensor};
use proptest::prelude::*;

fn pseudo_unit(n: usize, seed: u32) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 / 1000.0)
        .collect()
}

fn pseudo_signed(n: usize, seed: u32) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as u32).wrapping_mul(40503).wrapping_add(seed) % 1000) as f32 / 500.0 - 1.0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantize→dequantize error is bounded by half a quantization step,
    /// for any activation values and bit width.
    #[test]
    fn activation_roundtrip_bounded(
        values in prop::collection::vec(0.0f32..1.0, 1..128),
        bits in 2u8..=8,
    ) {
        let x = Tensor::from_vec([values.len()], values);
        let q = quantize_activation(&x, bits, 1.0);
        let err = q.dequantize().max_abs_diff(&x);
        prop_assert!(err <= 0.5 * q.scale + 1e-6, "err {} > step/2 {}", err, 0.5 * q.scale);
    }

    /// Offset-binary weight roundtrip error is bounded by half a step, and
    /// every code is in range.
    #[test]
    fn weight_roundtrip_bounded(
        values in prop::collection::vec(-2.0f32..2.0, 1..128),
        bits in 2u8..=8,
    ) {
        let w = Tensor::from_vec([values.len()], values);
        let q = quantize_weights(&w, bits);
        prop_assert!(q.codes_in_range());
        let err = q.dequantize().max_abs_diff(&w);
        prop_assert!(err <= 0.5 * q.scale + 1e-5);
    }

    /// Bit-plane split/join is the identity on arbitrary i16 codes.
    #[test]
    fn split_join_roundtrip(
        codes in prop::collection::vec(-256i16..256, 1..200),
        low_bits in 1u8..8,
    ) {
        let (h, l) = split_codes(&codes, low_bits, true);
        prop_assert_eq!(join_planes(&h, &l, low_bits), codes);
    }

    /// Eq. 3 plane decomposition of the convolution is exact for any
    /// quantized operands.
    #[test]
    fn plane_conv_decomposition_exact(
        xseed in 0u32..1000,
        wseed in 0u32..1000,
        channels in 1usize..4,
        filters in 1usize..4,
    ) {
        let g = ConvGeom::new(channels, filters, 5, 5, 3, 1, 1);
        let xs: Vec<f32> = (0..channels * 25)
            .map(|i| ((i as u32).wrapping_mul(2654435761).wrapping_add(xseed) % 1000) as f32 / 1000.0)
            .collect();
        let ws: Vec<f32> = (0..filters * channels * 9)
            .map(|i| ((i as u32).wrapping_mul(40503).wrapping_add(wseed) % 1000) as f32 / 500.0 - 1.0)
            .collect();
        let qx = quantize_activation(&Tensor::from_vec(g.input_shape(1), xs), 4, 1.0);
        let qw = quantize_weights(&Tensor::from_vec(g.weight_shape(), ws), 4);
        let full = qconv2d_codes(&qx.codes, &qw.codes, &g);
        let xp = split_qtensor(&qx, 2);
        let wp = split_qtensor(&qw, 2);
        let rec = combine_planes(&qconv2d_planes(&xp, &wp, &g));
        prop_assert_eq!(full.as_slice(), rec.as_slice());
    }

    /// im2col and col2im are adjoint: <im2col(x), y> == <x, col2im(y)>.
    #[test]
    fn im2col_adjoint(
        xs in prop::collection::vec(-4.0f32..4.0, 32),
        kernel in 1usize..=3,
        padding in 0usize..=1,
    ) {
        let g = ConvGeom::new(2, 1, 4, 4, kernel, 1, padding);
        let ys: Vec<f32> = (0..g.col_len() * g.out_spatial())
            .map(|i| ((i * 31 + 7) % 17) as f32 - 8.0)
            .collect();
        let ax = im2col(&xs, &g);
        let aty = col2im(&ys, &g);
        let lhs: f64 = ax.iter().zip(&ys).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let rhs: f64 = xs.iter().zip(&aty).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch {lhs} vs {rhs}");
    }

    /// Receptive sums equal a convolution with all-ones weights.
    #[test]
    fn receptive_sums_match_ones_conv(
        codes in prop::collection::vec(0i16..16, 18),
    ) {
        let g = ConvGeom::new(2, 1, 3, 3, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(1), codes);
        let ones = Tensor::full(g.weight_shape(), 1i16);
        let via_conv = qconv2d_codes(&x, &ones, &g);
        let sums = receptive_sums(&x, &g);
        prop_assert_eq!(via_conv.as_slice(), sums.as_slice());
    }

    /// ODQ sensitive count is monotone non-increasing in the threshold,
    /// and at threshold 0 everything is sensitive.
    #[test]
    fn odq_mask_monotone_in_threshold(seed in 0u32..500) {
        let g = ConvGeom::new(2, 3, 6, 6, 3, 1, 1);
        let xs: Vec<f32> = (0..2 * 36)
            .map(|i| ((i as u32).wrapping_mul(97).wrapping_add(seed) % 100) as f32 / 100.0)
            .collect();
        let ws: Vec<f32> = (0..3 * 2 * 9)
            .map(|i| ((i as u32).wrapping_mul(61).wrapping_add(seed) % 200) as f32 / 100.0 - 1.0)
            .collect();
        let x = Tensor::from_vec(g.input_shape(1), xs);
        let w = Tensor::from_vec(g.weight_shape(), ws);
        let mut last = usize::MAX;
        for thr in [0.0f32, 0.1, 0.3, 0.9] {
            let r = odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(thr));
            let c = r.mask.sensitive_count();
            prop_assert!(c <= last);
            if thr == 0.0 {
                prop_assert_eq!(c, r.mask.len());
            }
            last = c;
        }
    }

    /// ODQ's sensitive outputs always equal the exact INT4 reference.
    #[test]
    fn odq_sensitive_outputs_exact(seed in 0u32..500, thr in 0.05f32..1.0) {
        let g = ConvGeom::new(2, 2, 5, 5, 3, 1, 1);
        let xs: Vec<f32> = (0..2 * 25)
            .map(|i| ((i as u32).wrapping_mul(137).wrapping_add(seed) % 100) as f32 / 100.0)
            .collect();
        let ws: Vec<f32> = (0..2 * 2 * 9)
            .map(|i| ((i as u32).wrapping_mul(211).wrapping_add(seed) % 200) as f32 / 100.0 - 1.0)
            .collect();
        let x = Tensor::from_vec(g.input_shape(1), xs);
        let w = Tensor::from_vec(g.weight_shape(), ws);
        let r = odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(thr));
        for i in 0..r.mask.len() {
            if r.mask.bits()[i] {
                prop_assert!(
                    (r.output.as_slice()[i] - r.reference.as_slice()[i]).abs() < 1e-6
                );
            }
        }
    }

    /// Scheduler work conservation and dynamic dominance over static, for
    /// arbitrary workloads.
    #[test]
    fn scheduler_invariants(
        workloads in prop::collection::vec(0u32..64, 1..32),
        arrays in 1usize..12,
    ) {
        use odq::accel::sched::{schedule_dynamic, schedule_static, CYCLES_PER_SENSITIVE_OUTPUT};
        let st = schedule_static(&workloads, arrays);
        let dy = schedule_dynamic(&workloads, arrays);
        let total: u64 = workloads.iter().map(|&w| w as u64).sum();
        prop_assert_eq!(st.busy_cycles, total * CYCLES_PER_SENSITIVE_OUTPUT);
        prop_assert_eq!(dy.busy_cycles, st.busy_cycles);
        prop_assert!(dy.makespan <= st.makespan);
        // Lower bound: ceil(total / arrays) slots.
        let lower = total.div_ceil(arrays as u64) * CYCLES_PER_SENSITIVE_OUTPUT;
        prop_assert!(dy.makespan >= lower || total == 0);
    }

    /// Table 1 no-bubble bound: below it the simulated layer is
    /// predictor-bound; the bound itself is E/(3P).
    #[test]
    fn allocation_bound_property(p_extra in 0usize..5) {
        use odq::accel::alloc::{max_sensitive_fraction, Allocation};
        let p = 9 + 3 * p_extra.min(4);
        let a = Allocation::new(p, 27 - p);
        let s = max_sensitive_fraction(a);
        prop_assert!((s - (27 - p) as f64 / (3.0 * p as f64)).abs() < 1e-12);
    }

    /// Float conv through a *reused* workspace pool is bit-identical to a
    /// fresh-pool call, even as geometry and batch size change between
    /// lowerings (stale scratch from a previous shape must not leak).
    #[test]
    fn pooled_conv2d_bit_identical_across_geometries(
        seed in 0u32..500,
        n in 1usize..4,
        channels in 1usize..3,
        filters in 1usize..4,
        kernel in 1usize..=3,
        padding in 0usize..=1,
    ) {
        let pool = WorkspacePool::new();
        // Two different geometries back to back through the same pool.
        for (i, hw) in [5usize, 7].into_iter().enumerate() {
            let g = ConvGeom::new(channels, filters, hw, hw, kernel, 1, padding);
            let x = Tensor::from_vec(
                g.input_shape(n), pseudo_unit(n * channels * hw * hw, seed + i as u32));
            let w = Tensor::from_vec(
                g.weight_shape(), pseudo_signed(filters * channels * kernel * kernel, seed));
            let fresh = odq::tensor::conv::conv2d(&x, &w, None, &g);
            let pooled = odq::tensor::conv::conv2d_with(&x, &w, None, &g, &pool);
            prop_assert_eq!(fresh.as_slice(), pooled.as_slice());
        }
    }

    /// Quantized conv through a reused pool (fused products+sums path)
    /// matches the fresh-pool qconv2d bit for bit.
    #[test]
    fn pooled_qconv2d_bit_identical(
        seed in 0u32..500,
        n in 1usize..4,
        channels in 1usize..3,
        filters in 1usize..4,
        bits in 2u8..=8,
    ) {
        let g = ConvGeom::new(channels, filters, 6, 6, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(n), pseudo_unit(n * channels * 36, seed));
        let w = Tensor::from_vec(g.weight_shape(), pseudo_signed(filters * channels * 9, seed));
        let qx = quantize_activation(&x, bits, 1.0);
        let qw = quantize_weights(&w, bits);
        let fresh = qconv2d(&qx, &qw, &g);
        let pool = WorkspacePool::new();
        let a = qconv2d_with(&qx, &qw, &g, &pool);
        let b = qconv2d_with(&qx, &qw, &g, &pool); // reused scratch
        prop_assert_eq!(fresh.as_slice(), a.as_slice());
        prop_assert_eq!(fresh.as_slice(), b.as_slice());
    }

    /// The fused single-lowering ODQ kernel reproduces the unfused
    /// pipeline (pre-split planes + separate receptive sums) exactly, and
    /// performs exactly one lowering per image.
    #[test]
    fn fused_planes_match_unfused_pipeline(
        seed in 0u32..500,
        n in 1usize..4,
        channels in 1usize..3,
        filters in 1usize..4,
        low_bits in 1u8..=3,
    ) {
        let g = ConvGeom::new(channels, filters, 6, 6, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(n), pseudo_unit(n * channels * 36, seed));
        let w = Tensor::from_vec(g.weight_shape(), pseudo_signed(filters * channels * 9, seed));
        let qx = quantize_activation(&x, 4, 1.0);
        let qw = quantize_weights(&w, 4);
        let xp = split_qtensor(&qx, low_bits);
        let wp = split_qtensor(&qw, low_bits);
        let unfused = qconv2d_planes(&xp, &wp, &g);
        let sa = receptive_sums(&qx.codes, &g);
        let sa_h = receptive_sums(&xp.high, &g);

        let pool = WorkspacePool::new();
        let fused = qconv2d_planes_fused(&qx.codes, &wp, &g, &pool);
        prop_assert_eq!(fused.planes.hh.as_slice(), unfused.hh.as_slice());
        prop_assert_eq!(fused.planes.hl.as_slice(), unfused.hl.as_slice());
        prop_assert_eq!(fused.planes.lh.as_slice(), unfused.lh.as_slice());
        prop_assert_eq!(fused.planes.ll.as_slice(), unfused.ll.as_slice());
        prop_assert_eq!(fused.sa.as_slice(), sa.as_slice());
        prop_assert_eq!(fused.sa_h.as_slice(), sa_h.as_slice());
        prop_assert_eq!(pool.lowerings(), n as u64);
    }

    /// The planned ODQ kernel (prepacked weights, single lowering) is
    /// bit-identical to the per-call seed kernel for any geometry, batch
    /// size and threshold.
    #[test]
    fn planned_odq_conv_bit_identical_to_seed(
        seed in 0u32..500,
        n in 1usize..4,
        channels in 1usize..3,
        filters in 1usize..4,
        thr in 0.0f32..1.0,
    ) {
        let g = ConvGeom::new(channels, filters, 6, 6, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(n), pseudo_unit(n * channels * 36, seed));
        let w = Tensor::from_vec(g.weight_shape(), pseudo_signed(filters * channels * 9, seed));
        let cfg = OdqCfg::int4(thr);
        let seed_out = odq_conv2d(&x, &w, None, &g, &cfg);

        let plan = QConvPlan::build(&w, PlanSpec::odq(cfg.w_bits, cfg.low_bits));
        let pool = WorkspacePool::new();
        let qx = quantize_activation(&x, cfg.a_bits, cfg.a_clip);
        let planned = odq::core::odq_conv::odq_conv2d_planned(&qx, &plan, None, &g, &cfg, &pool);
        prop_assert_eq!(seed_out.output.as_slice(), planned.output.as_slice());
        prop_assert_eq!(seed_out.reference.as_slice(), planned.reference.as_slice());
        prop_assert_eq!(seed_out.mask, planned.mask);
    }
}

// Engine-level forwards run a whole model per case; keep the case count
// low so the suite stays fast.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A full OdqEngine forward (planned path, shared plan cache) is
    /// bit-identical to running the seed per-call kernel at every layer.
    #[test]
    fn odq_engine_forward_matches_seed_kernel(
        batch in 1usize..4,
        thr in 0.0f32..0.8,
    ) {
        use odq::nn::executor::{ConvCtx, ConvExecutor};
        use odq::nn::models::{Model, ModelCfg};
        use odq::nn::Arch;

        struct SeedOdq(OdqCfg);
        impl ConvExecutor for SeedOdq {
            fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
                odq_conv2d(x, ctx.weights, ctx.bias, &ctx.geom, &self.0).output
            }
        }

        let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
        cfg.input_hw = 8;
        let m = Model::build(cfg);
        let x = Tensor::from_vec([batch, 3, 8, 8], pseudo_unit(batch * 3 * 64, 11));

        let mut seed_exec = SeedOdq(OdqCfg::int4(thr));
        let y_seed = m.forward_eval(&x, &mut seed_exec);
        let mut engine = odq::core::engine::OdqEngine::new(thr);
        let y_planned = m.forward_eval(&x, &mut engine);
        prop_assert_eq!(y_seed.as_slice(), y_planned.as_slice());
    }

    /// A full DrqEngine forward (planned path) is bit-identical to the
    /// seed per-call DRQ convolution at every layer.
    #[test]
    fn drq_engine_forward_matches_seed_kernel(
        batch in 1usize..4,
        thr in 0.0f32..0.8,
    ) {
        use odq::drq::{drq_conv2d, DrqCfg, DrqEngine};
        use odq::nn::executor::{ConvCtx, ConvExecutor};
        use odq::nn::models::{Model, ModelCfg};
        use odq::nn::Arch;

        struct SeedDrq(DrqCfg);
        impl ConvExecutor for SeedDrq {
            fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
                drq_conv2d(x, ctx.weights, ctx.bias, &ctx.geom, &self.0).output
            }
        }

        let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
        cfg.input_hw = 8;
        let m = Model::build(cfg);
        let x = Tensor::from_vec([batch, 3, 8, 8], pseudo_unit(batch * 3 * 64, 23));

        let mut seed_exec = SeedDrq(DrqCfg::int8_int4(thr));
        let y_seed = m.forward_eval(&x, &mut seed_exec);
        let mut engine = DrqEngine::new(DrqCfg::int8_int4(thr));
        let y_planned = m.forward_eval(&x, &mut engine);
        prop_assert_eq!(y_seed.as_slice(), y_planned.as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram merge is exact sharding: merging per-shard histograms is
    /// indistinguishable from one histogram that saw every sample — the
    /// property the serve ledger relies on when per-worker shards are
    /// folded into one summary.
    #[test]
    fn log_histogram_merge_equals_concatenation(
        shards in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000_000, 0..64),
            1..6,
        ),
    ) {
        use odq::serve::LogHistogram;

        let mut merged = LogHistogram::default();
        for shard in &shards {
            let mut h = LogHistogram::default();
            for &v in shard {
                h.record(v);
            }
            merged.merge(&h);
        }

        let mut whole = LogHistogram::default();
        for &v in shards.iter().flatten() {
            whole.record(v);
        }

        prop_assert_eq!(&merged, &whole, "bucket layouts diverged");
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert!((merged.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs() + 1e-9);
        prop_assert_eq!(
            merged.buckets().collect::<Vec<_>>(),
            whole.buckets().collect::<Vec<_>>()
        );
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.value_at_quantile(q), whole.value_at_quantile(q));
        }
    }
}
