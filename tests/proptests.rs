//! Property-based tests on the core invariants of the reproduction.

use odq::core::{odq_conv2d, OdqCfg};
use odq::quant::qconv::{combine_planes, qconv2d_codes, qconv2d_planes, receptive_sums};
use odq::quant::{join_planes, quantize_activation, quantize_weights, split_codes, split_qtensor};
use odq::tensor::im2col::{col2im, im2col};
use odq::tensor::{ConvGeom, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantize→dequantize error is bounded by half a quantization step,
    /// for any activation values and bit width.
    #[test]
    fn activation_roundtrip_bounded(
        values in prop::collection::vec(0.0f32..1.0, 1..128),
        bits in 2u8..=8,
    ) {
        let x = Tensor::from_vec([values.len()], values);
        let q = quantize_activation(&x, bits, 1.0);
        let err = q.dequantize().max_abs_diff(&x);
        prop_assert!(err <= 0.5 * q.scale + 1e-6, "err {} > step/2 {}", err, 0.5 * q.scale);
    }

    /// Offset-binary weight roundtrip error is bounded by half a step, and
    /// every code is in range.
    #[test]
    fn weight_roundtrip_bounded(
        values in prop::collection::vec(-2.0f32..2.0, 1..128),
        bits in 2u8..=8,
    ) {
        let w = Tensor::from_vec([values.len()], values);
        let q = quantize_weights(&w, bits);
        prop_assert!(q.codes_in_range());
        let err = q.dequantize().max_abs_diff(&w);
        prop_assert!(err <= 0.5 * q.scale + 1e-5);
    }

    /// Bit-plane split/join is the identity on arbitrary i16 codes.
    #[test]
    fn split_join_roundtrip(
        codes in prop::collection::vec(-256i16..256, 1..200),
        low_bits in 1u8..8,
    ) {
        let (h, l) = split_codes(&codes, low_bits, true);
        prop_assert_eq!(join_planes(&h, &l, low_bits), codes);
    }

    /// Eq. 3 plane decomposition of the convolution is exact for any
    /// quantized operands.
    #[test]
    fn plane_conv_decomposition_exact(
        xseed in 0u32..1000,
        wseed in 0u32..1000,
        channels in 1usize..4,
        filters in 1usize..4,
    ) {
        let g = ConvGeom::new(channels, filters, 5, 5, 3, 1, 1);
        let xs: Vec<f32> = (0..channels * 25)
            .map(|i| ((i as u32).wrapping_mul(2654435761).wrapping_add(xseed) % 1000) as f32 / 1000.0)
            .collect();
        let ws: Vec<f32> = (0..filters * channels * 9)
            .map(|i| ((i as u32).wrapping_mul(40503).wrapping_add(wseed) % 1000) as f32 / 500.0 - 1.0)
            .collect();
        let qx = quantize_activation(&Tensor::from_vec(g.input_shape(1), xs), 4, 1.0);
        let qw = quantize_weights(&Tensor::from_vec(g.weight_shape(), ws), 4);
        let full = qconv2d_codes(&qx.codes, &qw.codes, &g);
        let xp = split_qtensor(&qx, 2);
        let wp = split_qtensor(&qw, 2);
        let rec = combine_planes(&qconv2d_planes(&xp, &wp, &g));
        prop_assert_eq!(full.as_slice(), rec.as_slice());
    }

    /// im2col and col2im are adjoint: <im2col(x), y> == <x, col2im(y)>.
    #[test]
    fn im2col_adjoint(
        xs in prop::collection::vec(-4.0f32..4.0, 32),
        kernel in 1usize..=3,
        padding in 0usize..=1,
    ) {
        let g = ConvGeom::new(2, 1, 4, 4, kernel, 1, padding);
        let ys: Vec<f32> = (0..g.col_len() * g.out_spatial())
            .map(|i| ((i * 31 + 7) % 17) as f32 - 8.0)
            .collect();
        let ax = im2col(&xs, &g);
        let aty = col2im(&ys, &g);
        let lhs: f64 = ax.iter().zip(&ys).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let rhs: f64 = xs.iter().zip(&aty).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch {lhs} vs {rhs}");
    }

    /// Receptive sums equal a convolution with all-ones weights.
    #[test]
    fn receptive_sums_match_ones_conv(
        codes in prop::collection::vec(0i16..16, 18),
    ) {
        let g = ConvGeom::new(2, 1, 3, 3, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(1), codes);
        let ones = Tensor::full(g.weight_shape(), 1i16);
        let via_conv = qconv2d_codes(&x, &ones, &g);
        let sums = receptive_sums(&x, &g);
        prop_assert_eq!(via_conv.as_slice(), sums.as_slice());
    }

    /// ODQ sensitive count is monotone non-increasing in the threshold,
    /// and at threshold 0 everything is sensitive.
    #[test]
    fn odq_mask_monotone_in_threshold(seed in 0u32..500) {
        let g = ConvGeom::new(2, 3, 6, 6, 3, 1, 1);
        let xs: Vec<f32> = (0..2 * 36)
            .map(|i| ((i as u32).wrapping_mul(97).wrapping_add(seed) % 100) as f32 / 100.0)
            .collect();
        let ws: Vec<f32> = (0..3 * 2 * 9)
            .map(|i| ((i as u32).wrapping_mul(61).wrapping_add(seed) % 200) as f32 / 100.0 - 1.0)
            .collect();
        let x = Tensor::from_vec(g.input_shape(1), xs);
        let w = Tensor::from_vec(g.weight_shape(), ws);
        let mut last = usize::MAX;
        for thr in [0.0f32, 0.1, 0.3, 0.9] {
            let r = odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(thr));
            let c = r.mask.sensitive_count();
            prop_assert!(c <= last);
            if thr == 0.0 {
                prop_assert_eq!(c, r.mask.len());
            }
            last = c;
        }
    }

    /// ODQ's sensitive outputs always equal the exact INT4 reference.
    #[test]
    fn odq_sensitive_outputs_exact(seed in 0u32..500, thr in 0.05f32..1.0) {
        let g = ConvGeom::new(2, 2, 5, 5, 3, 1, 1);
        let xs: Vec<f32> = (0..2 * 25)
            .map(|i| ((i as u32).wrapping_mul(137).wrapping_add(seed) % 100) as f32 / 100.0)
            .collect();
        let ws: Vec<f32> = (0..2 * 2 * 9)
            .map(|i| ((i as u32).wrapping_mul(211).wrapping_add(seed) % 200) as f32 / 100.0 - 1.0)
            .collect();
        let x = Tensor::from_vec(g.input_shape(1), xs);
        let w = Tensor::from_vec(g.weight_shape(), ws);
        let r = odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(thr));
        for i in 0..r.mask.len() {
            if r.mask.bits()[i] {
                prop_assert!(
                    (r.output.as_slice()[i] - r.reference.as_slice()[i]).abs() < 1e-6
                );
            }
        }
    }

    /// Scheduler work conservation and dynamic dominance over static, for
    /// arbitrary workloads.
    #[test]
    fn scheduler_invariants(
        workloads in prop::collection::vec(0u32..64, 1..32),
        arrays in 1usize..12,
    ) {
        use odq::accel::sched::{schedule_dynamic, schedule_static, CYCLES_PER_SENSITIVE_OUTPUT};
        let st = schedule_static(&workloads, arrays);
        let dy = schedule_dynamic(&workloads, arrays);
        let total: u64 = workloads.iter().map(|&w| w as u64).sum();
        prop_assert_eq!(st.busy_cycles, total * CYCLES_PER_SENSITIVE_OUTPUT);
        prop_assert_eq!(dy.busy_cycles, st.busy_cycles);
        prop_assert!(dy.makespan <= st.makespan);
        // Lower bound: ceil(total / arrays) slots.
        let lower = total.div_ceil(arrays as u64) * CYCLES_PER_SENSITIVE_OUTPUT;
        prop_assert!(dy.makespan >= lower || total == 0);
    }

    /// Table 1 no-bubble bound: below it the simulated layer is
    /// predictor-bound; the bound itself is E/(3P).
    #[test]
    fn allocation_bound_property(p_extra in 0usize..5) {
        use odq::accel::alloc::{max_sensitive_fraction, Allocation};
        let p = 9 + 3 * p_extra.min(4);
        let a = Allocation::new(p, 27 - p);
        let s = max_sensitive_fraction(a);
        prop_assert!((s - (27 - p) as f64 / (3.0 * p as f64)).abs() < 1e-12);
    }
}
