//! Cross-engine conformance suite (CI entry point).
//!
//! Everything here compares *engines* against the scalar golden oracle in
//! `odq-conformance` — naive nested-loop transcriptions of the paper's
//! equations with no im2col, no rayon, no fusion. Integer paths must be
//! bit-exact; float paths get a 1-ulp allowance for accumulation-order
//! headroom (in practice they are bit-exact too, because the oracle
//! accumulates in im2col row order).
//!
//! Three layers of defense:
//! 1. committed golden fixtures (`tests/fixtures/*.odqt`) — catch
//!    oracle-and-engine drifting together;
//! 2. a randomized differential sweep over layer geometry — catch any
//!    engine path drifting from the oracle;
//! 3. a serve round-trip — catch divergence introduced by batching,
//!    plan caches, or worker scatter in `odq-serve`.

use std::time::Duration;

use proptest::prelude::*;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use odq::nn::models::{Model, ModelCfg};
use odq::nn::Arch;
use odq::serve::{EngineKind, InferRequest, ServeConfig, Server};
use odq::tensor::Tensor;
use odq_conformance::fixtures::{fixtures_dir, verify_against};
use odq_conformance::{minimize, run_layer_diff, LayerSpecStrategy, OracleExecutor, OracleKind};

/// The committed goldens must match the current oracle bit for bit, and
/// every engine must still meet its bound against them. On intentional
/// output changes, regenerate with `conformance_check --regen` and explain
/// the change in the commit message.
#[test]
fn committed_fixtures_are_current() {
    if let Err(drift) = verify_against(&fixtures_dir()) {
        panic!("fixture drift ({} findings):\n  {}", drift.len(), drift.join("\n  "));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every engine path — per-call kernels, planned drivers, the sparse
    /// executor, engine forwards — agrees with the scalar oracle on random
    /// geometry (stride, padding, 1×1, non-square, 2–16 channels).
    #[test]
    fn engines_conform_to_scalar_oracle(spec in LayerSpecStrategy::default()) {
        let report = run_layer_diff(&spec);
        if !report.ok() {
            let min = minimize(&spec);
            let min_report = run_layer_diff(&min);
            panic!(
                "engine diverged from scalar oracle.\nfull case:\n{}\nminimized reproducer:\n{}",
                report.render(),
                min_report.render()
            );
        }
    }
}

fn build_models() -> (Model, Model) {
    let mut r_cfg = ModelCfg::small(Arch::ResNet20, 10);
    r_cfg.input_hw = 8;
    let resnet = Model::build(r_cfg);
    let mut l_cfg = ModelCfg::small(Arch::LeNet5, 10);
    l_cfg.input_hw = 8;
    l_cfg.in_channels = 1;
    let lenet = Model::build(l_cfg);
    (resnet, lenet)
}

fn random_image(rng: &mut ChaCha8Rng, channels: usize, hw: usize) -> Tensor {
    let v: Vec<f32> = (0..channels * hw * hw).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    Tensor::from_vec(vec![1, channels, hw, hw], v)
}

/// Full serve round-trip vs the oracle: submit through the batched,
/// multi-worker server and require the response to be bit-identical to a
/// whole-model forward where *every* convolution is computed by the scalar
/// oracle. Covers each `EngineKind` the server exposes.
#[test]
fn serve_round_trip_matches_oracle_forward() {
    let engines: [(EngineKind, OracleKind); 4] = [
        (EngineKind::Float, OracleKind::Float),
        (EngineKind::Static { bits: 8 }, OracleKind::Static { bits: 8 }),
        (EngineKind::Odq { threshold: 0.3 }, OracleKind::Odq { threshold: 0.3 }),
        (EngineKind::Drq { input_threshold: 0.25 }, OracleKind::Drq { input_threshold: 0.25 }),
    ];
    for (engine, oracle_kind) in engines {
        let (resnet, lenet) = build_models();
        let server = Server::builder(ServeConfig {
            queue_depth: 64,
            max_batch: 4,
            max_wait: Duration::from_micros(300),
            workers: 2,
            default_deadline: None,
            simulate_accel: false,
            ..ServeConfig::default()
        })
        .engine(engine)
        .model("resnet", resnet)
        .model("lenet", lenet)
        .start();

        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
        let mut submitted = Vec::new();
        for _ in 0..8 {
            let (name, channels) = if rng.gen_bool(0.5) { ("resnet", 3) } else { ("lenet", 1) };
            let img = random_image(&mut rng, channels, 8);
            let h = server
                .submit(InferRequest::new(name, img.clone()))
                .expect("queue_depth covers the burst");
            submitted.push((name, img, h));
        }

        let (resnet, lenet) = build_models();
        for (name, img, h) in submitted {
            let resp = h.wait().expect("no deadlines set");
            let model = if name == "resnet" { &resnet } else { &lenet };
            let golden = model.forward_eval(&img, &mut OracleExecutor { kind: oracle_kind });
            assert_eq!(resp.output.dims(), golden.dims());
            for (i, (g, w)) in resp.output.as_slice().iter().zip(golden.as_slice()).enumerate() {
                assert!(
                    g.to_bits() == w.to_bits(),
                    "engine {engine:?}, model {name}: elem {i} differs — served {g} vs oracle {w}"
                );
            }
        }
        server.shutdown();
    }
}
