//! Cross-engine conformance suite (CI entry point).
//!
//! Everything here compares *engines* against the scalar golden oracle in
//! `odq-conformance` — naive nested-loop transcriptions of the paper's
//! equations with no im2col, no rayon, no fusion. Integer paths must be
//! bit-exact; float paths get a 1-ulp allowance for accumulation-order
//! headroom (in practice they are bit-exact too, because the oracle
//! accumulates in im2col row order).
//!
//! Three layers of defense:
//! 1. committed golden fixtures (`tests/fixtures/*.odqt`) — catch
//!    oracle-and-engine drifting together;
//! 2. a randomized differential sweep over layer geometry — catch any
//!    engine path drifting from the oracle;
//! 3. a serve round-trip — catch divergence introduced by batching,
//!    plan caches, or worker scatter in `odq-serve`.

use std::time::Duration;

use proptest::prelude::*;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use odq::nn::models::{Model, ModelCfg};
use odq::nn::Arch;
use odq::serve::{EngineKind, InferRequest, ServeConfig, Server};
use odq::tensor::Tensor;
use odq_conformance::fixtures::{fixtures_dir, verify_against};
use odq_conformance::{minimize, run_layer_diff, LayerSpecStrategy, OracleExecutor, OracleKind};

/// The committed goldens must match the current oracle bit for bit, and
/// every engine must still meet its bound against them. On intentional
/// output changes, regenerate with `conformance_check --regen` and explain
/// the change in the commit message.
#[test]
fn committed_fixtures_are_current() {
    if let Err(drift) = verify_against(&fixtures_dir()) {
        panic!("fixture drift ({} findings):\n  {}", drift.len(), drift.join("\n  "));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every engine path — per-call kernels, planned drivers, the sparse
    /// executor, engine forwards — agrees with the scalar oracle on random
    /// geometry (stride, padding, 1×1, non-square, 2–16 channels).
    #[test]
    fn engines_conform_to_scalar_oracle(spec in LayerSpecStrategy::default()) {
        let report = run_layer_diff(&spec);
        if !report.ok() {
            let min = minimize(&spec);
            let min_report = run_layer_diff(&min);
            panic!(
                "engine diverged from scalar oracle.\nfull case:\n{}\nminimized reproducer:\n{}",
                report.render(),
                min_report.render()
            );
        }
    }
}

fn build_models() -> (Model, Model) {
    let mut r_cfg = ModelCfg::small(Arch::ResNet20, 10);
    r_cfg.input_hw = 8;
    let resnet = Model::build(r_cfg);
    let mut l_cfg = ModelCfg::small(Arch::LeNet5, 10);
    l_cfg.input_hw = 8;
    l_cfg.in_channels = 1;
    let lenet = Model::build(l_cfg);
    (resnet, lenet)
}

fn random_image(rng: &mut ChaCha8Rng, channels: usize, hw: usize) -> Tensor {
    let v: Vec<f32> = (0..channels * hw * hw).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    Tensor::from_vec(vec![1, channels, hw, hw], v)
}

/// Full serve round-trip vs the oracle: submit through the batched,
/// multi-worker server and require the response to be bit-identical to a
/// whole-model forward where *every* convolution is computed by the scalar
/// oracle. Covers each `EngineKind` the server exposes.
#[test]
fn serve_round_trip_matches_oracle_forward() {
    let engines: [(EngineKind, OracleKind); 4] = [
        (EngineKind::Float, OracleKind::Float),
        (EngineKind::Static { bits: 8 }, OracleKind::Static { bits: 8 }),
        (EngineKind::Odq { threshold: 0.3 }, OracleKind::Odq { threshold: 0.3 }),
        (EngineKind::Drq { input_threshold: 0.25 }, OracleKind::Drq { input_threshold: 0.25 }),
    ];
    for (engine, oracle_kind) in engines {
        let (resnet, lenet) = build_models();
        let server = Server::builder(ServeConfig {
            queue_depth: 64,
            max_batch: 4,
            max_wait: Duration::from_micros(300),
            workers: 2,
            default_deadline: None,
            simulate_accel: false,
            ..ServeConfig::default()
        })
        .engine(engine.clone())
        .model("resnet", resnet)
        .model("lenet", lenet)
        .start();

        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
        let mut submitted = Vec::new();
        for _ in 0..8 {
            let (name, channels) = if rng.gen_bool(0.5) { ("resnet", 3) } else { ("lenet", 1) };
            let img = random_image(&mut rng, channels, 8);
            let h = server
                .submit(InferRequest::new(name, img.clone()))
                .expect("queue_depth covers the burst");
            submitted.push((name, img, h));
        }

        let (resnet, lenet) = build_models();
        for (name, img, h) in submitted {
            let resp = h.wait().expect("no deadlines set");
            let model = if name == "resnet" { &resnet } else { &lenet };
            let golden = model.forward_eval(&img, &mut OracleExecutor { kind: oracle_kind });
            assert_eq!(resp.output.dims(), golden.dims());
            for (i, (g, w)) in resp.output.as_slice().iter().zip(golden.as_slice()).enumerate() {
                assert!(
                    g.to_bits() == w.to_bits(),
                    "engine {engine:?}, model {name}: elem {i} differs — served {g} vs oracle {w}"
                );
            }
        }
        server.shutdown();
    }
}

// --- per-layer precision-policy differentials ---------------------------

use std::sync::Arc;

use odq::nn::executor::{ConvCtx, ConvExecutor};
use odq::nn::policy::{PrecisionPolicy, Route};
use odq::quant::plan::PlanCache;
use odq_conformance::{ulp_diff, PolicyOracleExecutor, RoutedEngine};

/// A mixed policy exercising every route family on ResNet20's layer names.
fn mixed_policy() -> Arc<PrecisionPolicy> {
    Arc::new(
        PrecisionPolicy::uniform(Route::Static { w_bits: 8, a_bits: 8, a_clip: 1.0 })
            .with("C1", Route::Odq { threshold: 0.3, sparse: false })
            .with("C2", Route::Float)
            .with(
                "C3",
                Route::Drq {
                    hi_bits: 8,
                    lo_bits: 4,
                    a_clip: 1.0,
                    region: 2,
                    input_threshold: 0.25,
                },
            )
            .with("C4", Route::Static { w_bits: 4, a_bits: 4, a_clip: 1.0 })
            .with("C5", Route::Odq { threshold: 0.1, sparse: true }),
    )
}

/// Wraps the mixed routed engine and, at every conv layer, recomputes the
/// layer with a *freshly built standalone single-route engine* on the same
/// input — asserting the mixed forward is exactly the composition of
/// single-engine layer outputs (integer routes bit-exact, float ≤ 1 ulp).
struct StitchCheck {
    mixed: RoutedEngine,
    policy: Arc<PrecisionPolicy>,
    convs_checked: usize,
}

impl ConvExecutor for StitchCheck {
    fn begin_pass(&mut self) {
        self.mixed.begin_pass();
    }

    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let y = self.mixed.conv(ctx, x);
        let route = self.policy.route_for(ctx.name);
        let mut solo = RoutedEngine::build_route(route, Arc::new(PlanCache::new()));
        let y_solo = solo.conv(ctx, x);
        let allowance = match route {
            Route::Float => 1,
            _ => 0,
        };
        for (i, (a, b)) in y.as_slice().iter().zip(y_solo.as_slice()).enumerate() {
            let u = ulp_diff(*a, *b);
            assert!(
                u <= allowance,
                "layer {} ({route:?}): elem {i} diverges by {u} ulp — mixed {a} vs solo {b}",
                ctx.name
            );
        }
        self.convs_checked += 1;
        y
    }
}

/// The tentpole differential: a whole-model forward under a mixed
/// `PrecisionPolicy` is bit-identical to stitching each layer's
/// single-engine output, and bit-identical to the routed scalar oracle.
#[test]
fn mixed_policy_forward_equals_stitched_single_engine_layers() {
    let policy = mixed_policy();
    let (resnet, lenet) = build_models();
    let mut rng = ChaCha8Rng::seed_from_u64(0xD1FF);
    for (model, channels) in [(&resnet, 3), (&lenet, 1)] {
        let x = random_image(&mut rng, channels, 8);
        let mut stitch = StitchCheck {
            mixed: RoutedEngine::new(Arc::clone(&policy)),
            policy: Arc::clone(&policy),
            convs_checked: 0,
        };
        let y_mixed = model.forward_eval(&x, &mut stitch);
        assert!(stitch.convs_checked >= 2, "model must exercise several routed convs");

        // The same forward pinned to the layer-by-layer scalar oracle.
        let y_oracle =
            model.forward_eval(&x, &mut PolicyOracleExecutor { policy: Arc::clone(&policy) });
        for (i, (a, b)) in y_mixed.as_slice().iter().zip(y_oracle.as_slice()).enumerate() {
            assert!(ulp_diff(*a, *b) <= 1, "elem {i}: mixed forward {a} vs routed oracle {b}");
        }
    }
}

/// An ODQM manifest with an embedded policy round-trips bit-exactly:
/// byte-identical re-serialization, equal policy, bit-identical forward.
#[test]
fn manifest_with_policy_roundtrips_bit_exactly() {
    use odq::nn::serialize::{load_manifest_from, save_manifest_with_policy_to};

    let policy = mixed_policy();
    let (mut resnet, _) = build_models();
    let meta = vec![("trained_by".to_string(), "conformance".to_string())];

    let mut bytes = Vec::new();
    save_manifest_with_policy_to(&mut resnet, &meta, Some(&policy), &mut bytes).unwrap();
    let loaded = load_manifest_from(&mut std::io::Cursor::new(&bytes)).unwrap();
    assert_eq!(loaded.policy.as_ref(), Some(policy.as_ref()));
    assert_eq!(loaded.meta, meta);

    let mut again = Vec::new();
    let mut reloaded = loaded.model;
    save_manifest_with_policy_to(&mut reloaded, &loaded.meta, loaded.policy.as_ref(), &mut again)
        .unwrap();
    assert_eq!(bytes, again, "save → load → save must be byte-identical");

    let mut rng = ChaCha8Rng::seed_from_u64(0x0D0_12D);
    let x = random_image(&mut rng, 3, 8);
    let ya = resnet.forward_eval(&x, &mut RoutedEngine::new(Arc::clone(&policy)));
    let yb = reloaded.forward_eval(&x, &mut RoutedEngine::new(policy));
    assert_eq!(
        ya.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        yb.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
}
