//! Bounded chaos schedules: determinism, and the whole-stack invariant
//! suite on fixed CI seeds (in-process and over the wire).
//!
//! Reproducing a failure seen here or in the `chaos_soak` CI job:
//!
//! ```text
//! cargo run --release -p odq-chaos --bin chaos_soak -- --replay 0x<seed> [--net]
//! ```

use odq_chaos::{quiet_fault_panics, run_chaos, ChaosConfig};

/// The fixed seeds CI gates on. Nothing special about the values; they
/// are pinned so a regression bisects against a stable schedule.
const CI_SEED: u64 = 0x0d9_dc4a_2026;
const CI_NET_SEED: u64 = 0xe880_a903_bcff_6547;

fn assert_all_pass(cfg: &ChaosConfig) {
    let report = run_chaos(cfg);
    assert!(
        report.responses_checked > 0,
        "seed 0x{:016x}: a schedule that completes zero requests tests nothing",
        cfg.seed
    );
    if !report.all_pass() {
        for line in &report.event_log {
            eprintln!("  {line}");
        }
        for v in report.failures() {
            eprintln!("FAIL {}: {}", v.name, v.detail);
        }
        panic!(
            "invariants failed for seed 0x{:016x} ({}); replay: \
             cargo run --release -p odq-chaos --bin chaos_soak -- --replay 0x{:016x}{} --ops {}",
            cfg.seed,
            report.engine_label,
            cfg.seed,
            if cfg.via_net { " --net" } else { "" },
            cfg.ops,
        );
    }
}

/// The acceptance criterion for replayability: the same seed, run twice
/// against a live stack (wire faults, panics, churn and all), must emit
/// bit-identical event logs — every schedule decision, every registry
/// outcome, every invariant verdict.
#[test]
fn same_seed_replays_bit_identical_event_log() {
    quiet_fault_panics();
    let mut cfg = ChaosConfig::new(CI_NET_SEED).via_net();
    cfg.ops = 40;
    let first = run_chaos(&cfg);
    let second = run_chaos(&cfg);
    assert_eq!(
        first.event_log, second.event_log,
        "two runs of seed 0x{:016x} diverged — the event log leaked timing-dependent state",
        cfg.seed
    );
    assert_eq!(first.engine_label, second.engine_label);
}

#[test]
fn ci_seed_passes_all_invariants_in_process() {
    quiet_fault_panics();
    let mut cfg = ChaosConfig::new(CI_SEED);
    cfg.ops = 80;
    assert_all_pass(&cfg);
}

#[test]
fn ci_seed_passes_all_invariants_via_net() {
    quiet_fault_panics();
    // This seed's plan includes corrupted-header and reconnect faults.
    let mut cfg = ChaosConfig::new(CI_NET_SEED).via_net();
    cfg.ops = 60;
    assert_all_pass(&cfg);
}

#[test]
fn seed_sweep_passes_in_process() {
    quiet_fault_panics();
    for seed in [1u64, 2, 3] {
        let mut cfg = ChaosConfig::new(seed);
        cfg.ops = 40;
        assert_all_pass(&cfg);
    }
}
