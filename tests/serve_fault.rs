//! Supervision and terminal-outcome properties of odq-serve under faults.
//!
//! 1. **Fault injection** — with `fault_panic_on_batch` armed, the
//!    sabotaged batch's requests are all answered
//!    [`ServeError::Internal`], the worker shift restarts with fresh
//!    engines, later requests are served normally, and the ledger's
//!    `worker_panics` / `worker_restarts` / `internal_errors` counters
//!    reflect exactly what happened.
//! 2. **Exactly-one terminal outcome** — under random deadlines
//!    (including already-expired ones), queue-full pressure, injected
//!    panics and immediate shutdown, every submitted request resolves to
//!    exactly one terminal outcome: an admission error at `submit`, or a
//!    single response (`Ok`, `DeadlineExceeded`, or `Internal`) on its
//!    handle — never zero, never two.

use std::panic;
use std::sync::Once;
use std::time::Duration;

use proptest::prelude::*;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use odq::nn::models::{Model, ModelCfg};
use odq::nn::Arch;
use odq::serve::{EngineKind, InferRequest, ServeConfig, ServeError, Server};
use odq::tensor::Tensor;

/// Injected faults unwind with an intentional panic; the default hook
/// would print one "thread panicked" backtrace header per injection.
/// Silence exactly those panics and defer everything else to the default
/// hook so genuine test failures still report normally.
fn quiet_fault_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("fault injection") {
                default(info);
            }
        }));
    });
}

fn tiny_model() -> Model {
    let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
    cfg.input_hw = 8;
    cfg.in_channels = 1;
    Model::build(cfg)
}

fn image(seed: usize) -> Tensor {
    let v: Vec<f32> = (0..64).map(|i| ((i * 7 + seed * 13) % 97) as f32 / 97.0).collect();
    Tensor::from_vec(vec![1, 1, 8, 8], v)
}

fn server(cfg: ServeConfig) -> Server {
    Server::builder(cfg).engine(EngineKind::Float).model("lenet", tiny_model()).start()
}

/// Acceptance: arm the fault hook on the first batch, submit a burst, and
/// check that (a) the batch's members get [`ServeError::Internal`], (b) the
/// pool recovers and serves later requests, (c) the supervision counters
/// agree with what the clients observed.
#[test]
fn injected_panic_answers_batch_and_pool_recovers() {
    quiet_fault_panics();
    let cfg = ServeConfig {
        queue_depth: 64,
        max_batch: 4,
        max_wait: Duration::from_millis(100),
        workers: 2,
        simulate_accel: false,
        fault_panic_on_batch: Some(1),
        ..ServeConfig::default()
    };
    let s = server(cfg);

    let handles: Vec<_> =
        (0..4).map(|i| s.submit(InferRequest::new("lenet", image(i))).unwrap()).collect();
    let mut internal = 0u64;
    for h in handles {
        // The batcher may split the burst across batches: members of the
        // sabotaged batch see Internal, the rest are served normally.
        match h.wait() {
            Err(ServeError::Internal) => internal += 1,
            Ok(_) => {}
            Err(e) => panic!("unexpected terminal outcome {e}"),
        }
    }
    assert!(internal >= 1, "the injected panic must reach at least one request");

    // The shift restarted with fresh engines: the pool still serves.
    let h = s.submit(InferRequest::new("lenet", image(99))).unwrap();
    h.wait().expect("pool recovers after the injected panic");

    let sum = s.shutdown();
    assert_eq!(sum.worker_panics, 1);
    assert_eq!(sum.worker_restarts, 1);
    assert_eq!(sum.internal_errors, internal);
    assert_eq!(sum.admitted, sum.completed + sum.internal_errors);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every submitted request gets exactly one terminal outcome, and the
    /// ledger's counters match the outcomes the clients actually saw.
    #[test]
    fn every_request_gets_exactly_one_terminal_outcome(
        seed in 0u64..1_000_000,
        n_requests in 1usize..24,
        queue_depth in 1usize..6,
        max_batch in 1usize..5,
        workers in 1usize..3,
        // 0 disarms the fault hook; 1..=3 arms it on that batch.
        fault_batch in 0u64..4,
        expired_pct in 0u32..=100,
    ) {
        quiet_fault_panics();
        let cfg = ServeConfig {
            queue_depth,
            max_batch,
            max_wait: Duration::from_micros(300),
            workers,
            default_deadline: None,
            simulate_accel: false,
            fault_panic_on_batch: (fault_batch > 0).then_some(fault_batch),
            fault_hook: None,
            trace: None,
            layer_profiling: true,
        };
        let s = server(cfg);

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut handles = Vec::new();
        let mut queue_full = 0u64;
        for i in 0..n_requests {
            let mut req = InferRequest::new("lenet", image(i));
            let roll = rng.gen_range(0u32..100);
            if roll < expired_pct {
                // Expired on arrival: must be rejected, never executed.
                req = req.with_deadline(Duration::ZERO);
            } else if roll < expired_pct.saturating_add(20) {
                // Tight deadline: races the batcher, either outcome is
                // legal, but there must be exactly one.
                req = req.with_deadline(Duration::from_micros(rng.gen_range(1..2_000)));
            }
            match s.submit(req) {
                Ok(h) => handles.push(h),
                Err(ServeError::QueueFull) => queue_full += 1,
                Err(e) => prop_assert!(false, "unexpected admission error {}", e),
            }
        }

        // Immediate shutdown: drains the queue, flushes every group, joins
        // all workers. Afterwards every handle must hold its one outcome.
        let sum = s.shutdown();
        prop_assert_eq!(sum.admitted, handles.len() as u64);
        prop_assert_eq!(sum.rejected_queue_full, queue_full);

        let mut completed = 0u64;
        let mut deadline = 0u64;
        let mut internal = 0u64;
        for h in &handles {
            match h.try_wait() {
                Some(Ok(_)) => completed += 1,
                Some(Err(ServeError::DeadlineExceeded)) => deadline += 1,
                Some(Err(ServeError::Internal)) => internal += 1,
                Some(Err(e)) => prop_assert!(false, "unexpected terminal error {}", e),
                None => prop_assert!(false, "request left unanswered after shutdown"),
            }
            // The single response slot is spent: polling again never
            // yields a second outcome.
            prop_assert!(matches!(h.try_wait(), None | Some(Err(ServeError::WorkerLost))));
        }
        prop_assert_eq!(completed, sum.completed);
        prop_assert_eq!(deadline, sum.rejected_deadline);
        prop_assert_eq!(internal, sum.internal_errors);
        prop_assert_eq!(sum.worker_restarts, sum.worker_panics);
    }
}
