//! odq-net acceptance properties, over real localhost sockets.
//!
//! 1. **Wire bit-exactness** — for every engine kind, inference through
//!    the TCP front-end returns outputs element-wise *bit-identical* to
//!    submitting the same input in-process on the same server. The wire
//!    carries raw f32 little-endian words, so not a bit may move.
//! 2. **Robustness** — malformed, truncated, and oversized frames never
//!    panic the server and never leak a connection slot; the failure is a
//!    typed error frame, and a fresh well-formed connection afterwards is
//!    served normally.
//! 3. **Graceful drain** — shutting the front-end down with requests in
//!    flight answers every one of them exactly once, and the final
//!    ledger's `"net"` section accounts the traffic.
//! 4. **Connection cap** — the configured cap is enforced at accept time
//!    with a typed `TooManyConnections` frame, and closing a connection
//!    releases its slot.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use odq::net::wire::{
    self, encode_request, ErrorFrame, Frame, RequestFrame, WireErrorCode, WireLimits, NO_REQUEST_ID,
};
use odq::net::{NetClient, NetConfig, NetServer};
use odq::nn::models::{Model, ModelCfg};
use odq::nn::policy::{PrecisionPolicy, Route};
use odq::nn::Arch;
use odq::serve::{EngineKind, InferRequest, ServeConfig, ServeError, Server};
use odq::tensor::Tensor;

fn lenet(seed: u64) -> Model {
    let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
    cfg.input_hw = 8;
    cfg.in_channels = 1;
    cfg.seed = seed;
    Model::build(cfg)
}

fn image(seed: usize) -> Tensor {
    let v: Vec<f32> = (0..64).map(|i| ((i * 31 + seed * 17) % 101) as f32 / 101.0).collect();
    Tensor::from_vec(vec![1, 1, 8, 8], v)
}

fn start_net(kind: EngineKind, cfg: ServeConfig, net: NetConfig) -> NetServer {
    let server = Server::builder(cfg).engine(kind).model("lenet", lenet(0x10e7)).start();
    NetServer::bind(server, "127.0.0.1:0", net).expect("bind ephemeral port")
}

fn fast_cfg() -> ServeConfig {
    ServeConfig { max_wait: Duration::from_micros(200), ..ServeConfig::default() }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn wire_round_trip_is_bit_exact_for_every_engine() {
    let engines: Vec<(&str, EngineKind)> = vec![
        ("float", EngineKind::Float),
        ("int8", EngineKind::Static { bits: 8 }),
        ("drq", EngineKind::Drq { input_threshold: 0.1 }),
        ("odq", EngineKind::Odq { threshold: 0.3 }),
        (
            "policy",
            EngineKind::Policy(Arc::new(
                PrecisionPolicy::uniform(Route::Odq { threshold: 0.3, sparse: false })
                    .with("C1", Route::Float),
            )),
        ),
    ];
    for (label, kind) in engines {
        let ns = start_net(kind, fast_cfg(), NetConfig::default());
        let client = NetClient::connect(ns.local_addr()).expect("connect");
        for seed in 0..4 {
            // Same server, same version, same input: once in-process,
            // once over the wire.
            let local = ns
                .server()
                .submit(InferRequest::new("lenet", image(seed)))
                .unwrap()
                .wait()
                .unwrap();
            let remote = client.infer(InferRequest::new("lenet", image(seed))).unwrap();
            assert_eq!(
                bits(&local.output),
                bits(&remote.output),
                "engine {label}, input {seed}: the wire must not move a bit"
            );
            assert!(remote.timing.batch_size >= 1);
        }
        client.close();
        let sum = ns.shutdown();
        assert_eq!(sum.net.connections_opened, 1, "engine {label}");
        assert_eq!(sum.net.connections_closed, 1, "engine {label}");
        assert_eq!(sum.net.frames_in, 4, "engine {label}");
        assert_eq!(sum.net.frames_out, 4, "engine {label}");
        assert!(sum.net.bytes_in > 0 && sum.net.bytes_out > 0, "engine {label}");
    }
}

#[test]
fn typed_errors_cross_the_wire() {
    let ns = start_net(EngineKind::Float, fast_cfg(), NetConfig::default());
    let client = NetClient::connect(ns.local_addr()).expect("connect");
    // Unknown model and bad shape come back as their own variants, not a
    // closed connection.
    let e = client.infer(InferRequest::new("ghost", image(0))).unwrap_err();
    assert!(matches!(e, ServeError::UnknownModel(_)), "got {e:?}");
    let bad = Tensor::from_vec(vec![1, 1, 4, 4], vec![0.0; 16]);
    let e = client.infer(InferRequest::new("lenet", bad)).unwrap_err();
    assert!(matches!(e, ServeError::BadInput(_)), "got {e:?}");
    // An immediate deadline expires in the pipeline, over the wire too.
    let e = client
        .infer(InferRequest::new("lenet", image(0)).with_deadline(Duration::ZERO))
        .unwrap_err();
    assert_eq!(e, ServeError::DeadlineExceeded);
    // The connection survived all three failures.
    assert!(client.infer(InferRequest::new("lenet", image(1))).is_ok());
    client.close();
    let sum = ns.shutdown();
    assert_eq!(sum.rejected_invalid, 2);
    assert_eq!(sum.net.protocol_errors, 0, "typed rejections are not protocol errors");
}

/// FLAG_TRACE end to end: a client-supplied trace id crosses the wire
/// and comes back bit-exact in the response; a request without the flag
/// (the v1 frame layout) still decodes, and its response body carries no
/// trailing trace echo — v1 clients keep v1 responses.
#[test]
fn trace_flag_round_trips_bit_exactly_and_v1_frames_still_decode() {
    let ns = start_net(EngineKind::Float, fast_cfg(), NetConfig::default());
    let client = NetClient::connect(ns.local_addr()).expect("connect");

    // Every bit of the u64 matters, including the top one.
    for t in [0u64, 1, 0x0123_4567_89AB_CDEF, u64::MAX] {
        let r = client.infer(InferRequest::new("lenet", image(0)).with_trace(t)).unwrap();
        assert_eq!(r.trace, Some(t), "trace id must round-trip bit-exactly");
    }
    // No flag → no echo, even on the same connection.
    let r = client.infer(InferRequest::new("lenet", image(1))).unwrap();
    assert_eq!(r.trace, None, "untraced wire responses must keep the v1 body");
    client.close();

    // Raw v1 frame (trace: None encodes without FLAG_TRACE): the server
    // decodes it and answers with a response frame whose trailing trace
    // echo is absent.
    let mut raw = TcpStream::connect(ns.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let bytes = encode_request(&RequestFrame {
        id: 7,
        model: "lenet".into(),
        deadline: None,
        trace: None,
        input: image(2),
    })
    .unwrap();
    raw.write_all(&bytes).unwrap();
    raw.flush().unwrap();
    let (frame, _) = wire::read_frame(&mut raw, &WireLimits::default()).expect("response frame");
    match frame {
        Frame::Response(rf) => {
            assert_eq!(rf.id, 7);
            assert_eq!(rf.trace, None, "v1 request must get a v1 response body");
        }
        other => panic!("expected a response frame, got {other:?}"),
    }
    drop(raw);
    await_all_closed(ns.server());
    ns.shutdown();
}

/// Wait (bounded) for the server to account all connections closed.
/// Teardown is asynchronous: the client's socket close and the server's
/// reader/writer joins race the assertion.
fn await_all_closed(server: &Server) {
    for _ in 0..500 {
        let net = server.stats().net;
        if net.active_connections == 0 && net.connections_opened == net.connections_closed {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let net = server.stats().net;
    panic!("connection slots leaked: {net:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hostile bytes — random garbage, truncated real frames, oversized
    /// declarations — never panic the server and never leak a connection
    /// slot, and the server keeps serving well-formed traffic afterwards.
    #[test]
    fn hostile_frames_never_panic_or_leak_slots(
        mode in 0u8..3,
        garbage in prop::collection::vec(0u8..=255, 1..256),
        cut in 0usize..64,
        trace_seed in 0u64..u64::MAX,
    ) {
        // The vendored proptest has no Option strategy; derive one.
        let trace = (trace_seed % 2 == 0)
            .then(|| trace_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let ns = start_net(EngineKind::Float, fast_cfg(), NetConfig::default());
        let addr = ns.local_addr();

        let mut raw = TcpStream::connect(addr).unwrap();
        // A server-side bug must fail the test, not hang it.
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let payload: Vec<u8> = match mode {
            // Raw garbage from the first byte — padded to at least one
            // full header and forced off-magic, so the server always has
            // a complete (bad) header to reject rather than waiting for
            // more bytes.
            0 => {
                let mut g = garbage;
                while g.len() < wire::HEADER_LEN {
                    g.push(0);
                }
                g[0] = b'X';
                g
            }
            // A well-formed request truncated mid-frame, then EOF — with
            // and without the FLAG_TRACE extension, so the cut can land
            // inside the trailing trace id too.
            1 => {
                let full = encode_request(&RequestFrame {
                    id: 1,
                    model: "lenet".into(),
                    deadline: None,
                    trace,
                    input: image(0),
                }).unwrap();
                let keep = cut.min(full.len().saturating_sub(1)).max(1);
                full[..keep].to_vec()
            }
            // A valid header declaring a body far over the limit.
            _ => {
                let mut b = Vec::new();
                b.extend_from_slice(&wire::MAGIC);
                b.push(1);
                b.extend_from_slice(&u32::MAX.to_le_bytes());
                b.extend_from_slice(&garbage);
                b
            }
        };
        raw.write_all(&payload).ok();
        let _ = raw.flush();
        // Half-close: a server still waiting for the rest of a truncated
        // frame sees EOF instead of blocking forever.
        let _ = raw.shutdown(std::net::Shutdown::Write);
        // The server either answers with a typed error frame or just
        // closes (truncation looks like EOF); either way the connection
        // ends without a panic. Drain until EOF.
        if mode != 1 {
            // Parse failures produce one unattributable typed error frame.
            let (frame, _) = wire::read_frame(&mut raw, &WireLimits::default())
                .expect("a typed error frame must precede the close");
            match frame {
                Frame::Error(ErrorFrame { id, code, .. }) => {
                    prop_assert_eq!(id, NO_REQUEST_ID);
                    let expected = if mode == 2 {
                        WireErrorCode::TooLarge
                    } else {
                        // Garbage can first fail as magic, kind, length,
                        // or body parse; all are protocol-level.
                        code
                    };
                    prop_assert_eq!(code, expected);
                    prop_assert!(matches!(
                        code,
                        WireErrorCode::Malformed | WireErrorCode::TooLarge
                    ));
                }
                other => prop_assert!(false, "expected an error frame, got {:?}", other),
            }
        }
        let mut sink = Vec::new();
        let _ = raw.read_to_end(&mut sink);
        drop(raw);

        // The slot is released...
        await_all_closed(ns.server());
        // ...and a fresh well-formed request is served normally.
        let client = NetClient::connect(addr).unwrap();
        let r = client.infer(InferRequest::new("lenet", image(1)));
        prop_assert!(r.is_ok(), "server must keep serving after hostile input: {:?}", r);
        client.close();
        let sum = ns.shutdown();
        prop_assert_eq!(sum.net.connections_opened, sum.net.connections_closed);
        if mode != 1 {
            prop_assert!(sum.net.protocol_errors >= 1);
        }
    }
}

#[test]
fn graceful_drain_answers_every_inflight_request() {
    // A wide batching window keeps requests parked in the batcher, so
    // the drain has real in-flight work to answer.
    let cfg = ServeConfig {
        max_wait: Duration::from_millis(150),
        max_batch: 64,
        ..ServeConfig::default()
    };
    let ns = start_net(EngineKind::Odq { threshold: 0.3 }, cfg, NetConfig::default());
    let client = NetClient::connect(ns.local_addr()).expect("connect");

    let handles: Vec<_> =
        (0..16).map(|i| client.submit(InferRequest::new("lenet", image(i))).unwrap()).collect();
    // Wait until the server has admitted all 16 (a submitted frame still
    // in the socket buffer would be cut off by the read-side shutdown).
    for _ in 0..500 {
        if ns.server().stats().admitted == 16 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(ns.server().stats().admitted, 16, "all requests admitted before drain");

    let json_before = ns.server().stats_json();
    assert!(json_before.contains("\"net\""), "{json_before}");
    assert!(json_before.contains("\"bytes_in\""), "{json_before}");

    let sum = ns.shutdown();
    // Every in-flight request was answered — exactly once, successfully —
    // before the sockets closed.
    let mut ok = 0;
    for h in handles {
        let r = h.wait().expect("drain must answer, not abandon");
        assert_eq!(r.output.dims(), &[1, 4]);
        ok += 1;
    }
    assert_eq!(ok, 16);
    assert_eq!(sum.completed, 16);
    assert_eq!(sum.net.frames_in, 16);
    assert_eq!(sum.net.frames_out, 16);
    assert_eq!(sum.net.connections_opened, sum.net.connections_closed);
}

#[test]
fn connection_cap_refuses_with_a_typed_frame_and_slots_recycle() {
    let ns = start_net(
        EngineKind::Float,
        fast_cfg(),
        NetConfig { max_connections: 1, ..NetConfig::default() },
    );
    let addr = ns.local_addr();

    let first = NetClient::connect(addr).expect("first connection");
    // Prove the first connection is registered (accept() ran) before
    // racing a second one against the cap.
    first.infer(InferRequest::new("lenet", image(0))).unwrap();

    let mut second = TcpStream::connect(addr).expect("tcp connect succeeds");
    let (frame, _) = wire::read_frame(&mut second, &WireLimits::default())
        .expect("the refusal is a typed frame, not a silent close");
    match frame {
        Frame::Error(ErrorFrame { id, code, .. }) => {
            assert_eq!(id, NO_REQUEST_ID);
            assert_eq!(code, WireErrorCode::TooManyConnections);
        }
        other => panic!("expected TooManyConnections, got {other:?}"),
    }
    drop(second);
    assert_eq!(ns.server().stats().net.connections_rejected, 1);

    // Closing the first connection releases the slot.
    first.close();
    await_all_closed(ns.server());
    let third = NetClient::connect(addr).expect("slot released");
    third.infer(InferRequest::new("lenet", image(1))).unwrap();
    third.close();
    let sum = ns.shutdown();
    assert_eq!(sum.net.connections_rejected, 1);
    assert_eq!(sum.net.connections_opened, 2);
}

#[test]
fn client_maps_duplicate_ids_and_dead_connections() {
    let ns = start_net(
        EngineKind::Float,
        ServeConfig { max_wait: Duration::from_millis(100), ..ServeConfig::default() },
        NetConfig::default(),
    );
    let client = NetClient::connect(ns.local_addr()).expect("connect");
    let h = client.submit(InferRequest::new("lenet", image(0)).with_id(7)).unwrap();
    // Same id while the first is still (possibly) in flight: refused
    // locally, no ambiguous wire traffic.
    match client.submit(InferRequest::new("lenet", image(1)).with_id(7)) {
        Err(ServeError::BadInput(_)) => {}
        // The first may already have resolved, freeing the id.
        Ok(h2) => {
            h2.wait().unwrap();
        }
        Err(e) => panic!("unexpected {e:?}"),
    }
    h.wait().unwrap();
    client.close();
    ns.shutdown();
}

/// Kill the reader thread mid-request (a fake server answers with bytes
/// that are not a frame): every in-flight waiter resolves to a typed
/// `WorkerLost` — no waiter hangs — and a submit attempted after the
/// death fails typed instead of silently registering a request nothing
/// will ever answer. The fake server keeps its socket open throughout, so
/// resolution cannot be riding on EOF.
#[test]
fn reader_death_resolves_every_waiter_typed_and_fails_later_submits() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("client connects");
        // Absorb one request frame header's worth, then poison the
        // response stream: 16 bytes that decode as no known frame.
        let mut sink = [0u8; 9];
        let _ = s.read_exact(&mut sink);
        s.write_all(b"XXXXXXXXXXXXXXXX").expect("write garbage");
        s.flush().unwrap();
        // Hold the connection open until the test is done with it.
        let mut drain = [0u8; 1024];
        while matches!(s.read(&mut drain), Ok(n) if n > 0) {}
    });

    let client = NetClient::connect(addr).expect("connect");
    let handles: Vec<_> =
        (0..4).filter_map(|i| client.submit(InferRequest::new("lenet", image(i))).ok()).collect();
    assert!(!handles.is_empty(), "at least the first submit lands before the poison");

    // Bounded polling, so a hang becomes a test failure, not a timeout.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut unresolved = handles;
    while !unresolved.is_empty() {
        assert!(
            std::time::Instant::now() < deadline,
            "{} waiter(s) still hanging after reader death",
            unresolved.len()
        );
        unresolved.retain(|h| match h.try_wait() {
            None => true,
            Some(Err(ServeError::WorkerLost)) => false,
            Some(other) => panic!("expected typed WorkerLost, got {other:?}"),
        });
        std::thread::sleep(Duration::from_millis(2));
    }

    // The death is published to submitters: eventually every new submit
    // is refused typed (the first few may still win the race and enqueue,
    // but their handles must then resolve WorkerLost, never hang).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match client.submit(InferRequest::new("lenet", image(9))) {
            Err(ServeError::ShuttingDown) => break,
            Err(other) => panic!("expected typed ShuttingDown, got {other:?}"),
            Ok(h) => {
                let start = std::time::Instant::now();
                while h.try_wait().is_none() {
                    assert!(
                        start.elapsed() < Duration::from_secs(10),
                        "post-death submit produced a hanging handle"
                    );
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        assert!(std::time::Instant::now() < deadline, "submit never saw the dead connection");
        std::thread::sleep(Duration::from_millis(2));
    }

    client.close();
    fake.join().unwrap();
}
