//! Per-layer precision policies through the full serving path.
//!
//! 1. **Per-layer ODQ thresholds serve bit-identically** — a policy
//!    assigning each conv layer its own ODQ threshold, served through the
//!    batched multi-worker pipeline, answers bit-identically to a
//!    standalone [`OdqEngine::with_per_layer`] forward with the same
//!    threshold map.
//! 2. **Policy hot swap never tears** — two versions published with
//!    *different* policies swap under sustained load; every response
//!    bit-matches exactly one (version, policy) pair, and the final stats
//!    JSON carries per-route accelerator cost sections.
//! 3. **Publish-time validation** — a policy naming a conv layer the
//!    candidate does not have is rejected atomically (no version is
//!    allocated), as is a policy with out-of-range routes.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use odq::core::engine::OdqEngine;
use odq::nn::models::{Model, ModelCfg};
use odq::nn::policy::{PrecisionPolicy, Route};
use odq::nn::Arch;
use odq::quant::plan::PlanCache;
use odq::registry::{ModelRegistry, RegistryError};
use odq::serve::{EngineKind, InferRequest, PolicyExecutor, ServeConfig, ServeError, Server};
use odq::tensor::Tensor;

const CLASSES: usize = 4;

fn lenet(seed: u64) -> Model {
    let mut cfg = ModelCfg::small(Arch::LeNet5, CLASSES);
    cfg.input_hw = 8;
    cfg.in_channels = 1;
    cfg.seed = seed;
    Model::build(cfg)
}

fn image(i: usize) -> Tensor {
    let v: Vec<f32> = (0..64).map(|j| ((j * 13 + i * 31) % 97) as f32 / 97.0).collect();
    Tensor::from_vec(vec![1, 1, 8, 8], v)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A policy giving every LeNet conv layer its own ODQ threshold.
fn per_layer_odq_policy() -> PrecisionPolicy {
    PrecisionPolicy::uniform(Route::Odq { threshold: 0.3, sparse: false })
        .with("C1", Route::Odq { threshold: 0.1, sparse: false })
        .with("C2", Route::Odq { threshold: 0.6, sparse: false })
}

#[test]
fn per_layer_odq_thresholds_serve_bit_identically_to_with_per_layer() {
    let policy = Arc::new(per_layer_odq_policy());
    let reg = Arc::new(ModelRegistry::new());
    reg.publish_with_policy("lenet", lenet(5), vec![], Some(per_layer_odq_policy())).unwrap();

    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        workers: 2,
        ..Default::default()
    };
    let server = Server::builder(cfg)
        .engine(EngineKind::Policy(Arc::clone(&policy)))
        .registry(Arc::clone(&reg))
        .serve("lenet")
        .start();

    // The standalone reference: odq-core's own per-layer threshold engine,
    // fed the same thresholds the policy assigns.
    let map: HashMap<String, f32> = [("C1".to_string(), 0.1), ("C2".to_string(), 0.6)].into();
    let model = reg.get("lenet", 1).unwrap();
    let mut standalone = OdqEngine::with_per_layer(map, 0.3);

    for i in 0..6 {
        let served =
            server.submit(InferRequest::new("lenet", image(i))).unwrap().wait().unwrap().output;
        let solo = model.forward_eval(&image(i), &mut standalone);
        assert_eq!(
            bits(&served),
            bits(&solo),
            "input {i}: policy-routed serving must bit-match OdqEngine::with_per_layer"
        );
    }

    // Sanity: the policy executor really does share one engine per
    // distinct route (three Odq thresholds → three sub-engines).
    let mut pe = PolicyExecutor::new(policy, Arc::new(PlanCache::new()));
    let _ = model.forward_eval(&image(0), &mut pe);
    assert_eq!(pe.engine_count(), 2, "C1 and C2 cover both distinct routes LeNet exercises");

    server.shutdown();
}

/// Policy A: static INT8 everywhere, first conv on ODQ.
fn policy_a() -> PrecisionPolicy {
    PrecisionPolicy::uniform(Route::Static { w_bits: 8, a_bits: 8, a_clip: 1.0 })
        .with("C1", Route::Odq { threshold: 0.3, sparse: false })
}

/// Policy B: ODQ everywhere, second conv in float.
fn policy_b() -> PrecisionPolicy {
    PrecisionPolicy::uniform(Route::Odq { threshold: 0.5, sparse: false }).with("C2", Route::Float)
}

#[test]
fn policy_hot_swap_under_load_never_tears_and_reports_per_route_stats() {
    let reg = Arc::new(ModelRegistry::new());
    let v1 = reg.publish_with_policy("m", lenet(1), vec![], Some(policy_a())).unwrap();

    let cfg = ServeConfig {
        queue_depth: 256,
        max_batch: 4,
        max_wait: Duration::from_micros(300),
        workers: 2,
        ..Default::default()
    };
    // Started while only v1 exists, so the server comes up serving v1.
    let server = Arc::new(
        Server::builder(cfg)
            // The fallback never executes: both versions publish policies.
            .engine(EngineKind::Policy(Arc::new(policy_a())))
            .registry(Arc::clone(&reg))
            .serve("m")
            .start(),
    );
    let v2 = reg.publish_with_policy("m", lenet(2), vec![], Some(policy_b())).unwrap();

    // Solo references: each version forwarded under *its own* published
    // policy by a fresh policy executor.
    let inputs = 6;
    let mut refs: HashMap<(u64, usize), Vec<u32>> = HashMap::new();
    for (v, p) in [(v1, policy_a()), (v2, policy_b())] {
        let model = reg.get("m", v).unwrap();
        let mut exec = PolicyExecutor::new(Arc::new(p), Arc::new(PlanCache::new()));
        for i in 0..inputs {
            refs.insert((v, i), bits(&model.forward_eval(&image(i), &mut exec)));
        }
    }

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..2)
        .map(|c| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut outcomes: Vec<(usize, Vec<u32>)> = Vec::new();
                let mut i = c;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let input = i % inputs;
                    match server.submit(InferRequest::new("m", image(input))) {
                        Ok(h) => {
                            let r = h.wait().expect("no deadline: must answer");
                            outcomes.push((input, bits(&r.output)));
                        }
                        Err(ServeError::QueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("unexpected admission error {e}"),
                    }
                    i += 2;
                }
                outcomes
            })
        })
        .collect();

    // Swap policies (with their weights) forward and back under load.
    std::thread::sleep(Duration::from_millis(20));
    server.deploy("m", v2).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(server.rollback("m").unwrap(), v1);
    std::thread::sleep(Duration::from_millis(20));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let mut total = 0u64;
    let mut by_version: HashMap<u64, u64> = HashMap::new();
    for c in clients {
        for (input, got) in c.join().unwrap() {
            total += 1;
            let matches: Vec<u64> =
                [v1, v2].iter().copied().filter(|&v| refs[&(v, input)] == got).collect();
            assert_eq!(
                matches.len(),
                1,
                "response must bit-match exactly one (version, policy) pair — \
                 a swap must never mix routes across versions (input {input})"
            );
            *by_version.entry(matches[0]).or_default() += 1;
        }
    }
    assert!(total > 0);
    assert!(by_version.get(&v1).copied().unwrap_or(0) > 0, "v1 served around the swap");

    // Per-route accelerator sections in the stats JSON: both policies'
    // routes show up, split by label.
    let json = server.stats_json();
    assert!(json.contains("\"routes\""), "{json}");
    for route in ["int8", "odq"] {
        assert!(json.contains(&format!("\"{route}\"")), "route {route} missing from {json}");
    }
    let sum = match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(),
        Err(_) => panic!("all clients joined"),
    };
    assert_eq!(sum.admitted, total);
    assert_eq!(sum.completed, total);
    assert!(!sum.routes.is_empty(), "summary must carry per-route aggregates");
    let cycles: f64 = sum.routes.iter().map(|r| r.cycles).sum();
    assert!(
        (cycles - sum.sim_cycles).abs() <= 1e-6 * sum.sim_cycles.max(1.0),
        "route cycles {cycles} must add up to the total {}",
        sum.sim_cycles
    );
}

#[test]
fn publish_rejects_policies_that_do_not_fit_the_candidate() {
    let reg = ModelRegistry::new();

    // A route naming a conv layer the model does not have.
    let unknown = PrecisionPolicy::uniform(Route::Float)
        .with("C99", Route::Odq { threshold: 0.3, sparse: false });
    let err = reg.publish_with_policy("m", lenet(1), vec![], Some(unknown)).unwrap_err();
    assert!(matches!(err, RegistryError::InvalidPolicy(_)), "got {err}");

    // An out-of-range route (0-bit static).
    let bad_bits = PrecisionPolicy::uniform(Route::Static { w_bits: 0, a_bits: 8, a_clip: 1.0 });
    let err = reg.publish_with_policy("m", lenet(1), vec![], Some(bad_bits)).unwrap_err();
    assert!(matches!(err, RegistryError::InvalidPolicy(_)), "got {err}");

    // Rejection is atomic: no version was allocated, and a clean publish
    // still lands as version 1.
    assert_eq!(reg.latest("m"), None);
    assert_eq!(reg.publish_with_policy("m", lenet(1), vec![], Some(policy_a())).unwrap(), 1);
    let stored = reg.policy("m", 1).unwrap().expect("policy rides with the version");
    assert_eq!(stored.as_ref(), &policy_a());
}
