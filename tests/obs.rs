//! End-to-end observability: tracing, per-layer profiling, exposition.
//!
//! 1. **Schema contract** — `stats_json`'s top-level keys (and the
//!    counter/gauge members) match the table documented in
//!    ARCHITECTURE.md exactly; a key rename there is a breaking change
//!    for regression tooling and must show up here first.
//! 2. **Five-stage traces** — a sampled request's trace collects all
//!    five pipeline spans, in stage order with monotone timestamps.
//! 3. **Exposition** — `GET /metrics` during live serving parses as
//!    strict Prometheus text and carries per-layer ODQ mask-density
//!    series; `GET /traces/recent` returns the sampled spans.
//! 4. **Golden exposition** — the render of an all-zero idle summary is
//!    byte-identical to the committed fixture
//!    (`tests/fixtures/metrics.prom`), pinning family names, HELP/TYPE
//!    headers, and the uptime/queue-depth gauges.

use std::sync::Arc;
use std::time::Duration;

use odq::nn::models::{Model, ModelCfg};
use odq::nn::Arch;
use odq::obs::{http_get, parse, render_summary, MetricsServer, TraceBuffer};
use odq::serve::{
    EngineKind, InferRequest, ServeConfig, Server, SpanStage, StatsSummary, TraceSink,
};
use odq::tensor::Tensor;
use serde_json::Value;

fn build_model() -> Model {
    let mut cfg = ModelCfg::small(Arch::LeNet5, 10);
    cfg.input_hw = 8;
    cfg.in_channels = 1;
    Model::build(cfg)
}

fn image(seed: usize) -> Tensor {
    let v: Vec<f32> = (0..64).map(|i| ((i * 7 + seed * 13) % 97) as f32 / 97.0).collect();
    Tensor::from_vec(vec![1, 1, 8, 8], v)
}

fn obs_server(traces: Arc<TraceBuffer>) -> Server {
    let cfg = ServeConfig {
        queue_depth: 64,
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        workers: 1,
        simulate_accel: true,
        trace: Some(traces as Arc<dyn TraceSink>),
        layer_profiling: true,
        ..ServeConfig::default()
    };
    Server::builder(cfg)
        .engine(EngineKind::Odq { threshold: 0.3 })
        .model("lenet5", build_model())
        .start()
}

fn object_keys(v: &Value) -> Vec<String> {
    match v {
        Value::Object(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
        other => panic!("expected object, got {other:?}"),
    }
}

fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing key {key:?}")),
        other => panic!("expected object, got {other:?}"),
    }
}

/// The ARCHITECTURE.md "stats_json schema" table, as code. Top-level
/// keys are exact-match: a new sibling is allowed only once it is
/// documented (add it there, then here).
#[test]
fn stats_json_top_level_keys_match_documented_schema() {
    let traces = Arc::new(TraceBuffer::sample_all(256));
    let server = obs_server(traces);
    for i in 0..8 {
        server
            .submit(InferRequest::new("lenet5", image(i)))
            .expect("admit")
            .wait()
            .expect("complete");
    }
    let json = server.stats().to_json();
    server.shutdown();

    assert_eq!(
        object_keys(&json),
        [
            "uptime_ms",
            "counters",
            "gauges",
            "net",
            "latency_ms",
            "simulated_accel",
            "models",
            "layers"
        ],
        "stats_json top-level keys diverged from the documented schema"
    );
    assert_eq!(
        object_keys(get(&json, "counters")),
        [
            "admitted",
            "completed",
            "batches",
            "rejected_queue_full",
            "rejected_deadline",
            "rejected_invalid",
            "rejected_shutdown",
            "internal_errors",
            "worker_panics",
            "worker_restarts"
        ],
    );
    assert_eq!(
        object_keys(get(&json, "gauges")),
        ["mean_batch_size", "max_batch_size", "last_queue_depth", "max_queue_depth"],
    );
    assert_eq!(object_keys(get(&json, "latency_ms")), ["queue_wait", "service", "total"],);
    // Profiling was on and the engine is ODQ, so the layers array is
    // populated and each entry carries a mask density.
    match get(&json, "layers") {
        Value::Array(layers) => {
            assert!(!layers.is_empty(), "layer_profiling produced no layers");
            for l in layers {
                get(l, "wall_ms");
                get(l, "route");
                get(l, "mask_density");
            }
        }
        other => panic!("layers should be an array, got {other:?}"),
    }
}

/// Acceptance: a sampled trace shows all five pipeline stages with
/// monotone timestamps, and the live `/metrics` endpoint serves valid
/// Prometheus text including per-layer ODQ mask-density series.
#[test]
fn trace_spans_all_five_stages_and_metrics_expose_mask_density() {
    let traces = Arc::new(TraceBuffer::sample_all(1024));
    let server = obs_server(Arc::clone(&traces));
    let metrics = MetricsServer::bind(
        "127.0.0.1:0",
        Arc::new(server.stats_handle()),
        Some(Arc::clone(&traces)),
    )
    .expect("bind metrics endpoint");

    for i in 0..12 {
        server
            .submit(InferRequest::new("lenet5", image(i)))
            .expect("admit")
            .wait()
            .expect("complete");
    }

    // Every request was sampled and has fully completed (wait() is a
    // completion barrier: the worker records spans before scattering).
    let views = traces.traces(usize::MAX);
    assert_eq!(views.len(), 12, "one trace per request");
    for t in &views {
        assert!(t.is_complete(), "trace {:#x} missing stages: {:?}", t.trace, t.spans);
        assert!(t.is_monotone(), "trace {:#x} spans not monotone: {:?}", t.trace, t.spans);
        assert_eq!(t.spans.iter().filter(|s| s.stage == SpanStage::EngineExecute).count(), 1);
        assert!(
            t.spans.iter().any(|s| s.stage == SpanStage::EngineExecute && s.dur_ns.is_some()),
            "engine-execute span carries the service duration"
        );
    }

    let (status, body) = http_get(metrics.local_addr(), "/metrics").expect("scrape");
    assert_eq!(status, 200);
    let exp = parse(&body).expect("exposition must parse as Prometheus text");
    assert!(exp.get("odq_uptime_milliseconds", &[]).is_some());
    assert!(
        !exp.series("odq_layer_mask_density").is_empty(),
        "expected at least one per-layer ODQ mask-density series; families: {:?}",
        exp.families.keys().collect::<Vec<_>>()
    );
    assert!(!exp.series("odq_layer_wall_milliseconds").is_empty());

    let (status, tjson) = http_get(metrics.local_addr(), "/traces/recent").expect("scrape traces");
    assert_eq!(status, 200);
    assert!(tjson.contains("\"engine_execute\""), "{tjson}");

    metrics.shutdown();
    server.shutdown();
}

/// Golden-file gate: the exposition of the default (all-zero) summary is
/// pinned byte-for-byte. Regenerate deliberately with
/// `UPDATE_METRICS_FIXTURE=1 cargo test --test obs golden`.
#[test]
fn golden_metrics_exposition_matches_fixture() {
    let rendered = render_summary(&StatsSummary::default());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/metrics.prom");
    if std::env::var_os("UPDATE_METRICS_FIXTURE").is_some() {
        std::fs::write(path, &rendered).expect("write fixture");
    }
    let fixture = std::fs::read_to_string(path).expect("read tests/fixtures/metrics.prom");
    assert_eq!(
        rendered, fixture,
        "metrics exposition drifted from the committed fixture; if intentional, \
         regenerate with UPDATE_METRICS_FIXTURE=1"
    );
    // The fixture itself must stay valid Prometheus text with the
    // documented gauges present and typed.
    let exp = parse(&fixture).expect("fixture parses");
    for family in ["odq_uptime_milliseconds", "odq_queue_depth"] {
        assert_eq!(
            exp.families.get(family).map(String::as_str),
            Some("gauge"),
            "{family} must be declared a gauge"
        );
        assert!(fixture.contains(&format!("# HELP {family} ")), "{family} needs # HELP text");
    }
    assert!(exp.get("odq_queue_depth", &[("kind", "last")]).is_some());
    assert!(exp.get("odq_queue_depth", &[("kind", "max")]).is_some());
}
