//! Reproducibility: the whole pipeline — data generation, training,
//! dynamic-quantization inference, and simulation — is bit-deterministic
//! given fixed seeds (the property that makes `results/` regenerable).

use odq::core::OdqEngine;
use odq::data::SynthSpec;
use odq::nn::models::{Model, ModelCfg};
use odq::nn::param::init_rng;
use odq::nn::train::{train_epoch, SgdCfg};
use odq::nn::Arch;

fn run_once() -> (Vec<f32>, f64) {
    let mut cfg = ModelCfg::small(Arch::ResNet20, 4);
    cfg.input_hw = 8;
    let mut model = Model::build(cfg);
    let mut spec = SynthSpec::cifar10(8);
    spec.num_classes = 4;
    let (train, test) = spec.generate_split(48, 16);
    let mut rng = init_rng(99);
    for _ in 0..2 {
        train_epoch(&mut model, &train.images, &train.labels, 16, &SgdCfg::default(), &mut rng);
    }
    let mut engine = OdqEngine::new(0.3);
    let logits = model.forward_eval(&test.images, &mut engine);
    (logits.as_slice().to_vec(), engine.stats.overall_sensitive_fraction())
}

#[test]
fn end_to_end_bit_determinism() {
    let (a, sa) = run_once();
    let (b, sb) = run_once();
    assert_eq!(a, b, "logits must be bit-identical across runs");
    assert_eq!(sa, sb, "sensitivity statistics must be identical");
}

#[test]
fn simulator_determinism() {
    use odq::accel::sim::simulate_network;
    use odq::accel::{AccelConfig, EnergyModel, LayerWorkload};
    let ws: Vec<LayerWorkload> = Arch::ResNet20
        .conv_geometries(32)
        .iter()
        .map(|nc| LayerWorkload::uniform(nc.name.clone(), nc.geom, 0.25))
        .collect();
    let em = EnergyModel::default();
    let a = simulate_network(&AccelConfig::odq(), &ws, &em);
    let b = simulate_network(&AccelConfig::odq(), &ws, &em);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.energy.total_nj(), b.energy.total_nj());
}
