//! Registry + hot-swap integration properties.
//!
//! 1. **Zero-downtime swap under load** — while a server answers a
//!    sustained stream of requests, a retrained checkpoint is published,
//!    deployed, and rolled back. Every submitted request gets exactly one
//!    terminal outcome, and every successful response is bit-identical to
//!    a solo forward of exactly one published version — a response can
//!    never observe half-swapped weights.
//! 2. **Swap-under-load proptest** — random interleavings of
//!    deploy/rollback/canary transitions with request traffic, same
//!    invariant, any engine.
//! 3. **Canary determinism** — the seeded id-hash split sends the same id
//!    to the same side, always, and per-version traffic shows up split in
//!    the ledger.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use odq::core::engine::OdqEngine;
use odq::nn::executor::{ConvExecutor, FloatConvExecutor, StaticQuantExecutor};
use odq::nn::models::{Model, ModelCfg};
use odq::nn::Arch;
use odq::registry::{FiniteGate, ModelRegistry};
use odq::serve::{EngineKind, InferRequest, ServeConfig, ServeError, Server, TrafficSplit};
use odq::tensor::Tensor;

const CLASSES: usize = 4;

fn lenet(seed: u64) -> Model {
    let mut cfg = ModelCfg::small(Arch::LeNet5, CLASSES);
    cfg.input_hw = 8;
    cfg.in_channels = 1;
    cfg.seed = seed;
    Model::build(cfg)
}

fn image(i: usize) -> Tensor {
    let v: Vec<f32> = (0..64).map(|j| ((j * 11 + i * 29) % 89) as f32 / 89.0).collect();
    Tensor::from_vec(vec![1, 1, 8, 8], v)
}

fn solo_engine(kind: &EngineKind) -> Box<dyn ConvExecutor> {
    match kind {
        EngineKind::Float => Box::new(FloatConvExecutor),
        EngineKind::Static { bits } => Box::new(StaticQuantExecutor::with_bits(*bits, *bits, 1.0)),
        EngineKind::Odq { threshold } => Box::new(OdqEngine::new(*threshold)),
        EngineKind::Policy(p) => Box::new(odq::serve::PolicyExecutor::new(
            Arc::clone(p),
            Arc::new(odq::quant::plan::PlanCache::new()),
        )),
        EngineKind::Drq { .. } => unimplemented!("not exercised here"),
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Solo-forward references for every (version, input) pair: the ground
/// truth a served response must bit-match exactly one row of.
fn references(
    reg: &ModelRegistry,
    name: &str,
    versions: &[u64],
    inputs: usize,
    kind: &EngineKind,
) -> HashMap<(u64, usize), Vec<u32>> {
    let mut refs = HashMap::new();
    for &v in versions {
        let model = reg.get(name, v).expect("published version");
        for i in 0..inputs {
            let y = model.forward_eval(&image(i), &mut *solo_engine(kind));
            refs.insert((v, i), bits(&y));
        }
    }
    refs
}

/// Which single version answered, or None if the response matches no
/// version (torn read) or more than one (seed collision — impossible with
/// distinct seeds).
fn version_of(
    refs: &HashMap<(u64, usize), Vec<u32>>,
    versions: &[u64],
    input: usize,
    got: &[u32],
) -> Option<u64> {
    let matches: Vec<u64> =
        versions.iter().copied().filter(|&v| refs[&(v, input)].as_slice() == got).collect();
    match matches.as_slice() {
        [v] => Some(*v),
        _ => None,
    }
}

/// The acceptance path: sustained load, deploy a retrained checkpoint,
/// roll it back — zero lost or duplicated responses, every response
/// bit-exact to exactly one version's solo forward, per-version stats in
/// the summary and the JSON.
#[test]
fn hot_swap_under_sustained_load_never_tears_a_response() {
    let cfg = ServeConfig {
        queue_depth: 256,
        max_batch: 4,
        max_wait: Duration::from_micros(300),
        workers: 2,
        ..Default::default()
    };
    let server =
        Arc::new(Server::builder(cfg).engine(EngineKind::Float).model("lenet", lenet(1)).start());
    let v2 = server.registry().publish("lenet", lenet(2), vec![]).unwrap();
    let versions = vec![1, v2];
    let inputs = 8;
    let refs = references(server.registry(), "lenet", &versions, inputs, &EngineKind::Float);

    // Two client threads keep the server busy for the whole experiment.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..2)
        .map(|c| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut outcomes: Vec<(usize, Result<Vec<u32>, ServeError>)> = Vec::new();
                let mut i = c;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let input = i % inputs;
                    match server.submit(InferRequest::new("lenet", image(input))) {
                        Ok(h) => outcomes.push((input, h.wait().map(|r| bits(&r.output)))),
                        Err(ServeError::QueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("unexpected admission error {e}"),
                    }
                    i += 2;
                }
                outcomes
            })
        })
        .collect();

    // Swap forward and back while the clients hammer the server.
    std::thread::sleep(Duration::from_millis(20));
    server.deploy("lenet", v2).unwrap();
    assert_eq!(server.current_version("lenet"), Some(v2));
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(server.rollback("lenet").unwrap(), 1);
    std::thread::sleep(Duration::from_millis(20));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let mut total = 0u64;
    let mut by_version: HashMap<u64, u64> = HashMap::new();
    for c in clients {
        for (input, outcome) in c.join().unwrap() {
            total += 1;
            let got = outcome.expect("no deadline set: every admitted request must answer");
            let v = version_of(&refs, &versions, input, &got)
                .expect("response must bit-match exactly one published version");
            *by_version.entry(v).or_default() += 1;
        }
    }
    assert!(total > 0);
    assert!(
        by_version.get(&1).copied().unwrap_or(0) > 0,
        "v1 served before the deploy and after the rollback"
    );

    let json = server.stats_json();
    let sum = match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(),
        Err(_) => panic!("all client handles joined; server must be uniquely owned"),
    };
    // Exactly one terminal outcome per admitted request: the ledger's
    // completion count equals the number of responses the clients saw.
    assert_eq!(sum.admitted, total);
    assert_eq!(sum.completed, total);
    // Per-version accounting matches what the clients measured, and the
    // JSON snapshot exposes it.
    for m in &sum.models {
        assert_eq!(m.model, "lenet");
        assert_eq!(by_version.get(&m.version).copied().unwrap_or(0), m.completed);
    }
    assert!(json.contains("\"models\""), "{json}");
    assert!(json.contains("\"version\""), "{json}");
    assert!(json.contains("\"uptime_ms\""), "{json}");
}

/// A registry shared by trainer and server, with a publish gate: the
/// gate's rejection keeps the bad artifact out of the routable set while
/// the server keeps serving the good version.
#[test]
fn gated_shared_registry_blocks_bad_checkpoints_from_serving() {
    let reg = Arc::new(ModelRegistry::gated(FiniteGate));
    reg.publish("lenet", lenet(1), vec![]).unwrap();
    let server =
        Server::builder(ServeConfig { max_wait: Duration::from_micros(100), ..Default::default() })
            .engine(EngineKind::Float)
            .registry(Arc::clone(&reg))
            .serve("lenet")
            .start();

    let mut bad = lenet(9);
    bad.visit_params(&mut |p| p.value.as_mut_slice()[0] = f32::NAN);
    assert!(reg.publish("lenet", bad, vec![]).is_err(), "gate must reject NaN weights");
    assert_eq!(reg.latest("lenet"), Some(1), "rejected candidate never became routable");

    let r = server.submit(InferRequest::new("lenet", image(0))).unwrap().wait().unwrap();
    assert_eq!(r.output.dims(), &[1, CLASSES]);
    server.shutdown();
}

/// One schedule step, decoded from a proptest-drawn code word:
/// mostly traffic, interleaved with deploys, rollbacks, and canaries.
#[derive(Clone, Debug)]
enum Op {
    Traffic(usize),
    Deploy(usize),
    Rollback,
    Canary(usize, f64),
    ClearCanary,
}

fn decode_op(code: u32) -> Op {
    match code % 10 {
        0..=4 => Op::Traffic(1 + (code / 10) as usize % 11),
        5 | 6 => Op::Deploy((code / 10) as usize % 3),
        7 => Op::Rollback,
        8 => Op::Canary((code / 10) as usize % 3, ((code / 100) % 11) as f64 / 10.0),
        _ => Op::ClearCanary,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any interleaving of swaps, rollbacks, and canaries with traffic,
    /// on the float and ODQ engines: every request resolves to exactly
    /// one terminal outcome, bit-identical to a solo forward of a single
    /// published version.
    #[test]
    fn any_swap_schedule_keeps_responses_bit_exact(
        codes in prop::collection::vec(0u32..100_000, 1..14),
        engine_sel in 0u8..2,
    ) {
        let kind = if engine_sel == 1 {
            EngineKind::Odq { threshold: 0.3 }
        } else {
            EngineKind::Float
        };
        let cfg = ServeConfig {
            queue_depth: 256,
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            workers: 2,
            ..Default::default()
        };
        let server = Server::builder(cfg).engine(kind.clone()).model("m", lenet(1)).start();
        let v2 = server.registry().publish("m", lenet(2), vec![]).unwrap();
        let v3 = server.registry().publish("m", lenet(3), vec![]).unwrap();
        let versions = vec![1, v2, v3];
        let inputs = 6;
        let refs = references(server.registry(), "m", &versions, inputs, &kind);

        let mut handles = Vec::new();
        let mut submitted = 0usize;
        for code in codes {
            match decode_op(code) {
                Op::Traffic(n) => {
                    for _ in 0..n {
                        let input = submitted % inputs;
                        match server.submit(InferRequest::new("m", image(input))) {
                            Ok(h) => handles.push((input, h)),
                            Err(ServeError::QueueFull) => {}
                            Err(e) => panic!("unexpected admission error {e}"),
                        }
                        submitted += 1;
                    }
                }
                Op::Deploy(i) => server.deploy("m", versions[i]).unwrap(),
                Op::Rollback => match server.rollback("m") {
                    Ok(_) | Err(odq::serve::DeployError::NoPreviousVersion(_)) => {}
                    Err(e) => panic!("unexpected rollback error {e}"),
                },
                Op::Canary(i, f) => {
                    server.canary("m", versions[i], TrafficSplit::new(f)).unwrap()
                }
                Op::ClearCanary => server.clear_canary("m").unwrap(),
            }
        }

        let admitted = handles.len() as u64;
        for (input, h) in handles {
            let r = h.wait().expect("no deadline: every admitted request must answer");
            let got = bits(&r.output);
            prop_assert!(
                version_of(&refs, &versions, input, &got).is_some(),
                "response must bit-match exactly one published version (input {input})"
            );
        }
        let sum = server.shutdown();
        prop_assert_eq!(sum.admitted, admitted);
        prop_assert_eq!(sum.completed, admitted);
    }
}

#[test]
fn canary_split_is_deterministic_and_accounted_per_version() {
    let split = TrafficSplit::new(0.4).with_seed(7);
    // Pure determinism of the split itself.
    for id in 0..500u64 {
        assert_eq!(split.picks_canary(id), split.picks_canary(id));
    }

    let cfg =
        ServeConfig { max_wait: Duration::from_micros(100), max_batch: 4, ..Default::default() };
    let server = Server::builder(cfg).engine(EngineKind::Float).model("m", lenet(1)).start();
    let v2 = server.registry().publish("m", lenet(2), vec![]).unwrap();
    server.canary("m", v2, split).unwrap();

    let versions = vec![1, v2];
    let inputs = 5;
    let refs = references(server.registry(), "m", &versions, inputs, &EngineKind::Float);

    let mut expected: HashMap<u64, u64> = HashMap::new();
    for id in 0..40u64 {
        let input = id as usize % inputs;
        let r = server
            .submit(InferRequest::new("m", image(input)).with_id(id))
            .unwrap()
            .wait()
            .unwrap();
        let v = version_of(&refs, &versions, input, &bits(&r.output)).unwrap();
        assert_eq!(
            v == v2,
            split.picks_canary(id),
            "request {id} must land on the side the split picked"
        );
        *expected.entry(v).or_default() += 1;
    }
    assert_eq!(expected.len(), 2, "a 40% split over 40 ids exercises both sides");

    let sum = server.shutdown();
    assert_eq!(sum.models.len(), 2);
    for m in &sum.models {
        assert_eq!(expected[&m.version], m.completed, "ledger splits traffic by version");
    }
}

/// The retention-window edge: the registry retires the warm-previous
/// version (weights released) while a route still holds it for rollback.
/// Re-*deploying* the retired version must fail typed — the registry no
/// longer has the weights — and the failure must not tear the live route.
/// *Rolling back* to it must still succeed bit-exactly: the route's warm
/// `Arc` is the retention window, independent of the registry's.
#[test]
fn retiring_warm_previous_fails_redeploy_typed_but_rollback_stays_bit_exact() {
    use odq::registry::RegistryError;
    use odq::serve::DeployError;

    let server = Server::builder(ServeConfig {
        max_wait: Duration::from_micros(200),
        ..ServeConfig::default()
    })
    .engine(EngineKind::Float)
    .model("lenet", lenet(1))
    .start();

    let forward = |server: &Server, i: usize| {
        bits(&server.submit(InferRequest::new("lenet", image(i))).unwrap().wait().unwrap().output)
    };
    let solo = |version_seed: u64, i: usize| {
        let mut exec = solo_engine(&EngineKind::Float);
        bits(&lenet(version_seed).forward_eval(&image(i), exec.as_mut()))
    };

    // v1 (seed 1) is current; publish + deploy v2 (seed 2): v1 becomes
    // the warm previous.
    let v2 = server.registry().publish("lenet", lenet(2), vec![]).unwrap();
    server.deploy("lenet", v2).unwrap();
    assert_eq!(server.current_version("lenet"), Some(v2));

    // The registry retires v1: its weights are gone from the registry...
    server.registry().retire("lenet", 1).unwrap();

    // ...so re-deploying it fails typed — and the live route is untouched
    // by the failed operation: still v2, still serving v2's exact bits.
    match server.deploy("lenet", 1) {
        Err(DeployError::Registry(RegistryError::VersionRetired(_, 1))) => {}
        other => panic!("expected typed VersionRetired, got {other:?}"),
    }
    assert_eq!(server.current_version("lenet"), Some(v2));
    assert_eq!(forward(&server, 3), solo(2, 3), "failed deploy must not tear the route");

    // Rollback does not need the registry: the route kept v1 warm, and it
    // serves the exact bits the original weights produced.
    let rolled = server.rollback("lenet").expect("warm rollback survives registry retirement");
    assert_eq!(rolled, 1);
    assert_eq!(server.current_version("lenet"), Some(1));
    assert_eq!(
        forward(&server, 5),
        solo(1, 5),
        "rollback must serve the retired weights bit-exactly"
    );

    server.shutdown();
}
