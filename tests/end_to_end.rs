//! Cross-crate integration tests: the full pipeline from synthetic data
//! through training, dynamic quantization, and accelerator simulation.

use odq::accel::sim::simulate_network;
use odq::accel::{AccelConfig, EnergyModel, LayerWorkload};
use odq::core::OdqEngine;
use odq::data::SynthSpec;
use odq::drq::{DrqCfg, DrqEngine};
use odq::nn::executor::{FloatConvExecutor, StaticQuantExecutor};
use odq::nn::layers::QatCfg;
use odq::nn::models::{Model, ModelCfg};
use odq::nn::param::init_rng;
use odq::nn::train::{evaluate, train_epoch, SgdCfg};
use odq::nn::Arch;

fn quick_model(arch: Arch) -> (Model, odq::data::Dataset, odq::data::Dataset) {
    let mut cfg = ModelCfg::small(arch, 6);
    cfg.input_hw = 8;
    let mut model = Model::build(cfg);
    let mut spec = SynthSpec::cifar10(8);
    spec.num_classes = 6;
    let (train, test) = spec.generate_split(96, 48);
    let mut rng = init_rng(17);
    let sgd = SgdCfg::default();
    for _ in 0..5 {
        train_epoch(&mut model, &train.images, &train.labels, 16, &sgd, &mut rng);
    }
    model.set_qat(Some(QatCfg::int4()));
    let ft = SgdCfg { lr: 0.02, ..SgdCfg::default() };
    for _ in 0..3 {
        train_epoch(&mut model, &train.images, &train.labels, 16, &ft, &mut rng);
    }
    (model, train, test)
}

#[test]
fn trained_model_beats_chance_under_every_engine() {
    let (model, _train, test) = quick_model(Arch::ResNet20);
    let t = (&test.images, test.labels.as_slice());
    let chance = 1.0 / 6.0;

    let float = evaluate(&model, t.0, t.1, 16, &mut FloatConvExecutor);
    assert!(float > chance + 0.15, "float {float}");

    let int4 = evaluate(&model, t.0, t.1, 16, &mut StaticQuantExecutor::int(4));
    assert!(
        (float - int4).abs() < 0.15,
        "QAT-trained model: INT4 {int4} should track float {float}"
    );

    let mut drq = DrqEngine::new(DrqCfg::int8_int4(0.3));
    let drq_acc = evaluate(&model, t.0, t.1, 16, &mut drq);
    assert!(drq_acc > chance, "DRQ 8-4 {drq_acc}");

    // ODQ at a small threshold stays close to INT4.
    let mut odq = OdqEngine::new(0.05);
    let odq_acc = evaluate(&model, t.0, t.1, 16, &mut odq);
    assert!(odq_acc > float - 0.25, "ODQ@0.05 {odq_acc} vs float {float}");
}

#[test]
fn masks_flow_from_engine_to_simulator() {
    // The measured per-layer sensitivity must drive the accelerator
    // simulation end to end.
    let (model, _train, test) = quick_model(Arch::ResNet20);
    let mut engine = OdqEngine::new(0.3);
    let _ = model.forward_eval(&test.images, &mut engine);

    let workloads: Vec<LayerWorkload> = engine
        .stats
        .layers
        .iter()
        .map(|l| LayerWorkload::from_channel_counts(l.name.clone(), l.geom, &l.channel_counts))
        .collect();
    assert!(!workloads.is_empty());

    let em = EnergyModel::default();
    let odq = simulate_network(&AccelConfig::odq(), &workloads, &em);
    let int16 = simulate_network(&AccelConfig::int16(), &workloads, &em);
    assert!(odq.total_cycles > 0.0);
    assert!(
        odq.total_cycles < int16.total_cycles,
        "ODQ must beat the INT16 baseline on its own masks"
    );
    assert!(odq.energy.total_nj() < int16.energy.total_nj());
}

#[test]
fn engine_sensitive_fraction_tracks_accelerator_work() {
    // More sensitive outputs => more executor cycles in the simulator.
    let (model, _train, test) = quick_model(Arch::ResNet20);
    let em = EnergyModel::default();
    let mut cycles = Vec::new();
    for thr in [0.8f32, 0.2, 0.02] {
        let mut engine = OdqEngine::new(thr);
        let _ = model.forward_eval(&test.images, &mut engine);
        let workloads: Vec<LayerWorkload> = engine
            .stats
            .layers
            .iter()
            .map(|l| LayerWorkload::from_channel_counts(l.name.clone(), l.geom, &l.channel_counts))
            .collect();
        cycles.push(simulate_network(&AccelConfig::odq(), &workloads, &em).total_cycles);
    }
    assert!(
        cycles[0] <= cycles[1] && cycles[1] <= cycles[2],
        "cycles should grow as threshold falls: {cycles:?}"
    );
}

#[test]
fn all_architectures_run_under_odq() {
    for arch in [Arch::LeNet5, Arch::ResNet20, Arch::Vgg16, Arch::DenseNet] {
        let mut cfg = ModelCfg::small(arch, 4);
        cfg.input_hw = 8;
        if arch == Arch::LeNet5 {
            cfg.in_channels = 1;
        }
        let model = Model::build(cfg);
        let spec = if arch == Arch::LeNet5 { SynthSpec::mnist(8) } else { SynthSpec::cifar10(8) };
        let data = spec.generate(4);
        let mut engine = OdqEngine::new(0.3);
        let y = model.forward_eval(&data.images, &mut engine);
        assert_eq!(y.dims()[0], 4, "{arch:?}");
        assert!(!engine.stats.layers.is_empty(), "{arch:?}");
    }
}

#[test]
fn threshold_search_end_to_end() {
    use odq::core::{search_threshold, SearchCfg};
    let (mut model, train, test) = quick_model(Arch::ResNet20);
    let cfg = SearchCfg {
        calib_images: 4,
        retrain_epochs: 1,
        max_halvings: 2,
        acc_tolerance: 0.15,
        ..Default::default()
    };
    let mut rng = init_rng(3);
    let r = search_threshold(
        &mut model,
        (&train.images, &train.labels),
        (&test.images, &test.labels),
        &cfg,
        &mut rng,
    );
    assert!(r.threshold > 0.0 && r.threshold.is_finite());
    assert!(!r.trials.is_empty());
}
