//! `odq` — command-line interface to the reproduction.
//!
//! ```text
//! odq train    --arch resnet20 --classes 10 --hw 12 --epochs 7 --out model.odqw
//! odq eval     --model model.odqw --arch resnet20 --classes 10 --hw 12 \
//!              --engine odq --threshold 0.4
//! odq search   --model model.odqw --arch resnet20 --classes 10 --hw 12
//! odq simulate --arch resnet56 --sensitive 0.3
//! ```
//!
//! All data is the deterministic synthetic dataset (see DESIGN.md); the
//! checkpoint format is the crate's ODQW format.

use std::collections::HashMap;
use std::process::ExitCode;

use odq::accel::sim::simulate_network;
use odq::accel::{AccelConfig, EnergyModel, LayerWorkload};
use odq::core::{search_threshold, OdqEngine, SearchCfg};
use odq::data::SynthSpec;
use odq::drq::{DrqCfg, DrqEngine};
use odq::nn::executor::{FloatConvExecutor, StaticQuantExecutor};
use odq::nn::layers::QatCfg;
use odq::nn::models::{Model, ModelCfg};
use odq::nn::param::init_rng;
use odq::nn::serialize::{load_model, save_model};
use odq::nn::train::{evaluate, train_epoch, SgdCfg};
use odq::nn::Arch;

struct Args(HashMap<String, String>);

impl Args {
    fn parse(raw: &[String]) -> Self {
        let mut map = HashMap::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(key) = raw[i].strip_prefix("--") {
                let val = raw.get(i + 1).cloned().unwrap_or_default();
                map.insert(key.to_string(), val);
                i += 2;
            } else {
                i += 1;
            }
        }
        Self(map)
    }

    fn get(&self, key: &str, default: &str) -> String {
        self.0.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    fn usize(&self, key: &str, default: usize) -> usize {
        self.0.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn f32(&self, key: &str, default: f32) -> f32 {
        self.0.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

fn parse_arch(name: &str) -> Option<Arch> {
    match name.to_lowercase().as_str() {
        "lenet5" | "lenet" => Some(Arch::LeNet5),
        "resnet20" => Some(Arch::ResNet20),
        "resnet56" => Some(Arch::ResNet56),
        "vgg16" | "vgg" => Some(Arch::Vgg16),
        "densenet" => Some(Arch::DenseNet),
        _ => None,
    }
}

fn build(args: &Args) -> (Model, SynthSpec) {
    let arch = parse_arch(&args.get("arch", "resnet20")).expect("unknown --arch");
    let classes = args.usize("classes", 10);
    let hw = args.usize("hw", 12);
    let mut cfg = ModelCfg::small(arch, classes);
    cfg.input_hw = hw;
    if arch == Arch::LeNet5 {
        cfg.in_channels = 1;
    }
    cfg.seed = args.usize("seed", 7) as u64;
    let mut spec = if arch == Arch::LeNet5 { SynthSpec::mnist(hw) } else { SynthSpec::cifar10(hw) };
    spec.num_classes = classes;
    (Model::build(cfg), spec)
}

fn cmd_train(args: &Args) -> ExitCode {
    let (mut model, spec) = build(args);
    let n_train = args.usize("n-train", 280);
    let epochs = args.usize("epochs", 7);
    let (train, test) = spec.generate_split(n_train, n_train / 2);
    let mut rng = init_rng(args.usize("seed", 7) as u64 ^ 0x5EED);
    let params = model.param_count();
    println!(
        "training {} ({params} params) for {epochs} float + {} QAT epochs...",
        model.name,
        epochs.div_ceil(2)
    );
    for e in 0..epochs {
        let loss =
            train_epoch(&mut model, &train.images, &train.labels, 24, &SgdCfg::default(), &mut rng);
        println!("  epoch {e}: loss {loss:.3}");
    }
    model.set_qat(Some(QatCfg::int4()));
    let ft = SgdCfg { lr: 0.02, ..SgdCfg::default() };
    for e in 0..epochs.div_ceil(2) {
        let loss = train_epoch(&mut model, &train.images, &train.labels, 24, &ft, &mut rng);
        println!("  QAT epoch {e}: loss {loss:.3}");
    }
    let acc = evaluate(&model, &test.images, &test.labels, 24, &mut FloatConvExecutor);
    println!("final accuracy: {:.1}%", 100.0 * acc);
    let out = args.get("out", "model.odqw");
    match save_model(&mut model, &out) {
        Ok(()) => {
            println!("saved checkpoint to {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to save {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_eval(args: &Args) -> ExitCode {
    let (mut model, spec) = build(args);
    let path = args.get("model", "model.odqw");
    if let Err(e) = load_model(&mut model, &path) {
        eprintln!("failed to load {path}: {e}");
        return ExitCode::FAILURE;
    }
    model.set_qat(Some(QatCfg::int4()));
    let n_test = args.usize("n-test", 120);
    let (_, test) = spec.generate_split(0, n_test);
    let engine = args.get("engine", "odq");
    let thr = args.f32("threshold", 0.4);
    let acc = match engine.as_str() {
        "float" => evaluate(&model, &test.images, &test.labels, 24, &mut FloatConvExecutor),
        "int4" => {
            evaluate(&model, &test.images, &test.labels, 24, &mut StaticQuantExecutor::int(4))
        }
        "int8" => {
            evaluate(&model, &test.images, &test.labels, 24, &mut StaticQuantExecutor::int(8))
        }
        "drq" => {
            let mut e = DrqEngine::new(DrqCfg::int8_int4(thr));
            let acc = evaluate(&model, &test.images, &test.labels, 24, &mut e);
            println!("DRQ high-precision MAC share: {:.1}%", 100.0 * e.overall_hi_mac_fraction());
            acc
        }
        "odq" => {
            let mut e = OdqEngine::new(thr);
            let acc = evaluate(&model, &test.images, &test.labels, 24, &mut e);
            println!(
                "ODQ insensitive outputs: {:.1}%",
                100.0 * (1.0 - e.stats.overall_sensitive_fraction())
            );
            for l in &e.stats.layers {
                println!("  {:>4}: {:5.1}% insensitive", l.name, 100.0 * l.insensitive_fraction());
            }
            acc
        }
        other => {
            eprintln!("unknown --engine {other} (float|int4|int8|drq|odq)");
            return ExitCode::FAILURE;
        }
    };
    println!("Top-1 accuracy ({engine}): {:.1}%", 100.0 * acc);
    ExitCode::SUCCESS
}

fn cmd_search(args: &Args) -> ExitCode {
    let (mut model, spec) = build(args);
    let path = args.get("model", "model.odqw");
    if let Err(e) = load_model(&mut model, &path) {
        eprintln!("failed to load {path}: {e}");
        return ExitCode::FAILURE;
    }
    model.set_qat(Some(QatCfg::int4()));
    let n = args.usize("n-train", 240);
    let (train, test) = spec.generate_split(n, n / 2);
    let cfg = SearchCfg {
        retrain_epochs: args.usize("retrain-epochs", 2),
        max_halvings: args.usize("max-halvings", 5),
        acc_tolerance: args.f32("tolerance", 0.03),
        ..Default::default()
    };
    let mut rng = init_rng(11);
    let r = search_threshold(
        &mut model,
        (&train.images, &train.labels),
        (&test.images, &test.labels),
        &cfg,
        &mut rng,
    );
    println!("baseline INT4 accuracy: {:.1}%", 100.0 * r.baseline_accuracy);
    for t in &r.trials {
        println!(
            "  threshold {:.4}: accuracy {:.1}%, insensitive {:.1}%",
            t.threshold,
            100.0 * t.accuracy,
            100.0 * t.insensitive_fraction
        );
    }
    println!(
        "selected threshold {:.4} ({})",
        r.threshold,
        if r.converged { "converged" } else { "tolerance not met" }
    );
    ExitCode::SUCCESS
}

fn cmd_simulate(args: &Args) -> ExitCode {
    let arch = parse_arch(&args.get("arch", "resnet20")).expect("unknown --arch");
    let s = args.f32("sensitive", 0.3) as f64;
    let hw = args.usize("hw", 32);
    let workloads: Vec<LayerWorkload> = arch
        .conv_geometries(hw)
        .iter()
        .map(|nc| LayerWorkload::uniform(nc.name.clone(), nc.geom, s))
        .collect();
    let em = EnergyModel::default();
    println!(
        "simulating full-size {} ({:.1}M MACs) at {:.0}% sensitive outputs:",
        arch.name(),
        arch.total_macs(hw) as f64 / 1e6,
        100.0 * s
    );
    let mut base = 0.0;
    for cfg in AccelConfig::table2() {
        let r = simulate_network(&cfg, &workloads, &em);
        if base == 0.0 {
            base = r.total_cycles;
        }
        println!(
            "  {:<6} {:>12.0} cycles ({:5.3}x) | {:>8.1} uJ | idle {:4.1}%",
            r.config,
            r.total_cycles,
            r.total_cycles / base,
            r.energy.total_nj() / 1e3,
            100.0 * r.idle_fraction
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first() else {
        eprintln!(
            "usage: odq <train|eval|search|simulate> [--arch resnet20|resnet56|vgg16|densenet|lenet5]\n\
             \x20      [--classes N] [--hw N] [--epochs N] [--model FILE] [--out FILE]\n\
             \x20      [--engine float|int4|int8|drq|odq] [--threshold T] [--sensitive S]"
        );
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&raw[1..]);
    match cmd.as_str() {
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "search" => cmd_search(&args),
        "simulate" => cmd_simulate(&args),
        other => {
            eprintln!("unknown command {other}");
            ExitCode::FAILURE
        }
    }
}
