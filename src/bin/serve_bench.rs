//! serve_bench — drive the odq-serve subsystem with a mixed-model load.
//!
//! Registers scaled ResNet-20 (3×16×16 CIFAR-shaped inputs) and LeNet-5
//! (1×16×16 MNIST-shaped inputs) behind one server and measures:
//!
//! * **closed loop** — a fixed number of in-flight requests, peak
//!   sustainable throughput;
//! * **open loop** — Poisson arrivals at a target rate with per-request
//!   deadlines, showing admission-control rejections and deadline misses.
//!
//! Both phases report throughput, p50/p99 latency, mean batch size,
//! rejections, and the per-batch simulated accelerator cost (cycles and
//! energy on the engine's Table 2 configuration).
//!
//! Percentiles come from two places: the load report's are exact
//! (client-side, sorted samples), while the server ledger's are streamed
//! through log-bucketed histograms with ≤12.5% relative error — see the
//! README's "interpreting serve_bench percentiles" note.
//!
//! After both phases the bench writes a machine-readable snapshot
//! (`BENCH_serve.json` by default, `--out PATH` to move it, `--out -` to
//! skip): per-phase throughput, exact client-side p50/p95/p99, reject and
//! deadline-miss counts, plus the server's own ledger JSON — the file CI
//! and regression tooling diff against the committed snapshot.
//!
//! ```sh
//! cargo run --release --bin serve_bench -- \
//!     [--engine odq|drq|int8|int16|float] [--workers N] [--requests N] \
//!     [--max-batch N] [--rate RPS] [--seed S] [--json] [--out PATH] [--net] \
//!     [--metrics-addr HOST:PORT]
//! ```
//!
//! `--net` routes both phases through the odq-net TCP front-end on a
//! loopback socket — the same load generator drives a `NetClient`
//! instead of the in-process server, so the measured latencies include
//! framing and the wire.
//!
//! Both load phases run with observability on (a sampled trace buffer at
//! 1-in-16 plus per-layer engine probes); a third phase re-runs the
//! closed loop with observability fully off and records the throughput
//! delta under `observability` in the snapshot. `--metrics-addr` binds
//! the odq-obs Prometheus endpoint during phase 1 and self-scrapes
//! `/metrics` and `/traces/recent` after the load drains, asserting both
//! parse.

use std::sync::Arc;
use std::time::Duration;

use odq::net::{NetClient, NetConfig, NetServer};
use odq::nn::models::{Model, ModelCfg};
use odq::nn::Arch;
use odq::obs::{http_get, MetricsServer, TraceBuffer};
use odq::serve::{
    run_closed_loop, run_open_loop, EngineKind, LoadReport, LoadSpec, ServeConfig, Server,
    StatsSummary, TraceSink,
};
use serde_json::Value;

/// Default trace sampling: 1 in 16 requests, matching what a production
/// deployment would leave on permanently.
const TRACE_ONE_IN: u64 = 16;

/// Trace ring capacity across shards.
const TRACE_CAP: usize = 4096;

struct Args {
    engine: EngineKind,
    workers: usize,
    requests: usize,
    max_batch: usize,
    rate: f64,
    seed: u64,
    json: bool,
    out: String,
    net: bool,
    metrics_addr: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        engine: EngineKind::Odq { threshold: 0.3 },
        workers: 2,
        requests: 96,
        max_batch: 8,
        rate: 400.0,
        seed: 42,
        json: false,
        out: "BENCH_serve.json".into(),
        net: false,
        metrics_addr: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--engine" => {
                args.engine = match val().as_str() {
                    "odq" => EngineKind::Odq { threshold: 0.3 },
                    "drq" => EngineKind::Drq { input_threshold: 0.1 },
                    "int8" => EngineKind::Static { bits: 8 },
                    "int16" => EngineKind::Static { bits: 16 },
                    "float" => EngineKind::Float,
                    other => panic!("unknown engine {other:?}"),
                }
            }
            "--workers" => args.workers = val().parse().expect("--workers"),
            "--requests" => args.requests = val().parse().expect("--requests"),
            "--max-batch" => args.max_batch = val().parse().expect("--max-batch"),
            "--rate" => args.rate = val().parse().expect("--rate"),
            "--seed" => args.seed = val().parse().expect("--seed"),
            "--json" => args.json = true,
            "--out" => args.out = val(),
            "--net" => args.net = true,
            "--metrics-addr" => args.metrics_addr = Some(val()),
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn build_models() -> (Model, Model) {
    let resnet = Model::build(ModelCfg::small(Arch::ResNet20, 10));
    let mut lenet_cfg = ModelCfg::small(Arch::LeNet5, 10);
    lenet_cfg.in_channels = 1;
    let lenet = Model::build(lenet_cfg);
    (resnet, lenet)
}

/// Start the bench server. `traces: Some(_)` runs the full observability
/// stack (span tracing plus per-layer probes); `None` turns both off for
/// the overhead comparison.
fn start_server(a: &Args, traces: Option<Arc<TraceBuffer>>) -> Server {
    let layer_profiling = traces.is_some();
    let cfg = ServeConfig {
        queue_depth: 64,
        max_batch: a.max_batch,
        max_wait: Duration::from_millis(2),
        workers: a.workers,
        simulate_accel: true,
        trace: traces.map(|t| t as Arc<dyn TraceSink>),
        layer_profiling,
        ..ServeConfig::default()
    };
    let (resnet, lenet) = build_models();
    Server::builder(cfg)
        .engine(a.engine.clone())
        .model("resnet20", resnet)
        .model("lenet5", lenet)
        .start()
}

fn specs() -> Vec<LoadSpec> {
    vec![
        LoadSpec { model: "resnet20".into(), in_channels: 3, hw: 16, weight: 0.6 },
        LoadSpec { model: "lenet5".into(), in_channels: 1, hw: 16, weight: 0.4 },
    ]
}

/// Closed-loop phase against the in-process server, or — with `--net` —
/// against a loopback TCP front-end driven through a [`NetClient`]. Both
/// paths end with a fully drained server, so the returned summary is
/// final and complete.
fn closed_phase(a: &Args, server: Server) -> (LoadReport, StatsSummary) {
    if a.net {
        let ns = NetServer::bind(server, "127.0.0.1:0", NetConfig::default())
            .expect("bind loopback front-end");
        let client = NetClient::connect(ns.local_addr()).expect("connect load client");
        let r = run_closed_loop(&client, &specs(), a.requests, 4 * a.max_batch, a.seed);
        client.close();
        (r, ns.shutdown())
    } else {
        let r = run_closed_loop(&server, &specs(), a.requests, 4 * a.max_batch, a.seed);
        (r, server.shutdown())
    }
}

/// Open-loop phase; same local/TCP split as [`closed_phase`].
fn open_phase(a: &Args, server: Server) -> (LoadReport, StatsSummary) {
    let deadline = Some(Duration::from_millis(50));
    if a.net {
        let ns = NetServer::bind(server, "127.0.0.1:0", NetConfig::default())
            .expect("bind loopback front-end");
        let client = NetClient::connect(ns.local_addr()).expect("connect load client");
        let r = run_open_loop(&client, &specs(), a.requests, a.rate, deadline, a.seed + 1);
        client.close();
        (r, ns.shutdown())
    } else {
        let r = run_open_loop(&server, &specs(), a.requests, a.rate, deadline, a.seed + 1);
        (r, server.shutdown())
    }
}

fn print_phase(name: &str, r: &LoadReport, s: &StatsSummary, json: bool) {
    println!("\n== {name} ==");
    println!(
        "{:<26} {:>10.1} req/s  ({} completed in {:.2}s)",
        "throughput",
        r.throughput(),
        r.completed,
        r.elapsed.as_secs_f64()
    );
    println!(
        "{:<26} p50 {:>8.2} ms   p95 {:>8.2} ms   p99 {:>8.2} ms  (exact, client-side)",
        "latency",
        r.latency_percentile(0.50).as_secs_f64() * 1e3,
        r.latency_percentile(0.95).as_secs_f64() * 1e3,
        r.latency_percentile(0.99).as_secs_f64() * 1e3
    );
    println!(
        "{:<26} p50 {:>8.2} ms   p95 {:>8.2} ms   p99 {:>8.2} ms  (ledger, log-bucketed)",
        "  server ledger",
        s.latency.p50.as_secs_f64() * 1e3,
        s.latency.p95.as_secs_f64() * 1e3,
        s.latency.p99.as_secs_f64() * 1e3
    );
    println!(
        "{:<26} p50 {:>8.2} ms   p95 {:>8.2} ms   (max queue depth {})",
        "  queue wait",
        s.queue_wait.p50.as_secs_f64() * 1e3,
        s.queue_wait.p95.as_secs_f64() * 1e3,
        s.max_queue_depth
    );
    println!("{:<26} {:>10.2}  (max {})", "mean batch size", s.mean_batch_size, s.max_batch_size);
    println!(
        "{:<26} {:>10} queue-full   {:>6} deadline   {:>4} shutdown",
        "rejections", s.rejected_queue_full, s.rejected_deadline, s.rejected_shutdown
    );
    if s.worker_panics > 0 || s.internal_errors > 0 {
        println!(
            "{:<26} {:>10} panics   {:>6} restarts   {:>6} internal errors",
            "worker faults", s.worker_panics, s.worker_restarts, s.internal_errors
        );
    }
    if let Some(f) = s.mean_sensitive_fraction {
        println!("{:<26} {:>10.3}", "mean sensitive fraction", f);
    }
    if s.batches > 0 && s.sim_cycles > 0.0 {
        println!(
            "{:<26} {:>10.0} cycles/batch   {:>8.1} uJ/batch",
            "simulated accel (mean)",
            s.sim_cycles / s.batches as f64,
            s.sim_energy_nj / s.batches as f64 / 1e3
        );
    }
    if s.net.connections_opened > 0 {
        println!(
            "{:<26} {:>10} frames in/out   {:>10}/{:<10} bytes in/out",
            "net",
            format!("{}/{}", s.net.frames_in, s.net.frames_out),
            s.net.bytes_in,
            s.net.bytes_out
        );
    }
    if json {
        println!("{}", serde_json::to_string_pretty(s).expect("summary serializes"));
    }
}

/// One phase's snapshot entry: client-side exact percentiles and outcome
/// counts, plus the server ledger's own JSON tree.
fn phase_json(r: &LoadReport, sum: &StatsSummary) -> Value {
    let ms = |d: std::time::Duration| Value::F64(d.as_secs_f64() * 1e3);
    Value::Object(vec![
        ("throughput_rps".into(), Value::F64(r.throughput())),
        ("submitted".into(), Value::U64(r.submitted)),
        ("completed".into(), Value::U64(r.completed)),
        ("rejected_queue_full".into(), Value::U64(r.rejected)),
        ("deadline_missed".into(), Value::U64(r.deadline_missed)),
        ("failed".into(), Value::U64(r.failed)),
        ("p50_ms".into(), ms(r.latency_percentile(0.50))),
        ("p95_ms".into(), ms(r.latency_percentile(0.95))),
        ("p99_ms".into(), ms(r.latency_percentile(0.99))),
        ("elapsed_s".into(), Value::F64(r.elapsed.as_secs_f64())),
        ("server".into(), sum.to_json()),
    ])
}

fn write_snapshot(path: &str, a: &Args, closed: Value, open: Value, obs: Value) {
    let snapshot = Value::Object(vec![
        (
            "config".into(),
            Value::Object(vec![
                ("engine".into(), Value::String(a.engine.label().into_owned())),
                ("workers".into(), Value::U64(a.workers as u64)),
                ("requests".into(), Value::U64(a.requests as u64)),
                ("max_batch".into(), Value::U64(a.max_batch as u64)),
                ("rate_rps".into(), Value::F64(a.rate)),
                ("seed".into(), Value::U64(a.seed)),
            ]),
        ),
        ("closed_loop".into(), closed),
        ("open_loop".into(), open),
        ("observability".into(), obs),
    ]);
    let mut text = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("snapshot written to {path}");
}

fn main() {
    let a = parse_args();
    println!(
        "serve_bench: engine={} workers={} requests={} max_batch={} rate={} seed={}",
        a.engine.label(),
        a.workers,
        a.requests,
        a.max_batch,
        a.rate,
        a.seed
    );
    println!("models: resnet20 (3x16x16, 60% of load), lenet5 (1x16x16, 40% of load)");
    if a.net {
        println!("transport: loopback TCP through the odq-net front-end");
    }

    // Phase 1: closed loop at 4x max_batch concurrency, observability on.
    let traces = Arc::new(TraceBuffer::new(a.seed, TRACE_ONE_IN, TRACE_CAP));
    let server = start_server(&a, Some(Arc::clone(&traces)));
    // The stats handle outlives the server, so the endpoint can still be
    // scraped after the phase drains and shuts the pipeline down.
    let metrics = a.metrics_addr.as_deref().map(|addr| {
        MetricsServer::bind(addr, Arc::new(server.stats_handle()), Some(Arc::clone(&traces)))
            .unwrap_or_else(|e| panic!("bind metrics endpoint on {addr}: {e}"))
    });
    if let Some(m) = &metrics {
        println!("metrics: http://{0}/metrics and http://{0}/traces/recent", m.local_addr());
    }
    let (closed, sum) = closed_phase(&a, server);
    print_phase("closed loop", &closed, &sum, a.json);
    assert_eq!(
        sum.completed + sum.rejected_deadline,
        closed.completed + closed.deadline_missed,
        "ledger and load report must agree"
    );
    let sampled_traces = traces.traces(usize::MAX).len();
    println!("{:<26} {:>10} sampled (1 in {TRACE_ONE_IN})", "traces", sampled_traces);
    if let Some(m) = &metrics {
        let (status, body) = http_get(m.local_addr(), "/metrics").expect("self-scrape /metrics");
        assert_eq!(status, 200, "metrics scrape status");
        let exp = odq::obs::parse(&body).expect("served exposition must parse");
        let (tstatus, _tbody) =
            http_get(m.local_addr(), "/traces/recent").expect("self-scrape /traces/recent");
        assert_eq!(tstatus, 200, "traces scrape status");
        println!(
            "metrics scrape ok: {} series across {} families",
            exp.samples.len(),
            exp.families.len()
        );
    }
    let closed_json = phase_json(&closed, &sum);

    // Phase 2: open loop at the offered rate, 50 ms deadlines.
    let open_traces = Arc::new(TraceBuffer::new(a.seed + 1, TRACE_ONE_IN, TRACE_CAP));
    let (open, open_sum) = open_phase(&a, start_server(&a, Some(open_traces)));
    print_phase(&format!("open loop @ {:.0} req/s", a.rate), &open, &open_sum, a.json);
    if open.rejected > 0 || open.deadline_missed > 0 {
        println!(
            "{:<26} {:>10} rejected   {:>6} missed deadline",
            "load-shedding", open.rejected, open.deadline_missed
        );
    }
    let open_json = phase_json(&open, &open_sum);

    // Phase 3: the cost of watching. Re-run the closed loop with tracing
    // and layer probes on and fully off, alternating, and compare the
    // best run of each arm (best-of damps scheduler noise at this scale).
    let mut best_on = closed.throughput();
    let mut best_off = 0.0f64;
    for rep in 0..2u64 {
        let tr = Arc::new(TraceBuffer::new(a.seed ^ rep, TRACE_ONE_IN, TRACE_CAP));
        let (r_on, _) = closed_phase(&a, start_server(&a, Some(tr)));
        let (r_off, _) = closed_phase(&a, start_server(&a, None));
        best_on = best_on.max(r_on.throughput());
        best_off = best_off.max(r_off.throughput());
    }
    let overhead = 1.0 - best_on / best_off;
    println!(
        "\n== observability overhead ==\non  {best_on:.1} req/s   off {best_off:.1} req/s   \
         overhead {:.2}%",
        overhead * 1e2
    );
    let obs_json = Value::Object(vec![
        ("trace_one_in".into(), Value::U64(TRACE_ONE_IN)),
        ("sampled_traces".into(), Value::U64(sampled_traces as u64)),
        ("closed_loop_on_rps".into(), Value::F64(best_on)),
        ("closed_loop_off_rps".into(), Value::F64(best_off)),
        ("overhead_fraction".into(), Value::F64(overhead)),
    ]);

    if a.out != "-" {
        write_snapshot(&a.out, &a, closed_json, open_json, obs_json);
    }

    println!(
        "\ndone: closed-loop {} req/s, open-loop {} req/s",
        closed.throughput() as u64,
        open.throughput() as u64
    );
}
