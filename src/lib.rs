//! Facade crate re-exporting the ODQ reproduction workspace.
//!
//! # Example: ODQ on a single convolution layer
//!
//! ```
//! use odq::core::{odq_conv2d, OdqCfg};
//! use odq::tensor::{ConvGeom, Tensor};
//!
//! // A 3-channel 8x8 input and four 3x3 filters.
//! let g = ConvGeom::new(3, 4, 8, 8, 3, 1, 1);
//! let x = Tensor::from_vec(
//!     g.input_shape(1),
//!     (0..3 * 64).map(|i| (i % 97) as f32 / 97.0).collect::<Vec<_>>(),
//! );
//! let w = Tensor::from_vec(
//!     g.weight_shape(),
//!     (0..4 * 27).map(|i| (i % 53) as f32 / 26.5 - 1.0).collect::<Vec<_>>(),
//! );
//!
//! // Calibrate a threshold at the median output magnitude, then run the
//! // two-step ODQ: INT2 sensitivity prediction, and full INT4 result
//! // generation only for outputs predicted above the threshold.
//! let probe = odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(0.0));
//! let abs: Vec<f32> = probe.reference.as_slice().iter().map(|v| v.abs()).collect();
//! let thr = odq::tensor::stats::quantile(&abs, 0.5);
//!
//! let r = odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(thr));
//! let skipped = r.mask.insensitive_fraction();
//! assert!(skipped > 0.2, "roughly half the outputs skip the high-precision pass");
//!
//! // Sensitive outputs are bit-exact INT4 results.
//! for i in 0..r.mask.len() {
//!     if r.mask.bits()[i] {
//!         assert!((r.output.as_slice()[i] - r.reference.as_slice()[i]).abs() < 1e-6);
//!     }
//! }
//! ```

pub use odq_accel as accel;
pub use odq_core as core;
pub use odq_data as data;
pub use odq_drq as drq;
pub use odq_net as net;
pub use odq_nn as nn;
pub use odq_obs as obs;
pub use odq_quant as quant;
pub use odq_registry as registry;
pub use odq_serve as serve;
pub use odq_tensor as tensor;
