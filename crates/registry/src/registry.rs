//! The versioned registry: named models × monotone versions.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io::Read;
use std::sync::{Arc, Mutex};

use odq_nn::models::Model;
use odq_nn::policy::PrecisionPolicy;
use odq_nn::serialize::{load_manifest_from, CheckpointError};
use odq_quant::plan::weight_fingerprint;
use odq_tensor::Tensor;

use crate::gate::PublishGate;

/// Full-content fingerprint over a model's entire mutable state: all
/// parameters and BN running statistics, in deterministic visitor order.
///
/// Built on the same FNV-1a digest the plan cache pins layer weights with
/// ([`weight_fingerprint`]), so any single-element change anywhere in the
/// model produces a different pin — the property that lets a registry
/// version vouch for exactly one set of weights.
pub fn model_fingerprint(model: &mut Model) -> u64 {
    let state = model.snapshot_state();
    let len = state.len();
    weight_fingerprint(&Tensor::from_vec(
        vec![len.max(1)],
        if len == 0 { vec![0.0] } else { state },
    ))
}

/// Lifecycle state of a registered version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VersionState {
    /// Routable: [`ModelRegistry::get`] returns its weights.
    Published,
    /// Withdrawn: the record (fingerprint, metadata) remains for audit,
    /// but the weights are released and the version is not routable.
    Retired,
}

/// Audit view of one registered version.
#[derive(Clone, Debug)]
pub struct VersionInfo {
    /// Monotone version number (1-based per name).
    pub version: u64,
    /// Full-content state fingerprint pinning this version's weights.
    pub fingerprint: u64,
    /// Current lifecycle state.
    pub state: VersionState,
    /// Metadata recorded at publish time.
    pub meta: Vec<(String, String)>,
}

/// Why a registry operation failed.
#[derive(Debug)]
pub enum RegistryError {
    /// No versions have ever been published under this name.
    UnknownModel(String),
    /// The name exists but this version was never published.
    UnknownVersion(String, u64),
    /// The version exists but has been retired; its weights are gone.
    VersionRetired(String, u64),
    /// The publish gate rejected the candidate.
    GateRejected {
        /// The gate's label.
        gate: String,
        /// The gate's explanation.
        why: String,
    },
    /// Rollback needs at least two published versions.
    NothingToRollBack(String),
    /// A manifest failed to load.
    Checkpoint(String),
    /// The precision policy published with the candidate is invalid (a
    /// route is malformed, or it names a conv layer the model lacks).
    InvalidPolicy(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownModel(n) => write!(f, "no model registered under {n:?}"),
            RegistryError::UnknownVersion(n, v) => write!(f, "model {n:?} has no version {v}"),
            RegistryError::VersionRetired(n, v) => write!(f, "model {n:?} version {v} is retired"),
            RegistryError::GateRejected { gate, why } => {
                write!(f, "publish gate {gate:?} rejected the candidate: {why}")
            }
            RegistryError::NothingToRollBack(n) => {
                write!(f, "model {n:?} has no earlier published version to roll back to")
            }
            RegistryError::Checkpoint(why) => write!(f, "manifest rejected: {why}"),
            RegistryError::InvalidPolicy(why) => write!(f, "precision policy rejected: {why}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<CheckpointError> for RegistryError {
    fn from(e: CheckpointError) -> Self {
        RegistryError::Checkpoint(e.to_string())
    }
}

struct VersionRecord {
    /// The weights; `None` once retired (released, record kept).
    model: Option<Arc<Model>>,
    fingerprint: u64,
    state: VersionState,
    meta: Vec<(String, String)>,
    /// The per-layer precision policy published with this version, if
    /// any. Kept through retirement (audit, like the fingerprint).
    policy: Option<Arc<PrecisionPolicy>>,
}

#[derive(Default)]
struct ModelEntry {
    /// Next version to assign; versions start at 1 and never repeat even
    /// across retirements.
    next_version: u64,
    versions: BTreeMap<u64, VersionRecord>,
}

/// A thread-safe versioned model registry.
///
/// All mutations happen under one internal lock, so every operation is
/// atomic: concurrent readers observe either the pre- or post-state of a
/// publish/rollback/retire, never an intermediate. Weights are shared out
/// as `Arc<Model>` — a serving deployment that still holds a retired
/// version's `Arc` finishes its in-flight work unaffected.
pub struct ModelRegistry {
    inner: Mutex<HashMap<String, ModelEntry>>,
    gate: Option<Box<dyn PublishGate>>,
    /// Maximum *published* versions retained per name (0 = unlimited).
    /// Publishing past the window auto-retires the oldest published
    /// version.
    retention: usize,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An ungated registry with unlimited retention.
    pub fn new() -> Self {
        Self { inner: Mutex::new(HashMap::new()), gate: None, retention: 0 }
    }

    /// A registry whose every publish must pass `gate` first.
    pub fn gated(gate: impl PublishGate + 'static) -> Self {
        Self { inner: Mutex::new(HashMap::new()), gate: Some(Box::new(gate)), retention: 0 }
    }

    /// Keep at most `n` published versions per name (0 = unlimited);
    /// publishing past the window retires the oldest published version.
    pub fn with_retention(mut self, n: usize) -> Self {
        self.retention = n;
        self
    }

    /// Publish `model` as the next version of `name`. Runs the publish
    /// gate (if any) first; a rejected candidate leaves the registry
    /// untouched. Returns the assigned version number.
    pub fn publish(
        &self,
        name: &str,
        model: Model,
        meta: Vec<(String, String)>,
    ) -> Result<u64, RegistryError> {
        self.publish_with_policy(name, model, meta, None)
    }

    /// Publish `model` together with a per-layer [`PrecisionPolicy`]. The
    /// policy is validated against the candidate first — every route must
    /// be well-formed and every named layer must be a real conv layer of
    /// this model — so a version can never carry a policy it cannot
    /// execute. The validated policy rides on the version record and
    /// deploys with it (see `odq-serve`'s `Deployment`).
    pub fn publish_with_policy(
        &self,
        name: &str,
        mut model: Model,
        meta: Vec<(String, String)>,
        policy: Option<PrecisionPolicy>,
    ) -> Result<u64, RegistryError> {
        if let Some(p) = &policy {
            p.validate(&mut model).map_err(RegistryError::InvalidPolicy)?;
        }
        if let Some(gate) = &self.gate {
            gate.check(name, &mut model).map_err(|why| RegistryError::GateRejected {
                gate: gate.label().to_string(),
                why,
            })?;
        }
        let fingerprint = model_fingerprint(&mut model);
        let model = Arc::new(model);
        let policy = policy.map(Arc::new);

        let mut inner = self.inner.lock().expect("registry lock");
        let entry = inner.entry(name.to_string()).or_default();
        entry.next_version += 1;
        let version = entry.next_version;
        entry.versions.insert(
            version,
            VersionRecord {
                model: Some(model),
                fingerprint,
                state: VersionState::Published,
                meta,
                policy,
            },
        );
        if self.retention > 0 {
            let published: Vec<u64> = entry
                .versions
                .iter()
                .filter(|(_, r)| r.state == VersionState::Published)
                .map(|(&v, _)| v)
                .collect();
            for &old in published.iter().rev().skip(self.retention) {
                let r = entry.versions.get_mut(&old).expect("listed version exists");
                r.state = VersionState::Retired;
                r.model = None;
            }
        }
        Ok(version)
    }

    /// Load an "ODQM" manifest from `r` and publish it under `name`,
    /// carrying the manifest's metadata — and, for version-2 manifests,
    /// its embedded precision policy — into the version record.
    pub fn publish_manifest(&self, name: &str, r: &mut impl Read) -> Result<u64, RegistryError> {
        let manifest = load_manifest_from(r)?;
        self.publish_with_policy(name, manifest.model, manifest.meta, manifest.policy)
    }

    /// The weights of a published version.
    pub fn get(&self, name: &str, version: u64) -> Result<Arc<Model>, RegistryError> {
        let inner = self.inner.lock().expect("registry lock");
        let entry = inner.get(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        let rec = entry
            .versions
            .get(&version)
            .ok_or_else(|| RegistryError::UnknownVersion(name.to_string(), version))?;
        match &rec.model {
            Some(m) => Ok(Arc::clone(m)),
            None => Err(RegistryError::VersionRetired(name.to_string(), version)),
        }
    }

    /// The newest published version of `name`, if any.
    pub fn latest(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock().expect("registry lock");
        inner.get(name).and_then(|e| {
            e.versions
                .iter()
                .rev()
                .find(|(_, r)| r.state == VersionState::Published)
                .map(|(&v, _)| v)
        })
    }

    /// The newest published version strictly older than `before`.
    pub fn previous(&self, name: &str, before: u64) -> Option<u64> {
        let inner = self.inner.lock().expect("registry lock");
        inner.get(name).and_then(|e| {
            e.versions
                .range(..before)
                .rev()
                .find(|(_, r)| r.state == VersionState::Published)
                .map(|(&v, _)| v)
        })
    }

    /// Retire the newest published version (withdrawing a bad release)
    /// and return the version that is now latest. Fails unless at least
    /// two versions are published — rollback never leaves a name with
    /// nothing routable.
    pub fn rollback(&self, name: &str) -> Result<u64, RegistryError> {
        let mut inner = self.inner.lock().expect("registry lock");
        let entry =
            inner.get_mut(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        let mut published = entry
            .versions
            .iter()
            .filter(|(_, r)| r.state == VersionState::Published)
            .map(|(&v, _)| v);
        let (newest, prev) = {
            let mut rev: Vec<u64> = published.by_ref().collect();
            rev.reverse();
            match (rev.first(), rev.get(1)) {
                (Some(&n), Some(&p)) => (n, p),
                _ => return Err(RegistryError::NothingToRollBack(name.to_string())),
            }
        };
        let rec = entry.versions.get_mut(&newest).expect("newest exists");
        rec.state = VersionState::Retired;
        rec.model = None;
        Ok(prev)
    }

    /// Retire a specific version: its weights are released, its record
    /// (fingerprint, metadata) stays for audit.
    pub fn retire(&self, name: &str, version: u64) -> Result<(), RegistryError> {
        let mut inner = self.inner.lock().expect("registry lock");
        let entry =
            inner.get_mut(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        let rec = entry
            .versions
            .get_mut(&version)
            .ok_or_else(|| RegistryError::UnknownVersion(name.to_string(), version))?;
        rec.state = VersionState::Retired;
        rec.model = None;
        Ok(())
    }

    /// The precision policy a version was published with, if any
    /// (available for retired versions too, like the fingerprint).
    pub fn policy(
        &self,
        name: &str,
        version: u64,
    ) -> Result<Option<Arc<PrecisionPolicy>>, RegistryError> {
        let inner = self.inner.lock().expect("registry lock");
        let entry = inner.get(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        entry
            .versions
            .get(&version)
            .map(|r| r.policy.clone())
            .ok_or_else(|| RegistryError::UnknownVersion(name.to_string(), version))
    }

    /// The fingerprint a version was pinned with at publish time
    /// (available for retired versions too).
    pub fn fingerprint(&self, name: &str, version: u64) -> Result<u64, RegistryError> {
        let inner = self.inner.lock().expect("registry lock");
        let entry = inner.get(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        entry
            .versions
            .get(&version)
            .map(|r| r.fingerprint)
            .ok_or_else(|| RegistryError::UnknownVersion(name.to_string(), version))
    }

    /// Audit listing of every version of `name`, oldest first.
    pub fn versions(&self, name: &str) -> Vec<VersionInfo> {
        let inner = self.inner.lock().expect("registry lock");
        inner.get(name).map_or_else(Vec::new, |e| {
            e.versions
                .iter()
                .map(|(&version, r)| VersionInfo {
                    version,
                    fingerprint: r.fingerprint,
                    state: r.state,
                    meta: r.meta.clone(),
                })
                .collect()
        })
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("registry lock");
        let mut names: Vec<String> = inner.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::FiniteGate;
    use odq_nn::models::ModelCfg;
    use odq_nn::serialize::save_manifest_to;
    use odq_nn::Arch;

    fn model(delta: f32) -> Model {
        let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
        cfg.input_hw = 8;
        cfg.in_channels = 1;
        let mut m = Model::build(cfg);
        m.visit_params(&mut |p| {
            for v in p.value.as_mut_slice() {
                *v += delta;
            }
        });
        m
    }

    #[test]
    fn versions_are_monotone_and_fingerprint_pinned() {
        let reg = ModelRegistry::new();
        let v1 = reg.publish("m", model(0.0), vec![]).unwrap();
        let v2 = reg.publish("m", model(0.01), vec![]).unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(reg.latest("m"), Some(2));
        assert_eq!(reg.previous("m", 2), Some(1));
        assert_ne!(
            reg.fingerprint("m", 1).unwrap(),
            reg.fingerprint("m", 2).unwrap(),
            "different weights must pin differently"
        );
        // Identical state pins identically.
        let v3 = reg.publish("m", model(0.0), vec![]).unwrap();
        assert_eq!(reg.fingerprint("m", v3).unwrap(), reg.fingerprint("m", 1).unwrap());
    }

    #[test]
    fn rollback_retires_newest_and_returns_previous() {
        let reg = ModelRegistry::new();
        reg.publish("m", model(0.0), vec![]).unwrap();
        reg.publish("m", model(0.01), vec![]).unwrap();
        assert_eq!(reg.rollback("m").unwrap(), 1);
        assert_eq!(reg.latest("m"), Some(1));
        assert!(matches!(reg.get("m", 2), Err(RegistryError::VersionRetired(_, 2))));
        // A single published version cannot roll back further.
        assert!(matches!(reg.rollback("m"), Err(RegistryError::NothingToRollBack(_))));
    }

    #[test]
    fn retention_retires_old_versions_but_keeps_their_records() {
        let reg = ModelRegistry::new().with_retention(2);
        for i in 0..4 {
            reg.publish("m", model(i as f32 * 0.01), vec![]).unwrap();
        }
        assert_eq!(reg.latest("m"), Some(4));
        let infos = reg.versions("m");
        assert_eq!(infos.len(), 4, "records survive retirement");
        let states: Vec<VersionState> = infos.iter().map(|i| i.state).collect();
        assert_eq!(
            states,
            vec![
                VersionState::Retired,
                VersionState::Retired,
                VersionState::Published,
                VersionState::Published
            ]
        );
        assert!(reg.get("m", 1).is_err());
        assert!(reg.get("m", 3).is_ok());
    }

    #[test]
    fn gate_rejection_leaves_registry_untouched() {
        let reg = ModelRegistry::gated(FiniteGate);
        let mut bad = model(0.0);
        bad.visit_params(&mut |p| p.value.as_mut_slice()[0] = f32::INFINITY);
        let err = reg.publish("m", bad, vec![]).unwrap_err();
        assert!(matches!(err, RegistryError::GateRejected { .. }), "{err}");
        assert_eq!(reg.latest("m"), None);
        assert!(reg.versions("m").is_empty());
        // A healthy candidate still goes through.
        assert_eq!(reg.publish("m", model(0.0), vec![]).unwrap(), 1);
    }

    #[test]
    fn publish_manifest_roundtrips_weights_and_meta() {
        let mut m = model(0.25);
        let meta = vec![("origin".to_string(), "retrain-7".to_string())];
        let mut buf = Vec::new();
        save_manifest_to(&mut m, &meta, &mut buf).unwrap();

        let reg = ModelRegistry::new();
        let v = reg.publish_manifest("m", &mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(v, 1);
        assert_eq!(reg.versions("m")[0].meta, meta);
        // The published weights are bit-identical to the saved model.
        assert_eq!(reg.fingerprint("m", v).unwrap(), model_fingerprint(&mut m));
        // And garbage does not publish.
        assert!(reg.publish_manifest("m", &mut std::io::Cursor::new(b"JUNK".to_vec())).is_err());
        assert_eq!(reg.latest("m"), Some(1));
    }

    #[test]
    fn publish_with_policy_validates_and_stores() {
        use odq_nn::policy::{PrecisionPolicy, Route};
        let reg = ModelRegistry::new();
        let good = PrecisionPolicy::uniform(Route::Float)
            .with("C1", Route::Odq { threshold: 0.3, sparse: false });
        let v = reg.publish_with_policy("m", model(0.0), vec![], Some(good.clone())).unwrap();
        assert_eq!(reg.policy("m", v).unwrap().as_deref(), Some(&good));
        // Plain publishes carry no policy.
        let v2 = reg.publish("m", model(0.01), vec![]).unwrap();
        assert!(reg.policy("m", v2).unwrap().is_none());

        // A policy naming a ghost layer never becomes a version.
        let ghost = PrecisionPolicy::uniform(Route::Float).with("C99", Route::Float);
        let err = reg.publish_with_policy("m", model(0.0), vec![], Some(ghost)).unwrap_err();
        assert!(matches!(err, RegistryError::InvalidPolicy(_)), "{err}");
        assert_eq!(reg.latest("m"), Some(2), "rejected publish leaves the registry untouched");
        assert!(matches!(reg.policy("ghost", 1), Err(RegistryError::UnknownModel(_))));
    }

    #[test]
    fn publish_manifest_carries_embedded_policy() {
        use odq_nn::policy::{PrecisionPolicy, Route};
        use odq_nn::serialize::save_manifest_with_policy_to;
        let mut m = model(0.1);
        let policy = PrecisionPolicy::uniform(Route::Static { w_bits: 8, a_bits: 8, a_clip: 1.0 })
            .with("C2", Route::Odq { threshold: 0.25, sparse: true });
        let mut buf = Vec::new();
        save_manifest_with_policy_to(&mut m, &[], Some(&policy), &mut buf).unwrap();
        let reg = ModelRegistry::new();
        let v = reg.publish_manifest("m", &mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(reg.policy("m", v).unwrap().as_deref(), Some(&policy));
    }

    #[test]
    fn unknown_names_and_versions_error_cleanly() {
        let reg = ModelRegistry::new();
        assert!(matches!(reg.get("ghost", 1), Err(RegistryError::UnknownModel(_))));
        reg.publish("m", model(0.0), vec![]).unwrap();
        assert!(matches!(reg.get("m", 9), Err(RegistryError::UnknownVersion(_, 9))));
        assert!(reg.retire("m", 1).is_ok());
        assert!(matches!(reg.get("m", 1), Err(RegistryError::VersionRetired(_, 1))));
    }
}
