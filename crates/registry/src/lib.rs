//! odq-registry — a versioned model registry for the serving stack.
//!
//! The serving subsystem treats model weights as long-lived, swappable
//! artifacts rather than something bound once at startup. This crate is
//! the source of truth those swaps draw from:
//!
//! * **versions** — each registered name holds a monotonically increasing
//!   sequence of published versions, every one pinned by a full-content
//!   FNV-1a fingerprint over all parameters and BN statistics, so two
//!   versions with identical state are detectably identical and a stale
//!   artifact can never masquerade as a new one;
//! * **atomic lifecycle** — [`ModelRegistry::publish`],
//!   [`ModelRegistry::rollback`] and [`ModelRegistry::retire`] each mutate
//!   the registry under one lock acquisition; readers see either the old
//!   state or the new, never a half-applied transition;
//! * **publish gates** — an optional [`PublishGate`] vets every candidate
//!   *before* it becomes routable (the conformance crate provides an
//!   oracle-backed gate that checks a candidate's forward pass bit-for-bit
//!   against the scalar golden oracle);
//! * **retention** — old published versions beyond a configurable window
//!   are retired automatically, releasing their weights while keeping the
//!   version record (fingerprint, metadata) for audit.
//!
//! Checkpoints move through `odq_nn::serialize`'s whole-model "ODQM"
//! manifests (architecture descriptor + named weights + metadata,
//! bit-exact roundtrip); [`ModelRegistry::publish_manifest`] loads one and
//! publishes it in a single call.
//!
//! The serve crate layers zero-downtime deployment on top: a `Server`
//! resolves a `(name, version)` pair here, snapshots it into an immutable
//! deployment, and swaps traffic onto it atomically.

#![warn(missing_docs)]

pub mod gate;
pub mod registry;

pub use gate::{FiniteGate, PublishGate};
pub use registry::{model_fingerprint, ModelRegistry, RegistryError, VersionInfo, VersionState};
