//! Publish gates: checks a candidate model must pass to become routable.

use odq_nn::models::Model;
use odq_nn::Layer;

/// A check run against a candidate model during
/// [`publish`](crate::ModelRegistry::publish), *before* the version is
/// recorded. A failing gate rejects the publish atomically — the registry
/// is left exactly as it was, and the candidate never becomes routable.
///
/// The model is handed over `&mut` because the parameter visitors
/// (`Model::visit_params`) require it; gates must not mutate state they
/// inspect. The conformance crate implements an oracle-backed gate on this
/// trait that forwards a deterministic probe through both the candidate
/// and the scalar golden oracle and demands bit-equality.
pub trait PublishGate: Send + Sync {
    /// Short label for error messages and logs.
    fn label(&self) -> &str {
        "gate"
    }

    /// Vet `model` (about to be published under `name`). Return an
    /// explanation of the defect to reject the publish.
    fn check(&self, name: &str, model: &mut Model) -> Result<(), String>;
}

/// The baseline gate: every parameter and BN statistic must be finite.
///
/// A NaN or infinity anywhere in a checkpoint poisons every forward pass
/// through it; this gate refuses such artifacts at the registry door
/// instead of letting them take over live traffic.
#[derive(Clone, Copy, Debug, Default)]
pub struct FiniteGate;

impl PublishGate for FiniteGate {
    fn label(&self) -> &str {
        "finite-weights"
    }

    fn check(&self, _name: &str, model: &mut Model) -> Result<(), String> {
        let mut bad: Option<String> = None;
        let mut idx = 0usize;
        model.visit_params(&mut |p| {
            if bad.is_none() {
                if let Some(pos) = p.value.as_slice().iter().position(|v| !v.is_finite()) {
                    bad = Some(format!("parameter {idx} has non-finite value at offset {pos}"));
                }
            }
            idx += 1;
        });
        let mut bn_idx = 0usize;
        model.net.visit_bns_mut(&mut |bn| {
            if bad.is_none() {
                let mean_bad = bn.running_mean.iter().any(|v| !v.is_finite());
                let var_bad = bn.running_var.iter().any(|v| !v.is_finite() || *v < 0.0);
                if mean_bad || var_bad {
                    bad = Some(format!("bn {bn_idx} has non-finite or negative statistics"));
                }
            }
            bn_idx += 1;
        });
        match bad {
            Some(why) => Err(why),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_nn::models::ModelCfg;
    use odq_nn::Arch;

    fn model() -> Model {
        let mut cfg = ModelCfg::small(Arch::ResNet20, 4);
        cfg.input_hw = 8;
        Model::build(cfg)
    }

    #[test]
    fn finite_gate_accepts_a_healthy_model() {
        assert_eq!(FiniteGate.check("m", &mut model()), Ok(()));
    }

    #[test]
    fn finite_gate_rejects_nan_weights_and_negative_variance() {
        let mut m = model();
        m.visit_params(&mut |p| p.value.as_mut_slice()[0] = f32::NAN);
        assert!(FiniteGate.check("m", &mut m).is_err());

        let mut m = model();
        m.net.visit_bns_mut(&mut |bn| bn.running_var[0] = -1.0);
        assert!(FiniteGate.check("m", &mut m).is_err());
    }
}
