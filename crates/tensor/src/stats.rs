//! Summary statistics over feature values.
//!
//! Used by threshold calibration (the paper selects an initial sensitivity
//! threshold "based on the output distribution", Sec. 3) and by the
//! motivation-study instrumentation (Figs. 2–5).

/// Mean of a slice; 0.0 when empty.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population standard deviation; 0.0 when empty.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32).sqrt()
}

/// `q`-quantile (0.0..=1.0) of the values by sorting a copy
/// (nearest-rank with linear interpolation).
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f32], q: f32) -> f32 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range");
    let mut v: Vec<f32> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (v.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f32;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Histogram of values into `bins` equal-width buckets over `[lo, hi)`;
/// out-of-range values clamp into the first/last bucket.
pub fn histogram(xs: &[f32], lo: f32, hi: f32, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "need at least one bin");
    assert!(hi > lo, "empty histogram range");
    let mut h = vec![0usize; bins];
    let width = (hi - lo) / bins as f32;
    for &x in xs {
        let b = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        h[b] += 1;
    }
    h
}

/// Fraction of values whose magnitude meets or exceeds `threshold`.
pub fn fraction_at_least(xs: &[f32], threshold: f32) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|x| x.abs() >= threshold).count() as f32 / xs.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((std_dev(&xs) - (1.25f32).sqrt()).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn quantile_basic() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }

    #[test]
    fn quantile_single() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [-1.0, 0.0, 0.24, 0.25, 0.6, 0.99, 2.0];
        let h = histogram(&xs, 0.0, 1.0, 4);
        // -1.0 clamps to bin 0; 2.0 clamps to bin 3.
        assert_eq!(h, vec![3, 1, 1, 2]);
        assert_eq!(h.iter().sum::<usize>(), xs.len());
    }

    #[test]
    fn fraction_threshold() {
        let xs = [0.1, -0.5, 0.5, 0.9];
        assert_eq!(fraction_at_least(&xs, 0.5), 0.75);
        assert_eq!(fraction_at_least(&xs, 10.0), 0.0);
        assert_eq!(fraction_at_least(&[], 0.1), 0.0);
    }
}
