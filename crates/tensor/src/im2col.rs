//! Image-to-column lowering and its transpose.
//!
//! `im2col` rewrites a single `[C, H, W]` image into a matrix whose columns
//! are the receptive fields of each output feature. Convolution then becomes
//! a GEMM between the `[C_out, C*K*K]` weight matrix and the
//! `[C*K*K, OH*OW]` column matrix. This mirrors the paper's accelerator,
//! whose "Im2col/Pack Engine" (Fig. 12, Fig. 17) performs the same lowering
//! before packing rows into line buffers.

use crate::shape::ConvGeom;

/// Lower a single image (flat `[C, H, W]` slice) into a column matrix.
///
/// The output is row-major `[col_len, out_spatial]` where
/// `col_len = C * K * K` and `out_spatial = OH * OW`. Padded positions are
/// filled with `T::default()` (zero).
pub fn im2col<T: Copy + Default>(input: &[T], g: &ConvGeom) -> Vec<T> {
    let (oh, ow) = (g.out_h(), g.out_w());
    let out_spatial = oh * ow;
    let mut col = vec![T::default(); g.col_len() * out_spatial];
    im2col_into(input, g, &mut col);
    col
}

/// [`im2col`] writing into a caller-provided buffer of length
/// `col_len * out_spatial` (a reusable "workhorse" buffer in hot loops).
///
/// # Panics
/// Panics if `input` or `col` have the wrong length.
pub fn im2col_into<T: Copy + Default>(input: &[T], g: &ConvGeom, col: &mut [T]) {
    let (c, h, w, k) = (g.in_channels, g.in_h, g.in_w, g.kernel);
    let (oh, ow) = (g.out_h(), g.out_w());
    let out_spatial = oh * ow;
    assert_eq!(input.len(), c * h * w, "input length mismatch");
    assert_eq!(col.len(), g.col_len() * out_spatial, "col buffer length mismatch");

    for ci in 0..c {
        let in_ch = &input[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let out_row = &mut col[row * out_spatial..(row + 1) * out_spatial];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ki) as isize - g.padding as isize;
                    let dst = &mut out_row[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        for d in dst.iter_mut() {
                            *d = T::default();
                        }
                        continue;
                    }
                    let src_row = &in_ch[iy as usize * w..(iy as usize + 1) * w];
                    #[allow(clippy::needless_range_loop)] // index math mirrors col2im
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kj) as isize - g.padding as isize;
                        dst[ox] = if ix < 0 || ix >= w as isize {
                            T::default()
                        } else {
                            src_row[ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Transpose of [`im2col`]: scatter-add a column matrix back into an image.
///
/// Used by the convolution backward pass to turn the gradient w.r.t. the
/// column matrix into the gradient w.r.t. the input image. Overlapping
/// receptive fields accumulate.
pub fn col2im(col: &[f32], g: &ConvGeom) -> Vec<f32> {
    let (c, h, w, k) = (g.in_channels, g.in_h, g.in_w, g.kernel);
    let (oh, ow) = (g.out_h(), g.out_w());
    let out_spatial = oh * ow;
    assert_eq!(col.len(), g.col_len() * out_spatial, "col length mismatch");
    let mut img = vec![0.0f32; c * h * w];

    for ci in 0..c {
        let img_ch = &mut img[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let src_row = &col[row * out_spatial..(row + 1) * out_spatial];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ki) as isize - g.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kj) as isize - g.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        img_ch[iy as usize * w + ix as usize] += src_row[oy * ow + ox];
                    }
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_3x3() -> ConvGeom {
        ConvGeom::new(1, 1, 3, 3, 2, 1, 0)
    }

    #[test]
    fn im2col_identity_kernel1() {
        // 1x1 kernel: col matrix equals the flattened image.
        let g = ConvGeom::new(2, 4, 2, 2, 1, 1, 0);
        let input: Vec<f32> = (0..8).map(|x| x as f32).collect();
        let col = im2col(&input, &g);
        assert_eq!(col, input);
    }

    #[test]
    fn im2col_2x2_no_pad() {
        let g = geom_3x3();
        // image: 0 1 2 / 3 4 5 / 6 7 8
        let input: Vec<f32> = (0..9).map(|x| x as f32).collect();
        let col = im2col(&input, &g);
        // rows correspond to kernel offsets (0,0),(0,1),(1,0),(1,1);
        // columns to outputs (0,0),(0,1),(1,0),(1,1).
        assert_eq!(col.len(), 4 * 4);
        assert_eq!(&col[0..4], &[0., 1., 3., 4.]); // k=(0,0)
        assert_eq!(&col[4..8], &[1., 2., 4., 5.]); // k=(0,1)
        assert_eq!(&col[8..12], &[3., 4., 6., 7.]); // k=(1,0)
        assert_eq!(&col[12..16], &[4., 5., 7., 8.]); // k=(1,1)
    }

    #[test]
    fn im2col_padding_zeros() {
        let g = ConvGeom::new(1, 1, 2, 2, 3, 1, 1);
        let input = vec![1.0f32, 2.0, 3.0, 4.0];
        let col = im2col(&input, &g);
        assert_eq!(g.out_h(), 2);
        // Kernel offset (0,0) with pad 1: top-left output reads the padded
        // corner => zero; bottom-right output reads input (1,1)=... wait the
        // (0,0) tap of output (1,1) reads input (0,0)=1.
        let out_spatial = 4;
        let row00 = &col[0..out_spatial];
        assert_eq!(row00, &[0., 0., 0., 1.]);
        // Center tap (1,1) reads the input directly.
        let row11 = &col[(3 + 1) * out_spatial..(3 + 1) * out_spatial + 4];
        assert_eq!(row11, &[1., 2., 3., 4.]);
    }

    #[test]
    fn im2col_into_matches_alloc() {
        let g = ConvGeom::new(2, 3, 5, 4, 3, 2, 1);
        let input: Vec<f32> = (0..40).map(|x| (x as f32).sin()).collect();
        let a = im2col(&input, &g);
        let mut b = vec![7.0f32; a.len()];
        im2col_into(&input, &g, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
        // property of the transpose, checked on a fixed pseudo-random pair.
        let g = ConvGeom::new(2, 1, 4, 4, 3, 1, 1);
        let n_in = 2 * 4 * 4;
        let n_col = g.col_len() * g.out_spatial();
        let x: Vec<f32> = (0..n_in).map(|i| ((i * 37 + 11) % 17) as f32 - 8.0).collect();
        let y: Vec<f32> = (0..n_col).map(|i| ((i * 53 + 29) % 23) as f32 - 11.0).collect();
        let ax = im2col(&x, &g);
        let aty = col2im(&y, &g);
        let lhs: f32 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn im2col_integer_elements() {
        let g = ConvGeom::new(1, 1, 3, 3, 2, 1, 0);
        let input: Vec<i8> = (0..9).collect();
        let col = im2col(&input, &g);
        assert_eq!(&col[0..4], &[0, 1, 3, 4]);
    }
}
