//! Reusable convolution scratch space.
//!
//! Every conv driver in this workspace lowers images to column matrices
//! (im2col) before its GEMM. Allocating those columns per call dominated
//! the hot path; a [`ConvWorkspace`] owns the buffers and re-sizes them to
//! the current [`ConvGeom`], so a long-lived engine lowers into the same
//! memory pass after pass. The ODQ path additionally derives the high/low
//! bit planes of the lowered codes *in the column domain* — one im2col per
//! (layer, image) feeds the predictor GEMM, the executor GEMMs and both
//! receptive-sum accumulators, mirroring the paper's accelerator where a
//! single operand fetch drives every engine (Sec. 4).
//!
//! A [`WorkspacePool`] hands workspaces to batch-parallel drivers: each
//! rayon task acquires one for the duration of an image and returns it, so
//! the number of live column buffers equals the number of worker threads,
//! not the batch size. The pool also aggregates each workspace's lowering
//! counter — the hook tests use to prove the "exactly one im2col per
//! (layer, image)" property.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::im2col::im2col_into;
use crate::shape::ConvGeom;

/// Scratch buffers for one in-flight image: float and integer column
/// matrices plus the derived high/low bit-plane columns.
#[derive(Default)]
pub struct ConvWorkspace {
    col_f: Vec<f32>,
    col_i: Vec<i16>,
    col_hi: Vec<i16>,
    col_lo: Vec<i16>,
    lowerings: u64,
}

impl ConvWorkspace {
    /// Fresh workspace with empty buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Lower a float image into the reused column buffer.
    pub fn lower_f32(&mut self, input: &[f32], g: &ConvGeom) -> &[f32] {
        let len = g.col_len() * g.out_spatial();
        self.col_f.resize(len, 0.0);
        im2col_into(input, g, &mut self.col_f);
        self.lowerings += 1;
        &self.col_f
    }

    /// Lower an integer-code image into the reused column buffer.
    pub fn lower_i16(&mut self, input: &[i16], g: &ConvGeom) -> &[i16] {
        let len = g.col_len() * g.out_spatial();
        self.col_i.resize(len, 0);
        im2col_into(input, g, &mut self.col_i);
        self.lowerings += 1;
        &self.col_i
    }

    /// Lower an integer-code image **once** and derive its high/low bit
    /// planes in the column domain: `hi = c >> low_bits` (arithmetic) and
    /// `lo = c & ((1 << low_bits) - 1)`.
    ///
    /// This is exact: zero-padded taps split to `(0, 0)`, so the derived
    /// columns equal what lowering pre-split plane tensors would produce,
    /// while performing a third of the im2col traffic. Returns
    /// `(codes, high, low)` column slices; only one lowering is counted.
    pub fn lower_i16_split(
        &mut self,
        input: &[i16],
        g: &ConvGeom,
        low_bits: u8,
    ) -> (&[i16], &[i16], &[i16]) {
        let len = g.col_len() * g.out_spatial();
        self.col_i.resize(len, 0);
        im2col_into(input, g, &mut self.col_i);
        self.lowerings += 1;

        self.col_hi.resize(len, 0);
        self.col_lo.resize(len, 0);
        let mask = (1i16 << low_bits) - 1;
        for ((c, h), l) in self.col_i.iter().zip(&mut self.col_hi).zip(&mut self.col_lo) {
            *h = c >> low_bits;
            *l = c & mask;
        }
        (&self.col_i, &self.col_hi, &self.col_lo)
    }

    /// Lowerings performed since construction or the last take.
    pub fn lowerings(&self) -> u64 {
        self.lowerings
    }

    fn take_lowerings(&mut self) -> u64 {
        std::mem::take(&mut self.lowerings)
    }
}

/// A shared pool of [`ConvWorkspace`]s for batch-parallel drivers.
///
/// `with` pops a free workspace (or creates one), runs the closure, and
/// returns the workspace to the pool — so concurrent rayon tasks each get
/// exclusive scratch while sequential callers keep reusing a single
/// buffer. The pool accumulates every returned workspace's lowering count.
#[derive(Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<ConvWorkspace>>,
    lowerings: AtomicU64,
}

impl WorkspacePool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` with exclusive access to a pooled workspace.
    pub fn with<R>(&self, f: impl FnOnce(&mut ConvWorkspace) -> R) -> R {
        let mut ws = self.free.lock().expect("workspace pool poisoned").pop().unwrap_or_default();
        let r = f(&mut ws);
        self.lowerings.fetch_add(ws.take_lowerings(), Ordering::Relaxed);
        self.free.lock().expect("workspace pool poisoned").push(ws);
        r
    }

    /// Total im2col lowerings performed through this pool.
    pub fn lowerings(&self) -> u64 {
        self.lowerings.load(Ordering::Relaxed)
    }

    /// Reset the lowering counter (tests bracket a region of interest).
    pub fn reset_lowerings(&self) {
        self.lowerings.store(0, Ordering::Relaxed);
    }

    /// Number of idle workspaces currently held.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("workspace pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im2col::im2col;

    #[test]
    fn lower_f32_matches_im2col_across_geometries() {
        let mut ws = ConvWorkspace::new();
        for g in [ConvGeom::new(2, 3, 5, 4, 3, 2, 1), ConvGeom::new(1, 2, 3, 3, 2, 1, 0)] {
            let input: Vec<f32> =
                (0..g.in_channels * g.in_h * g.in_w).map(|i| (i as f32).sin()).collect();
            assert_eq!(ws.lower_f32(&input, &g), im2col(&input, &g).as_slice());
        }
        assert_eq!(ws.lowerings(), 2);
    }

    #[test]
    fn split_columns_match_splitting_before_lowering() {
        let g = ConvGeom::new(2, 2, 4, 4, 3, 1, 1);
        let input: Vec<i16> = (0..2 * 16).map(|i| (i as i16 % 31) - 15).collect();
        let mut ws = ConvWorkspace::new();
        let (codes, hi, lo) = ws.lower_i16_split(&input, &g, 2);

        let pre_hi: Vec<i16> = input.iter().map(|&c| c >> 2).collect();
        let pre_lo: Vec<i16> = input.iter().map(|&c| c & 3).collect();
        assert_eq!(codes, im2col(&input, &g).as_slice());
        assert_eq!(hi, im2col(&pre_hi, &g).as_slice());
        assert_eq!(lo, im2col(&pre_lo, &g).as_slice());
        assert_eq!(ws.lowerings(), 1, "plane derivation must not count as a lowering");
    }

    #[test]
    fn pool_reuses_and_counts() {
        let pool = WorkspacePool::new();
        let g = ConvGeom::new(1, 1, 3, 3, 2, 1, 0);
        let input = vec![1i16; 9];
        for _ in 0..3 {
            pool.with(|ws| {
                let _ = ws.lower_i16(&input, &g);
            });
        }
        assert_eq!(pool.lowerings(), 3);
        assert_eq!(pool.idle(), 1, "sequential use keeps a single workspace");
        pool.reset_lowerings();
        assert_eq!(pool.lowerings(), 0);
    }
}
