//! A contiguous, row-major, generically-typed tensor.

use crate::shape::Shape;

/// Contiguous row-major tensor over element type `T`.
///
/// The struct is intentionally simple — a shape plus a `Vec<T>` — so that the
/// quantized paths can reinterpret data cheaply and the accelerator simulator
/// can address features with plain index arithmetic.
#[derive(Clone, PartialEq)]
pub struct Tensor<T = f32> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Create a tensor filled with `T::default()` (zero for numeric types).
    pub fn zeros<S: Into<Shape>>(shape: S) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Self { shape, data: vec![T::default(); n] }
    }

    /// Create a tensor filled with a constant.
    pub fn full<S: Into<Shape>>(shape: S, value: T) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Self { shape, data: vec![value; n] }
    }
}

impl<T> Tensor<T> {
    /// Create a tensor from raw data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec<S: Into<Shape>>(shape: S, data: Vec<T>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {:?} requires {} elements, got {}",
            shape,
            shape.numel(),
            data.len()
        );
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.shape.0
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing storage (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the tensor, returning its backing storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Reinterpret the tensor with a new shape of identical element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape<S: Into<Shape>>(self, shape: S) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "cannot reshape {} elements into {:?}",
            self.data.len(),
            shape
        );
        Self { shape, data: self.data }
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics (in debug builds) if the index rank or bounds are wrong.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.ndim(), "index rank mismatch");
        let mut off = 0usize;
        let mut stride = 1usize;
        for (i, (&ix, &d)) in idx.iter().zip(self.shape.0.iter()).enumerate().rev() {
            debug_assert!(ix < d, "index {ix} out of bounds for dim {i} (size {d})");
            off += ix * stride;
            stride *= d;
            let _ = i;
        }
        off
    }
}

impl<T: Copy> Tensor<T> {
    /// Element access by multi-dimensional index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> T {
        self.data[self.offset(idx)]
    }

    /// Mutable element access by multi-dimensional index.
    #[inline]
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut T {
        let off = self.offset(idx);
        &mut self.data[off]
    }

    /// Apply a function elementwise, producing a new tensor.
    pub fn map<U: Copy>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Apply a function elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Borrow the `i`-th outermost slice (e.g. one image of an NCHW batch)
    /// as a flat slice of length `numel / dims[0]`.
    pub fn outer(&self, i: usize) -> &[T] {
        let n = self.shape.dim(0);
        assert!(i < n, "outer index {i} out of bounds ({n})");
        let chunk = self.data.len() / n;
        &self.data[i * chunk..(i + 1) * chunk]
    }

    /// Mutable variant of [`Tensor::outer`].
    pub fn outer_mut(&mut self, i: usize) -> &mut [T] {
        let n = self.shape.dim(0);
        assert!(i < n, "outer index {i} out of bounds ({n})");
        let chunk = self.data.len() / n;
        &mut self.data[i * chunk..(i + 1) * chunk]
    }
}

impl Tensor<f32> {
    /// Elementwise addition. Shapes must match.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Self { shape: self.shape.clone(), data }
    }

    /// Elementwise addition in place.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` (AXPY), used by SGD updates.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by a scalar.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute value (0.0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Mean absolute difference against another tensor of the same shape.
    pub fn mean_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in mean_abs_diff");
        if self.data.is_empty() {
            return 0.0;
        }
        let s: f32 = self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).sum();
        s / self.data.len() as f32
    }

    /// Maximum absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data.iter().zip(&other.data).fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor({:?}, ", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, "{:?})", self.data)
        } else {
            write!(f, "[{} elements])", self.data.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let t = Tensor::<f32>::zeros([2, 3]);
        assert_eq!(t.numel(), 6);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
        let u = Tensor::full([2, 2], 7i32);
        assert!(u.as_slice().iter().all(|&x| x == 7));
    }

    #[test]
    fn from_vec_and_indexing() {
        let t = Tensor::from_vec([2, 3], vec![0., 1., 2., 3., 4., 5.]);
        assert_eq!(t.at(&[0, 0]), 0.);
        assert_eq!(t.at(&[0, 2]), 2.);
        assert_eq!(t.at(&[1, 0]), 3.);
        assert_eq!(t.at(&[1, 2]), 5.);
    }

    #[test]
    #[should_panic(expected = "requires")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec([2, 3], vec![1.0f32; 5]);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec([2, 3], vec![0., 1., 2., 3., 4., 5.]);
        let u = t.clone().reshape([3, 2]);
        assert_eq!(u.at(&[2, 1]), 5.);
        assert_eq!(u.clone().reshape([6]).as_slice(), t.as_slice());
    }

    #[test]
    fn map_and_arith() {
        let t = Tensor::from_vec([4], vec![1.0f32, -2.0, 3.0, -4.0]);
        let abs = t.map(|x| x.abs());
        assert_eq!(abs.as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(t.max_abs(), 4.0);
        assert_eq!(t.sum(), -2.0);

        let mut a = Tensor::from_vec([2], vec![1.0f32, 2.0]);
        let b = Tensor::from_vec([2], vec![10.0f32, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0]);
    }

    #[test]
    fn diff_metrics() {
        let a = Tensor::from_vec([3], vec![1.0f32, 2.0, 3.0]);
        let b = Tensor::from_vec([3], vec![1.5f32, 2.0, 1.0]);
        assert!((a.mean_abs_diff(&b) - (0.5 + 0.0 + 2.0) / 3.0).abs() < 1e-6);
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    #[test]
    fn outer_slices() {
        let mut t = Tensor::from_vec([2, 2, 2], (0..8).map(|x| x as f32).collect::<Vec<_>>());
        assert_eq!(t.outer(1), &[4., 5., 6., 7.]);
        t.outer_mut(0)[0] = 99.0;
        assert_eq!(t.at(&[0, 0, 0]), 99.0);
    }
}
