//! Convolution and pooling: forward and backward passes.
//!
//! The forward convolution is the FP32 reference ("golden") path that
//! quantized outputs are measured against; the backward pass powers the
//! from-scratch training substrate in `odq-nn`.

use rayon::prelude::*;

use crate::gemm::{gemm_f32, gemm_f32_at, gemm_f32_bt};
use crate::im2col::{col2im, im2col};
use crate::shape::ConvGeom;
use crate::tensor::Tensor;
use crate::workspace::WorkspacePool;

/// Forward 2-D convolution: `x: [N, C, H, W]`, `w: [Co, Ci, K, K]`,
/// optional per-output-channel `bias`, producing `[N, Co, OH, OW]`.
///
/// Allocates a one-shot workspace pool; hot paths that call repeatedly
/// should hold a [`WorkspacePool`] and use [`conv2d_with`].
///
/// # Panics
/// Panics if shapes disagree with `g`.
pub fn conv2d(x: &Tensor, w: &Tensor, bias: Option<&[f32]>, g: &ConvGeom) -> Tensor {
    conv2d_with(x, w, bias, g, &WorkspacePool::new())
}

/// [`conv2d`] drawing im2col scratch from a caller-owned pool.
///
/// Images are processed batch-parallel (one rayon task per image), each
/// task lowering into a pooled workspace, so peak scratch is bounded by
/// the thread count rather than the batch size. Results are bit-identical
/// to the sequential per-call path: every output element is still reduced
/// sequentially over its receptive field.
pub fn conv2d_with(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    g: &ConvGeom,
    pool: &WorkspacePool,
) -> Tensor {
    let n = x.dims()[0];
    check_conv_shapes(x, w, g);
    if let Some(b) = bias {
        assert_eq!(b.len(), g.out_channels, "bias length mismatch");
    }

    let out_spatial = g.out_spatial();
    let mut y = Tensor::zeros(g.output_shape(n));
    let per_img_out = g.out_channels * out_spatial;
    let ws = w.as_slice();

    y.as_mut_slice().par_chunks_mut(per_img_out.max(1)).enumerate().for_each(|(i, yi)| {
        pool.with(|wk| {
            let col = wk.lower_f32(x.outer(i), g);
            gemm_f32(ws, col, yi, g.out_channels, g.col_len(), out_spatial);
        });
        if let Some(b) = bias {
            for (co, &bc) in b.iter().enumerate() {
                for v in &mut yi[co * out_spatial..(co + 1) * out_spatial] {
                    *v += bc;
                }
            }
        }
    });
    y
}

/// Gradients from a 2-D convolution backward pass.
pub struct ConvGrads {
    /// Gradient w.r.t. the input, `[N, Ci, H, W]`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weights, `[Co, Ci, K, K]` (summed over batch).
    pub dw: Tensor,
    /// Gradient w.r.t. the bias, `[Co]` (summed over batch).
    pub db: Vec<f32>,
}

/// Backward 2-D convolution.
///
/// Given upstream gradient `dy: [N, Co, OH, OW]`, the saved input `x` and
/// weights `w`, returns gradients for input, weights and bias.
pub fn conv2d_backward(x: &Tensor, w: &Tensor, dy: &Tensor, g: &ConvGeom) -> ConvGrads {
    let n = x.dims()[0];
    check_conv_shapes(x, w, g);
    assert_eq!(dy.dims(), g.output_shape(n).0.as_slice(), "dy shape mismatch");

    let out_spatial = g.out_spatial();
    let col_len = g.col_len();
    let ws = w.as_slice();

    // Per-image partials computed in parallel, then reduced. Each image's
    // work is independent; dw/db are summed at the end.
    let partials: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let col = im2col(x.outer(i), g);
            let dyi = dy.outer(i);

            // dW_i = dY_i (Co x S) * col^T (S x L)  => [Co, L]
            let mut dw_i = vec![0.0f32; g.out_channels * col_len];
            gemm_f32_bt(dyi, &col, &mut dw_i, g.out_channels, out_spatial, col_len);

            // dCol = W^T (L x Co) * dY_i (Co x S) => [L, S]
            let mut dcol = vec![0.0f32; col_len * out_spatial];
            gemm_f32_at(ws, dyi, &mut dcol, col_len, g.out_channels, out_spatial);
            let dx_i = col2im(&dcol, g);

            let mut db_i = vec![0.0f32; g.out_channels];
            for (co, dbc) in db_i.iter_mut().enumerate() {
                *dbc = dyi[co * out_spatial..(co + 1) * out_spatial].iter().sum();
            }
            (dx_i, dw_i, db_i)
        })
        .collect();

    let mut dx = Tensor::zeros(g.input_shape(n));
    let mut dw = vec![0.0f32; g.out_channels * col_len];
    let mut db = vec![0.0f32; g.out_channels];
    for (i, (dx_i, dw_i, db_i)) in partials.into_iter().enumerate() {
        dx.outer_mut(i).copy_from_slice(&dx_i);
        for (a, b) in dw.iter_mut().zip(&dw_i) {
            *a += b;
        }
        for (a, b) in db.iter_mut().zip(&db_i) {
            *a += b;
        }
    }

    ConvGrads { dx, dw: Tensor::from_vec(g.weight_shape(), dw), db }
}

fn check_conv_shapes(x: &Tensor, w: &Tensor, g: &ConvGeom) {
    let n = x.dims()[0];
    assert_eq!(x.dims(), g.input_shape(n).0.as_slice(), "input shape mismatch");
    assert_eq!(w.dims(), g.weight_shape().0.as_slice(), "weight shape mismatch");
}

/// Non-overlapping average pooling with square window `k` (stride = k).
///
/// `x: [N, C, H, W]` with `H % k == 0 && W % k == 0`.
pub fn avg_pool2d(x: &Tensor, k: usize) -> Tensor {
    let (n, c, h, w) = nchw(x);
    assert!(h % k == 0 && w % k == 0, "pool window must divide input");
    let (oh, ow) = (h / k, w / k);
    let mut y = Tensor::zeros([n, c, oh, ow]);
    let inv = 1.0 / (k * k) as f32;
    let xs = x.as_slice();
    let ys = y.as_mut_slice();
    for i in 0..n * c {
        let xin = &xs[i * h * w..(i + 1) * h * w];
        let yout = &mut ys[i * oh * ow..(i + 1) * oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for dy in 0..k {
                    for dx in 0..k {
                        acc += xin[(oy * k + dy) * w + ox * k + dx];
                    }
                }
                yout[oy * ow + ox] = acc * inv;
            }
        }
    }
    y
}

/// Backward of [`avg_pool2d`]: distribute each output gradient uniformly
/// over its window.
pub fn avg_pool2d_backward(dy: &Tensor, k: usize, in_h: usize, in_w: usize) -> Tensor {
    let (n, c, oh, ow) = nchw(dy);
    assert_eq!(oh * k, in_h, "pool geometry mismatch");
    assert_eq!(ow * k, in_w, "pool geometry mismatch");
    let mut dx = Tensor::zeros([n, c, in_h, in_w]);
    let inv = 1.0 / (k * k) as f32;
    let dys = dy.as_slice();
    let dxs = dx.as_mut_slice();
    for i in 0..n * c {
        let dyi = &dys[i * oh * ow..(i + 1) * oh * ow];
        let dxi = &mut dxs[i * in_h * in_w..(i + 1) * in_h * in_w];
        for oy in 0..oh {
            for ox in 0..ow {
                let gy = dyi[oy * ow + ox] * inv;
                for dyw in 0..k {
                    for dxw in 0..k {
                        dxi[(oy * k + dyw) * in_w + ox * k + dxw] += gy;
                    }
                }
            }
        }
    }
    dx
}

/// Non-overlapping max pooling with square window `k` (stride = k).
///
/// Returns the pooled tensor and the flat argmax index (within each window's
/// image) used by the backward pass.
pub fn max_pool2d(x: &Tensor, k: usize) -> (Tensor, Vec<u32>) {
    let (n, c, h, w) = nchw(x);
    assert!(h % k == 0 && w % k == 0, "pool window must divide input");
    let (oh, ow) = (h / k, w / k);
    let mut y = Tensor::zeros([n, c, oh, ow]);
    let mut arg = vec![0u32; n * c * oh * ow];
    let xs = x.as_slice();
    let ys = y.as_mut_slice();
    for i in 0..n * c {
        let xin = &xs[i * h * w..(i + 1) * h * w];
        let yout = &mut ys[i * oh * ow..(i + 1) * oh * ow];
        let aout = &mut arg[i * oh * ow..(i + 1) * oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0u32;
                for dy in 0..k {
                    for dx in 0..k {
                        let idx = (oy * k + dy) * w + ox * k + dx;
                        let v = xin[idx];
                        if v > best {
                            best = v;
                            best_idx = idx as u32;
                        }
                    }
                }
                yout[oy * ow + ox] = best;
                aout[oy * ow + ox] = best_idx;
            }
        }
    }
    (y, arg)
}

/// Backward of [`max_pool2d`] using the saved argmax indices.
pub fn max_pool2d_backward(dy: &Tensor, arg: &[u32], k: usize, in_h: usize, in_w: usize) -> Tensor {
    let (n, c, oh, ow) = nchw(dy);
    assert_eq!(oh * k, in_h, "pool geometry mismatch");
    assert_eq!(ow * k, in_w, "pool geometry mismatch");
    assert_eq!(arg.len(), n * c * oh * ow, "argmax length mismatch");
    let mut dx = Tensor::zeros([n, c, in_h, in_w]);
    let dys = dy.as_slice();
    let dxs = dx.as_mut_slice();
    for i in 0..n * c {
        let dyi = &dys[i * oh * ow..(i + 1) * oh * ow];
        let ai = &arg[i * oh * ow..(i + 1) * oh * ow];
        let dxi = &mut dxs[i * in_h * in_w..(i + 1) * in_h * in_w];
        for (g, &idx) in dyi.iter().zip(ai) {
            dxi[idx as usize] += g;
        }
    }
    dx
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c, h, w) = nchw(x);
    let mut y = Tensor::zeros([n, c]);
    let inv = 1.0 / (h * w) as f32;
    let xs = x.as_slice();
    let ys = y.as_mut_slice();
    for i in 0..n * c {
        ys[i] = xs[i * h * w..(i + 1) * h * w].iter().sum::<f32>() * inv;
    }
    y
}

/// Backward of [`global_avg_pool`].
pub fn global_avg_pool_backward(dy: &Tensor, in_h: usize, in_w: usize) -> Tensor {
    let (n, c) = (dy.dims()[0], dy.dims()[1]);
    let mut dx = Tensor::zeros([n, c, in_h, in_w]);
    let inv = 1.0 / (in_h * in_w) as f32;
    let dys = dy.as_slice();
    let dxs = dx.as_mut_slice();
    for i in 0..n * c {
        let g = dys[i] * inv;
        for v in &mut dxs[i * in_h * in_w..(i + 1) * in_h * in_w] {
            *v = g;
        }
    }
    dx
}

fn nchw(x: &Tensor) -> (usize, usize, usize, usize) {
    let d = x.dims();
    assert_eq!(d.len(), 4, "expected NCHW tensor, got {:?}", d);
    (d[0], d[1], d[2], d[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (non-im2col) convolution used as a test oracle.
    fn conv_oracle(x: &Tensor, w: &Tensor, bias: Option<&[f32]>, g: &ConvGeom) -> Tensor {
        let n = x.dims()[0];
        let (oh, ow) = (g.out_h(), g.out_w());
        let mut y = Tensor::zeros(g.output_shape(n));
        for i in 0..n {
            for co in 0..g.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map_or(0.0, |b| b[co]);
                        for ci in 0..g.in_channels {
                            for ki in 0..g.kernel {
                                for kj in 0..g.kernel {
                                    let iy = (oy * g.stride + ki) as isize - g.padding as isize;
                                    let ix = (ox * g.stride + kj) as isize - g.padding as isize;
                                    if iy < 0
                                        || ix < 0
                                        || iy >= g.in_h as isize
                                        || ix >= g.in_w as isize
                                    {
                                        continue;
                                    }
                                    acc += x.at(&[i, ci, iy as usize, ix as usize])
                                        * w.at(&[co, ci, ki, kj]);
                                }
                            }
                        }
                        *y.at_mut(&[i, co, oy, ox]) = acc;
                    }
                }
            }
        }
        y
    }

    fn pseudo(n: usize, seed: usize) -> Vec<f32> {
        (0..n).map(|i| (((i * 2654435761 + seed) % 1000) as f32 / 500.0) - 1.0).collect()
    }

    #[test]
    fn conv2d_matches_direct_oracle() {
        let g = ConvGeom::new(3, 5, 7, 6, 3, 2, 1);
        let x = Tensor::from_vec(g.input_shape(2), pseudo(2 * 3 * 7 * 6, 1));
        let w = Tensor::from_vec(g.weight_shape(), pseudo(5 * 3 * 9, 2));
        let b: Vec<f32> = pseudo(5, 3);
        let got = conv2d(&x, &w, Some(&b), &g);
        let want = conv_oracle(&x, &w, Some(&b), &g);
        assert!(got.max_abs_diff(&want) < 1e-4);
    }

    #[test]
    fn conv2d_no_bias() {
        let g = ConvGeom::new(2, 4, 5, 5, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(1), pseudo(2 * 25, 5));
        let w = Tensor::from_vec(g.weight_shape(), pseudo(4 * 2 * 9, 6));
        let got = conv2d(&x, &w, None, &g);
        let want = conv_oracle(&x, &w, None, &g);
        assert!(got.max_abs_diff(&want) < 1e-4);
    }

    #[test]
    fn conv2d_with_pool_bit_identical_one_lowering_per_image() {
        let g = ConvGeom::new(3, 5, 7, 6, 3, 2, 1);
        let x = Tensor::from_vec(g.input_shape(4), pseudo(4 * 3 * 7 * 6, 9));
        let w = Tensor::from_vec(g.weight_shape(), pseudo(5 * 3 * 9, 10));
        let b: Vec<f32> = pseudo(5, 11);
        let pool = crate::workspace::WorkspacePool::new();
        let fresh = conv2d(&x, &w, Some(&b), &g);
        let pooled = conv2d_with(&x, &w, Some(&b), &g, &pool);
        assert_eq!(fresh.as_slice(), pooled.as_slice());
        assert_eq!(pool.lowerings(), 4, "one im2col per image");
        let _ = conv2d_with(&x, &w, Some(&b), &g, &pool);
        assert_eq!(pool.lowerings(), 8, "pool reuse must not change the count");
    }

    /// Finite-difference check for the convolution backward pass.
    #[test]
    fn conv2d_backward_matches_finite_difference() {
        let g = ConvGeom::new(2, 3, 4, 4, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(1), pseudo(2 * 16, 11));
        let w = Tensor::from_vec(g.weight_shape(), pseudo(3 * 2 * 9, 12));
        // Loss = sum(conv(x, w) * m) for fixed mask m => dL/dy = m.
        let mask = Tensor::from_vec(g.output_shape(1), pseudo(3 * 16, 13));
        let grads = conv2d_backward(&x, &w, &mask, &g);

        let loss = |x: &Tensor, w: &Tensor| -> f32 {
            let y = conv2d(x, w, None, &g);
            y.as_slice().iter().zip(mask.as_slice()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2f32;
        // Check a handful of weight coordinates.
        for &i in &[0usize, 7, 23, 41] {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let fd = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            let an = grads.dw.as_slice()[i];
            assert!((fd - an).abs() < 2e-2, "dw[{i}]: fd={fd} analytic={an}");
        }
        // And a handful of input coordinates.
        for &i in &[0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            let an = grads.dx.as_slice()[i];
            assert!((fd - an).abs() < 2e-2, "dx[{i}]: fd={fd} analytic={an}");
        }
    }

    #[test]
    fn conv2d_backward_bias_is_sum_of_dy() {
        let g = ConvGeom::new(1, 2, 4, 4, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(2), pseudo(2 * 16, 21));
        let w = Tensor::from_vec(g.weight_shape(), pseudo(2 * 9, 22));
        let dy = Tensor::from_vec(g.output_shape(2), pseudo(2 * 2 * 16, 23));
        let grads = conv2d_backward(&x, &w, &dy, &g);
        for co in 0..2 {
            let mut s = 0.0;
            for i in 0..2 {
                for oy in 0..4 {
                    for ox in 0..4 {
                        s += dy.at(&[i, co, oy, ox]);
                    }
                }
            }
            assert!((grads.db[co] - s).abs() < 1e-4);
        }
    }

    #[test]
    fn avg_pool_and_backward() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 3.0, 5.0, 7.0]);
        let y = avg_pool2d(&x, 2);
        assert_eq!(y.as_slice(), &[4.0]);
        let dy = Tensor::from_vec([1, 1, 1, 1], vec![8.0]);
        let dx = avg_pool2d_backward(&dy, 2, 2, 2);
        assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn max_pool_and_backward() {
        let x = Tensor::from_vec([1, 1, 2, 4], vec![1., 9., 3., 4., 5., 6., 7., 8.]);
        let (y, arg) = max_pool2d(&x, 2);
        assert_eq!(y.as_slice(), &[9.0, 8.0]);
        let dy = Tensor::from_vec([1, 1, 1, 2], vec![1.0, 2.0]);
        let dx = max_pool2d_backward(&dy, &arg, 2, 2, 4);
        let want = vec![0., 1., 0., 0., 0., 0., 0., 2.];
        assert_eq!(dx.as_slice(), want.as_slice());
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let x = Tensor::from_vec([1, 2, 2, 2], vec![1., 2., 3., 4., 10., 20., 30., 40.]);
        let y = global_avg_pool(&x);
        assert_eq!(y.as_slice(), &[2.5, 25.0]);
        let dy = Tensor::from_vec([1, 2], vec![4.0, 8.0]);
        let dx = global_avg_pool_backward(&dy, 2, 2);
        assert_eq!(&dx.as_slice()[..4], &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(&dx.as_slice()[4..], &[2.0, 2.0, 2.0, 2.0]);
    }
}
