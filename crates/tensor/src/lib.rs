//! # odq-tensor
//!
//! Minimal, dependency-light tensor substrate used by the ODQ reproduction.
//!
//! The crate provides:
//!
//! * [`Tensor`] — a generic, contiguous, row-major N-dimensional array.
//!   Convolutional code uses the NCHW layout convention throughout.
//! * [`shape::ConvGeom`] — convolution geometry (kernel/stride/padding and
//!   derived output sizes) shared by the float, integer and simulated-hardware
//!   convolution paths.
//! * [`im2col`] — image-to-column lowering (and its transpose `col2im`),
//!   the lowering the paper's accelerator performs in its "Im2col/Pack engine"
//!   (Fig. 12/17).
//! * [`gemm`] — rayon-parallel GEMM kernels for `f32` and for `i32`
//!   accumulation over low-bitwidth integer operands.
//! * [`conv`] — convolution / pooling forward and backward passes built on
//!   im2col + GEMM.
//! * [`stats`] — summary statistics (quantiles, moments) used for threshold
//!   calibration.
//! * [`workspace`] — reusable im2col scratch ([`ConvWorkspace`]) and the
//!   [`WorkspacePool`] that batch-parallel conv drivers draw per-task
//!   scratch from, replacing per-call column allocations.
//!
//! Everything is deterministic: no global state, no hidden threading beyond
//! rayon's data-parallel iterators (which preserve results bit-for-bit for the
//! reductions used here because each output element is reduced sequentially).

pub mod conv;
pub mod gemm;
pub mod im2col;
pub mod shape;
pub mod stats;
pub mod tensor;
pub mod workspace;

pub use shape::{ConvGeom, Shape};
pub use tensor::Tensor;
pub use workspace::{ConvWorkspace, WorkspacePool};

/// Crate-wide floating point element type for model data.
pub type Elem = f32;
