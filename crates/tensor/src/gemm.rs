//! Rayon-parallel GEMM kernels.
//!
//! Two variants are provided:
//!
//! * [`gemm_f32`] — the float reference path used by training and by the
//!   FP32 "golden" outputs that quantized results are compared against.
//! * [`gemm_i8_i32`] — integer GEMM over `i8` operands with `i32`
//!   accumulation, the arithmetic all quantized paths (DoReFa static,
//!   DRQ, ODQ predictor/executor) reduce to.
//!
//! Both use a cache-friendly i-k-j loop order and parallelize over rows of
//! the output, which keeps every output element's reduction sequential and
//! therefore bit-for-bit deterministic.

use rayon::prelude::*;

/// `C = A * B` for row-major `A: [m, k]`, `B: [k, n]`, `C: [m, n]` (f32).
///
/// # Panics
/// Panics if slice lengths do not match the given dimensions.
pub fn gemm_f32(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");

    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        crow.fill(0.0);
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
    });
}

/// `C += A * B` variant of [`gemm_f32`] (accumulating into `C`).
pub fn gemm_f32_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");

    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
    });
}

/// `C = Aᵀ * B` for row-major `A: [k, m]`, `B: [k, n]`, `C: [m, n]` (f32).
///
/// Used by the convolution backward pass (`dCol = Wᵀ · dOut`).
pub fn gemm_f32_at(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");

    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        crow.fill(0.0);
        for kk in 0..k {
            let aik = a[kk * m + i];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
    });
}

/// `C = A * Bᵀ` for row-major `A: [m, k]`, `B: [n, k]`, `C: [m, n]` (f32).
///
/// Used by the convolution backward pass (`dW = dOut · Colᵀ`).
pub fn gemm_f32_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), n * k, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");

    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        let arow = &a[i * k..(i + 1) * k];
        for (j, cj) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *cj = acc;
        }
    });
}

/// Integer GEMM: `C = A * B` with `A: [m, k]` and `B: [k, n]` of `i8`,
/// accumulating in `i32`.
///
/// With operands bounded by a few bits (|a| ≤ 15, |b| ≤ 15 for INT4) and the
/// reduction depths used by CNN layers (≤ a few thousand), `i32` cannot
/// overflow; a debug assertion documents the bound.
pub fn gemm_i8_i32(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    debug_assert!(k < (1 << 16), "reduction depth too large for i32 accumulation guarantee");

    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        crow.fill(0);
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0 {
                continue;
            }
            let aik = aik as i32;
            let brow = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj as i32;
            }
        }
    });
}

/// Integer GEMM over `i16` operands with `i32` accumulation.
///
/// Same structure as [`gemm_i8_i32`]; `i16` covers unsigned INT8 activation
/// codes (0..=255) and INT16 static-baseline codes.
pub fn gemm_i16_i32(a: &[i16], b: &[i16], c: &mut [i32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");

    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        crow.fill(0);
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0 {
                continue;
            }
            let aik = aik as i32;
            let brow = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj as i32;
            }
        }
    });
}

/// Integer GEMM over `i16` operands with `i64` accumulation — needed for
/// wide static baselines (INT16×INT16 products over deep reductions
/// overflow `i32`).
pub fn gemm_i16_i64(a: &[i16], b: &[i16], c: &mut [i64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");

    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        crow.fill(0);
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0 {
                continue;
            }
            let aik = aik as i64;
            let brow = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj as i64;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn seq(n: usize, mul: usize, add: usize, modv: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * mul + add) % modv) as f32 - (modv / 2) as f32).collect()
    }

    #[test]
    fn gemm_matches_naive() {
        let (m, k, n) = (7, 13, 9);
        let a = seq(m * k, 31, 7, 19);
        let b = seq(k * n, 17, 3, 23);
        let mut c = vec![0.0; m * n];
        gemm_f32(&a, &b, &mut c, m, k, n);
        assert_eq!(c, naive(&a, &b, m, k, n));
    }

    #[test]
    fn gemm_acc_accumulates() {
        let (m, k, n) = (3, 4, 5);
        let a = seq(m * k, 5, 1, 11);
        let b = seq(k * n, 7, 2, 13);
        let mut c = vec![1.0; m * n];
        gemm_f32_acc(&a, &b, &mut c, m, k, n);
        let expect: Vec<f32> = naive(&a, &b, m, k, n).iter().map(|x| x + 1.0).collect();
        assert_eq!(c, expect);
    }

    #[test]
    fn gemm_at_matches_naive_transpose() {
        let (m, k, n) = (4, 6, 5);
        let at = seq(k * m, 29, 5, 17); // A stored as [k, m]
        let b = seq(k * n, 13, 11, 19);
        let mut c = vec![0.0; m * n];
        gemm_f32_at(&at, &b, &mut c, m, k, n);
        // materialize A = transpose(at) and compare.
        let mut a = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                a[i * k + kk] = at[kk * m + i];
            }
        }
        assert_eq!(c, naive(&a, &b, m, k, n));
    }

    #[test]
    fn gemm_bt_matches_naive_transpose() {
        let (m, k, n) = (4, 6, 5);
        let a = seq(m * k, 29, 5, 17);
        let bt = seq(n * k, 13, 11, 19); // B stored as [n, k]
        let mut c = vec![0.0; m * n];
        gemm_f32_bt(&a, &bt, &mut c, m, k, n);
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        assert_eq!(c, naive(&a, &b, m, k, n));
    }

    #[test]
    fn gemm_i8_matches_float() {
        let (m, k, n) = (5, 8, 6);
        let a: Vec<i8> = (0..m * k).map(|i| ((i * 7 + 3) % 15) as i8 - 7).collect();
        let b: Vec<i8> = (0..k * n).map(|i| ((i * 11 + 1) % 15) as i8 - 7).collect();
        let mut c = vec![0i32; m * n];
        gemm_i8_i32(&a, &b, &mut c, m, k, n);
        let af: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let bf: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        let cf = naive(&af, &bf, m, k, n);
        for (x, y) in c.iter().zip(&cf) {
            assert_eq!(*x as f32, *y);
        }
    }

    #[test]
    fn gemm_i16_matches_i8_on_shared_range() {
        let (m, k, n) = (3, 10, 4);
        let a8: Vec<i8> = (0..m * k).map(|i| ((i * 5 + 2) % 31) as i8 - 15).collect();
        let b8: Vec<i8> = (0..k * n).map(|i| ((i * 9 + 4) % 31) as i8 - 15).collect();
        let a16: Vec<i16> = a8.iter().map(|&x| x as i16).collect();
        let b16: Vec<i16> = b8.iter().map(|&x| x as i16).collect();
        let mut c8 = vec![0i32; m * n];
        let mut c16 = vec![0i32; m * n];
        gemm_i8_i32(&a8, &b8, &mut c8, m, k, n);
        gemm_i16_i32(&a16, &b16, &mut c16, m, k, n);
        assert_eq!(c8, c16);
    }

    #[test]
    fn gemm_i64_handles_wide_products() {
        // 16-bit × 16-bit products over a deep reduction overflow i32 but
        // must be exact in i64.
        let (m, k, n) = (1, 1000, 1);
        let a = vec![30_000i16; k];
        let b = vec![30_000i16; k];
        let mut c = vec![0i64; 1];
        gemm_i16_i64(&a, &b, &mut c, m, k, n);
        assert_eq!(c[0], 30_000i64 * 30_000 * 1000);
    }

    #[test]
    #[should_panic(expected = "A length mismatch")]
    fn gemm_rejects_wrong_a_len() {
        let mut c = vec![0.0f32; 4];
        gemm_f32(&[1.0; 3], &[1.0; 4], &mut c, 2, 2, 2);
    }

    #[test]
    #[should_panic(expected = "C length mismatch")]
    fn gemm_rejects_wrong_c_len() {
        let mut c = vec![0.0f32; 3];
        gemm_f32(&[1.0; 4], &[1.0; 4], &mut c, 2, 2, 2);
    }

    #[test]
    fn gemm_degenerate_dims() {
        // 1x1x1
        let mut c = vec![0.0f32];
        gemm_f32(&[3.0], &[4.0], &mut c, 1, 1, 1);
        assert_eq!(c, vec![12.0]);
        // empty k: C must be zeroed
        let mut c2 = vec![9.0f32; 4];
        gemm_f32(&[], &[], &mut c2, 2, 0, 2);
        assert_eq!(c2, vec![0.0; 4]);
    }
}
