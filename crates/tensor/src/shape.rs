//! Shapes and convolution geometry.

use std::fmt;

/// A tensor shape: dimension sizes in row-major (outermost-first) order.
///
/// Convolutional tensors use the NCHW convention:
/// `[batch, channels, height, width]`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Dimension size at `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

/// Geometry of a 2-D convolution: all the integer parameters that determine
/// the mapping between an input feature map and an output feature map.
///
/// This is the single source of truth used by the float reference
/// convolution, the integer (quantized) convolutions, the ODQ
/// predictor/executor, and the accelerator simulator's workload model —
/// keeping MAC counts and receptive-field bookkeeping consistent everywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvGeom {
    /// Input channels (`N` in the paper's Eq. 2).
    pub in_channels: usize,
    /// Output channels (number of filters).
    pub out_channels: usize,
    /// Input spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
    /// Square kernel spatial size (`K` in Eq. 2).
    pub kernel: usize,
    /// Stride (`S` in Eq. 2).
    pub stride: usize,
    /// Zero padding applied symmetrically on all sides.
    pub padding: usize,
}

impl ConvGeom {
    /// Construct a geometry, checking that the output size is positive.
    ///
    /// # Panics
    /// Panics if the kernel does not fit into the padded input.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(kernel > 0, "kernel must be positive");
        assert!(
            in_h + 2 * padding >= kernel && in_w + 2 * padding >= kernel,
            "kernel {kernel} does not fit input {in_h}x{in_w} with padding {padding}"
        );
        Self { in_channels, out_channels, in_h, in_w, kernel, stride, padding }
    }

    /// Output feature-map height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output feature-map width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Number of output features per output channel (one OFM's spatial size).
    pub fn out_spatial(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Number of output features across all output channels, per image.
    pub fn out_features(&self) -> usize {
        self.out_channels * self.out_spatial()
    }

    /// Length of one im2col column: the receptive-field size of one output
    /// feature (`C_in * K * K` — the number of MACs needed for one output).
    pub fn col_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Total multiply-accumulate operations per image for this layer.
    pub fn macs(&self) -> u64 {
        self.col_len() as u64 * self.out_features() as u64
    }

    /// Weight tensor shape for this geometry: `[C_out, C_in, K, K]`.
    pub fn weight_shape(&self) -> Shape {
        Shape(vec![self.out_channels, self.in_channels, self.kernel, self.kernel])
    }

    /// Input tensor shape (single image): `[C_in, H, W]` prefixed by batch `n`.
    pub fn input_shape(&self, n: usize) -> Shape {
        Shape(vec![n, self.in_channels, self.in_h, self.in_w])
    }

    /// Output tensor shape for a batch of `n` images.
    pub fn output_shape(&self, n: usize) -> Shape {
        Shape(vec![n, self.out_channels, self.out_h(), self.out_w()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_numel_and_strides() {
        let s = Shape::from([2, 3, 4, 5]);
        assert_eq!(s.numel(), 120);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
        assert_eq!(s.ndim(), 4);
        assert_eq!(s.dim(2), 4);
    }

    #[test]
    fn shape_scalar_and_1d() {
        let s = Shape::from(vec![7]);
        assert_eq!(s.numel(), 7);
        assert_eq!(s.strides(), vec![1]);
        let empty = Shape(vec![]);
        assert_eq!(empty.numel(), 1);
        assert!(empty.strides().is_empty());
    }

    #[test]
    fn conv_geom_same_padding() {
        // 3x3 kernel, stride 1, pad 1 preserves spatial dims.
        let g = ConvGeom::new(16, 32, 32, 32, 3, 1, 1);
        assert_eq!(g.out_h(), 32);
        assert_eq!(g.out_w(), 32);
        assert_eq!(g.out_features(), 32 * 32 * 32);
        assert_eq!(g.col_len(), 16 * 9);
        assert_eq!(g.macs(), (16 * 9) as u64 * (32 * 32 * 32) as u64);
    }

    #[test]
    fn conv_geom_strided() {
        let g = ConvGeom::new(3, 16, 32, 32, 3, 2, 1);
        assert_eq!(g.out_h(), 16);
        assert_eq!(g.out_w(), 16);
    }

    #[test]
    fn conv_geom_1x1() {
        let g = ConvGeom::new(64, 128, 8, 8, 1, 1, 0);
        assert_eq!(g.out_h(), 8);
        assert_eq!(g.col_len(), 64);
        assert_eq!(g.weight_shape(), Shape::from([128, 64, 1, 1]));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn conv_geom_rejects_oversized_kernel() {
        ConvGeom::new(3, 8, 4, 4, 7, 1, 0);
    }

    #[test]
    fn conv_geom_shapes() {
        let g = ConvGeom::new(3, 16, 32, 32, 3, 1, 1);
        assert_eq!(g.input_shape(4), Shape::from([4, 3, 32, 32]));
        assert_eq!(g.output_shape(4), Shape::from([4, 16, 32, 32]));
    }
}
