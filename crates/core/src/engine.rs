//! [`OdqEngine`] — run whole models under ODQ.

use std::collections::HashMap;
use std::sync::Arc;

use odq_nn::executor::{ConvCtx, ConvExecutor};
use odq_quant::plan::{PlanCache, PlanSpec};
use odq_tensor::Tensor;

use crate::odq_conv::{odq_conv2d_planned, odq_conv2d_sparse_planned, OdqCfg};
use crate::stats::{LayerStats, OdqStats};

/// Threshold policy: one global value (the paper's choice — "we use the
/// same threshold across all layers", Sec. 6.4) or per-layer overrides
/// (exposed for the threshold-granularity ablation).
#[derive(Clone, Debug)]
pub enum ThresholdPolicy {
    /// One threshold for every layer.
    Global(f32),
    /// Per-layer thresholds by layer name, with a fallback default.
    PerLayer {
        /// Name → threshold map.
        map: HashMap<String, f32>,
        /// Fallback for unlisted layers.
        default: f32,
    },
}

impl ThresholdPolicy {
    fn for_layer(&self, name: &str) -> f32 {
        match self {
            ThresholdPolicy::Global(t) => *t,
            ThresholdPolicy::PerLayer { map, default } => *map.get(name).unwrap_or(default),
        }
    }
}

/// A [`ConvExecutor`] that executes every conv layer with output-directed
/// dynamic quantization and records per-layer statistics.
pub struct OdqEngine {
    /// Base ODQ configuration (bits, clip, low-plane width). The
    /// per-layer threshold comes from `policy`.
    pub cfg: OdqCfg,
    /// Threshold policy.
    pub policy: ThresholdPolicy,
    /// Whether to record statistics (mask fractions, precision loss,
    /// per-channel workloads). Recording costs memory per pass.
    pub record: bool,
    /// Execute with the genuinely sparse executor path
    /// ([`crate::odq_conv::odq_conv2d_sparse`]): insensitive outputs are
    /// never computed at full precision, so the work actually performed is
    /// proportional to the sensitive fraction — what the accelerator does.
    /// The dense path computes everything and masks afterwards (identical
    /// outputs; cheaper on CPU via GEMM, and required for precision-loss
    /// statistics). Ignored while `record` is set.
    pub sparse: bool,
    /// Accumulated statistics.
    pub stats: OdqStats,
    plans: Arc<PlanCache>,
    stats_index: HashMap<String, usize>,
}

impl OdqEngine {
    /// Engine with a global threshold and the 4/2-bit configuration.
    pub fn new(threshold: f32) -> Self {
        Self::with_plan_cache(threshold, Arc::new(PlanCache::new()))
    }

    /// Engine with a global threshold sharing an existing plan cache —
    /// several engines (e.g. a serve worker fleet) pointed at one cache
    /// quantize and bit-split each layer's weights exactly once.
    pub fn with_plan_cache(threshold: f32, plans: Arc<PlanCache>) -> Self {
        Self {
            cfg: OdqCfg::int4(threshold),
            policy: ThresholdPolicy::Global(threshold),
            record: true,
            sparse: false,
            stats: OdqStats::default(),
            plans,
            stats_index: HashMap::new(),
        }
    }

    /// Engine with per-layer thresholds.
    pub fn with_per_layer(map: HashMap<String, f32>, default: f32) -> Self {
        Self::with_per_layer_plan_cache(map, default, Arc::new(PlanCache::new()))
    }

    /// Engine with per-layer thresholds sharing an existing plan cache —
    /// the per-layer analogue of [`with_plan_cache`](Self::with_plan_cache),
    /// used when a routed executor or serve worker points several engines
    /// at one model's cache.
    pub fn with_per_layer_plan_cache(
        map: HashMap<String, f32>,
        default: f32,
        plans: Arc<PlanCache>,
    ) -> Self {
        Self {
            cfg: OdqCfg::int4(default),
            policy: ThresholdPolicy::PerLayer { map, default },
            record: true,
            sparse: false,
            stats: OdqStats::default(),
            plans,
            stats_index: HashMap::new(),
        }
    }

    /// The shared plan cache (prepacked weights + workspace pool).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// Drop cached layer plans (call if model weights changed — though the
    /// cache also self-invalidates via its full-content fingerprint).
    pub fn invalidate_weights(&mut self) {
        self.plans.invalidate();
    }

    /// Clear accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.stats_index.clear();
    }

    fn stats_entry(&mut self, ctx: &ConvCtx<'_>) -> &mut LayerStats {
        // The index is advisory: callers may drain `stats` directly (the
        // serve worker calls `stats.take()`), so validate before trusting
        // it and rebuild the entry when it no longer points at `ctx.name`.
        if let Some(&i) = self.stats_index.get(ctx.name) {
            if self.stats.layers.get(i).is_some_and(|l| l.name == ctx.name) {
                return &mut self.stats.layers[i];
            }
        }
        let idx = match self.stats.layers.iter().position(|l| l.name == ctx.name) {
            Some(pos) => pos,
            None => {
                self.stats.layers.push(LayerStats::new(ctx.name, ctx.geom));
                self.stats.layers.len() - 1
            }
        };
        self.stats_index.insert(ctx.name.to_string(), idx);
        &mut self.stats.layers[idx]
    }
}

impl ConvExecutor for OdqEngine {
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let threshold = self.policy.for_layer(ctx.name);
        let cfg = OdqCfg { threshold, ..self.cfg };
        let spec = PlanSpec::odq(cfg.w_bits, cfg.low_bits);
        let plan = self.plans.plan_for(ctx.name, ctx.weights, spec);
        let pool = self.plans.pool();

        if self.sparse && !self.record {
            let r = odq_conv2d_sparse_planned(x, &plan, ctx.bias, &ctx.geom, &cfg, pool);
            return r.output;
        }

        let qx = odq_quant::quantize_activation(x, cfg.a_bits, cfg.a_clip);
        let r = odq_conv2d_planned(&qx, &plan, ctx.bias, &ctx.geom, &cfg, pool);

        if self.record {
            let spatial = ctx.geom.out_spatial();
            let co = ctx.geom.out_channels;
            let entry = self.stats_entry(ctx);
            entry.total_outputs += r.mask.len() as u64;
            entry.sensitive_outputs += r.mask.sensitive_count() as u64;
            entry.channel_counts.extend(r.mask.channel_counts());
            // Precision loss over reference-sensitive outputs. The mask is
            // thresholded on *pre-bias* predictor estimates, so classify
            // the reference pre-bias too (subtract the channel bias).
            let out = r.output.as_slice();
            let rf = r.reference.as_slice();
            for (i, (&o, &f)) in out.iter().zip(rf).enumerate() {
                let b = ctx.bias.map_or(0.0, |bs| bs[(i / spatial) % co]);
                if (f - b).abs() >= threshold {
                    entry.reference_sensitive += 1;
                    entry.precision_loss_sum += (o - f).abs() as f64;
                }
            }
        }
        r.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_data::SynthSpec;
    use odq_nn::executor::FloatConvExecutor;
    use odq_nn::models::{Model, ModelCfg};
    use odq_nn::train::evaluate;
    use odq_nn::Arch;

    fn small_model() -> Model {
        let mut cfg = ModelCfg::small(Arch::ResNet20, 10);
        cfg.input_hw = 8;
        Model::build(cfg)
    }

    #[test]
    fn engine_runs_model_and_records_stats() {
        let m = small_model();
        let data = SynthSpec::cifar10(8).generate(4);
        let mut engine = OdqEngine::new(0.3);
        let y = m.forward_eval(&data.images, &mut engine);
        assert_eq!(y.dims(), &[4, 10]);
        assert!(!engine.stats.layers.is_empty());
        for l in &engine.stats.layers {
            assert!(l.total_outputs > 0, "{} recorded no outputs", l.name);
            assert!(!l.channel_counts.is_empty());
        }
    }

    #[test]
    fn zero_threshold_matches_static_int4() {
        // At threshold 0 everything is sensitive and ODQ degenerates to a
        // plain INT4 static quantization — model outputs must agree with
        // the StaticQuantExecutor's.
        let m = small_model();
        let data = SynthSpec::cifar10(8).generate(2);
        let mut odq = OdqEngine::new(0.0);
        let y_odq = m.forward_eval(&data.images, &mut odq);
        let mut int4 = odq_nn::executor::StaticQuantExecutor::int(4);
        let y_int4 = m.forward_eval(&data.images, &mut int4);
        assert!(y_odq.max_abs_diff(&y_int4) < 1e-3);
    }

    #[test]
    fn threshold_controls_sensitive_fraction() {
        let m = small_model();
        let data = SynthSpec::cifar10(8).generate(4);
        let mut lo = OdqEngine::new(0.05);
        let _ = m.forward_eval(&data.images, &mut lo);
        let mut hi = OdqEngine::new(0.8);
        let _ = m.forward_eval(&data.images, &mut hi);
        assert!(
            lo.stats.overall_sensitive_fraction() > hi.stats.overall_sensitive_fraction(),
            "lower threshold must mark more outputs sensitive"
        );
    }

    #[test]
    fn per_layer_policy_overrides() {
        let mut map = HashMap::new();
        map.insert("C1".to_string(), f32::INFINITY);
        let m = small_model();
        let data = SynthSpec::cifar10(8).generate(2);
        let mut engine = OdqEngine::with_per_layer(map, 0.0);
        let _ = m.forward_eval(&data.images, &mut engine);
        let c1 = engine.stats.layer("C1").expect("C1 present");
        assert_eq!(c1.sensitive_outputs, 0, "C1 forced all-insensitive");
        let c2 = engine.stats.layer("C2").expect("C2 present");
        assert_eq!(c2.sensitive_outputs, c2.total_outputs, "C2 all-sensitive at thr 0");
    }

    #[test]
    fn sparse_engine_matches_dense_engine() {
        let m = small_model();
        let data = SynthSpec::cifar10(8).generate(3);
        let mut dense = OdqEngine::new(0.3);
        dense.record = false;
        let yd = m.forward_eval(&data.images, &mut dense);
        let mut sparse = OdqEngine::new(0.3);
        sparse.record = false;
        sparse.sparse = true;
        let ys = m.forward_eval(&data.images, &mut sparse);
        assert!(yd.max_abs_diff(&ys) < 1e-3, "diff {}", yd.max_abs_diff(&ys));
    }

    #[test]
    fn forward_lowers_each_layer_image_pair_exactly_once() {
        // The single-lowering invariant: an ODQ forward performs exactly
        // one im2col per (conv layer, image), counted by the shared
        // workspace pool — not the 3+ the unplanned pipeline needed.
        let m = small_model();
        let batch = 4;
        let data = SynthSpec::cifar10(8).generate(batch);
        let mut engine = OdqEngine::new(0.3);
        let _ = m.forward_eval(&data.images, &mut engine);
        let layers = engine.stats.layers.len() as u64;
        assert!(layers > 1, "model must have several conv layers");
        assert_eq!(
            engine.plan_cache().pool().lowerings(),
            layers * batch as u64,
            "exactly one lowering per (layer, image)"
        );
        // Plans are built once per layer and reused across batches.
        assert_eq!(engine.plan_cache().builds(), layers);
        let _ = m.forward_eval(&data.images, &mut engine);
        assert_eq!(engine.plan_cache().builds(), layers, "second pass must hit the plan cache");
        assert_eq!(engine.plan_cache().pool().lowerings(), 2 * layers * batch as u64);
    }

    #[test]
    fn shared_plan_cache_builds_each_layer_once_across_engines() {
        let m = small_model();
        let data = SynthSpec::cifar10(8).generate(2);
        let plans = Arc::new(PlanCache::new());
        let mut a = OdqEngine::with_plan_cache(0.3, Arc::clone(&plans));
        let mut b = OdqEngine::with_plan_cache(0.3, Arc::clone(&plans));
        let ya = m.forward_eval(&data.images, &mut a);
        let yb = m.forward_eval(&data.images, &mut b);
        assert_eq!(ya.as_slice(), yb.as_slice());
        assert_eq!(plans.builds(), a.stats.layers.len() as u64, "one build per layer, shared");
    }

    #[test]
    fn odq_accuracy_close_to_float_on_trained_toyset() {
        // Train briefly on synthetic data; ODQ at a modest threshold should
        // lose little accuracy vs the float evaluation.
        use odq_nn::train::{train_epoch, SgdCfg};
        let mut cfg = ModelCfg::small(Arch::ResNet20, 4);
        cfg.input_hw = 8;
        let mut m = Model::build(cfg);
        let mut spec = SynthSpec::cifar10(8);
        spec.num_classes = 4;
        let (train, test) = spec.generate_split(64, 32);
        let mut rng = odq_nn::param::init_rng(3);
        let sgd = SgdCfg { lr: 0.08, momentum: 0.9, weight_decay: 1e-4, grad_clip: 5.0 };
        for _ in 0..6 {
            train_epoch(&mut m, &train.images, &train.labels, 16, &sgd, &mut rng);
        }
        let acc_float = evaluate(&m, &test.images, &test.labels, 16, &mut FloatConvExecutor);
        let mut engine = OdqEngine::new(0.2);
        let acc_odq = evaluate(&m, &test.images, &test.labels, 16, &mut engine);
        assert!(acc_float > 0.5, "float baseline should learn something: {acc_float}");
        assert!(
            acc_odq >= acc_float - 0.25,
            "ODQ should not collapse accuracy: float={acc_float} odq={acc_odq}"
        );
    }
}
