//! [`OdqEngine`] — run whole models under ODQ.

use std::collections::HashMap;

use odq_nn::executor::{ConvCtx, ConvExecutor};
use odq_quant::{quantize_weights, QTensor};
use odq_tensor::Tensor;

use crate::odq_conv::{odq_conv2d_quantized, OdqCfg};
use crate::stats::{LayerStats, OdqStats};

/// Threshold policy: one global value (the paper's choice — "we use the
/// same threshold across all layers", Sec. 6.4) or per-layer overrides
/// (exposed for the threshold-granularity ablation).
#[derive(Clone, Debug)]
pub enum ThresholdPolicy {
    /// One threshold for every layer.
    Global(f32),
    /// Per-layer thresholds by layer name, with a fallback default.
    PerLayer {
        /// Name → threshold map.
        map: HashMap<String, f32>,
        /// Fallback for unlisted layers.
        default: f32,
    },
}

impl ThresholdPolicy {
    fn for_layer(&self, name: &str) -> f32 {
        match self {
            ThresholdPolicy::Global(t) => *t,
            ThresholdPolicy::PerLayer { map, default } => *map.get(name).unwrap_or(default),
        }
    }
}

/// A [`ConvExecutor`] that executes every conv layer with output-directed
/// dynamic quantization and records per-layer statistics.
pub struct OdqEngine {
    /// Base ODQ configuration (bits, clip, low-plane width). The
    /// per-layer threshold comes from `policy`.
    pub cfg: OdqCfg,
    /// Threshold policy.
    pub policy: ThresholdPolicy,
    /// Whether to record statistics (mask fractions, precision loss,
    /// per-channel workloads). Recording costs memory per pass.
    pub record: bool,
    /// Execute with the genuinely sparse executor path
    /// ([`crate::odq_conv::odq_conv2d_sparse`]): insensitive outputs are
    /// never computed at full precision, so the work actually performed is
    /// proportional to the sensitive fraction — what the accelerator does.
    /// The dense path computes everything and masks afterwards (identical
    /// outputs; cheaper on CPU via GEMM, and required for precision-loss
    /// statistics). Ignored while `record` is set.
    pub sparse: bool,
    /// Accumulated statistics.
    pub stats: OdqStats,
    weight_cache: HashMap<String, (u64, QTensor)>,
}

impl OdqEngine {
    /// Engine with a global threshold and the 4/2-bit configuration.
    pub fn new(threshold: f32) -> Self {
        Self {
            cfg: OdqCfg::int4(threshold),
            policy: ThresholdPolicy::Global(threshold),
            record: true,
            sparse: false,
            stats: OdqStats::default(),
            weight_cache: HashMap::new(),
        }
    }

    /// Engine with per-layer thresholds.
    pub fn with_per_layer(map: HashMap<String, f32>, default: f32) -> Self {
        Self {
            cfg: OdqCfg::int4(default),
            policy: ThresholdPolicy::PerLayer { map, default },
            record: true,
            sparse: false,
            stats: OdqStats::default(),
            weight_cache: HashMap::new(),
        }
    }

    /// Drop cached quantized weights (call if model weights changed).
    pub fn invalidate_weights(&mut self) {
        self.weight_cache.clear();
    }

    /// Clear accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn stats_entry(&mut self, ctx: &ConvCtx<'_>) -> &mut LayerStats {
        if let Some(pos) = self.stats.layers.iter().position(|l| l.name == ctx.name) {
            &mut self.stats.layers[pos]
        } else {
            self.stats.layers.push(LayerStats::new(ctx.name, ctx.geom));
            self.stats.layers.last_mut().expect("just pushed")
        }
    }
}

/// Cheap weight fingerprint: length plus the bit patterns of a few sampled
/// elements and a strided partial sum. Any gradient step perturbs it.
fn weight_fingerprint(w: &Tensor) -> u64 {
    let s = w.as_slice();
    let mut h = s.len() as u64;
    let mix = |h: u64, v: f32| (h ^ v.to_bits() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if let Some(&v) = s.first() {
        h = mix(h, v);
    }
    if let Some(&v) = s.get(s.len() / 2) {
        h = mix(h, v);
    }
    if let Some(&v) = s.last() {
        h = mix(h, v);
    }
    let mut acc = 0.0f32;
    for &v in s.iter().step_by((s.len() / 16).max(1)) {
        acc += v;
    }
    mix(h, acc)
}

impl ConvExecutor for OdqEngine {
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let threshold = self.policy.for_layer(ctx.name);
        let cfg = OdqCfg { threshold, ..self.cfg };

        if self.sparse && !self.record {
            let r = crate::odq_conv::odq_conv2d_sparse(x, ctx.weights, ctx.bias, &ctx.geom, &cfg);
            return r.output;
        }

        // Cache quantized weights per layer, fingerprinted against the raw
        // weights so retraining between passes cannot serve stale codes
        // (sampling a few elements is enough to catch any SGD update).
        // Refresh the entry if stale, then borrow it — no per-call clone of
        // the code tensor.
        let fp = weight_fingerprint(ctx.weights);
        let stale = !matches!(self.weight_cache.get(ctx.name), Some((f, _)) if *f == fp);
        if stale {
            let qw = quantize_weights(ctx.weights, cfg.w_bits);
            self.weight_cache.insert(ctx.name.to_string(), (fp, qw));
        }
        let qw = &self.weight_cache.get(ctx.name).expect("just ensured").1;
        let qx = odq_quant::quantize_activation(x, cfg.a_bits, cfg.a_clip);
        let r = odq_conv2d_quantized(&qx, qw, ctx.bias, &ctx.geom, &cfg);

        if self.record {
            let spatial = ctx.geom.out_spatial();
            let co = ctx.geom.out_channels;
            let entry = self.stats_entry(ctx);
            entry.total_outputs += r.mask.len() as u64;
            entry.sensitive_outputs += r.mask.sensitive_count() as u64;
            entry.channel_counts.extend(r.mask.channel_counts());
            // Precision loss over reference-sensitive outputs. The mask is
            // thresholded on *pre-bias* predictor estimates, so classify
            // the reference pre-bias too (subtract the channel bias).
            let out = r.output.as_slice();
            let rf = r.reference.as_slice();
            for (i, (&o, &f)) in out.iter().zip(rf).enumerate() {
                let b = ctx.bias.map_or(0.0, |bs| bs[(i / spatial) % co]);
                if (f - b).abs() >= threshold {
                    entry.reference_sensitive += 1;
                    entry.precision_loss_sum += (o - f).abs() as f64;
                }
            }
        }
        r.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_data::SynthSpec;
    use odq_nn::executor::FloatConvExecutor;
    use odq_nn::models::{Model, ModelCfg};
    use odq_nn::train::evaluate;
    use odq_nn::Arch;

    fn small_model() -> Model {
        let mut cfg = ModelCfg::small(Arch::ResNet20, 10);
        cfg.input_hw = 8;
        Model::build(cfg)
    }

    #[test]
    fn engine_runs_model_and_records_stats() {
        let m = small_model();
        let data = SynthSpec::cifar10(8).generate(4);
        let mut engine = OdqEngine::new(0.3);
        let y = m.forward_eval(&data.images, &mut engine);
        assert_eq!(y.dims(), &[4, 10]);
        assert!(!engine.stats.layers.is_empty());
        for l in &engine.stats.layers {
            assert!(l.total_outputs > 0, "{} recorded no outputs", l.name);
            assert!(!l.channel_counts.is_empty());
        }
    }

    #[test]
    fn zero_threshold_matches_static_int4() {
        // At threshold 0 everything is sensitive and ODQ degenerates to a
        // plain INT4 static quantization — model outputs must agree with
        // the StaticQuantExecutor's.
        let m = small_model();
        let data = SynthSpec::cifar10(8).generate(2);
        let mut odq = OdqEngine::new(0.0);
        let y_odq = m.forward_eval(&data.images, &mut odq);
        let mut int4 = odq_nn::executor::StaticQuantExecutor::int(4);
        let y_int4 = m.forward_eval(&data.images, &mut int4);
        assert!(y_odq.max_abs_diff(&y_int4) < 1e-3);
    }

    #[test]
    fn threshold_controls_sensitive_fraction() {
        let m = small_model();
        let data = SynthSpec::cifar10(8).generate(4);
        let mut lo = OdqEngine::new(0.05);
        let _ = m.forward_eval(&data.images, &mut lo);
        let mut hi = OdqEngine::new(0.8);
        let _ = m.forward_eval(&data.images, &mut hi);
        assert!(
            lo.stats.overall_sensitive_fraction() > hi.stats.overall_sensitive_fraction(),
            "lower threshold must mark more outputs sensitive"
        );
    }

    #[test]
    fn per_layer_policy_overrides() {
        let mut map = HashMap::new();
        map.insert("C1".to_string(), f32::INFINITY);
        let m = small_model();
        let data = SynthSpec::cifar10(8).generate(2);
        let mut engine = OdqEngine::with_per_layer(map, 0.0);
        let _ = m.forward_eval(&data.images, &mut engine);
        let c1 = engine.stats.layer("C1").expect("C1 present");
        assert_eq!(c1.sensitive_outputs, 0, "C1 forced all-insensitive");
        let c2 = engine.stats.layer("C2").expect("C2 present");
        assert_eq!(c2.sensitive_outputs, c2.total_outputs, "C2 all-sensitive at thr 0");
    }

    #[test]
    fn sparse_engine_matches_dense_engine() {
        let m = small_model();
        let data = SynthSpec::cifar10(8).generate(3);
        let mut dense = OdqEngine::new(0.3);
        dense.record = false;
        let yd = m.forward_eval(&data.images, &mut dense);
        let mut sparse = OdqEngine::new(0.3);
        sparse.record = false;
        sparse.sparse = true;
        let ys = m.forward_eval(&data.images, &mut sparse);
        assert!(yd.max_abs_diff(&ys) < 1e-3, "diff {}", yd.max_abs_diff(&ys));
    }

    #[test]
    fn odq_accuracy_close_to_float_on_trained_toyset() {
        // Train briefly on synthetic data; ODQ at a modest threshold should
        // lose little accuracy vs the float evaluation.
        use odq_nn::train::{train_epoch, SgdCfg};
        let mut cfg = ModelCfg::small(Arch::ResNet20, 4);
        cfg.input_hw = 8;
        let mut m = Model::build(cfg);
        let mut spec = SynthSpec::cifar10(8);
        spec.num_classes = 4;
        let (train, test) = spec.generate_split(64, 32);
        let mut rng = odq_nn::param::init_rng(3);
        let sgd = SgdCfg { lr: 0.08, momentum: 0.9, weight_decay: 1e-4, grad_clip: 5.0 };
        for _ in 0..6 {
            train_epoch(&mut m, &train.images, &train.labels, 16, &sgd, &mut rng);
        }
        let acc_float = evaluate(&m, &test.images, &test.labels, 16, &mut FloatConvExecutor);
        let mut engine = OdqEngine::new(0.2);
        let acc_odq = evaluate(&m, &test.images, &test.labels, 16, &mut engine);
        assert!(acc_float > 0.5, "float baseline should learn something: {acc_float}");
        assert!(
            acc_odq >= acc_float - 0.25,
            "ODQ should not collapse accuracy: float={acc_float} odq={acc_odq}"
        );
    }
}
