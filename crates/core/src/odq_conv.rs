//! The masked two-step ODQ convolution.

use odq_quant::plan::QConvPlan;
use odq_quant::predict::{odq_estimate_precomputed, odq_predict, odq_predict_from_hh};
use odq_quant::qconv::{
    accumulate_column_rows, combine_planes, qconv2d_planes, qconv2d_planes_fused, receptive_sums,
};
use odq_quant::{quantize_activation, quantize_weights, split_qtensor, QTensor};
use odq_tensor::gemm::gemm_i16_i32;
use odq_tensor::im2col::im2col;
use odq_tensor::workspace::WorkspacePool;
use odq_tensor::{ConvGeom, Tensor};
use rayon::prelude::*;

use odq_nn::executor::add_bias;

use crate::mask::SensitivityMask;

/// ODQ configuration (the paper's default is 4-bit operands split 2/2).
#[derive(Clone, Copy, Debug)]
pub struct OdqCfg {
    /// Activation bit width (high + low planes).
    pub a_bits: u8,
    /// Weight bit width.
    pub w_bits: u8,
    /// Activation clip bound for quantization.
    pub a_clip: f32,
    /// Bit width of the low-order planes (`N_LBS`): the predictor uses the
    /// remaining `a_bits - low_bits` high-order bits.
    pub low_bits: u8,
    /// Sensitivity threshold in the dequantized output domain: predictor
    /// estimates with `|p̂| >= threshold` are sensitive.
    pub threshold: f32,
}

impl OdqCfg {
    /// The paper's 4/2-bit configuration with a given threshold.
    pub fn int4(threshold: f32) -> Self {
        Self { a_bits: 4, w_bits: 4, a_clip: 1.0, low_bits: 2, threshold }
    }
}

/// Result of an ODQ convolution.
pub struct OdqConvOutput {
    /// Final outputs (dequantized f32), `[N, Co, OH, OW]`.
    pub output: Tensor,
    /// The predictor's sensitivity mask.
    pub mask: SensitivityMask,
    /// The exact INT4 reference output (both planes everywhere) — what a
    /// non-dynamic INT4 conv would produce. Used for precision-loss
    /// accounting; computed from the same plane products at no extra GEMM
    /// cost.
    pub reference: Tensor,
}

/// Run the two-step ODQ convolution (dense instrumentation form).
///
/// Computes all four Eq. 3 plane products with GEMM, derives the predictor
/// mask from the [`odq_predict`] estimate, and composes the final output as
/// `sensitive ? exact_int4 : predictor_estimate`. Numerically identical to
/// the sparse execution the accelerator performs; this form also yields
/// the INT4 reference output for free.
pub fn odq_conv2d(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    g: &ConvGeom,
    cfg: &OdqCfg,
) -> OdqConvOutput {
    let qx = quantize_activation(x, cfg.a_bits, cfg.a_clip);
    let qw = quantize_weights(w, cfg.w_bits);
    odq_conv2d_quantized(&qx, &qw, bias, g, cfg)
}

/// [`odq_conv2d`] over pre-quantized operands (lets engines cache weight
/// quantization across calls).
pub fn odq_conv2d_quantized(
    qx: &QTensor,
    qw: &QTensor,
    bias: Option<&[f32]>,
    g: &ConvGeom,
    cfg: &OdqCfg,
) -> OdqConvOutput {
    let xp = split_qtensor(qx, cfg.low_bits);
    let wp = split_qtensor(qw, cfg.low_bits);
    let scale = qx.scale * qw.scale;

    // All four Eq. 3 plane products (the instrumented path needs them for
    // the exact reference anyway); the predictor estimate reuses the HH
    // product rather than recomputing its GEMM.
    let planes = qconv2d_planes(&xp, &wp, g);
    let pred = odq_predict_from_hh(planes.hh.clone(), &xp.high, &wp, qw.zero, scale, g);
    let full_codes = combine_planes(&planes);
    let sa = receptive_sums(&qx.codes, g);

    let n = qx.codes.dims()[0];
    let spatial = g.out_spatial();
    let co = g.out_channels;
    let total = n * co * spatial;

    let mut bits = vec![false; total];
    let mut out = vec![0.0f32; total];
    let mut reference = vec![0.0f32; total];
    {
        let est = pred.estimate.as_slice();
        let fc = full_codes.as_slice();
        let sas = sa.as_slice();
        for img in 0..n {
            for f in 0..co {
                let base = (img * co + f) * spatial;
                for sp in 0..spatial {
                    let i = base + sp;
                    let full = scale * (fc[i] as f32 - qw.zero * sas[img * spatial + sp] as f32);
                    let p_hat = est[i];
                    let sensitive = p_hat.abs() >= cfg.threshold;
                    bits[i] = sensitive;
                    out[i] = if sensitive { full } else { p_hat };
                    reference[i] = full;
                }
            }
        }
    }

    let mut output = Tensor::from_vec(g.output_shape(n), out);
    let mut reference = Tensor::from_vec(g.output_shape(n), reference);
    if let Some(b) = bias {
        add_bias(&mut output, b, g);
        add_bias(&mut reference, b, g);
    }

    OdqConvOutput { output, mask: SensitivityMask::new(n, co, spatial, bits), reference }
}

/// [`odq_conv2d_quantized`] over a prepacked layer plan and a shared
/// workspace pool: the weight planes and predictor constants come from the
/// plan (built once per weight version), and each image's activations are
/// lowered exactly once — the fused kernel feeds all four plane GEMMs and
/// both receptive-sum accumulators from that single column matrix.
///
/// Bit-identical to the unplanned path: plane derivation in the column
/// domain is exact, reduction orders are unchanged, and the estimate's f32
/// arithmetic matches [`odq_predict_from_hh`] operation for operation.
///
/// # Panics
/// Panics if the plan was not built for an ODQ spec matching `cfg`
/// (`w_bits` and `low_bits` must agree).
pub fn odq_conv2d_planned(
    qx: &QTensor,
    plan: &QConvPlan,
    bias: Option<&[f32]>,
    g: &ConvGeom,
    cfg: &OdqCfg,
    pool: &WorkspacePool,
) -> OdqConvOutput {
    let wp = plan.planes.as_ref().expect("plan lacks ODQ bit planes");
    assert_eq!(wp.low_bits, cfg.low_bits, "plan low_bits mismatch");
    assert_eq!(plan.spec.w_bits, cfg.w_bits, "plan w_bits mismatch");
    let qw = &plan.qw;
    let scale = qx.scale * qw.scale;

    let lowered = qconv2d_planes_fused(&qx.codes, wp, g, pool);
    let valid = plan.valid_taps(g);
    let est = odq_estimate_precomputed(
        &lowered.planes.hh,
        &lowered.sa_h,
        &plan.sum_nh,
        &plan.sum_nl,
        &valid,
        cfg.low_bits,
        qw.zero,
        scale,
        g,
    );
    let full_codes = combine_planes(&lowered.planes);

    let n = qx.codes.dims()[0];
    let spatial = g.out_spatial();
    let co = g.out_channels;
    let total = n * co * spatial;

    let mut bits = vec![false; total];
    let mut out = vec![0.0f32; total];
    let mut reference = vec![0.0f32; total];
    {
        let est = est.as_slice();
        let fc = full_codes.as_slice();
        let sas = lowered.sa.as_slice();
        for img in 0..n {
            for f in 0..co {
                let base = (img * co + f) * spatial;
                for sp in 0..spatial {
                    let i = base + sp;
                    let full = scale * (fc[i] as f32 - qw.zero * sas[img * spatial + sp] as f32);
                    let p_hat = est[i];
                    let sensitive = p_hat.abs() >= cfg.threshold;
                    bits[i] = sensitive;
                    out[i] = if sensitive { full } else { p_hat };
                    reference[i] = full;
                }
            }
        }
    }

    let mut output = Tensor::from_vec(g.output_shape(n), out);
    let mut reference = Tensor::from_vec(g.output_shape(n), reference);
    if let Some(b) = bias {
        add_bias(&mut output, b, g);
        add_bias(&mut reference, b, g);
    }

    OdqConvOutput { output, mask: SensitivityMask::new(n, co, spatial, bits), reference }
}

/// Genuinely sparse ODQ execution: the predictor runs densely (it must —
/// it produces the mask), then the executor computes the three remaining
/// cross terms and the exact receptive sum **only** for sensitive outputs
/// via per-output dot products, exactly like the accelerator's executor
/// PEs.
///
/// Returns the same output as [`odq_conv2d`]; exists to demonstrate (and
/// benchmark) that the executor work really is proportional to the
/// sensitive fraction.
pub fn odq_conv2d_sparse(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    g: &ConvGeom,
    cfg: &OdqCfg,
) -> OdqConvOutput {
    let qx = quantize_activation(x, cfg.a_bits, cfg.a_clip);
    let qw = quantize_weights(w, cfg.w_bits);
    let xp = split_qtensor(&qx, cfg.low_bits);
    let wp = split_qtensor(&qw, cfg.low_bits);
    let scale = qx.scale * qw.scale;
    let shift = cfg.low_bits;
    let pow = 1i64 << shift;

    let pred = odq_predict(&xp.high, &wp, qw.zero, scale, g);

    let n = x.dims()[0];
    let spatial = g.out_spatial();
    let co = g.out_channels;
    let col_len = g.col_len();
    let total = n * co * spatial;
    let mut bits = vec![false; total];
    let mut out = vec![0.0f32; total];

    let wh = wp.high.as_slice();
    let wl = wp.low.as_slice();
    let hhs = pred.hh.as_slice();
    let sahs = pred.sa_h.as_slice();
    let est = pred.estimate.as_slice();
    for img in 0..n {
        // Executor works from the same lowered columns as the predictor.
        let col_h = im2col(xp.high.outer(img), g);
        let col_l = im2col(xp.low.outer(img), g);
        for ch in 0..co {
            let w_h = &wh[ch * col_len..(ch + 1) * col_len];
            let w_l = &wl[ch * col_len..(ch + 1) * col_len];
            for sp in 0..spatial {
                let idx = (img * co + ch) * spatial + sp;
                let p_hat = est[idx];
                let sensitive = p_hat.abs() >= cfg.threshold;
                bits[idx] = sensitive;
                if sensitive {
                    // Remaining three cross terms + exact low-plane sum,
                    // for this output only.
                    let mut hl = 0i64;
                    let mut lh = 0i64;
                    let mut ll = 0i64;
                    let mut sa_l = 0i64;
                    for k in 0..col_len {
                        let ah = col_h[k * spatial + sp] as i64;
                        let al = col_l[k * spatial + sp] as i64;
                        hl += ah * w_l[k] as i64;
                        lh += al * w_h[k] as i64;
                        ll += al * w_l[k] as i64;
                        sa_l += al;
                    }
                    let hh = hhs[idx] as i64;
                    let full_codes = (hh << (2 * shift)) + ((hl + lh) << shift) + ll;
                    let sa = pow * sahs[img * spatial + sp] as i64 + sa_l;
                    out[idx] = scale * (full_codes as f32 - qw.zero * sa as f32);
                } else {
                    out[idx] = p_hat;
                }
            }
        }
    }

    let mut output = Tensor::from_vec(g.output_shape(n), out);
    if let Some(b) = bias {
        add_bias(&mut output, b, g);
    }
    // The sparse path skips the exact values for insensitive outputs (that
    // is its point), so `reference` simply mirrors `output` — use
    // `odq_conv2d` for instrumentation that needs the true INT4 reference.
    let reference = output.clone();
    OdqConvOutput { output, mask: SensitivityMask::new(n, co, spatial, bits), reference }
}

/// [`odq_conv2d_sparse`] over a prepacked plan and workspace pool. Each
/// image is lowered exactly once; the predictor's `HH` GEMM, its `SaH`
/// accumulator and the executor's per-sensitive-output dot products all
/// read the same column matrix (and its derived planes), mirroring the
/// accelerator's shared operand stream. Batch-parallel over images.
///
/// # Panics
/// Panics if the plan was not built for an ODQ spec matching `cfg`.
pub fn odq_conv2d_sparse_planned(
    x: &Tensor,
    plan: &QConvPlan,
    bias: Option<&[f32]>,
    g: &ConvGeom,
    cfg: &OdqCfg,
    pool: &WorkspacePool,
) -> OdqConvOutput {
    let wp = plan.planes.as_ref().expect("plan lacks ODQ bit planes");
    assert_eq!(wp.low_bits, cfg.low_bits, "plan low_bits mismatch");
    assert_eq!(plan.spec.w_bits, cfg.w_bits, "plan w_bits mismatch");
    let qw = &plan.qw;
    let qx = quantize_activation(x, cfg.a_bits, cfg.a_clip);
    let scale = qx.scale * qw.scale;
    let shift = cfg.low_bits;
    let pow = 1i64 << shift;

    let n = x.dims()[0];
    let spatial = g.out_spatial();
    let co = g.out_channels;
    let col_len = g.col_len();
    let per_img = co * spatial;
    let valid = plan.valid_taps(g);

    let wh = wp.high.as_slice();
    let wl = wp.low.as_slice();
    let per_image: Vec<(Vec<f32>, Vec<bool>)> = (0..n)
        .into_par_iter()
        .map(|img| {
            pool.with(|wk| {
                let (_, col_h, col_l) = wk.lower_i16_split(qx.codes.outer(img), g, shift);
                // Predictor over this image's high plane: `HH` GEMM plus
                // the `SaH` accumulator on the same operand stream.
                let mut hh = Tensor::<i32>::zeros(g.output_shape(1));
                gemm_i16_i32(wh, col_h, hh.as_mut_slice(), co, col_len, spatial);
                let mut sa_h = Tensor::<i32>::zeros([1, g.out_h(), g.out_w()]);
                accumulate_column_rows(col_h, sa_h.as_mut_slice(), col_len, spatial);
                let est = odq_estimate_precomputed(
                    &hh,
                    &sa_h,
                    &plan.sum_nh,
                    &plan.sum_nl,
                    &valid,
                    shift,
                    qw.zero,
                    scale,
                    g,
                );

                let hhs = hh.as_slice();
                let sahs = sa_h.as_slice();
                let ests = est.as_slice();
                let mut out = vec![0.0f32; per_img];
                let mut bits = vec![false; per_img];
                for ch in 0..co {
                    let w_h = &wh[ch * col_len..(ch + 1) * col_len];
                    let w_l = &wl[ch * col_len..(ch + 1) * col_len];
                    for sp in 0..spatial {
                        let idx = ch * spatial + sp;
                        let p_hat = ests[idx];
                        let sensitive = p_hat.abs() >= cfg.threshold;
                        bits[idx] = sensitive;
                        if sensitive {
                            // Remaining three cross terms + exact low-plane
                            // sum, for this output only.
                            let mut hl = 0i64;
                            let mut lh = 0i64;
                            let mut ll = 0i64;
                            let mut sa_l = 0i64;
                            for k in 0..col_len {
                                let ah = col_h[k * spatial + sp] as i64;
                                let al = col_l[k * spatial + sp] as i64;
                                hl += ah * w_l[k] as i64;
                                lh += al * w_h[k] as i64;
                                ll += al * w_l[k] as i64;
                                sa_l += al;
                            }
                            let hh_v = hhs[idx] as i64;
                            let full_codes = (hh_v << (2 * shift)) + ((hl + lh) << shift) + ll;
                            let sa = pow * sahs[sp] as i64 + sa_l;
                            out[idx] = scale * (full_codes as f32 - qw.zero * sa as f32);
                        } else {
                            out[idx] = p_hat;
                        }
                    }
                }
                (out, bits)
            })
        })
        .collect();

    let mut out = vec![0.0f32; n * per_img];
    let mut bits = vec![false; n * per_img];
    for (img, (o, b)) in per_image.iter().enumerate() {
        out[img * per_img..(img + 1) * per_img].copy_from_slice(o);
        bits[img * per_img..(img + 1) * per_img].copy_from_slice(b);
    }

    let mut output = Tensor::from_vec(g.output_shape(n), out);
    if let Some(b) = bias {
        add_bias(&mut output, b, g);
    }
    let reference = output.clone();
    OdqConvOutput { output, mask: SensitivityMask::new(n, co, spatial, bits), reference }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_quant::qconv::qconv2d;

    fn pseudo(n: usize, seed: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 2654435761 + seed * 101) % 1000) as f32 / 1000.0).collect()
    }

    fn pseudo_signed(n: usize, seed: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 40503 + seed * 77) % 1000) as f32 / 500.0 - 1.0).collect()
    }

    fn setup() -> (Tensor, Tensor, ConvGeom) {
        let g = ConvGeom::new(3, 4, 8, 8, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(2), pseudo(2 * 3 * 64, 1));
        let w = Tensor::from_vec(g.weight_shape(), pseudo_signed(4 * 3 * 9, 2));
        (x, w, g)
    }

    #[test]
    fn zero_threshold_reproduces_full_int4_conv() {
        let (x, w, g) = setup();
        let cfg = OdqCfg::int4(0.0);
        let r = odq_conv2d(&x, &w, None, &g, &cfg);
        assert_eq!(r.mask.sensitive_count(), r.mask.len(), "all sensitive at thr=0");

        let qx = quantize_activation(&x, 4, 1.0);
        let qw = quantize_weights(&w, 4);
        let full = qconv2d(&qx, &qw, &g);
        assert!(r.output.max_abs_diff(&full) < 1e-3);
        assert!(r.reference.max_abs_diff(&full) < 1e-3);
    }

    #[test]
    fn infinite_threshold_gives_predictor_only() {
        let (x, w, g) = setup();
        let cfg = OdqCfg::int4(f32::INFINITY);
        let r = odq_conv2d(&x, &w, None, &g, &cfg);
        assert_eq!(r.mask.sensitive_count(), 0);
        // Output must differ from the full INT4 conv (low planes dropped)…
        assert!(r.output.max_abs_diff(&r.reference) > 1e-4);
        // …but the estimate error stays well below the output spread.
        let spread = odq_tensor::stats::std_dev(r.reference.as_slice());
        let err = r.output.mean_abs_diff(&r.reference);
        assert!(err < 0.5 * spread, "estimate error {err} vs spread {spread}");
    }

    #[test]
    fn moderate_threshold_mixes_paths() {
        let (x, w, g) = setup();
        let abs: Vec<f32> = {
            let full = odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(0.0));
            full.reference.as_slice().iter().map(|v| v.abs()).collect()
        };
        let thr = odq_tensor::stats::quantile(&abs, 0.6);
        let cfg = OdqCfg::int4(thr);
        let r = odq_conv2d(&x, &w, None, &g, &cfg);
        let frac = r.mask.sensitive_fraction();
        assert!(frac > 0.05 && frac < 0.95, "got fraction {frac}");
        // Sensitive outputs equal the reference exactly.
        for i in 0..r.mask.len() {
            if r.mask.bits()[i] {
                assert!(
                    (r.output.as_slice()[i] - r.reference.as_slice()[i]).abs() < 1e-6,
                    "sensitive output {i} must be exact"
                );
            }
        }
    }

    #[test]
    fn higher_threshold_means_fewer_sensitive_outputs() {
        let (x, w, g) = setup();
        let mut last = usize::MAX;
        for thr in [0.0f32, 0.1, 0.3, 0.6, 1.2] {
            let r = odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(thr));
            let c = r.mask.sensitive_count();
            assert!(c <= last, "monotonicity violated at thr={thr}");
            last = c;
        }
    }

    #[test]
    fn sparse_matches_dense() {
        let (x, w, g) = setup();
        for thr in [0.0f32, 0.25, 0.5] {
            let cfg = OdqCfg::int4(thr);
            let dense = odq_conv2d(&x, &w, None, &g, &cfg);
            let sparse = odq_conv2d_sparse(&x, &w, None, &g, &cfg);
            assert!(
                dense.output.max_abs_diff(&sparse.output) < 1e-3,
                "sparse/dense mismatch at thr={thr}: {}",
                dense.output.max_abs_diff(&sparse.output)
            );
            assert_eq!(dense.mask, sparse.mask, "masks must agree at thr={thr}");
        }
    }

    #[test]
    fn bias_applied_to_both_paths() {
        let (x, w, g) = setup();
        let bias = vec![0.5f32, -0.5, 0.25, 0.0];
        let cfg = OdqCfg::int4(0.3);
        let with = odq_conv2d(&x, &w, Some(&bias), &g, &cfg);
        let without = odq_conv2d(&x, &w, None, &g, &cfg);
        let spatial = g.out_spatial();
        for img in 0..2 {
            for (ch, &b) in bias.iter().enumerate() {
                let idx = (img * 4 + ch) * spatial;
                let d = with.output.as_slice()[idx] - without.output.as_slice()[idx];
                assert!((d - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn int8_extension_splits_into_4bit_planes() {
        // The paper: "ODQ … can be easily extended to support other types
        // of precision, e.g., INT8". 8-bit operands split 4/4: predictor
        // runs INT4 MACs; everything else generalizes.
        let (x, w, g) = setup();
        let cfg = OdqCfg { a_bits: 8, w_bits: 8, a_clip: 1.0, low_bits: 4, threshold: 0.0 };
        let r = odq_conv2d(&x, &w, None, &g, &cfg);
        // thr=0: exact INT8 conv.
        let qx = quantize_activation(&x, 8, 1.0);
        let qw = quantize_weights(&w, 8);
        let full = qconv2d(&qx, &qw, &g);
        assert!(r.output.max_abs_diff(&full) < 1e-3);

        // Predictor-only at 8/4 is *more* accurate than at 4/2 (its high
        // plane is the whole INT4 representation).
        let r84 = odq_conv2d(
            &x,
            &w,
            None,
            &g,
            &OdqCfg { a_bits: 8, w_bits: 8, a_clip: 1.0, low_bits: 4, threshold: f32::INFINITY },
        );
        let r42 = odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(f32::INFINITY));
        let e84 = r84.output.mean_abs_diff(&full);
        let full4 = odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(0.0)).output;
        let e42 = r42.output.mean_abs_diff(&full4);
        assert!(e84 < e42, "8/4 predictor error {e84} should beat 4/2 {e42}");
    }

    #[test]
    fn planned_matches_dense_bit_exact_with_one_lowering_per_image() {
        use odq_quant::plan::PlanSpec;
        let (x, w, g) = setup();
        let cfg = OdqCfg::int4(0.3);
        let qx = quantize_activation(&x, cfg.a_bits, cfg.a_clip);
        let qw = quantize_weights(&w, cfg.w_bits);
        let seed = odq_conv2d_quantized(&qx, &qw, None, &g, &cfg);

        let plan = QConvPlan::build(&w, PlanSpec::odq(cfg.w_bits, cfg.low_bits));
        let pool = WorkspacePool::new();
        let planned = odq_conv2d_planned(&qx, &plan, None, &g, &cfg, &pool);

        assert_eq!(planned.output.as_slice(), seed.output.as_slice(), "outputs bit-identical");
        assert_eq!(planned.reference.as_slice(), seed.reference.as_slice());
        assert_eq!(planned.mask, seed.mask);
        assert_eq!(pool.lowerings(), 2, "one im2col per image for a batch of 2");
    }

    #[test]
    fn sparse_planned_matches_sparse_bit_exact() {
        use odq_quant::plan::PlanSpec;
        let (x, w, g) = setup();
        let plan = QConvPlan::build(&w, PlanSpec::odq(4, 2));
        let pool = WorkspacePool::new();
        for thr in [0.0f32, 0.25, 0.5] {
            let cfg = OdqCfg::int4(thr);
            let seed = odq_conv2d_sparse(&x, &w, None, &g, &cfg);
            let planned = odq_conv2d_sparse_planned(&x, &plan, None, &g, &cfg, &pool);
            assert_eq!(planned.output.as_slice(), seed.output.as_slice(), "thr={thr}");
            assert_eq!(planned.mask, seed.mask, "thr={thr}");
        }
    }

    #[test]
    fn odq_error_concentrated_on_insensitive_outputs() {
        // The design goal: sensitive outputs keep full precision; error
        // lives only on insensitive (small) outputs.
        let (x, w, g) = setup();
        let cfg = OdqCfg::int4(0.4);
        let r = odq_conv2d(&x, &w, None, &g, &cfg);
        let mut max_sens_err = 0.0f32;
        let mut max_insens_err = 0.0f32;
        for i in 0..r.mask.len() {
            let e = (r.output.as_slice()[i] - r.reference.as_slice()[i]).abs();
            if r.mask.bits()[i] {
                max_sens_err = max_sens_err.max(e);
            } else {
                max_insens_err = max_insens_err.max(e);
            }
        }
        assert!(max_sens_err < 1e-6);
        assert!(max_insens_err > 0.0);
    }
}
