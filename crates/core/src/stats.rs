//! Per-layer statistics collected while running models under ODQ.

use odq_tensor::ConvGeom;

/// Statistics for one conv layer, accumulated over all evaluated images.
#[derive(Clone, Debug)]
pub struct LayerStats {
    /// Layer name (`C1`, `C2`, ...).
    pub name: String,
    /// Layer geometry.
    pub geom: ConvGeom,
    /// Total output features processed.
    pub total_outputs: u64,
    /// Of those, predicted sensitive.
    pub sensitive_outputs: u64,
    /// Sum of |odq − reference| over *reference-sensitive* outputs
    /// (outputs whose exact INT4 magnitude meets the threshold) — the
    /// paper's per-layer "precision loss" (Sec. 6.1).
    pub precision_loss_sum: f64,
    /// Count of reference-sensitive outputs (denominator for the mean).
    pub reference_sensitive: u64,
    /// Sensitive-output counts per (image, output channel), appended per
    /// pass: the accelerator simulator's workload description.
    pub channel_counts: Vec<Vec<u32>>,
}

impl LayerStats {
    /// New empty record.
    pub fn new(name: impl Into<String>, geom: ConvGeom) -> Self {
        Self {
            name: name.into(),
            geom,
            total_outputs: 0,
            sensitive_outputs: 0,
            precision_loss_sum: 0.0,
            reference_sensitive: 0,
            channel_counts: Vec::new(),
        }
    }

    /// Fraction of outputs predicted sensitive.
    pub fn sensitive_fraction(&self) -> f64 {
        if self.total_outputs == 0 {
            return 0.0;
        }
        self.sensitive_outputs as f64 / self.total_outputs as f64
    }

    /// Fraction predicted insensitive (Figs. 9/10 plot this per layer).
    pub fn insensitive_fraction(&self) -> f64 {
        1.0 - self.sensitive_fraction()
    }

    /// Mean precision loss over reference-sensitive outputs (Sec. 6.1's
    /// per-layer numbers; ~0.02–0.1 for ODQ on ResNet-20).
    pub fn mean_precision_loss(&self) -> f64 {
        if self.reference_sensitive == 0 {
            return 0.0;
        }
        self.precision_loss_sum / self.reference_sensitive as f64
    }
}

/// Statistics for a whole model run under a dynamic-quantization engine.
#[derive(Clone, Debug, Default)]
pub struct OdqStats {
    /// Per-layer records in first-encounter order.
    pub layers: Vec<LayerStats>,
}

impl OdqStats {
    /// Find a layer record by name.
    pub fn layer(&self, name: &str) -> Option<&LayerStats> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Overall sensitive fraction across all layers (output-weighted).
    pub fn overall_sensitive_fraction(&self) -> f64 {
        let total: u64 = self.layers.iter().map(|l| l.total_outputs).sum();
        if total == 0 {
            return 0.0;
        }
        let sens: u64 = self.layers.iter().map(|l| l.sensitive_outputs).sum();
        sens as f64 / total as f64
    }

    /// Per-layer `(name, insensitive_fraction)` pairs, in layer order.
    pub fn insensitive_by_layer(&self) -> Vec<(String, f64)> {
        self.layers.iter().map(|l| (l.name.clone(), l.insensitive_fraction())).collect()
    }

    /// Per-layer `(name, mean_precision_loss)` pairs.
    pub fn precision_loss_by_layer(&self) -> Vec<(String, f64)> {
        self.layers.iter().map(|l| (l.name.clone(), l.mean_precision_loss())).collect()
    }

    /// Clear all records.
    pub fn reset(&mut self) {
        self.layers.clear();
    }

    /// Move the accumulated records out, leaving this collector empty.
    /// Serving workers call this after each forward pass to turn one
    /// batch's records into a ledger entry while keeping the engine (and
    /// its weight cache) alive for the next batch.
    pub fn take(&mut self) -> OdqStats {
        OdqStats { layers: std::mem::take(&mut self.layers) }
    }

    /// Fold another run's records into this one, matching layers by name
    /// and appending layers not seen before in `other`'s order.
    pub fn merge(&mut self, other: &OdqStats) {
        for l in &other.layers {
            match self.layers.iter_mut().find(|m| m.name == l.name) {
                Some(m) => {
                    m.total_outputs += l.total_outputs;
                    m.sensitive_outputs += l.sensitive_outputs;
                    m.precision_loss_sum += l.precision_loss_sum;
                    m.reference_sensitive += l.reference_sensitive;
                    m.channel_counts.extend(l.channel_counts.iter().cloned());
                }
                None => self.layers.push(l.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> ConvGeom {
        ConvGeom::new(2, 3, 4, 4, 3, 1, 1)
    }

    #[test]
    fn fractions() {
        let mut l = LayerStats::new("C1", geom());
        l.total_outputs = 100;
        l.sensitive_outputs = 25;
        assert!((l.sensitive_fraction() - 0.25).abs() < 1e-12);
        assert!((l.insensitive_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_layer_fractions_are_zero() {
        let l = LayerStats::new("C1", geom());
        assert_eq!(l.sensitive_fraction(), 0.0);
        assert_eq!(l.mean_precision_loss(), 0.0);
    }

    #[test]
    fn precision_loss_mean() {
        let mut l = LayerStats::new("C1", geom());
        l.precision_loss_sum = 1.5;
        l.reference_sensitive = 3;
        assert!((l.mean_precision_loss() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_aggregation() {
        let mut s = OdqStats::default();
        let mut a = LayerStats::new("C1", geom());
        a.total_outputs = 100;
        a.sensitive_outputs = 10;
        let mut b = LayerStats::new("C2", geom());
        b.total_outputs = 300;
        b.sensitive_outputs = 90;
        s.layers.push(a);
        s.layers.push(b);
        assert!((s.overall_sensitive_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(s.layer("C2").unwrap().total_outputs, 300);
        assert!(s.layer("C9").is_none());
        let ins = s.insensitive_by_layer();
        assert_eq!(ins[0].0, "C1");
        assert!((ins[0].1 - 0.9).abs() < 1e-12);
        s.reset();
        assert!(s.layers.is_empty());
    }

    #[test]
    fn take_moves_records_out() {
        let mut s = OdqStats::default();
        let mut a = LayerStats::new("C1", geom());
        a.total_outputs = 10;
        a.channel_counts.push(vec![1, 2]);
        s.layers.push(a);
        let taken = s.take();
        assert!(s.layers.is_empty());
        assert_eq!(taken.layers.len(), 1);
        assert_eq!(taken.layers[0].total_outputs, 10);
    }

    #[test]
    fn merge_accumulates_by_name() {
        let mut s = OdqStats::default();
        let mut a = LayerStats::new("C1", geom());
        a.total_outputs = 10;
        a.sensitive_outputs = 4;
        a.channel_counts.push(vec![4]);
        s.layers.push(a);

        let mut other = OdqStats::default();
        let mut b = LayerStats::new("C1", geom());
        b.total_outputs = 30;
        b.sensitive_outputs = 6;
        b.channel_counts.push(vec![6]);
        other.layers.push(b);
        other.layers.push(LayerStats::new("C2", geom()));

        s.merge(&other);
        assert_eq!(s.layers.len(), 2);
        let c1 = s.layer("C1").unwrap();
        assert_eq!(c1.total_outputs, 40);
        assert_eq!(c1.sensitive_outputs, 10);
        assert_eq!(c1.channel_counts.len(), 2);
        assert!(s.layer("C2").is_some());
    }
}
