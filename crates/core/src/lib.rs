//! # odq-core
//!
//! **Output-Directed Dynamic Quantization (ODQ)** — the paper's primary
//! contribution (Sec. 3).
//!
//! ODQ computes each convolution in two pipelined steps over INT4 operands:
//!
//! 1. **Sensitivity prediction** — only the high-order 2 bits of inputs and
//!    weights (`I_HBS`, `W_HBS`) are multiplied, producing a cheap partial
//!    sum per output feature. Features whose partial magnitude meets a
//!    threshold are predicted *sensitive* and recorded in a bit mask.
//! 2. **Result generation** — for sensitive outputs only, the remaining
//!    three cross terms of Eq. 3 are computed and added; insensitive
//!    outputs keep the predictor-only (low-precision) value.
//!
//! Modules:
//!
//! * [`odq_conv`] — the masked two-step convolution, in both a dense
//!   (GEMM-everything, mask-select) form used for statistics and accuracy,
//!   and a sparse form that genuinely skips insensitive outputs (what the
//!   accelerator does).
//! * [`mask`] — sensitivity bit masks and per-channel workload summaries
//!   consumed by the accelerator simulator.
//! * [`engine`] — [`OdqEngine`], a `ConvExecutor` that runs entire models
//!   under ODQ while recording per-layer statistics (Figs. 9/10, Sec. 6.1).
//! * [`threshold`] — the adaptive threshold search of Sec. 3 (quantile
//!   initialization, retrain with the threshold in the loop, halve until
//!   accuracy is acceptable) and the sweep for Fig. 22 / Table 3.
//! * [`stats`] — per-layer statistics records.

pub mod engine;
pub mod mask;
pub mod odq_conv;
pub mod stats;
pub mod threshold;

pub use engine::OdqEngine;
pub use mask::SensitivityMask;
pub use odq_conv::{
    odq_conv2d, odq_conv2d_planned, odq_conv2d_sparse_planned, OdqCfg, OdqConvOutput,
};
pub use stats::{LayerStats, OdqStats};
pub use threshold::{
    search_per_layer_thresholds, search_threshold, threshold_sweep, SearchCfg, SweepPoint,
};
