//! Adaptive threshold search (Sec. 3) and threshold sweeps (Fig. 22).
//!
//! The paper's procedure:
//!
//! 1. train the network with 4-bit weights/inputs;
//! 2. run `N` calibration inputs through the *predictor* (high-order bits
//!    only) and pick a relatively large initial threshold from the output
//!    distribution;
//! 3. retrain with the threshold in the loop (our
//!    [`OdqEmuCfg`] emulation);
//! 4. if ODQ accuracy meets the expectation, stop; otherwise halve the
//!    threshold and repeat.

use odq_nn::executor::{ConvCtx, ConvExecutor, StaticQuantExecutor};
use odq_nn::layers::OdqEmuCfg;
use odq_nn::models::Model;
use odq_nn::train::{evaluate, train_epoch, SgdCfg};
use odq_quant::{quantize_activation, quantize_weights, split_qtensor};
use odq_tensor::{stats::quantile, Tensor};
use rand_chacha::ChaCha8Rng;

use crate::engine::OdqEngine;
use crate::odq_conv::OdqCfg;

/// Configuration for the adaptive search.
#[derive(Clone, Copy, Debug)]
pub struct SearchCfg {
    /// Number of calibration images for the initial threshold.
    pub calib_images: usize,
    /// Quantile of |predictor output| used as the initial ("relatively
    /// large") threshold.
    pub init_quantile: f32,
    /// Acceptable Top-1 drop versus the INT4 static baseline.
    pub acc_tolerance: f32,
    /// Maximum number of halvings before giving up.
    pub max_halvings: usize,
    /// Retraining epochs per candidate threshold.
    pub retrain_epochs: usize,
    /// Retraining optimizer settings.
    pub sgd: SgdCfg,
    /// Mini-batch size for retraining/evaluation.
    pub batch: usize,
}

impl Default for SearchCfg {
    fn default() -> Self {
        Self {
            calib_images: 8,
            init_quantile: 0.9,
            acc_tolerance: 0.02,
            max_halvings: 6,
            retrain_epochs: 2,
            sgd: SgdCfg { lr: 0.02, momentum: 0.9, weight_decay: 1e-4, grad_clip: 5.0 },
            batch: 16,
        }
    }
}

/// One trial of the search.
#[derive(Clone, Copy, Debug)]
pub struct Trial {
    /// Candidate threshold.
    pub threshold: f32,
    /// ODQ Top-1 accuracy after retraining with this threshold.
    pub accuracy: f32,
    /// Fraction of outputs predicted insensitive at this threshold.
    pub insensitive_fraction: f64,
}

/// Result of [`search_threshold`].
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The accepted threshold: the trial that met tolerance, or — when no
    /// trial did — the *best-accuracy* trial (not simply the last, i.e.
    /// smallest, threshold tried: halving past the accuracy sweet spot can
    /// make later trials worse, and accepting them would discard a better
    /// candidate that was already evaluated).
    pub threshold: f32,
    /// INT4 static-quantization baseline accuracy the trials compare to.
    pub baseline_accuracy: f32,
    /// All trials in order.
    pub trials: Vec<Trial>,
    /// Whether the accepted threshold met the tolerance.
    pub converged: bool,
}

/// Collects the distribution of |predictor outputs| over calibration
/// inputs (threshold-0 passes that record rather than mask).
struct CalibrationExecutor {
    cfg: OdqCfg,
    samples: Vec<f32>,
    stride: usize,
}

impl ConvExecutor for CalibrationExecutor {
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let qx = quantize_activation(x, self.cfg.a_bits, self.cfg.a_clip);
        let qw = quantize_weights(ctx.weights, self.cfg.w_bits);
        let xp = split_qtensor(&qx, self.cfg.low_bits);
        let wp = split_qtensor(&qw, self.cfg.low_bits);
        let pred =
            odq_quant::predict::odq_predict(&xp.high, &wp, qw.zero, qx.scale * qw.scale, &ctx.geom);
        for (i, &p) in pred.estimate.as_slice().iter().enumerate() {
            if i % self.stride == 0 {
                self.samples.push(p.abs());
            }
        }
        // Return the full INT4 result so downstream layers see realistic
        // inputs during calibration.
        let mut y = odq_quant::qconv::qconv2d(&qx, &qw, &ctx.geom);
        if let Some(b) = ctx.bias {
            odq_nn::executor::add_bias(&mut y, b, &ctx.geom);
        }
        y
    }
}

/// Estimate the initial threshold: the `q`-quantile of |predictor outputs|
/// over `n` calibration images.
pub fn calibrate_initial_threshold(model: &Model, images: &Tensor, n: usize, q: f32) -> f32 {
    let n = n.min(images.dims()[0]).max(1);
    let dims = images.dims();
    let per = images.numel() / dims[0];
    let mut shape = dims.to_vec();
    shape[0] = n;
    let calib = Tensor::from_vec(shape, images.as_slice()[..n * per].to_vec());

    let mut exec = CalibrationExecutor {
        cfg: OdqCfg::int4(0.0),
        samples: Vec::new(),
        stride: 7, // subsample: every 7th output is plenty for a quantile
    };
    let _ = model.forward_eval(&calib, &mut exec);
    if exec.samples.is_empty() {
        return 0.5;
    }
    quantile(&exec.samples, q).max(1e-6)
}

/// Run the paper's adaptive threshold search.
///
/// `train`/`test` are `(images, labels)` pairs. The model should already be
/// trained (with 4-bit QAT, per the paper); the search retrains it with the
/// candidate threshold in the loop.
pub fn search_threshold(
    model: &mut Model,
    train: (&Tensor, &[usize]),
    test: (&Tensor, &[usize]),
    cfg: &SearchCfg,
    rng: &mut ChaCha8Rng,
) -> SearchResult {
    let baseline_accuracy = {
        let mut int4 = StaticQuantExecutor::int(4);
        evaluate(model, test.0, test.1, cfg.batch, &mut int4)
    };

    let mut threshold =
        calibrate_initial_threshold(model, train.0, cfg.calib_images, cfg.init_quantile);
    let mut trials = Vec::new();
    let mut converged = false;

    for _ in 0..=cfg.max_halvings {
        // Retrain with the threshold in the loop.
        model.set_odq_emu(Some(OdqEmuCfg { threshold }));
        for _ in 0..cfg.retrain_epochs {
            train_epoch(model, train.0, train.1, cfg.batch, &cfg.sgd, rng);
        }
        model.set_odq_emu(None);

        // Evaluate under real ODQ inference.
        let mut engine = OdqEngine::new(threshold);
        let accuracy = evaluate(model, test.0, test.1, cfg.batch, &mut engine);
        let insensitive_fraction = 1.0 - engine.stats.overall_sensitive_fraction();
        trials.push(Trial { threshold, accuracy, insensitive_fraction });

        if accuracy >= baseline_accuracy - cfg.acc_tolerance {
            converged = true;
            break;
        }
        threshold /= 2.0;
    }

    // Converged: the last trial is the one that met tolerance. Not
    // converged: fall back to the best-accuracy trial among those
    // evaluated (ties keep the earlier, i.e. larger/cheaper, threshold).
    let accepted = if converged {
        trials.last().expect("at least one trial").threshold
    } else {
        trials
            .iter()
            .reduce(|best, t| if t.accuracy > best.accuracy { t } else { best })
            .expect("at least one trial")
            .threshold
    };
    SearchResult { threshold: accepted, baseline_accuracy, trials, converged }
}

/// Search a *per-layer* threshold map (extension beyond the paper, which
/// uses one global threshold per model "to greatly simplify the design",
/// Sec. 6.4).
///
/// Each layer's threshold is set to the `quantile` of its own predictor
/// estimate distribution over `calib_images`, then scaled by a single
/// global factor found with the same halving loop as [`search_threshold`].
/// This equalizes the insensitive share across layers, which the global
/// policy cannot (layer output scales differ).
pub fn search_per_layer_thresholds(
    model: &mut Model,
    train: (&Tensor, &[usize]),
    test: (&Tensor, &[usize]),
    quantile_level: f32,
    cfg: &SearchCfg,
    rng: &mut ChaCha8Rng,
) -> (std::collections::HashMap<String, f32>, Vec<Trial>) {
    use std::collections::HashMap;

    // Per-layer calibration from each layer's own estimate distribution.
    struct PerLayer {
        base: OdqCfg,
        stride: usize,
        samples: HashMap<String, Vec<f32>>,
    }
    impl ConvExecutor for PerLayer {
        fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
            let qx = quantize_activation(x, self.base.a_bits, self.base.a_clip);
            let qw = quantize_weights(ctx.weights, self.base.w_bits);
            let xp = split_qtensor(&qx, self.base.low_bits);
            let wp = split_qtensor(&qw, self.base.low_bits);
            let pred = odq_quant::predict::odq_predict(
                &xp.high,
                &wp,
                qw.zero,
                qx.scale * qw.scale,
                &ctx.geom,
            );
            let entry = self.samples.entry(ctx.name.to_string()).or_default();
            for (i, &p) in pred.estimate.as_slice().iter().enumerate() {
                if i % self.stride == 0 {
                    entry.push(p.abs());
                }
            }
            let mut y = odq_quant::qconv::qconv2d(&qx, &qw, &ctx.geom);
            if let Some(b) = ctx.bias {
                odq_nn::executor::add_bias(&mut y, b, &ctx.geom);
            }
            y
        }
    }
    let n = cfg.calib_images.min(train.0.dims()[0]).max(1);
    let per = train.0.numel() / train.0.dims()[0];
    let mut shape = train.0.dims().to_vec();
    shape[0] = n;
    let calib = Tensor::from_vec(shape, train.0.as_slice()[..n * per].to_vec());
    let mut collect = PerLayer { base: OdqCfg::int4(0.0), stride: 7, samples: HashMap::new() };
    let _ = model.forward_eval(&calib, &mut collect);
    let base_map: HashMap<String, f32> = collect
        .samples
        .iter()
        .map(|(k, v)| (k.clone(), quantile(v, quantile_level).max(1e-6)))
        .collect();

    // Global scale factor found by halving, evaluated under the per-layer
    // policy; retraining uses the mean threshold as the emulation value.
    let mut factor = 1.0f32;
    let mut accepted = factor;
    let mut trials = Vec::new();
    let baseline = {
        let mut int4 = StaticQuantExecutor::int(4);
        evaluate(model, test.0, test.1, cfg.batch, &mut int4)
    };
    for _ in 0..=cfg.max_halvings {
        let map: HashMap<String, f32> =
            base_map.iter().map(|(k, v)| (k.clone(), v * factor)).collect();
        let mean_thr = map.values().sum::<f32>() / map.len().max(1) as f32;
        model.set_odq_emu(Some(OdqEmuCfg { threshold: mean_thr }));
        for _ in 0..cfg.retrain_epochs {
            train_epoch(model, train.0, train.1, cfg.batch, &cfg.sgd, rng);
        }
        model.set_odq_emu(None);

        let mut engine = crate::engine::OdqEngine::with_per_layer(map, mean_thr);
        let accuracy = evaluate(model, test.0, test.1, cfg.batch, &mut engine);
        let insensitive_fraction = 1.0 - engine.stats.overall_sensitive_fraction();
        trials.push(Trial { threshold: factor, accuracy, insensitive_fraction });
        // The returned map must correspond to a factor that was actually
        // evaluated — the *last trial's* — not a post-loop halving.
        accepted = factor;
        if accuracy >= baseline - cfg.acc_tolerance {
            break;
        }
        factor /= 2.0;
    }
    let final_map: HashMap<String, f32> =
        base_map.into_iter().map(|(k, v)| (k, v * accepted)).collect();
    (final_map, trials)
}

/// One point of a threshold sweep (Fig. 22).
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// The threshold evaluated.
    pub threshold: f32,
    /// ODQ Top-1 accuracy at this threshold.
    pub accuracy: f32,
    /// Fraction of INT2 (insensitive / predictor-only) outputs.
    pub insensitive_fraction: f64,
    /// Fraction of INT4 (sensitive) outputs.
    pub sensitive_fraction: f64,
}

/// Sweep thresholds without retraining (evaluation-only, as in Fig. 22's
/// x-axis sweep from 0 to 1).
pub fn threshold_sweep(
    model: &Model,
    test: (&Tensor, &[usize]),
    thresholds: &[f32],
    batch: usize,
) -> Vec<SweepPoint> {
    thresholds
        .iter()
        .map(|&t| {
            let mut engine = OdqEngine::new(t);
            let accuracy = evaluate(model, test.0, test.1, batch, &mut engine);
            let sens = engine.stats.overall_sensitive_fraction();
            SweepPoint {
                threshold: t,
                accuracy,
                insensitive_fraction: 1.0 - sens,
                sensitive_fraction: sens,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_data::SynthSpec;
    use odq_nn::models::ModelCfg;
    use odq_nn::param::init_rng;
    use odq_nn::{Arch, Layer as _};

    fn trained_model_and_data() -> (Model, odq_data::Dataset, odq_data::Dataset) {
        let mut cfg = ModelCfg::small(Arch::ResNet20, 4);
        cfg.input_hw = 8;
        let mut m = Model::build(cfg);
        let mut spec = SynthSpec::cifar10(8);
        spec.num_classes = 4;
        let (train, test) = spec.generate_split(48, 24);
        let mut rng = init_rng(5);
        let sgd = SgdCfg { lr: 0.08, momentum: 0.9, weight_decay: 1e-4, grad_clip: 5.0 };
        for _ in 0..5 {
            train_epoch(&mut m, &train.images, &train.labels, 16, &sgd, &mut rng);
        }
        (m, train, test)
    }

    #[test]
    fn calibration_returns_positive_threshold() {
        let (m, train, _) = trained_model_and_data();
        let t = calibrate_initial_threshold(&m, &train.images, 4, 0.9);
        assert!(t > 0.0 && t.is_finite());
        // Higher quantile -> higher threshold.
        let t50 = calibrate_initial_threshold(&m, &train.images, 4, 0.5);
        assert!(t >= t50);
    }

    #[test]
    fn sweep_is_monotone_in_insensitive_fraction() {
        let (m, _, test) = trained_model_and_data();
        let pts = threshold_sweep(&m, (&test.images, &test.labels), &[0.0, 0.25, 0.5, 1.0], 12);
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(
                w[1].insensitive_fraction >= w[0].insensitive_fraction - 1e-9,
                "insensitive fraction must not decrease with threshold"
            );
        }
        assert!(pts[0].insensitive_fraction < 1e-9, "thr=0 keeps everything sensitive");
    }

    #[test]
    fn per_layer_search_produces_thresholds_for_every_conv() {
        let (mut m, train, test) = trained_model_and_data();
        let cfg = SearchCfg {
            calib_images: 4,
            retrain_epochs: 1,
            max_halvings: 2,
            acc_tolerance: 0.2,
            ..Default::default()
        };
        let mut rng = init_rng(13);
        let (map, trials) = search_per_layer_thresholds(
            &mut m,
            (&train.images, &train.labels),
            (&test.images, &test.labels),
            0.65,
            &cfg,
            &mut rng,
        );
        let mut convs = 0;
        m.net.visit_convs_mut(&mut |_| convs += 1);
        assert_eq!(map.len(), convs, "one threshold per conv layer");
        assert!(map.values().all(|&t| t > 0.0 && t.is_finite()));
        assert!(!trials.is_empty());
    }

    #[test]
    fn search_produces_trials_and_reasonable_threshold() {
        let (mut m, train, test) = trained_model_and_data();
        let cfg = SearchCfg {
            calib_images: 4,
            retrain_epochs: 1,
            max_halvings: 3,
            acc_tolerance: 0.1,
            ..Default::default()
        };
        let mut rng = init_rng(9);
        let r = search_threshold(
            &mut m,
            (&train.images, &train.labels),
            (&test.images, &test.labels),
            &cfg,
            &mut rng,
        );
        assert!(!r.trials.is_empty());
        assert!(r.threshold > 0.0);
        // Later trials never have a larger threshold.
        for w in r.trials.windows(2) {
            assert!(w[1].threshold < w[0].threshold);
        }
        // Model left without emulation installed.
        let mut any_emu = false;
        m.net.visit_convs_mut(&mut |c| any_emu |= c.odq_emu.is_some());
        assert!(!any_emu, "search must clear odq_emu");
    }

    #[test]
    fn non_converged_search_returns_best_accuracy_trial() {
        let (mut m, train, test) = trained_model_and_data();
        // An unreachable tolerance (accuracy can never beat baseline + 1)
        // forces the halving loop to exhaust every trial.
        let cfg = SearchCfg {
            calib_images: 4,
            retrain_epochs: 0,
            max_halvings: 2,
            acc_tolerance: -1.0,
            ..Default::default()
        };
        let mut rng = init_rng(21);
        let r = search_threshold(
            &mut m,
            (&train.images, &train.labels),
            (&test.images, &test.labels),
            &cfg,
            &mut rng,
        );
        assert!(!r.converged);
        assert_eq!(r.trials.len(), cfg.max_halvings + 1, "every halving was tried");
        let best = r
            .trials
            .iter()
            .reduce(|best, t| if t.accuracy > best.accuracy { t } else { best })
            .unwrap();
        assert_eq!(
            r.threshold, best.threshold,
            "non-converged search must accept the best-accuracy trial, not the smallest threshold"
        );
    }
}
