//! Sensitivity bit masks.
//!
//! The predictor writes one bit per output feature ("1" = sensitive,
//! Sec. 3); the executor and the accelerator simulator consume them. For
//! accelerator workloads only the per-(image, output-channel) sensitive
//! counts matter, so [`SensitivityMask::channel_counts`] summarizes masks
//! into the compact form the simulator uses.

/// A per-output-feature sensitivity mask for one conv layer's outputs
/// (`[N, Co, OH, OW]`, flattened row-major).
#[derive(Clone, Debug, PartialEq)]
pub struct SensitivityMask {
    /// Batch size.
    pub n: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Spatial size (`OH * OW`).
    pub spatial: usize,
    bits: Vec<bool>,
}

impl SensitivityMask {
    /// Build from raw bits (length must equal `n * out_channels * spatial`).
    pub fn new(n: usize, out_channels: usize, spatial: usize, bits: Vec<bool>) -> Self {
        assert_eq!(bits.len(), n * out_channels * spatial, "mask length mismatch");
        Self { n, out_channels, spatial, bits }
    }

    /// The raw bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Bit for (image, channel, spatial offset).
    #[inline]
    pub fn get(&self, img: usize, ch: usize, s: usize) -> bool {
        self.bits[(img * self.out_channels + ch) * self.spatial + s]
    }

    /// Total number of output features.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the mask is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of sensitive (set) bits.
    pub fn sensitive_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of sensitive outputs in `[0, 1]`.
    pub fn sensitive_fraction(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        self.sensitive_count() as f64 / self.bits.len() as f64
    }

    /// Fraction of insensitive outputs (what Figs. 9/10 plot).
    pub fn insensitive_fraction(&self) -> f64 {
        1.0 - self.sensitive_fraction()
    }

    /// Sensitive-output counts per (image, output channel):
    /// `counts[img][ch]` — the accelerator simulator's workload unit
    /// (each output channel = one OFM column of work).
    pub fn channel_counts(&self) -> Vec<Vec<u32>> {
        let mut out = vec![vec![0u32; self.out_channels]; self.n];
        for (img, row) in out.iter_mut().enumerate() {
            for (ch, cell) in row.iter_mut().enumerate() {
                let base = (img * self.out_channels + ch) * self.spatial;
                *cell = self.bits[base..base + self.spatial].iter().filter(|&&b| b).count() as u32;
            }
        }
        out
    }
}

impl SensitivityMask {
    /// Bit-pack the mask (8 features per byte, LSB-first) — the format the
    /// paper's flow dumps for its accelerator simulator ("we use Pytorch to
    /// dump the binary mask maps for inference, which are then fed into our
    /// simulator", Sec. 5.2). Header: `n`, `out_channels`, `spatial` as
    /// u32 LE, then the packed bits.
    pub fn to_bitpacked(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len().div_ceil(8));
        out.extend_from_slice(&(self.n as u32).to_le_bytes());
        out.extend_from_slice(&(self.out_channels as u32).to_le_bytes());
        out.extend_from_slice(&(self.spatial as u32).to_le_bytes());
        let mut byte = 0u8;
        for (i, &b) in self.bits.iter().enumerate() {
            if b {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                out.push(byte);
                byte = 0;
            }
        }
        if !self.bits.len().is_multiple_of(8) {
            out.push(byte);
        }
        out
    }

    /// Parse a bit-packed mask produced by [`SensitivityMask::to_bitpacked`].
    ///
    /// Returns `None` on truncated or malformed input.
    pub fn from_bitpacked(data: &[u8]) -> Option<Self> {
        if data.len() < 12 {
            return None;
        }
        let rd = |o: usize| -> Option<usize> {
            Some(u32::from_le_bytes(data[o..o + 4].try_into().ok()?) as usize)
        };
        let n = rd(0)?;
        let out_channels = rd(4)?;
        let spatial = rd(8)?;
        let total = n.checked_mul(out_channels)?.checked_mul(spatial)?;
        let need = 12 + total.div_ceil(8);
        if data.len() < need {
            return None;
        }
        let bits = (0..total).map(|i| data[12 + i / 8] & (1 << (i % 8)) != 0).collect();
        Some(Self { n, out_channels, spatial, bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_fractions() {
        let bits = vec![true, false, false, true, true, false, false, false];
        let m = SensitivityMask::new(1, 2, 4, bits);
        assert_eq!(m.sensitive_count(), 3);
        assert!((m.sensitive_fraction() - 0.375).abs() < 1e-12);
        assert!((m.insensitive_fraction() - 0.625).abs() < 1e-12);
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
    }

    #[test]
    fn get_addresses_image_channel_spatial() {
        let mut bits = vec![false; 2 * 2 * 3];
        bits[(2 + 1) * 3 + 2] = true; // img 1, ch 1, s 2
        let m = SensitivityMask::new(2, 2, 3, bits);
        assert!(m.get(1, 1, 2));
        assert!(!m.get(0, 1, 2));
    }

    #[test]
    fn channel_counts_match_manual() {
        let bits = vec![
            true, true, false, // img0 ch0
            false, false, true, // img0 ch1
            true, false, false, // img1 ch0
            true, true, true, // img1 ch1
        ];
        let m = SensitivityMask::new(2, 2, 3, bits);
        assert_eq!(m.channel_counts(), vec![vec![2, 1], vec![1, 3]]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_length() {
        SensitivityMask::new(1, 2, 4, vec![true; 7]);
    }

    #[test]
    fn bitpack_roundtrip() {
        // 19 bits: exercises the partial final byte.
        let bits: Vec<bool> = (0..19).map(|i| i % 3 == 0).collect();
        let m = SensitivityMask::new(1, 1, 19, bits);
        let packed = m.to_bitpacked();
        assert_eq!(packed.len(), 12 + 3);
        let back = SensitivityMask::from_bitpacked(&packed).expect("roundtrip");
        assert_eq!(back, m);
    }

    #[test]
    fn bitpack_rejects_truncation_and_garbage() {
        let m = SensitivityMask::new(2, 3, 5, vec![true; 30]);
        let packed = m.to_bitpacked();
        assert!(SensitivityMask::from_bitpacked(&packed[..11]).is_none());
        assert!(SensitivityMask::from_bitpacked(&packed[..packed.len() - 1]).is_none());
        assert!(SensitivityMask::from_bitpacked(&[]).is_none());
        // Absurd header dimensions must not overflow.
        let mut bad = packed.clone();
        bad[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        bad[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(SensitivityMask::from_bitpacked(&bad).is_none());
    }

    #[test]
    fn bitpack_density_is_8x() {
        let m = SensitivityMask::new(4, 16, 64, vec![false; 4 * 16 * 64]);
        let packed = m.to_bitpacked();
        assert_eq!(packed.len(), 12 + 4 * 16 * 64 / 8);
    }
}
