//! Server configuration knobs.

use std::sync::Arc;
use std::time::Duration;

use crate::fault::FaultHook;
use crate::trace::TraceSink;

/// Tunables for [`crate::Server`].
///
/// Defaults favor the test/bench workloads in this repository (small
/// models, a handful of workers); production-shaped deployments would
/// raise `queue_depth` and `max_batch`.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Capacity of the bounded submission queue. When the queue is full,
    /// [`crate::Server::submit`] rejects with
    /// [`crate::ServeError::QueueFull`] instead of blocking — admission
    /// control backpressures the client, not the server.
    pub queue_depth: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Maximum time the *oldest* request of a forming batch waits for
    /// co-batching company before the batch is flushed anyway.
    pub max_wait: Duration,
    /// Worker threads. Each owns one long-lived engine per model, so the
    /// ODQ engine's quantized-weight cache amortizes across batches.
    pub workers: usize,
    /// Deadline applied to requests that do not carry their own. `None`
    /// means no deadline.
    pub default_deadline: Option<Duration>,
    /// Run the cycle-level accelerator simulator on every batch's measured
    /// sensitivity profile and record cycles/energy in the ledger.
    pub simulate_accel: bool,
    /// Fault injection (tests only): panic inside the worker when the Nth
    /// batch (1-based, fleet-wide) starts executing. Exercises the
    /// supervision path: the batch's requests must be answered with
    /// [`crate::ServeError::Internal`] and the worker must restart with a
    /// fresh engine. `None` (the default) injects nothing.
    ///
    /// Shim over the generalized [`FaultHook`] mechanism: setting this is
    /// equivalent to installing an [`crate::fault::NthBatchFault`] in
    /// [`fault_hook`](Self::fault_hook). Both may be set; either can trip
    /// the panic.
    pub fault_panic_on_batch: Option<u64>,
    /// Generalized fault injection (tests only): a [`FaultHook`] the
    /// worker consults as each batch starts executing. `None` (the
    /// default) injects nothing. See [`crate::fault`] for the bundled
    /// deterministic triggers (nth-batch, per-model, seeded-probability).
    pub fault_hook: Option<Arc<dyn FaultHook>>,
    /// Per-request span tracing sink ([`crate::trace`]). Requests whose
    /// trace id the sink samples report a span at each of the five
    /// pipeline stages. `None` (the default) traces nothing and costs
    /// nothing on the hot path.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Record per-layer wall time, route, mask density, and simulated
    /// cycles into the ledger's per-(model, version, layer) aggregates on
    /// every batch. On by default; the cost is one `Instant::now` pair
    /// per conv layer plus O(layers) ledger work per batch.
    pub layer_profiling: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            workers: 2,
            default_deadline: None,
            simulate_accel: true,
            fault_panic_on_batch: None,
            fault_hook: None,
            trace: None,
            layer_profiling: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.queue_depth >= c.max_batch);
        assert!(c.workers >= 1);
        assert!(c.max_wait > Duration::ZERO);
    }
}
