//! The serving ledger: per-request and per-batch records plus summaries.

use std::time::Duration;

/// One served request's ledger entry.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Model name.
    pub model: String,
    /// Submission → forward-pass start.
    pub queue_wait: Duration,
    /// Forward-pass duration (shared across the batch).
    pub service: Duration,
    /// Submission → response.
    pub total: Duration,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
}

/// Per-batch simulated accelerator cost, from `odq_accel`'s cycle-level
/// simulator run on the batch's *measured* sensitivity profile.
#[derive(Clone, Debug)]
pub struct BatchSim {
    /// Accelerator configuration name (Table 2).
    pub config: String,
    /// Simulated cycles per image.
    pub cycles_per_image: f64,
    /// Simulated cycles for the whole batch (per-image × batch size).
    pub batch_cycles: f64,
    /// Simulated execution time for the whole batch, seconds.
    pub time_s: f64,
    /// Simulated energy for the whole batch, nanojoules.
    pub energy_nj: f64,
}

/// One executed batch's ledger entry.
#[derive(Clone, Debug)]
pub struct BatchRecord {
    /// Model name.
    pub model: String,
    /// Engine label ([`crate::EngineKind::label`]).
    pub engine: String,
    /// Requests coalesced into this batch.
    pub size: usize,
    /// Forward-pass duration.
    pub service: Duration,
    /// Output-weighted sensitive-output fraction measured during the pass
    /// (ODQ engines only).
    pub sensitive_fraction: Option<f64>,
    /// Simulated accelerator cost (when enabled).
    pub sim: Option<BatchSim>,
}

/// Mutable ledger shared by the admission path and the workers.
#[derive(Debug, Default)]
pub(crate) struct Ledger {
    pub requests: Vec<RequestRecord>,
    pub batches: Vec<BatchRecord>,
    pub rejected_queue_full: u64,
    pub rejected_deadline: u64,
    pub rejected_invalid: u64,
}

/// Aggregated view of the ledger at one point in time.
#[derive(Clone, Debug)]
pub struct StatsSummary {
    /// Requests answered successfully.
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_queue_full: u64,
    /// Requests dropped because their deadline passed before execution.
    pub rejected_deadline: u64,
    /// Requests rejected for unknown model / bad input shape.
    pub rejected_invalid: u64,
    /// Mean executed batch size.
    pub mean_batch_size: f64,
    /// Mean time requests spent queued before their forward pass.
    pub mean_queue_wait: Duration,
    /// Median end-to-end latency.
    pub p50_latency: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: Duration,
    /// Total simulated accelerator cycles across all batches.
    pub sim_cycles: f64,
    /// Total simulated accelerator energy across all batches, nanojoules.
    pub sim_energy_nj: f64,
    /// Output-weighted mean sensitive fraction across ODQ batches.
    pub mean_sensitive_fraction: Option<f64>,
}

/// `q`-quantile (0.0..=1.0) of an unsorted sample by nearest-rank.
pub fn percentile(samples: &[Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut s: Vec<Duration> = samples.to_vec();
    s.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * s.len() as f64).ceil() as usize).clamp(1, s.len());
    s[rank - 1]
}

impl Ledger {
    pub fn summary(&self) -> StatsSummary {
        let totals: Vec<Duration> = self.requests.iter().map(|r| r.total).collect();
        let n = self.requests.len();
        let mean_queue_wait = if n == 0 {
            Duration::ZERO
        } else {
            self.requests.iter().map(|r| r.queue_wait).sum::<Duration>() / n as u32
        };
        let mean_batch_size = if self.batches.is_empty() {
            0.0
        } else {
            self.batches.iter().map(|b| b.size as f64).sum::<f64>() / self.batches.len() as f64
        };
        let sim_cycles: f64 =
            self.batches.iter().filter_map(|b| b.sim.as_ref()).map(|s| s.batch_cycles).sum();
        let sim_energy_nj: f64 =
            self.batches.iter().filter_map(|b| b.sim.as_ref()).map(|s| s.energy_nj).sum();
        let sens: Vec<(f64, f64)> = self
            .batches
            .iter()
            .filter_map(|b| b.sensitive_fraction.map(|f| (f * b.size as f64, b.size as f64)))
            .collect();
        let mean_sensitive_fraction = if sens.is_empty() {
            None
        } else {
            let (num, den): (f64, f64) =
                sens.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
            Some(num / den)
        };
        StatsSummary {
            completed: n as u64,
            batches: self.batches.len() as u64,
            rejected_queue_full: self.rejected_queue_full,
            rejected_deadline: self.rejected_deadline,
            rejected_invalid: self.rejected_invalid,
            mean_batch_size,
            mean_queue_wait,
            p50_latency: percentile(&totals, 0.50),
            p99_latency: percentile(&totals, 0.99),
            sim_cycles,
            sim_energy_nj,
            mean_sensitive_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 1.0), Duration::from_millis(100));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(percentile(&[Duration::from_secs(1)], 0.99), Duration::from_secs(1));
    }

    #[test]
    fn summary_aggregates() {
        let mut l = Ledger::default();
        for i in 1..=4u64 {
            l.requests.push(RequestRecord {
                model: "m".into(),
                queue_wait: Duration::from_millis(i),
                service: Duration::from_millis(10),
                total: Duration::from_millis(10 + i),
                batch_size: 2,
            });
        }
        l.batches.push(BatchRecord {
            model: "m".into(),
            engine: "odq".into(),
            size: 2,
            service: Duration::from_millis(10),
            sensitive_fraction: Some(0.25),
            sim: Some(BatchSim {
                config: "ODQ".into(),
                cycles_per_image: 100.0,
                batch_cycles: 200.0,
                time_s: 1e-6,
                energy_nj: 5.0,
            }),
        });
        l.batches.push(BatchRecord {
            model: "m".into(),
            engine: "odq".into(),
            size: 2,
            service: Duration::from_millis(10),
            sensitive_fraction: Some(0.75),
            sim: None,
        });
        let s = l.summary();
        assert_eq!(s.completed, 4);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch_size - 2.0).abs() < 1e-12);
        assert_eq!(s.sim_cycles, 200.0);
        assert_eq!(s.sim_energy_nj, 5.0);
        assert!((s.mean_sensitive_fraction.unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(s.p50_latency, Duration::from_millis(12));
    }
}
