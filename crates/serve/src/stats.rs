//! Streaming serving metrics: fixed-footprint histograms, counters, gauges.
//!
//! The ledger used to append one record per request and per batch, which
//! means a server under sustained load grew without bound. It is now a set
//! of *streaming* aggregates whose memory footprint is O(1) in the number
//! of requests served:
//!
//! * **log-bucketed histograms** ([`LogHistogram`]) for queue-wait,
//!   service, and end-to-end latency (plus batch size) — fixed bucket
//!   arrays with ≤12.5% relative quantile error;
//! * **monotone counters** for every admission/terminal outcome
//!   (admitted, served, `rejected_{invalid,queue_full,deadline,shutdown}`,
//!   internal errors, worker panics/restarts);
//! * **gauges** for submission-queue depth and executed batch size;
//! * **running sums** for simulated accelerator cycles/energy and the
//!   output-weighted sensitive fraction;
//! * a small fixed-capacity ring of the most recent [`BatchRecord`]s for
//!   debugging (bounded at [`RECENT_BATCH_CAP`]).
//!
//! `Ledger::summary` snapshots everything into a [`StatsSummary`], which
//! serializes to JSON for dashboards and the `serve_bench` report.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::request::ServeError;
use crate::worker::lock_ledger;

/// How many recently executed batches the ledger retains for inspection.
pub const RECENT_BATCH_CAP: usize = 32;

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per power of two,
/// bounding the relative error of any reported quantile at 1/8 = 12.5%.
const SUB_BITS: usize = 3;
const SUB: usize = 1 << SUB_BITS;
/// Values `0..SUB` get exact buckets; each octave above contributes `SUB`.
const BUCKETS: usize = SUB + (64 - SUB_BITS) * SUB;

/// A fixed-footprint log-bucketed histogram of `u64` samples
/// (HdrHistogram-style: power-of-two octaves with linear sub-buckets).
///
/// Recording is O(1); quantiles are O(buckets); memory is a constant
/// ~4 KB regardless of how many samples are recorded.
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self { counts: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB + (exp - SUB_BITS) * SUB + sub
    }
}

fn bucket_lower(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let exp = SUB_BITS + (i - SUB) / SUB;
        let sub = ((i - SUB) % SUB) as u64;
        (SUB as u64 + sub) << (exp - SUB_BITS)
    }
}

impl LogHistogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample recorded (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one.
    ///
    /// Exactly equivalent to having recorded the other histogram's samples
    /// here (bucket for bucket — the proptest in `tests/proptests.rs` pins
    /// this), so per-shard histograms can be kept lock-cheap and merged at
    /// snapshot time.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, in increasing
    /// value order. The exposition layer and the merge proptest read the
    /// bucket structure through this without widening field visibility.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (bucket_lower(i), c))
    }

    /// Nearest-rank `q`-quantile (`0.0..=1.0`), accurate to the bucket's
    /// 12.5% relative width. Returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are tracked exactly; answer them exactly.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket midpoint, clamped two-sided to the true observed
                // range: a midpoint can fall below every recorded sample
                // (low quantiles) or above the maximum (high quantiles),
                // and a reported quantile must never leave [min, max].
                let lo = bucket_lower(i);
                let width = if i < SUB { 1 } else { bucket_lower(i + 1) - lo };
                return (lo + width / 2).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Duration-flavored view over a [`LogHistogram`] of nanosecond samples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (nearest-rank over log buckets, ≤12.5% relative error).
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Largest sample (exact).
    pub max: Duration,
}

impl LatencyStats {
    fn from_nanos_histogram(h: &LogHistogram) -> Self {
        let d = |ns: u64| Duration::from_nanos(ns);
        Self {
            count: h.count(),
            mean: d(h.mean() as u64),
            p50: d(h.value_at_quantile(0.50)),
            p95: d(h.value_at_quantile(0.95)),
            p99: d(h.value_at_quantile(0.99)),
            max: d(h.max()),
        }
    }

    fn to_json(self) -> serde_json::Value {
        let ms = |d: Duration| serde_json::Value::F64(d.as_secs_f64() * 1e3);
        serde_json::Value::Object(vec![
            ("count".into(), serde_json::Value::U64(self.count)),
            ("mean_ms".into(), ms(self.mean)),
            ("p50_ms".into(), ms(self.p50)),
            ("p95_ms".into(), ms(self.p95)),
            ("p99_ms".into(), ms(self.p99)),
            ("max_ms".into(), ms(self.max)),
        ])
    }
}

/// Per-batch simulated accelerator cost, from `odq_accel`'s cycle-level
/// simulator run on the batch's *measured* sensitivity profile.
#[derive(Clone, Debug)]
pub struct BatchSim {
    /// Accelerator configuration name (Table 2), or `"mixed"` when a
    /// precision policy costed the batch across several configurations.
    pub config: String,
    /// Simulated cycles per image.
    pub cycles_per_image: f64,
    /// Simulated cycles for the whole batch (per-image × batch size).
    pub batch_cycles: f64,
    /// Simulated execution time for the whole batch, seconds.
    pub time_s: f64,
    /// Simulated energy for the whole batch, nanojoules.
    pub energy_nj: f64,
    /// Per-route breakdown. Single-engine kinds report one entry; a
    /// policy-routed batch reports one per route that executed layers.
    pub routes: Vec<RouteSim>,
}

/// One precision route's share of a batch's simulated cost.
#[derive(Clone, Debug)]
pub struct RouteSim {
    /// Route label (`"odq"`, `"int4"`, `"float"`, ...).
    pub route: String,
    /// Accelerator configuration the route was costed on.
    pub config: String,
    /// Conv layers this route executed during the pass.
    pub layers: usize,
    /// Simulated cycles for this route's layers across the whole batch.
    pub batch_cycles: f64,
    /// Simulated energy for this route's layers, nanojoules.
    pub energy_nj: f64,
}

/// One executed batch's ledger entry (retained only in the bounded
/// recent-batches ring; aggregates are streamed into the histograms).
#[derive(Clone, Debug)]
pub struct BatchRecord {
    /// Model name.
    pub model: String,
    /// Deployment version whose weights executed this batch — the audit
    /// trail a hot swap leaves behind: the ring shows exactly which
    /// batches ran on which version around the swap point.
    pub version: u64,
    /// The registry's full-content weight fingerprint for that version
    /// ([`crate::Deployment::fingerprint`]), carried into the per-version
    /// aggregates so dashboards can pin *which weights* a version label
    /// actually meant.
    pub fingerprint: u64,
    /// Engine label ([`crate::EngineKind::label`]); shared, not cloned,
    /// across every record a worker writes.
    pub engine: Arc<str>,
    /// Requests coalesced into this batch.
    pub size: usize,
    /// Forward-pass duration.
    pub service: Duration,
    /// Output-weighted sensitive-output fraction measured during the pass
    /// (ODQ engines only).
    pub sensitive_fraction: Option<f64>,
    /// Simulated accelerator cost (when enabled).
    pub sim: Option<BatchSim>,
}

/// Per-(model, version) streaming aggregates: completion counts and the
/// service-latency distribution. One entry per *deployment* ever executed
/// — the map grows with swaps, never with requests.
#[derive(Clone, Debug, Default)]
struct VersionLedger {
    completed: u64,
    batches: u64,
    fingerprint: u64,
    service: LogHistogram,
}

/// One conv layer's measured slice of a single forward pass, handed to
/// the ledger's `record_layers` by the worker. Everything here is
/// per-batch (the wall time covers the whole `[N, ...]` batched conv).
#[derive(Clone, Debug)]
pub struct LayerProfile {
    /// Layer name (paper numbering, e.g. `"C3"`).
    pub layer: String,
    /// Precision route that executed the layer (`"odq"`, `"int8"`, ...).
    pub route: String,
    /// Wall time of the layer's conv across the batch.
    pub wall: Duration,
    /// ODQ sensitive-output mask density (or DRQ high-precision input
    /// fraction) measured during the pass, when the route reports one.
    pub mask_density: Option<f64>,
    /// Simulated accelerator cycles attributed to this layer for the
    /// batch (0 when simulation is off).
    pub sim_cycles: f64,
}

/// Per-(model, version, layer) streaming aggregates. One entry per layer
/// of each deployment ever executed — grows with topology and swaps,
/// never with requests.
#[derive(Clone, Debug, Default)]
struct LayerAgg {
    route: String,
    passes: u64,
    wall: LogHistogram,
    density_sum: f64,
    density_count: u64,
    sim_cycles: f64,
}

/// Per-route streaming aggregates. One entry per distinct route label ever
/// executed — bounded by the number of routes policies mention, never by
/// the number of requests.
#[derive(Clone, Debug, Default)]
struct RouteAgg {
    batches: u64,
    layers: u64,
    cycles: f64,
    energy_nj: f64,
}

/// Streaming counters for a network front-end sitting on top of the
/// server (the `odq-net` TCP listener, or any other transport). All
/// monotone except `active_connections`, which is a gauge. Fixed size, so
/// the O(1)-in-requests ledger guarantee extends over the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted by the front-end.
    pub connections_opened: u64,
    /// Connections fully torn down (reader and writer exited).
    pub connections_closed: u64,
    /// Connections refused at accept time (connection cap reached).
    pub connections_rejected: u64,
    /// Connections currently live (opened − closed, maintained as a gauge).
    pub active_connections: u64,
    /// Wire bytes read from clients (frame headers + bodies).
    pub bytes_in: u64,
    /// Wire bytes written to clients.
    pub bytes_out: u64,
    /// Well-formed frames decoded from clients.
    pub frames_in: u64,
    /// Frames written to clients (responses and typed errors).
    pub frames_out: u64,
    /// Malformed, truncated, or oversized frames rejected at the wire.
    pub protocol_errors: u64,
}

/// A front-end's handle into the server's streaming ledger: the `odq-net`
/// listener clones one per connection and streams connection/byte/frame
/// counters into the same [`StatsSummary`] the serving pipeline reports
/// ([`crate::Server::stats_json`]'s `net` section). Cheap to clone; every
/// method takes one short ledger lock.
#[derive(Clone, Debug)]
pub struct NetTap {
    ledger: Arc<Mutex<Ledger>>,
}

impl NetTap {
    pub(crate) fn new(ledger: Arc<Mutex<Ledger>>) -> Self {
        Self { ledger }
    }

    /// A connection was accepted.
    pub fn conn_opened(&self) {
        let mut led = lock_ledger(&self.ledger);
        led.net.connections_opened += 1;
        led.net.active_connections += 1;
    }

    /// A connection fully tore down (counted once per opened connection).
    pub fn conn_closed(&self) {
        let mut led = lock_ledger(&self.ledger);
        led.net.connections_closed += 1;
        led.net.active_connections = led.net.active_connections.saturating_sub(1);
    }

    /// A connection was refused because the connection cap was reached.
    pub fn conn_rejected(&self) {
        lock_ledger(&self.ledger).net.connections_rejected += 1;
    }

    /// One well-formed frame arrived, `bytes` long on the wire.
    pub fn frame_in(&self, bytes: u64) {
        let mut led = lock_ledger(&self.ledger);
        led.net.frames_in += 1;
        led.net.bytes_in += bytes;
    }

    /// One frame was written to a client, `bytes` long on the wire.
    pub fn frame_out(&self, bytes: u64) {
        let mut led = lock_ledger(&self.ledger);
        led.net.frames_out += 1;
        led.net.bytes_out += bytes;
    }

    /// Bytes consumed from the wire that did not amount to a well-formed
    /// frame (partial reads before a malformed/truncated reject).
    pub fn bytes_in(&self, bytes: u64) {
        lock_ledger(&self.ledger).net.bytes_in += bytes;
    }

    /// A malformed, truncated, or oversized frame was rejected.
    pub fn protocol_error(&self) {
        lock_ledger(&self.ledger).net.protocol_errors += 1;
    }
}

/// A read-only handle onto a server's streaming ledger, detachable from
/// the [`crate::Server`] itself: the observability layer (`odq-obs`)
/// holds one so its `/metrics` listener can snapshot the ledger from its
/// own threads without owning or borrowing the server. Cheap to clone;
/// every call takes one short ledger lock.
#[derive(Clone, Debug)]
pub struct StatsHandle {
    ledger: Arc<Mutex<Ledger>>,
}

impl StatsHandle {
    pub(crate) fn new(ledger: Arc<Mutex<Ledger>>) -> Self {
        Self { ledger }
    }

    /// Snapshot the ledger (same data as [`crate::Server::stats`]).
    pub fn summary(&self) -> StatsSummary {
        lock_ledger(&self.ledger).summary()
    }
}

/// Mutable streaming ledger shared by the admission path and the workers.
/// Every field is a fixed-size aggregate: memory does not grow with the
/// number of requests served.
#[derive(Debug)]
pub(crate) struct Ledger {
    /// When this ledger (the server) came up.
    pub started: Instant,
    // Counters.
    pub admitted: u64,
    pub served: u64,
    pub batches: u64,
    /// Batches whose execution *began* (used by fault injection; differs
    /// from `batches` when a worker panics mid-batch).
    pub batches_started: u64,
    pub rejected_queue_full: u64,
    pub rejected_deadline: u64,
    pub rejected_invalid: u64,
    pub rejected_shutdown: u64,
    /// Requests answered [`crate::ServeError::Internal`] after a panic.
    pub internal_errors: u64,
    pub worker_panics: u64,
    pub worker_restarts: u64,
    // Gauges.
    pub last_queue_depth: u64,
    pub max_queue_depth: u64,
    // Network front-end counters (all zero when no front-end is attached).
    pub net: NetStats,
    // Histograms (nanoseconds; batch_size in requests).
    queue_wait: LogHistogram,
    service: LogHistogram,
    total: LogHistogram,
    batch_size: LogHistogram,
    // Running sums.
    sim_cycles: f64,
    sim_energy_nj: f64,
    sens_weighted: f64,
    sens_weight: f64,
    // Bounded debugging ring of the most recent batches.
    recent: VecDeque<BatchRecord>,
    // Per-deployment aggregates (grows with swaps, not requests).
    per_model: BTreeMap<(String, u64), VersionLedger>,
    // Per-route aggregates (grows with distinct route labels).
    per_route: BTreeMap<String, RouteAgg>,
    // Per-(model, version, layer) aggregates (grows with topology and
    // swaps, not requests).
    per_layer: BTreeMap<(String, u64, String), LayerAgg>,
}

impl Default for Ledger {
    fn default() -> Self {
        Self {
            started: Instant::now(),
            admitted: 0,
            served: 0,
            batches: 0,
            batches_started: 0,
            rejected_queue_full: 0,
            rejected_deadline: 0,
            rejected_invalid: 0,
            rejected_shutdown: 0,
            internal_errors: 0,
            worker_panics: 0,
            worker_restarts: 0,
            last_queue_depth: 0,
            max_queue_depth: 0,
            net: NetStats::default(),
            queue_wait: LogHistogram::default(),
            service: LogHistogram::default(),
            total: LogHistogram::default(),
            batch_size: LogHistogram::default(),
            sim_cycles: 0.0,
            sim_energy_nj: 0.0,
            sens_weighted: 0.0,
            sens_weight: 0.0,
            recent: VecDeque::new(),
            per_model: BTreeMap::new(),
            per_route: BTreeMap::new(),
            per_layer: BTreeMap::new(),
        }
    }
}

impl Ledger {
    /// Count one admission rejection under the counter its [`ServeError`]
    /// variant names. Matching on the variant (instead of attributing
    /// every admission failure to one counter) keeps the rejection
    /// taxonomy honest as new admission failure modes appear: an
    /// invalid-input reject and a shutting-down reject must never share a
    /// counter.
    pub fn count_rejection(&mut self, e: &ServeError) {
        match e {
            ServeError::UnknownModel(_) | ServeError::BadInput(_) => self.rejected_invalid += 1,
            ServeError::QueueFull => self.rejected_queue_full += 1,
            ServeError::ShuttingDown => self.rejected_shutdown += 1,
            ServeError::DeadlineExceeded => self.rejected_deadline += 1,
            ServeError::WorkerLost | ServeError::Internal => self.internal_errors += 1,
        }
    }

    /// Record the submission-queue depth observed at admission.
    pub fn note_queue_depth(&mut self, depth: usize) {
        self.last_queue_depth = depth as u64;
        self.max_queue_depth = self.max_queue_depth.max(depth as u64);
    }

    /// Stream one served request's timings into the histograms.
    pub fn record_request(&mut self, queue_wait: Duration, service: Duration, total: Duration) {
        self.served += 1;
        self.queue_wait.record(queue_wait.as_nanos() as u64);
        self.service.record(service.as_nanos() as u64);
        self.total.record(total.as_nanos() as u64);
    }

    /// Stream one executed batch into the aggregates and the recent ring.
    pub fn record_batch(&mut self, rec: BatchRecord) {
        self.batches += 1;
        self.batch_size.record(rec.size as u64);
        let vl = self.per_model.entry((rec.model.clone(), rec.version)).or_default();
        vl.completed += rec.size as u64;
        vl.batches += 1;
        vl.fingerprint = rec.fingerprint;
        vl.service.record(rec.service.as_nanos() as u64);
        if let Some(sim) = &rec.sim {
            self.sim_cycles += sim.batch_cycles;
            self.sim_energy_nj += sim.energy_nj;
            for r in &sim.routes {
                let agg = self.per_route.entry(r.route.clone()).or_default();
                agg.batches += 1;
                agg.layers += r.layers as u64;
                agg.cycles += r.batch_cycles;
                agg.energy_nj += r.energy_nj;
            }
        }
        if let Some(f) = rec.sensitive_fraction {
            self.sens_weighted += f * rec.size as f64;
            self.sens_weight += rec.size as f64;
        }
        if self.recent.len() == RECENT_BATCH_CAP {
            self.recent.pop_front();
        }
        self.recent.push_back(rec);
    }

    /// Stream one batch's per-layer profiles into the per-(model,
    /// version, layer) aggregates. O(layers) per batch; the map itself is
    /// bounded by topology × deployments, never by request count.
    pub fn record_layers(&mut self, model: &str, version: u64, profiles: &[LayerProfile]) {
        for p in profiles {
            let agg =
                self.per_layer.entry((model.to_string(), version, p.layer.clone())).or_default();
            agg.route = p.route.clone();
            agg.passes += 1;
            agg.wall.record(p.wall.as_nanos() as u64);
            if let Some(d) = p.mask_density {
                agg.density_sum += d;
                agg.density_count += 1;
            }
            agg.sim_cycles += p.sim_cycles;
        }
    }

    /// A worker panicked while serving `batch_len` requests: count the
    /// panic and the internal-error responses those requests received.
    pub fn record_worker_panic(&mut self, batch_len: usize) {
        self.worker_panics += 1;
        self.internal_errors += batch_len as u64;
    }

    /// Reconcile the live ledger: cross-check every streaming aggregate
    /// against the conservation law and against each other. `in_queue` is
    /// the submission queue's current depth (the ledger itself only sees
    /// admissions and completions; the queue is the server's).
    pub fn reconcile(&self, in_queue: u64) -> ReconcileReport {
        ReconcileReport {
            admitted: self.admitted,
            completed: self.served,
            rejected_deadline: self.rejected_deadline,
            internal_errors: self.internal_errors,
            in_queue,
            rejected_queue_full: self.rejected_queue_full,
            rejected_invalid: self.rejected_invalid,
            rejected_shutdown: self.rejected_shutdown,
            latency_samples: self.total.count(),
            per_version_completed: self.per_model.values().map(|vl| vl.completed).sum(),
            batches: self.batches,
            batch_samples: self.batch_size.count(),
            worker_panics: self.worker_panics,
            worker_restarts: self.worker_restarts,
            active_connections: self.net.active_connections,
            net_open_minus_closed: self
                .net
                .connections_opened
                .saturating_sub(self.net.connections_closed),
        }
    }

    /// Copy of the bounded recent-batches ring (newest last).
    pub fn recent_batches(&self) -> Vec<BatchRecord> {
        self.recent.iter().cloned().collect()
    }

    /// Approximate resident bytes of the ledger, including ring-buffer
    /// heap. Constant-bounded by construction; the serve tests pin it.
    pub fn approx_bytes(&self) -> usize {
        let sim_heap = |s: &BatchSim| {
            s.config.capacity()
                + s.routes.capacity() * std::mem::size_of::<RouteSim>()
                + s.routes.iter().map(|r| r.route.capacity() + r.config.capacity()).sum::<usize>()
        };
        let ring_heap: usize = self.recent.capacity() * std::mem::size_of::<BatchRecord>()
            + self
                .recent
                .iter()
                .map(|r| r.model.capacity() + r.engine.len() + r.sim.as_ref().map_or(0, sim_heap))
                .sum::<usize>();
        let per_model_heap: usize = self
            .per_model
            .iter()
            .map(|((name, _), _)| {
                name.capacity() + std::mem::size_of::<((String, u64), VersionLedger)>()
            })
            .sum();
        let per_route_heap: usize = self
            .per_route
            .keys()
            .map(|route| route.capacity() + std::mem::size_of::<(String, RouteAgg)>())
            .sum();
        let per_layer_heap: usize = self
            .per_layer
            .iter()
            .map(|((model, _, layer), agg)| {
                model.capacity()
                    + layer.capacity()
                    + agg.route.capacity()
                    + std::mem::size_of::<((String, u64, String), LayerAgg)>()
            })
            .sum();
        std::mem::size_of::<Self>() + ring_heap + per_model_heap + per_route_heap + per_layer_heap
    }

    pub fn summary(&self) -> StatsSummary {
        let mean_sensitive_fraction =
            if self.sens_weight > 0.0 { Some(self.sens_weighted / self.sens_weight) } else { None };
        let latency = LatencyStats::from_nanos_histogram(&self.total);
        let models = self
            .per_model
            .iter()
            .map(|((model, version), vl)| ModelVersionStats {
                model: model.clone(),
                version: *version,
                fingerprint: vl.fingerprint,
                completed: vl.completed,
                batches: vl.batches,
                service: LatencyStats::from_nanos_histogram(&vl.service),
            })
            .collect();
        let layers = self
            .per_layer
            .iter()
            .map(|((model, version, layer), agg)| LayerRuntimeStats {
                model: model.clone(),
                version: *version,
                layer: layer.clone(),
                route: agg.route.clone(),
                passes: agg.passes,
                wall: LatencyStats::from_nanos_histogram(&agg.wall),
                mask_density: (agg.density_count > 0)
                    .then(|| agg.density_sum / agg.density_count as f64),
                sim_cycles: agg.sim_cycles,
            })
            .collect();
        let routes = self
            .per_route
            .iter()
            .map(|(route, agg)| RouteStats {
                route: route.clone(),
                batches: agg.batches,
                layers: agg.layers,
                cycles: agg.cycles,
                energy_nj: agg.energy_nj,
            })
            .collect();
        StatsSummary {
            uptime: self.started.elapsed(),
            models,
            layers,
            admitted: self.admitted,
            completed: self.served,
            batches: self.batches,
            rejected_queue_full: self.rejected_queue_full,
            rejected_deadline: self.rejected_deadline,
            rejected_invalid: self.rejected_invalid,
            rejected_shutdown: self.rejected_shutdown,
            internal_errors: self.internal_errors,
            worker_panics: self.worker_panics,
            worker_restarts: self.worker_restarts,
            mean_batch_size: self.batch_size.mean(),
            max_batch_size: self.batch_size.max(),
            net: self.net,
            last_queue_depth: self.last_queue_depth,
            max_queue_depth: self.max_queue_depth,
            mean_queue_wait: Duration::from_nanos(self.queue_wait.mean() as u64),
            queue_wait: LatencyStats::from_nanos_histogram(&self.queue_wait),
            service: LatencyStats::from_nanos_histogram(&self.service),
            latency,
            p50_latency: latency.p50,
            p99_latency: latency.p99,
            sim_cycles: self.sim_cycles,
            sim_energy_nj: self.sim_energy_nj,
            mean_sensitive_fraction,
            routes,
        }
    }
}

/// The serving pipeline's conservation law, checked: every request that
/// passed admission must be accounted for by exactly one terminal
/// outcome.
///
/// Post-admission, a request can end exactly three ways — completed,
/// dropped on deadline (the batcher's expiry sweep or the worker's
/// last-chance partition), or answered `Internal` after a worker panic —
/// or still be in flight (queued or mid-batch). So at any quiescent
/// moment:
///
/// ```text
///   admitted == completed + rejected_deadline + internal_errors + in_queue
/// ```
///
/// The pre-admission rejections (`queue_full`, `invalid`, `shutdown`) are
/// carried for context but sit *outside* the equation: those requests
/// never entered the pipeline. [`is_balanced`](Self::is_balanced) also
/// cross-checks the streaming aggregates against each other (histogram
/// sample counts vs counters, per-version completions vs the global
/// counter), which is what catches a double-count or a dropped record
/// that single counters cannot see.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Requests that passed admission into the queue.
    pub admitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests dropped post-admission because their deadline passed.
    pub rejected_deadline: u64,
    /// Requests answered [`ServeError::Internal`] after a worker panic.
    pub internal_errors: u64,
    /// Requests still waiting in the submission queue at snapshot time
    /// (always 0 for a post-shutdown report: shutdown drains the queue).
    pub in_queue: u64,
    /// Pre-admission: rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Pre-admission: unknown model or bad input shape.
    pub rejected_invalid: u64,
    /// Pre-admission: server shutting down.
    pub rejected_shutdown: u64,
    /// Samples in the end-to-end latency histogram (must equal
    /// `completed`: exactly one sample is streamed per served request).
    pub latency_samples: u64,
    /// Sum of per-(model, version) completion counts (must equal
    /// `completed`: every served request is attributed to exactly one
    /// deployment).
    pub per_version_completed: u64,
    /// Batches executed to completion.
    pub batches: u64,
    /// Samples in the batch-size histogram (must equal `batches`).
    pub batch_samples: u64,
    /// Worker panics caught by the supervision shell.
    pub worker_panics: u64,
    /// Workers restarted after a panic. At most `worker_panics`: the
    /// restart is counted after the replacement shift spins up, so a
    /// snapshot can catch a panic whose restart hasn't landed yet.
    pub worker_restarts: u64,
    /// Live network connections (gauge; 0 when no front-end is attached
    /// or every connection has torn down).
    pub active_connections: u64,
    /// Front-end connections opened minus closed (must equal
    /// `active_connections`: the gauge is maintained alongside both
    /// monotone counters and must never drift from them).
    pub net_open_minus_closed: u64,
}

impl ReconcileReport {
    /// Does every streaming aggregate agree with every other?
    ///
    /// Checks the conservation law plus the cross-aggregate equalities
    /// documented on each field. `false` means the ledger lost, double-
    /// counted, or mis-attributed at least one request or batch.
    pub fn is_balanced(&self) -> bool {
        self.admitted
            == self.completed + self.rejected_deadline + self.internal_errors + self.in_queue
            && self.latency_samples == self.completed
            && self.per_version_completed == self.completed
            && self.batch_samples == self.batches
            && self.worker_restarts <= self.worker_panics
            && self.net_open_minus_closed == self.active_connections
    }

    /// Have all in-flight gauges returned to zero (drained queue, no live
    /// connections)? True quiesce is [`is_balanced`](Self::is_balanced)
    /// *and* this.
    pub fn gauges_clear(&self) -> bool {
        self.in_queue == 0 && self.active_connections == 0
    }
}

impl std::fmt::Display for ReconcileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admitted {} == completed {} + deadline {} + internal {} + in_queue {} \
             (= {}); latency_samples {}, per_version {}, batches {}/{}, \
             panics {}, restarts {}, active_conns {} (opened-closed {})",
            self.admitted,
            self.completed,
            self.rejected_deadline,
            self.internal_errors,
            self.in_queue,
            self.completed + self.rejected_deadline + self.internal_errors + self.in_queue,
            self.latency_samples,
            self.per_version_completed,
            self.batch_samples,
            self.batches,
            self.worker_panics,
            self.worker_restarts,
            self.active_connections,
            self.net_open_minus_closed,
        )
    }
}

/// Per-route slice of the snapshot: the simulated cost one precision
/// route (by label) has accumulated across all batches. Single-engine
/// deployments show one row; a policy-routed deployment shows one per
/// route its policies ever executed, which is how a mixed-precision
/// sweep reads where the cycles and energy went.
#[derive(Clone, Debug)]
pub struct RouteStats {
    /// Route label (`"odq"`, `"int4"`, `"float"`, ...).
    pub route: String,
    /// Batches in which this route executed at least one layer.
    pub batches: u64,
    /// Total conv-layer executions attributed to this route.
    pub layers: u64,
    /// Total simulated cycles attributed to this route.
    pub cycles: f64,
    /// Total simulated energy attributed to this route, nanojoules.
    pub energy_nj: f64,
}

/// Per-deployment slice of the snapshot: what one (model, version) pair
/// has served. A canary experiment and a hot swap both read their outcome
/// here — completions and service latency split by exactly which weights
/// answered.
#[derive(Clone, Debug)]
pub struct ModelVersionStats {
    /// Model name.
    pub model: String,
    /// Deployment version.
    pub version: u64,
    /// The registry's weight fingerprint this version was pinned with.
    pub fingerprint: u64,
    /// Requests answered by this version.
    pub completed: u64,
    /// Batches executed by this version.
    pub batches: u64,
    /// Forward-pass latency distribution for this version.
    pub service: LatencyStats,
}

/// Per-(model, version, layer) slice of the snapshot: where each forward
/// pass spent its wall time, which precision route executed the layer,
/// the mean measured ODQ mask density, and the layer's share of simulated
/// accelerator cycles. This is the serving-scale view of the paper's core
/// claim — per-layer, per-output-region cost — as actually observed.
#[derive(Clone, Debug)]
pub struct LayerRuntimeStats {
    /// Model name.
    pub model: String,
    /// Deployment version.
    pub version: u64,
    /// Layer name (paper numbering, e.g. `"C3"`).
    pub layer: String,
    /// Precision route that executed this layer (last observed).
    pub route: String,
    /// Batched forward passes the layer has executed.
    pub passes: u64,
    /// Per-pass wall-time distribution for this layer's conv.
    pub wall: LatencyStats,
    /// Mean measured mask density (ODQ sensitive-output fraction, or DRQ
    /// high-precision input fraction), when the route reports one.
    pub mask_density: Option<f64>,
    /// Total simulated accelerator cycles attributed to this layer.
    pub sim_cycles: f64,
}

/// Point-in-time snapshot of the streaming ledger.
///
/// `Default` is the all-zero snapshot an idle, just-started server would
/// report — what exporters render before any traffic arrives.
#[derive(Clone, Debug, Default)]
pub struct StatsSummary {
    /// How long the server has been up.
    pub uptime: Duration,
    /// Per-(model, version) completions and service latency, sorted by
    /// name then version.
    pub models: Vec<ModelVersionStats>,
    /// Per-(model, version, layer) wall time, route, mask density, and
    /// simulated cycles, sorted by model, version, then layer name.
    /// Empty when layer profiling is disabled
    /// ([`crate::ServeConfig::layer_profiling`]).
    pub layers: Vec<LayerRuntimeStats>,
    /// Requests that passed admission into the queue.
    pub admitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Batches executed to completion.
    pub batches: u64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_queue_full: u64,
    /// Requests dropped because their deadline passed before execution.
    pub rejected_deadline: u64,
    /// Requests rejected for unknown model / bad input shape.
    pub rejected_invalid: u64,
    /// Requests rejected because the server was shutting down.
    pub rejected_shutdown: u64,
    /// Requests answered [`crate::ServeError::Internal`] (worker panic).
    pub internal_errors: u64,
    /// Worker panics caught by the supervision shell.
    pub worker_panics: u64,
    /// Workers restarted with a fresh engine after a panic.
    pub worker_restarts: u64,
    /// Mean executed batch size.
    pub mean_batch_size: f64,
    /// Largest executed batch.
    pub max_batch_size: u64,
    /// Network front-end counters (all zero when no front-end is
    /// attached; populated by `odq-net` through [`NetTap`]).
    pub net: NetStats,
    /// Submission-queue depth at the last admission.
    pub last_queue_depth: u64,
    /// Highest submission-queue depth observed at admission.
    pub max_queue_depth: u64,
    /// Mean time requests spent queued before their forward pass.
    pub mean_queue_wait: Duration,
    /// Queue-wait distribution (submission → dequeue by a worker).
    pub queue_wait: LatencyStats,
    /// Service distribution (forward-pass duration).
    pub service: LatencyStats,
    /// End-to-end latency distribution (submission → response).
    pub latency: LatencyStats,
    /// Median end-to-end latency (mirror of `latency.p50`).
    pub p50_latency: Duration,
    /// 99th-percentile end-to-end latency (mirror of `latency.p99`).
    pub p99_latency: Duration,
    /// Total simulated accelerator cycles across all batches.
    pub sim_cycles: f64,
    /// Total simulated accelerator energy across all batches, nanojoules.
    pub sim_energy_nj: f64,
    /// Output-weighted mean sensitive fraction across ODQ batches.
    pub mean_sensitive_fraction: Option<f64>,
    /// Simulated cost split by precision route, sorted by route label.
    pub routes: Vec<RouteStats>,
}

impl StatsSummary {
    /// Reconcile a snapshot, e.g. the final summary
    /// [`crate::Server::shutdown`] returns. A summary carries no live
    /// queue depth, so `in_queue` is 0 — valid for post-shutdown
    /// summaries (shutdown drains the queue before returning) and for
    /// any snapshot the caller knows was taken at quiesce. For a live
    /// mid-flight check use [`crate::Server::reconcile`], which reads
    /// the real queue depth.
    ///
    /// The summary does not retain raw histogram sample counts for the
    /// batch-size histogram, so `batch_samples` mirrors `batches` here;
    /// the end-to-end latency count is carried and checked for real.
    pub fn reconcile(&self) -> ReconcileReport {
        ReconcileReport {
            admitted: self.admitted,
            completed: self.completed,
            rejected_deadline: self.rejected_deadline,
            internal_errors: self.internal_errors,
            in_queue: 0,
            rejected_queue_full: self.rejected_queue_full,
            rejected_invalid: self.rejected_invalid,
            rejected_shutdown: self.rejected_shutdown,
            latency_samples: self.latency.count,
            per_version_completed: self.models.iter().map(|m| m.completed).sum(),
            batches: self.batches,
            batch_samples: self.batches,
            worker_panics: self.worker_panics,
            worker_restarts: self.worker_restarts,
            active_connections: self.net.active_connections,
            net_open_minus_closed: self
                .net
                .connections_opened
                .saturating_sub(self.net.connections_closed),
        }
    }

    /// Snapshot as a JSON tree (durations in milliseconds).
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let counters = Value::Object(vec![
            ("admitted".into(), Value::U64(self.admitted)),
            ("completed".into(), Value::U64(self.completed)),
            ("batches".into(), Value::U64(self.batches)),
            ("rejected_queue_full".into(), Value::U64(self.rejected_queue_full)),
            ("rejected_deadline".into(), Value::U64(self.rejected_deadline)),
            ("rejected_invalid".into(), Value::U64(self.rejected_invalid)),
            ("rejected_shutdown".into(), Value::U64(self.rejected_shutdown)),
            ("internal_errors".into(), Value::U64(self.internal_errors)),
            ("worker_panics".into(), Value::U64(self.worker_panics)),
            ("worker_restarts".into(), Value::U64(self.worker_restarts)),
        ]);
        let gauges = Value::Object(vec![
            ("mean_batch_size".into(), Value::F64(self.mean_batch_size)),
            ("max_batch_size".into(), Value::U64(self.max_batch_size)),
            ("last_queue_depth".into(), Value::U64(self.last_queue_depth)),
            ("max_queue_depth".into(), Value::U64(self.max_queue_depth)),
        ]);
        let net = Value::Object(vec![
            ("connections_opened".into(), Value::U64(self.net.connections_opened)),
            ("connections_closed".into(), Value::U64(self.net.connections_closed)),
            ("connections_rejected".into(), Value::U64(self.net.connections_rejected)),
            ("active_connections".into(), Value::U64(self.net.active_connections)),
            ("bytes_in".into(), Value::U64(self.net.bytes_in)),
            ("bytes_out".into(), Value::U64(self.net.bytes_out)),
            ("frames_in".into(), Value::U64(self.net.frames_in)),
            ("frames_out".into(), Value::U64(self.net.frames_out)),
            ("protocol_errors".into(), Value::U64(self.net.protocol_errors)),
        ]);
        let latency = vec![
            ("queue_wait".into(), self.queue_wait.to_json()),
            ("service".into(), self.service.to_json()),
            ("total".into(), self.latency.to_json()),
        ];
        let mut sim = vec![
            ("cycles".into(), Value::F64(self.sim_cycles)),
            ("energy_nj".into(), Value::F64(self.sim_energy_nj)),
        ];
        if let Some(f) = self.mean_sensitive_fraction {
            sim.push(("mean_sensitive_fraction".into(), Value::F64(f)));
        }
        if !self.routes.is_empty() {
            let routes = self
                .routes
                .iter()
                .map(|r| {
                    (
                        r.route.clone(),
                        Value::Object(vec![
                            ("batches".into(), Value::U64(r.batches)),
                            ("layers".into(), Value::U64(r.layers)),
                            ("cycles".into(), Value::F64(r.cycles)),
                            ("energy_nj".into(), Value::F64(r.energy_nj)),
                        ]),
                    )
                })
                .collect();
            sim.push(("routes".into(), Value::Object(routes)));
        }
        let models = Value::Array(
            self.models
                .iter()
                .map(|m| {
                    Value::Object(vec![
                        ("model".into(), Value::String(m.model.clone())),
                        ("version".into(), Value::U64(m.version)),
                        ("fingerprint".into(), Value::U64(m.fingerprint)),
                        ("completed".into(), Value::U64(m.completed)),
                        ("batches".into(), Value::U64(m.batches)),
                        ("service_ms".into(), m.service.to_json()),
                    ])
                })
                .collect(),
        );
        let layers = Value::Array(
            self.layers
                .iter()
                .map(|l| {
                    let mut fields = vec![
                        ("model".into(), Value::String(l.model.clone())),
                        ("version".into(), Value::U64(l.version)),
                        ("layer".into(), Value::String(l.layer.clone())),
                        ("route".into(), Value::String(l.route.clone())),
                        ("passes".into(), Value::U64(l.passes)),
                        ("wall_ms".into(), l.wall.to_json()),
                        ("sim_cycles".into(), Value::F64(l.sim_cycles)),
                    ];
                    if let Some(d) = l.mask_density {
                        fields.push(("mask_density".into(), Value::F64(d)));
                    }
                    Value::Object(fields)
                })
                .collect(),
        );
        Value::Object(vec![
            ("uptime_ms".into(), Value::F64(self.uptime.as_secs_f64() * 1e3)),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("net".into(), net),
            ("latency_ms".into(), Value::Object(latency)),
            ("simulated_accel".into(), Value::Object(sim)),
            ("models".into(), models),
            ("layers".into(), layers),
        ])
    }
}

impl serde::Serialize for StatsSummary {
    fn to_value(&self) -> serde_json::Value {
        self.to_json()
    }
}

/// `q`-quantile (0.0..=1.0) of an unsorted sample by nearest-rank.
///
/// Exact (sorts a copy); for callers that already hold a bounded sample
/// vector. The server's ledger — and, since the ledger discipline extends
/// to clients, [`crate::LoadReport`] — stream through [`LogHistogram`]
/// instead.
pub fn percentile(samples: &[Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut s: Vec<Duration> = samples.to_vec();
    s.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * s.len() as f64).ceil() as usize).clamp(1, s.len());
    s[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 1.0), Duration::from_millis(100));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(percentile(&[Duration::from_secs(1)], 0.99), Duration::from_secs(1));
    }

    #[test]
    fn bucket_index_and_lower_are_inverse_and_monotone() {
        let mut prev = 0usize;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v, "lower({i}) must be <= {v}");
            if i + 1 < BUCKETS {
                assert!(bucket_lower(i + 1) > v, "next lower must exceed {v}");
            }
            assert!(i >= prev, "index must be monotone in value");
            prev = i;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn histogram_quantiles_within_bucket_error() {
        let mut h = LogHistogram::default();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.max(), 100_000);
        for (q, exact) in [(0.5, 50_000.0), (0.95, 95_000.0), (0.99, 99_000.0)] {
            let got = h.value_at_quantile(q) as f64;
            let rel = (got - exact).abs() / exact;
            assert!(rel <= 0.125, "q={q}: got {got}, exact {exact}, rel err {rel}");
        }
        assert!((h.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn single_sample_quantiles_equal_that_sample() {
        // Regression: quantiles were clamped to `max` only, so a low
        // quantile could report a bucket midpoint *below* every recorded
        // sample. With a tracked minimum the clamp is two-sided: a
        // one-sample histogram answers that sample at every quantile.
        for v in [1u64, 9, 1000, 123_456_789, u64::MAX / 3] {
            let mut h = LogHistogram::default();
            h.record(v);
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
            for q in [0.0, 0.01, 0.25, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.value_at_quantile(q), v, "q={q} of single sample {v}");
            }
        }
    }

    #[test]
    fn quantiles_never_leave_the_observed_range() {
        let mut h = LogHistogram::default();
        assert_eq!(h.min(), 0, "empty histogram reports 0");
        // Two far-apart samples: every quantile lies within [min, max].
        h.record(1000);
        h.record(1_000_000);
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let v = h.value_at_quantile(q);
            assert!((1000..=1_000_000).contains(&v), "q={q} gave {v}");
        }
        assert_eq!(h.value_at_quantile(0.01), 1000, "low quantile is the low sample");
    }

    #[test]
    fn count_rejection_maps_every_variant_to_its_own_counter() {
        let mut l = Ledger::default();
        l.count_rejection(&ServeError::UnknownModel("x".into()));
        l.count_rejection(&ServeError::BadInput("y".into()));
        l.count_rejection(&ServeError::QueueFull);
        l.count_rejection(&ServeError::ShuttingDown);
        l.count_rejection(&ServeError::DeadlineExceeded);
        l.count_rejection(&ServeError::WorkerLost);
        l.count_rejection(&ServeError::Internal);
        assert_eq!(l.rejected_invalid, 2, "only UnknownModel/BadInput are invalid");
        assert_eq!(l.rejected_queue_full, 1);
        assert_eq!(l.rejected_shutdown, 1);
        assert_eq!(l.rejected_deadline, 1);
        assert_eq!(l.internal_errors, 2);
    }

    #[test]
    fn net_tap_streams_into_the_summary_and_json() {
        let ledger = Arc::new(Mutex::new(Ledger::default()));
        let tap = NetTap::new(Arc::clone(&ledger));
        tap.conn_opened();
        tap.conn_opened();
        tap.frame_in(64);
        tap.frame_out(128);
        tap.bytes_in(9);
        tap.protocol_error();
        tap.conn_rejected();
        tap.conn_closed();
        let s = lock_ledger(&ledger).summary();
        assert_eq!(s.net.connections_opened, 2);
        assert_eq!(s.net.connections_closed, 1);
        assert_eq!(s.net.active_connections, 1);
        assert_eq!(s.net.connections_rejected, 1);
        assert_eq!(s.net.bytes_in, 64 + 9);
        assert_eq!(s.net.bytes_out, 128);
        assert_eq!(s.net.frames_in, 1);
        assert_eq!(s.net.frames_out, 1);
        assert_eq!(s.net.protocol_errors, 1);
        let v = s.to_json();
        assert_eq!(v["net"]["connections_opened"], serde_json::Value::U64(2));
        assert_eq!(v["net"]["bytes_out"], serde_json::Value::U64(128));
    }

    #[test]
    fn histogram_is_fixed_footprint() {
        // The whole point: size is independent of sample count.
        let empty = std::mem::size_of::<LogHistogram>();
        let mut h = LogHistogram::default();
        for v in 0..1_000_000u64 {
            h.record(v.wrapping_mul(2654435761));
        }
        assert_eq!(std::mem::size_of_val(&h), empty);
    }

    #[test]
    fn ledger_streams_requests_and_batches() {
        let mut l = Ledger::default();
        for i in 1..=4u64 {
            l.record_request(
                Duration::from_millis(i),
                Duration::from_millis(10),
                Duration::from_millis(10 + i),
            );
        }
        l.record_batch(BatchRecord {
            model: "m".into(),
            version: 1,
            fingerprint: 0xFEED,
            engine: "odq".into(),
            size: 2,
            service: Duration::from_millis(10),
            sensitive_fraction: Some(0.25),
            sim: Some(BatchSim {
                config: "ODQ".into(),
                cycles_per_image: 100.0,
                batch_cycles: 200.0,
                time_s: 1e-6,
                energy_nj: 5.0,
                routes: vec![RouteSim {
                    route: "odq".into(),
                    config: "ODQ".into(),
                    layers: 3,
                    batch_cycles: 200.0,
                    energy_nj: 5.0,
                }],
            }),
        });
        l.record_batch(BatchRecord {
            model: "m".into(),
            version: 2,
            fingerprint: 0xBEEF,
            engine: "odq".into(),
            size: 2,
            service: Duration::from_millis(10),
            sensitive_fraction: Some(0.75),
            sim: None,
        });
        let s = l.summary();
        assert_eq!(s.completed, 4);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch_size - 2.0).abs() < 1e-12);
        assert_eq!(s.max_batch_size, 2);
        assert_eq!(s.sim_cycles, 200.0);
        assert_eq!(s.sim_energy_nj, 5.0);
        assert!((s.mean_sensitive_fraction.unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(s.routes.len(), 1);
        assert_eq!(s.routes[0].route, "odq");
        assert_eq!(s.routes[0].batches, 1);
        assert_eq!(s.routes[0].layers, 3);
        assert_eq!(s.routes[0].cycles, 200.0);
        let json = s.to_json();
        assert_eq!(
            json["simulated_accel"]["routes"]["odq"]["cycles"],
            serde_json::Value::F64(200.0)
        );
        // 12.5%-accurate median of {11, 12, 13, 14} ms.
        let p50_ms = s.p50_latency.as_secs_f64() * 1e3;
        assert!((p50_ms - 12.0).abs() / 12.0 <= 0.125, "p50 {p50_ms} ms");
        assert_eq!(l.recent_batches().len(), 2);
    }

    #[test]
    fn recent_ring_and_footprint_stay_bounded() {
        let mut l = Ledger::default();
        for i in 0..10_000u64 {
            l.record_batch(BatchRecord {
                model: format!("model-{}", i % 3),
                version: 1,
                fingerprint: 7,
                engine: "float".into(),
                size: 4,
                service: Duration::from_micros(i),
                sensitive_fraction: None,
                sim: None,
            });
        }
        assert_eq!(l.batches, 10_000);
        assert_eq!(l.recent_batches().len(), RECENT_BATCH_CAP);
        assert!(l.approx_bytes() < 64 * 1024, "ledger footprint {} bytes", l.approx_bytes());
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let mut all = LogHistogram::default();
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        for v in [0u64, 1, 7, 8, 100, 12345, u64::MAX / 5, u64::MAX] {
            all.record(v);
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all, "merged shards must equal one histogram of all samples");
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        // Merging an empty histogram is the identity, both ways.
        let before = a.clone();
        a.merge(&LogHistogram::default());
        assert_eq!(a, before);
        let mut empty = LogHistogram::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn per_layer_aggregates_stream_and_serialize() {
        let mut l = Ledger::default();
        for pass in 0..3u64 {
            l.record_layers(
                "m",
                1,
                &[
                    LayerProfile {
                        layer: "C1".into(),
                        route: "odq".into(),
                        wall: Duration::from_micros(100 + pass),
                        mask_density: Some(0.25),
                        sim_cycles: 1000.0,
                    },
                    LayerProfile {
                        layer: "C2".into(),
                        route: "int8".into(),
                        wall: Duration::from_micros(50),
                        mask_density: None,
                        sim_cycles: 500.0,
                    },
                ],
            );
        }
        let s = l.summary();
        assert_eq!(s.layers.len(), 2);
        let c1 = &s.layers[0];
        assert_eq!((c1.layer.as_str(), c1.route.as_str()), ("C1", "odq"));
        assert_eq!(c1.passes, 3);
        assert!((c1.mask_density.unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(c1.sim_cycles, 3000.0);
        assert!(c1.wall.max >= Duration::from_micros(100));
        assert_eq!(s.layers[1].mask_density, None);
        let json = s.to_json();
        assert_eq!(json["layers"][0]["layer"], serde_json::Value::String("C1".into()));
        assert_eq!(json["layers"][0]["mask_density"], serde_json::Value::F64(0.25));
        // Aggregates are keyed by deployment: the footprint tracks
        // topology, not request count.
        let before = l.approx_bytes();
        l.record_layers(
            "m",
            1,
            &[LayerProfile {
                layer: "C1".into(),
                route: "odq".into(),
                wall: Duration::from_micros(101),
                mask_density: Some(0.5),
                sim_cycles: 1.0,
            }],
        );
        assert_eq!(l.approx_bytes(), before, "re-recording a known layer must not grow");
    }

    #[test]
    fn summary_serializes_to_json() {
        let mut l = Ledger::default();
        l.record_request(
            Duration::from_millis(1),
            Duration::from_millis(2),
            Duration::from_millis(3),
        );
        l.rejected_shutdown = 7;
        let s = l.summary();
        let json = serde_json::to_string(&s).expect("serializable");
        assert!(json.contains("\"rejected_shutdown\":7"), "{json}");
        let v = s.to_json();
        assert_eq!(v["counters"]["completed"], serde_json::Value::U64(1));
        assert_eq!(v["counters"]["rejected_shutdown"], serde_json::Value::U64(7));
    }
}
