//! Per-request span tracing: the hook seam the serving pipeline reports
//! through.
//!
//! Every request gets a trace id at admission — the caller's own
//! ([`crate::InferRequest::with_trace`], carried over the wire by the
//! `odq-net` `FLAG_TRACE` request flag and echoed in responses) or, by
//! default, the request id itself. A [`TraceSink`] installed in
//! [`crate::ServeConfig::trace`] decides *once per request* whether that
//! trace is sampled ([`TraceSink::sample`] — required to be a pure
//! function of the trace id so chaos replay determinism survives), and
//! sampled requests then report a [`SpanRecord`] at each of the five
//! pipeline stages ([`SpanStage`]):
//!
//! ```text
//!   Submit ──► BatchForm ──► WorkerDequeue ──► EngineExecute ──► ResponseScatter
//! ```
//!
//! The sink implementation lives in `odq-obs` (a sharded ring buffer with
//! seeded sampling); this module only defines the contract, so the serve
//! crate stays dependency-free and the hooks cost one virtual call per
//! stage per *sampled* request — and nothing at all when no sink is
//! installed.

use std::fmt;
use std::time::{Duration, Instant};

/// The five pipeline stages a sampled request reports, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanStage {
    /// Admission accepted the request into the bounded queue.
    Submit,
    /// The micro-batcher flushed the batch this request rode in.
    BatchForm,
    /// A worker dequeued the batch for execution.
    WorkerDequeue,
    /// The forward pass ran (the span's `dur` is the service time).
    EngineExecute,
    /// The response was scattered back to the request's channel.
    ResponseScatter,
}

impl SpanStage {
    /// All five stages, in pipeline order.
    pub const ALL: [SpanStage; 5] = [
        SpanStage::Submit,
        SpanStage::BatchForm,
        SpanStage::WorkerDequeue,
        SpanStage::EngineExecute,
        SpanStage::ResponseScatter,
    ];

    /// Stable lowercase label (used as the Prometheus `stage` label).
    pub fn label(self) -> &'static str {
        match self {
            SpanStage::Submit => "submit",
            SpanStage::BatchForm => "batch_form",
            SpanStage::WorkerDequeue => "worker_dequeue",
            SpanStage::EngineExecute => "engine_execute",
            SpanStage::ResponseScatter => "response_scatter",
        }
    }
}

impl fmt::Display for SpanStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One stage of one sampled request's journey through the pipeline.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// The request's trace id (caller-supplied or the request id).
    pub trace: u64,
    /// The request id the span belongs to.
    pub request: u64,
    /// Model the request targeted.
    pub model: String,
    /// Deployment version the request was admitted under (0 at stages
    /// where the version is not yet resolved).
    pub version: u64,
    /// Which pipeline stage this span marks.
    pub stage: SpanStage,
    /// When the stage happened. Stages of one request are monotone
    /// non-decreasing in pipeline order.
    pub at: Instant,
    /// Stage duration, when the stage has a natural extent (currently
    /// only [`SpanStage::EngineExecute`], whose `dur` is the forward-pass
    /// service time).
    pub dur: Option<Duration>,
}

/// Where sampled spans go. Implemented by `odq-obs`'s sharded trace
/// buffer; anything `Send + Sync` works.
///
/// `sample` is consulted exactly once per request, at admission, and MUST
/// be a pure function of the trace id (never time or ambient randomness):
/// the chaos harness replays schedules by seed and asserts bit-identical
/// event logs, so the *set* of sampled traces has to be reproducible even
/// though the span timestamps inside are not.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Should this trace id's spans be recorded? Pure; called once per
    /// request at admission.
    fn sample(&self, trace: u64) -> bool;

    /// Record one span of a sampled request. Called from admission,
    /// batcher, and worker threads; implementations must be lock-cheap.
    fn record(&self, span: SpanRecord);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_labels_are_stable_and_ordered() {
        let labels: Vec<_> = SpanStage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            ["submit", "batch_form", "worker_dequeue", "engine_execute", "response_scatter"]
        );
        for w in SpanStage::ALL.windows(2) {
            assert!(w[0] < w[1], "ALL must be in pipeline order");
        }
        assert_eq!(SpanStage::EngineExecute.to_string(), "engine_execute");
    }
}
