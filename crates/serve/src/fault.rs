//! Deterministic fault injection into the worker pool.
//!
//! [`ServeConfig::fault_panic_on_batch`](crate::ServeConfig::fault_panic_on_batch)
//! started as a single knob: panic when the Nth batch (fleet-wide) begins
//! executing. The chaos harness needs richer triggers — per-model faults,
//! seeded probabilistic faults — so the knob generalizes into the
//! [`FaultHook`] trait: the worker consults the hook at the top of every
//! batch, *before* any engine state is touched or any lock besides the
//! ledger is taken, and panics with a message containing
//! `"fault injection"` when the hook says so. The old field remains as a
//! shim (internally an [`NthBatchFault`]).
//!
//! Every trigger in this module is deterministic in its inputs (batch
//! ordinal, model name, deployment version, seed), which is what lets a
//! chaos schedule replay: the *decision function* is pure even though the
//! batch ordinals themselves depend on thread timing.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A predicate the worker pool consults as each batch starts executing.
///
/// Return `true` to make the worker panic (the supervision shell catches
/// it, answers the batch with [`crate::ServeError::Internal`], and
/// restarts the worker with fresh engines). Implementations must be cheap
/// and must not block: the hook runs on the worker's hot path with no
/// locks held.
pub trait FaultHook: Send + Sync + fmt::Debug {
    /// Decide whether the worker serving this batch should panic.
    ///
    /// * `nth` — 1-based fleet-wide ordinal of batches that *started*
    ///   executing (the ledger's `batches_started` counter).
    /// * `model` / `version` — the deployment the batch resolved to.
    fn should_panic(&self, nth: u64, model: &str, version: u64) -> bool;
}

/// Panic when the Nth batch (1-based, fleet-wide) starts executing — the
/// behavior of the original `fault_panic_on_batch` knob.
#[derive(Clone, Copy, Debug)]
pub struct NthBatchFault {
    /// The fleet-wide batch ordinal to sabotage.
    pub nth: u64,
}

impl NthBatchFault {
    /// Fault the `nth` batch (1-based).
    pub fn new(nth: u64) -> Self {
        Self { nth }
    }
}

impl FaultHook for NthBatchFault {
    fn should_panic(&self, nth: u64, _model: &str, _version: u64) -> bool {
        nth == self.nth
    }
}

/// Panic when the Nth batch *of one named model* starts executing,
/// counting only that model's batches. Other models are untouched, which
/// is how a chaos schedule proves fault isolation between co-served
/// models.
#[derive(Debug)]
pub struct PerModelNthFault {
    model: String,
    nth: u64,
    seen: AtomicU64,
}

impl PerModelNthFault {
    /// Fault the `nth` batch (1-based) of `model`.
    pub fn new(model: impl Into<String>, nth: u64) -> Self {
        Self { model: model.into(), nth, seen: AtomicU64::new(0) }
    }
}

impl FaultHook for PerModelNthFault {
    fn should_panic(&self, _nth: u64, model: &str, _version: u64) -> bool {
        if model != self.model {
            return false;
        }
        self.seen.fetch_add(1, Ordering::Relaxed) + 1 == self.nth
    }
}

/// Panic on each batch independently with probability `prob`, decided by
/// a pure splitmix64 hash of `seed ^ nth` — no shared RNG state, so the
/// decision for batch ordinal N is a fixed function of (seed, N) no
/// matter which worker asks or in what order.
#[derive(Clone, Copy, Debug)]
pub struct SeededProbFault {
    seed: u64,
    /// Threshold in the u64 space: panic when `hash < threshold`.
    threshold: u64,
}

impl SeededProbFault {
    /// Fault each batch with probability `prob` (clamped to `0.0..=1.0`),
    /// deterministically derived from `seed` and the batch ordinal.
    pub fn new(seed: u64, prob: f64) -> Self {
        let p = prob.clamp(0.0, 1.0);
        // Map p to a u64 threshold; p == 1.0 must fault everything.
        let threshold = if p >= 1.0 { u64::MAX } else { (p * u64::MAX as f64) as u64 };
        Self { seed, threshold }
    }
}

/// The splitmix64 finalizer: a bijective avalanche over `u64`.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl FaultHook for SeededProbFault {
    fn should_panic(&self, nth: u64, _model: &str, _version: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        splitmix64(self.seed ^ nth) < self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_batch_fires_exactly_once() {
        let f = NthBatchFault::new(3);
        let fired: Vec<u64> = (1..=10).filter(|&n| f.should_panic(n, "m", 1)).collect();
        assert_eq!(fired, vec![3]);
    }

    #[test]
    fn per_model_counts_only_its_model() {
        let f = PerModelNthFault::new("alpha", 2);
        assert!(!f.should_panic(1, "alpha", 1));
        assert!(!f.should_panic(2, "beta", 1), "other models never trip the hook");
        assert!(f.should_panic(3, "alpha", 1), "second alpha batch fires");
        assert!(!f.should_panic(4, "alpha", 1), "fires exactly once");
    }

    #[test]
    fn seeded_prob_is_deterministic_and_roughly_calibrated() {
        let f = SeededProbFault::new(0xc4a05, 0.25);
        let a: Vec<bool> = (1..=10_000).map(|n| f.should_panic(n, "m", 1)).collect();
        let b: Vec<bool> = (1..=10_000).map(|n| f.should_panic(n, "m", 1)).collect();
        assert_eq!(a, b, "stateless: same inputs, same decisions");
        let hits = a.iter().filter(|&&h| h).count();
        assert!((1500..=3500).contains(&hits), "p=0.25 over 10k: got {hits}");
        let never = SeededProbFault::new(1, 0.0);
        assert!((1..=1000).all(|n| !never.should_panic(n, "m", 1)));
        let always = SeededProbFault::new(1, 1.0);
        assert!((1..=1000).all(|n| always.should_panic(n, "m", 1)));
    }
}
