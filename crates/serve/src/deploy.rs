//! Versioned deployments, atomic routing state, and canary traffic splits.
//!
//! A [`Deployment`] is an immutable snapshot of everything a worker needs
//! to execute a version: the weights (`Arc<Model>` from the registry), the
//! per-version [`PlanCache`], and the registry fingerprint that pins it.
//! Admission resolves a request's model name to a deployment *once*, at
//! submit time, and the `Arc` rides with the request through the batcher
//! and the worker — so a hot swap never tears an in-flight request: old
//! admissions finish on the old snapshot, new admissions route to the new
//! one, and a batch (whose key includes the version) never mixes the two.
//!
//! `ModelRoute` holds the mutable routing decision per model name:
//! the current deployment, the previous one (kept warm for instant
//! rollback, plan caches intact), and an optional canary — a candidate
//! deployment receiving a configurable fraction of traffic, chosen by a
//! deterministic seeded hash of the request id ([`TrafficSplit`]), so the
//! same id always lands on the same side and a canary experiment is
//! exactly reproducible.

use std::sync::{Arc, Mutex};

use odq_nn::models::Model;
use odq_nn::policy::PrecisionPolicy;
use odq_quant::plan::PlanCache;
use odq_registry::{ModelRegistry, RegistryError};

/// An immutable, executable snapshot of one registry version.
pub struct Deployment {
    /// Model name (the routing key requests address).
    pub name: String,
    /// Registry version this snapshot serves.
    pub version: u64,
    /// The weights, shared with the registry.
    pub model: Arc<Model>,
    /// Per-version plan cache: quantized/bit-split weights and im2col
    /// workspaces, shared by every engine executing this deployment.
    pub plans: Arc<PlanCache>,
    /// The registry's full-content weight fingerprint for this version.
    pub fingerprint: u64,
    /// The precision policy published with this version, if any. A
    /// `Policy`-kind engine executes under this — so a hot swap to a
    /// version published with a different policy swaps weights and
    /// per-layer precision atomically.
    pub policy: Option<Arc<PrecisionPolicy>>,
}

impl Deployment {
    /// Snapshot `name`/`version` out of the registry with a fresh plan
    /// cache (seed it from a predecessor's via [`PlanCache::seed_from`] to
    /// make the swap cost exactly the rebuild of changed layers).
    pub(crate) fn from_registry(
        registry: &ModelRegistry,
        name: &str,
        version: u64,
    ) -> Result<Arc<Self>, DeployError> {
        let model = registry.get(name, version)?;
        let fingerprint = registry.fingerprint(name, version)?;
        let policy = registry.policy(name, version)?;
        Ok(Arc::new(Self {
            name: name.to_string(),
            version,
            model,
            plans: Arc::new(PlanCache::new()),
            fingerprint,
            policy,
        }))
    }
}

/// A deterministic canary split: requests whose seeded id-hash falls below
/// `fraction` route to the candidate deployment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficSplit {
    /// Fraction of traffic (0.0..=1.0) routed to the candidate.
    pub fraction: f64,
    /// Hash seed: re-seeding re-partitions which ids land on the canary.
    pub seed: u64,
}

impl TrafficSplit {
    /// Route `fraction` of traffic to the candidate under the default seed.
    pub fn new(fraction: f64) -> Self {
        Self { fraction, seed: 0 }
    }

    /// Same split, different id-partition.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The routing decision for a request id: `true` routes to the canary.
    /// Pure and deterministic — the same `(id, seed)` always agrees.
    pub fn picks_canary(&self, id: u64) -> bool {
        // splitmix64 finalizer over id ⊕ seed, mapped to [0, 1).
        let mut z = id ^ self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        u < self.fraction
    }
}

/// Why a deploy/rollback/canary operation failed.
#[derive(Debug)]
pub enum DeployError {
    /// The server routes no model under this name.
    UnknownModel(String),
    /// Rollback with no previous deployment kept warm.
    NoPreviousVersion(String),
    /// The registry refused the lookup (unknown/retired version, …).
    Registry(RegistryError),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::UnknownModel(n) => write!(f, "server routes no model named {n:?}"),
            DeployError::NoPreviousVersion(n) => {
                write!(f, "model {n:?} has no previous deployment to roll back to")
            }
            DeployError::Registry(e) => write!(f, "registry: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<RegistryError> for DeployError {
    fn from(e: RegistryError) -> Self {
        DeployError::Registry(e)
    }
}

struct Canary {
    deployment: Arc<Deployment>,
    split: TrafficSplit,
}

struct RouteState {
    current: Arc<Deployment>,
    /// The previously current deployment, kept warm (plan cache intact)
    /// so rollback is a pointer swap, not a rebuild.
    previous: Option<Arc<Deployment>>,
    canary: Option<Canary>,
}

/// Mutable routing state for one model name. All transitions happen under
/// one short lock; resolution clones an `Arc` out — admission never holds
/// the lock across a forward pass.
pub(crate) struct ModelRoute {
    state: Mutex<RouteState>,
}

impl ModelRoute {
    pub fn new(current: Arc<Deployment>) -> Self {
        Self { state: Mutex::new(RouteState { current, previous: None, canary: None }) }
    }

    /// The deployment serving request `id` right now: the canary when the
    /// split picks it, the current deployment otherwise.
    pub fn resolve(&self, id: u64) -> Arc<Deployment> {
        let st = self.state.lock().expect("route lock");
        if let Some(c) = &st.canary {
            if c.split.picks_canary(id) {
                return Arc::clone(&c.deployment);
            }
        }
        Arc::clone(&st.current)
    }

    /// The version new non-canary admissions execute.
    pub fn current_version(&self) -> u64 {
        self.state.lock().expect("route lock").current.version
    }

    /// Atomically make `dep` current. The old current becomes `previous`
    /// (rollback target); a canary of the same version is consumed
    /// (promoting a canary deploys it), any other canary keeps routing.
    pub fn deploy(&self, dep: Arc<Deployment>) {
        let mut st = self.state.lock().expect("route lock");
        if st.canary.as_ref().is_some_and(|c| c.deployment.version == dep.version) {
            st.canary = None;
        }
        let old = std::mem::replace(&mut st.current, dep);
        st.previous = Some(old);
    }

    /// Atomically swap back to the previous deployment (which stays warm
    /// as the new `previous`, so rollback is reversible). Clears any
    /// canary: a rollback is a judgement that the newest weights are bad.
    pub fn rollback(&self, name: &str) -> Result<Arc<Deployment>, DeployError> {
        let mut st = self.state.lock().expect("route lock");
        let prev =
            st.previous.take().ok_or_else(|| DeployError::NoPreviousVersion(name.to_string()))?;
        let old = std::mem::replace(&mut st.current, Arc::clone(&prev));
        st.previous = Some(old);
        st.canary = None;
        Ok(prev)
    }

    /// Install (or replace) the canary deployment and its traffic split.
    pub fn set_canary(&self, dep: Arc<Deployment>, split: TrafficSplit) {
        let mut st = self.state.lock().expect("route lock");
        st.canary = Some(Canary { deployment: dep, split });
    }

    /// Remove the canary; all traffic returns to the current deployment.
    pub fn clear_canary(&self) {
        self.state.lock().expect("route lock").canary = None;
    }

    /// The deployment to seed a successor's plan cache from.
    pub fn current(&self) -> Arc<Deployment> {
        Arc::clone(&self.state.lock().expect("route lock").current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_nn::models::ModelCfg;
    use odq_nn::Arch;
    use odq_registry::ModelRegistry;

    fn registry_with(versions: usize) -> ModelRegistry {
        let reg = ModelRegistry::new();
        for i in 0..versions {
            let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
            cfg.input_hw = 8;
            cfg.in_channels = 1;
            cfg.seed = 7 + i as u64;
            reg.publish("m", Model::build(cfg), vec![]).unwrap();
        }
        reg
    }

    #[test]
    fn split_is_deterministic_and_roughly_proportional() {
        let split = TrafficSplit::new(0.25).with_seed(42);
        let picks: Vec<bool> = (0..10_000u64).map(|id| split.picks_canary(id)).collect();
        let again: Vec<bool> = (0..10_000u64).map(|id| split.picks_canary(id)).collect();
        assert_eq!(picks, again, "same (id, seed) must always agree");
        let frac = picks.iter().filter(|&&b| b).count() as f64 / picks.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "observed canary fraction {frac}");
        // Extremes are exact.
        assert!((0..100).all(|id| !TrafficSplit::new(0.0).picks_canary(id)));
        assert!((0..100).all(|id| TrafficSplit::new(1.0).picks_canary(id)));
        // A different seed partitions differently.
        let other = TrafficSplit::new(0.25).with_seed(43);
        assert_ne!(picks, (0..10_000u64).map(|id| other.picks_canary(id)).collect::<Vec<_>>());
    }

    #[test]
    fn deploy_rollback_and_canary_transitions() {
        let reg = registry_with(3);
        let v1 = Deployment::from_registry(&reg, "m", 1).unwrap();
        let v2 = Deployment::from_registry(&reg, "m", 2).unwrap();
        let v3 = Deployment::from_registry(&reg, "m", 3).unwrap();

        let route = ModelRoute::new(Arc::clone(&v1));
        assert_eq!(route.current_version(), 1);
        assert!(matches!(route.rollback("m"), Err(DeployError::NoPreviousVersion(_))));

        route.deploy(Arc::clone(&v2));
        assert_eq!(route.current_version(), 2);
        // Rollback swaps back — and is itself reversible.
        assert_eq!(route.rollback("m").unwrap().version, 1);
        assert_eq!(route.current_version(), 1);
        assert_eq!(route.rollback("m").unwrap().version, 2);

        // Canary routes a fraction; promoting it consumes the canary.
        route.set_canary(Arc::clone(&v3), TrafficSplit::new(1.0));
        assert_eq!(route.resolve(9).version, 3);
        route.deploy(Arc::clone(&v3));
        assert_eq!(route.current_version(), 3);
        assert_eq!(route.resolve(9).version, 3, "promoted canary is consumed");
        // Rollback clears a canary outright: after rolling back from v3,
        // current is v2 (the warm previous) and the v1 canary is gone.
        route.set_canary(v1, TrafficSplit::new(1.0));
        assert_eq!(route.resolve(9).version, 1);
        route.rollback("m").unwrap();
        assert_eq!(route.resolve(9).version, 2, "rollback must clear the canary");
    }

    #[test]
    fn retired_versions_do_not_deploy() {
        let reg = registry_with(2);
        reg.retire("m", 1).unwrap();
        assert!(matches!(
            Deployment::from_registry(&reg, "m", 1),
            Err(DeployError::Registry(RegistryError::VersionRetired(_, 1)))
        ));
        assert!(Deployment::from_registry(&reg, "m", 2).is_ok());
    }
}
