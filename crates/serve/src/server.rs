//! The server: admission control, versioned routing, hot swap, shutdown.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, Sender, TrySendError};
use odq_nn::models::Model;
use odq_registry::ModelRegistry;

use crate::batcher::{self, Batch, Pending};
use crate::config::ServeConfig;
use crate::deploy::{DeployError, Deployment, ModelRoute, TrafficSplit};
use crate::engine::EngineKind;
use crate::request::{InferRequest, ResponseHandle, ServeError};
use crate::stats::{BatchRecord, Ledger, StatsHandle, StatsSummary};
use crate::trace::{SpanRecord, SpanStage};
use crate::worker::{self, lock_ledger};

/// Builder for [`Server`]: register models, pick an engine, start.
pub struct ServerBuilder {
    cfg: ServeConfig,
    engine: EngineKind,
    registry: Arc<ModelRegistry>,
    models: Vec<(String, Model)>,
    serve_names: Vec<String>,
}

impl ServerBuilder {
    /// Builder with the given config, defaulting to the ODQ engine at the
    /// paper's nominal threshold and a private ungated registry.
    pub fn new(cfg: ServeConfig) -> Self {
        Self {
            cfg,
            engine: EngineKind::Odq { threshold: 0.3 },
            registry: Arc::new(ModelRegistry::new()),
            models: Vec::new(),
            serve_names: Vec::new(),
        }
    }

    /// Select the engine every worker runs.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Back the server with an external (possibly gated, possibly shared)
    /// registry instead of a private one. Versions published to it — by
    /// this process or any other holder of the `Arc` — become deployable
    /// via [`Server::deploy`].
    pub fn registry(mut self, registry: Arc<ModelRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Register a model under `name`: at start it is published to the
    /// registry as the next version of `name` and deployed. Requests
    /// address models by this name.
    pub fn model(mut self, name: impl Into<String>, model: Model) -> Self {
        self.models.push((name.into(), model));
        self
    }

    /// Route `name` from the registry's latest already-published version
    /// at start, without publishing anything new (for servers sharing a
    /// pre-populated registry).
    pub fn serve(mut self, name: impl Into<String>) -> Self {
        self.serve_names.push(name.into());
        self
    }

    /// Start the batcher and worker threads and open admission, or report
    /// why the initial deployments could not be built (a publish gate
    /// rejected a model, a `serve` name has nothing published).
    pub fn try_start(self) -> Result<Server, DeployError> {
        let cfg = self.cfg;
        let registry = self.registry;

        let mut names: Vec<String> = Vec::new();
        for (name, model) in self.models {
            registry.publish(&name, model, vec![])?;
            if !names.contains(&name) {
                names.push(name);
            }
        }
        for name in self.serve_names {
            if !names.contains(&name) {
                names.push(name);
            }
        }

        let mut routes = HashMap::new();
        for name in names {
            let version =
                registry.latest(&name).ok_or_else(|| DeployError::UnknownModel(name.clone()))?;
            let dep = Deployment::from_registry(&registry, &name, version)?;
            routes.insert(name, ModelRoute::new(dep));
        }
        let routes = Arc::new(routes);
        let ledger = Arc::new(Mutex::new(Ledger::default()));

        let (submit_tx, submit_rx) = bounded::<Pending>(cfg.queue_depth.max(1));
        // Small buffer: workers pull batches as they free up, and a full
        // channel backpressures the batcher (and through it, admission).
        let (batch_tx, batch_rx) = bounded::<Batch>(cfg.workers.max(1) * 2);

        let b_ledger = Arc::clone(&ledger);
        let b_cfg = cfg.clone();
        let batcher = std::thread::Builder::new()
            .name("odq-serve-batcher".into())
            .spawn(move || batcher::run(submit_rx, batch_tx, b_cfg, b_ledger))
            .expect("spawn batcher");

        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let rx = batch_rx.clone();
                let ledger = Arc::clone(&ledger);
                let kind = self.engine.clone();
                let w_cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("odq-serve-worker-{i}"))
                    .spawn(move || worker::run(rx, kind, w_cfg, ledger))
                    .expect("spawn worker")
            })
            .collect();
        // The batcher's sender must be the only one left, or workers
        // would never see a disconnect on shutdown.
        drop(batch_rx);

        Ok(Server {
            cfg,
            registry,
            routes,
            seq: AtomicU64::new(0),
            submit_tx: Some(submit_tx),
            batcher: Some(batcher),
            workers,
            ledger,
        })
    }

    /// [`try_start`](Self::try_start), panicking on failure.
    pub fn start(self) -> Server {
        self.try_start().expect("server start")
    }
}

/// A running serving instance. Dropping it shuts down gracefully.
pub struct Server {
    cfg: ServeConfig,
    registry: Arc<ModelRegistry>,
    routes: Arc<HashMap<String, ModelRoute>>,
    /// Request-id sequence for submissions that don't bring their own.
    seq: AtomicU64,
    submit_tx: Option<Sender<Pending>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    ledger: Arc<Mutex<Ledger>>,
}

impl Server {
    /// Configure and start a server.
    pub fn builder(cfg: ServeConfig) -> ServerBuilder {
        ServerBuilder::new(cfg)
    }

    /// The registry backing this server. Publish retrained checkpoints
    /// here, then [`deploy`](Self::deploy) them.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Submit a request. Returns immediately: `Ok` with a handle to the
    /// eventual response, or an admission error ([`ServeError::QueueFull`]
    /// when the bounded queue is at capacity — the backpressure signal).
    ///
    /// The model version is decided here, exactly once: the resolved
    /// deployment snapshot rides with the request, so a concurrent
    /// [`deploy`](Self::deploy) or [`rollback`](Self::rollback) can never
    /// tear it — it executes wholly on the version admission chose.
    pub fn submit(&self, req: InferRequest) -> Result<ResponseHandle, ServeError> {
        let id = req.id.unwrap_or_else(|| self.seq.fetch_add(1, Ordering::Relaxed));
        let dep = match self.admit(&req, id) {
            Ok(dep) => dep,
            Err(e) => {
                // Count under the counter the variant names: today `admit`
                // only rejects as invalid (unknown model / bad shape), but
                // a future non-invalid admit failure must not masquerade
                // as one in the rejection taxonomy.
                lock_ledger(&self.ledger).count_rejection(&e);
                return Err(e);
            }
        };
        let tx = match self.submit_tx.as_ref() {
            Some(tx) => tx,
            None => {
                lock_ledger(&self.ledger).rejected_shutdown += 1;
                return Err(ServeError::ShuttingDown);
            }
        };
        let now = Instant::now();
        let deadline = req.deadline.or(self.cfg.default_deadline).map(|d| now + d);
        // Trace identity is decided here, exactly once: the caller's trace
        // id if supplied, else a fresh server-unique id. The request id is
        // NOT a safe default — callers (the net front-end included) may
        // supply connection-scoped ids that repeat across connections, and
        // a trace id aliasing two requests would interleave their spans.
        // Whether this trace is sampled is a pure function of the sink and
        // the id (see [`crate::trace::TraceSink`]), so replays with a
        // deterministic submission order sample the same requests.
        let trace = req.trace.unwrap_or_else(|| self.seq.fetch_add(1, Ordering::Relaxed));
        let traced = self.cfg.trace.as_ref().is_some_and(|s| s.sample(trace));
        let (resp_tx, resp_rx) = bounded(1);
        let pending =
            Pending { req, dep, resp: resp_tx, enqueued: now, deadline, id, trace, traced };
        // The submit span's metadata must outlive the move into try_send.
        let span_meta = traced.then(|| (pending.dep.name.clone(), pending.dep.version));
        match tx.try_send(pending) {
            Ok(()) => {
                if let (Some(sink), Some((model, version))) = (&self.cfg.trace, span_meta) {
                    sink.record(SpanRecord {
                        trace,
                        request: id,
                        model,
                        version,
                        stage: SpanStage::Submit,
                        at: now,
                        dur: None,
                    });
                }
                let mut led = lock_ledger(&self.ledger);
                led.admitted += 1;
                led.note_queue_depth(tx.len());
                Ok(ResponseHandle { rx: resp_rx })
            }
            Err(TrySendError::Full(_)) => {
                lock_ledger(&self.ledger).rejected_queue_full += 1;
                Err(ServeError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                lock_ledger(&self.ledger).rejected_shutdown += 1;
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Resolve the deployment that will serve this request and validate
    /// the input against *that* deployment's configuration.
    fn admit(&self, req: &InferRequest, id: u64) -> Result<Arc<Deployment>, ServeError> {
        let route = self
            .routes
            .get(&req.model)
            .ok_or_else(|| ServeError::UnknownModel(req.model.clone()))?;
        let dep = route.resolve(id);
        let dims = req.input.dims();
        let cfg = &dep.model.cfg;
        let want = [1, cfg.in_channels, cfg.input_hw, cfg.input_hw];
        if dims != want {
            return Err(ServeError::BadInput(format!(
                "expected shape {want:?} for model {:?} v{}, got {dims:?}",
                req.model, dep.version
            )));
        }
        Ok(dep)
    }

    /// Hot-swap `name` to registry `version` with zero downtime: the new
    /// deployment's plan cache is seeded from the outgoing one, so the
    /// swap's total cost is exactly the plan rebuild of the layers whose
    /// weights actually changed. In-flight and already-admitted requests
    /// finish on the version they were admitted under; every admission
    /// after this call returns routes to `version`.
    pub fn deploy(&self, name: &str, version: u64) -> Result<(), DeployError> {
        let route =
            self.routes.get(name).ok_or_else(|| DeployError::UnknownModel(name.to_string()))?;
        let dep = Deployment::from_registry(&self.registry, name, version)?;
        dep.plans.seed_from(&route.current().plans);
        route.deploy(dep);
        Ok(())
    }

    /// Swap `name` back to the deployment that was current before the
    /// last [`deploy`](Self::deploy) — kept warm, plan caches intact, so
    /// rollback costs no plan rebuilds at all. Returns the version now
    /// serving. Clears any canary.
    pub fn rollback(&self, name: &str) -> Result<u64, DeployError> {
        let route =
            self.routes.get(name).ok_or_else(|| DeployError::UnknownModel(name.to_string()))?;
        Ok(route.rollback(name)?.version)
    }

    /// Route a deterministic fraction of `name`'s traffic to registry
    /// `version` (see [`TrafficSplit`]); the remainder stays on the
    /// current deployment. Promote the candidate by calling
    /// [`deploy`](Self::deploy) with the same version, or abandon it with
    /// [`clear_canary`](Self::clear_canary).
    pub fn canary(&self, name: &str, version: u64, split: TrafficSplit) -> Result<(), DeployError> {
        let route =
            self.routes.get(name).ok_or_else(|| DeployError::UnknownModel(name.to_string()))?;
        let dep = Deployment::from_registry(&self.registry, name, version)?;
        dep.plans.seed_from(&route.current().plans);
        route.set_canary(dep, split);
        Ok(())
    }

    /// Remove `name`'s canary; all traffic returns to the current
    /// deployment.
    pub fn clear_canary(&self, name: &str) -> Result<(), DeployError> {
        let route =
            self.routes.get(name).ok_or_else(|| DeployError::UnknownModel(name.to_string()))?;
        route.clear_canary();
        Ok(())
    }

    /// The version new (non-canary) admissions of `name` execute.
    pub fn current_version(&self, name: &str) -> Option<u64> {
        self.routes.get(name).map(|r| r.current_version())
    }

    /// Requests currently waiting in the submission queue.
    pub fn queue_len(&self) -> usize {
        self.submit_tx.as_ref().map_or(0, |tx| tx.len())
    }

    /// Aggregated ledger snapshot. O(1) in requests served: the ledger
    /// streams everything into fixed-footprint histograms and counters.
    pub fn stats(&self) -> StatsSummary {
        lock_ledger(&self.ledger).summary()
    }

    /// Reconcile the live ledger against the conservation law every
    /// admitted request must obey (see
    /// [`ReconcileReport`](crate::stats::ReconcileReport)). The live
    /// submission-queue depth counts as in-flight work, so the report
    /// balances at any quiescent moment, not just after shutdown.
    ///
    /// Note the snapshot is not atomic with respect to in-flight batches:
    /// a request can be mid-scatter (admitted but not yet recorded as
    /// completed) when the ledger is read. Callers checking invariants
    /// should quiesce first — wait out every outstanding response handle —
    /// or retry briefly, as the chaos harness does.
    pub fn reconcile(&self) -> crate::stats::ReconcileReport {
        let in_queue = self.queue_len() as u64;
        lock_ledger(&self.ledger).reconcile(in_queue)
    }

    /// Ledger snapshot as pretty-printed JSON (durations in ms),
    /// including server uptime and the per-(model, version) breakdown.
    pub fn stats_json(&self) -> String {
        serde_json::to_string_pretty(&self.stats()).expect("summary serializes")
    }

    /// The most recently executed batches (bounded ring, newest last).
    pub fn recent_batches(&self) -> Vec<BatchRecord> {
        lock_ledger(&self.ledger).recent_batches()
    }

    /// Approximate resident size of the stats ledger in bytes. Constant
    /// in the number of requests served — the O(1)-memory guarantee the
    /// streaming ledger exists for, and what tests pin down.
    pub fn ledger_bytes(&self) -> usize {
        lock_ledger(&self.ledger).approx_bytes()
    }

    /// A handle a network front-end uses to stream connection, byte, and
    /// frame counters into this server's ledger, so transport telemetry
    /// lands in the same [`StatsSummary`] / [`stats_json`](Self::stats_json)
    /// snapshot as the serving pipeline's.
    pub fn net_tap(&self) -> crate::stats::NetTap {
        crate::stats::NetTap::new(Arc::clone(&self.ledger))
    }

    /// A cloneable, read-only handle to this server's live stats ledger,
    /// for exporters (the `odq-obs` metrics endpoint) that snapshot the
    /// ledger from their own threads while the server keeps serving. The
    /// handle stays valid after the `Server` is dropped; it then reports
    /// the final, frozen ledger.
    pub fn stats_handle(&self) -> StatsHandle {
        StatsHandle::new(Arc::clone(&self.ledger))
    }

    /// Graceful shutdown: close admission, let the batcher drain and
    /// flush every admitted request, let workers finish all batches, join
    /// all threads. Returns the final ledger summary.
    pub fn shutdown(mut self) -> StatsSummary {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        // Dropping the submission sender disconnects the batcher once the
        // queue drains; the batcher then drops the batch sender, which
        // stops the workers once the batch queue drains.
        drop(self.submit_tx.take());
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::InferRequest;
    use odq_nn::models::{Model, ModelCfg};
    use odq_nn::Arch;
    use odq_tensor::Tensor;
    use std::time::Duration;

    fn tiny_model() -> Model {
        tiny_model_seeded(0x0d9)
    }

    fn tiny_model_seeded(seed: u64) -> Model {
        let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
        cfg.input_hw = 8;
        cfg.seed = seed;
        Model::build(cfg)
    }

    fn input(seed: usize) -> Tensor {
        let v: Vec<f32> = (0..3 * 64).map(|i| ((i * 7 + seed * 13) % 97) as f32 / 97.0).collect();
        Tensor::from_vec(vec![1, 3, 8, 8], v)
    }

    fn server(cfg: ServeConfig) -> Server {
        Server::builder(cfg).engine(EngineKind::Float).model("lenet", tiny_model()).start()
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let s = server(ServeConfig { max_wait: Duration::from_micros(200), ..Default::default() });
        let h = s.submit(InferRequest::new("lenet", input(0))).unwrap();
        let r = h.wait().unwrap();
        assert_eq!(r.output.dims(), &[1, 4]);
        assert!(r.timing.batch_size >= 1);
        // The worker records the batch before responding, so a completed
        // wait() guarantees the ledger has absorbed it — no polling.
        assert_eq!(s.stats().batches, 1);
        assert_eq!(s.recent_batches().len(), 1);
        assert_eq!(s.recent_batches()[0].version, 1);
        let json = s.stats_json();
        assert!(json.contains("\"counters\""), "{json}");
        assert!(json.contains("\"uptime_ms\""), "{json}");
        assert!(json.contains("\"models\""), "{json}");
        let sum = s.shutdown();
        assert_eq!(sum.admitted, 1);
        assert_eq!(sum.completed, 1);
        assert_eq!(sum.batches, 1);
        assert_eq!(sum.models.len(), 1);
        assert_eq!((sum.models[0].model.as_str(), sum.models[0].version), ("lenet", 1));
        assert_eq!(sum.models[0].completed, 1);
    }

    #[test]
    fn shutdown_rejections_are_counted() {
        let mut s = server(ServeConfig::default());
        s.close();
        let e = s.submit(InferRequest::new("lenet", input(0))).unwrap_err();
        assert_eq!(e, ServeError::ShuttingDown);
        assert_eq!(s.stats().rejected_shutdown, 1);
    }

    #[test]
    fn tight_deadline_flushes_early_and_is_served() {
        // Deadline far shorter than the batching window: the batcher must
        // dispatch early on the member deadline, not wait out max_wait and
        // then reject the request as expired.
        let cfg =
            ServeConfig { max_wait: Duration::from_secs(2), max_batch: 8, ..Default::default() };
        let s = server(cfg);
        let t0 = std::time::Instant::now();
        let h = s
            .submit(InferRequest::new("lenet", input(0)).with_deadline(Duration::from_millis(500)))
            .unwrap();
        let r = h.wait().expect("deadline-driven flush must serve this request");
        assert!(t0.elapsed() < Duration::from_secs(2), "served before the max_wait window");
        assert_eq!(r.output.dims(), &[1, 4]);
        let sum = s.shutdown();
        assert_eq!(sum.completed, 1);
        assert_eq!(sum.rejected_deadline, 0);
    }

    #[test]
    fn unknown_model_and_bad_shape_rejected_at_admission() {
        let s = server(ServeConfig::default());
        let e = s.submit(InferRequest::new("nope", input(0))).unwrap_err();
        assert!(matches!(e, ServeError::UnknownModel(_)));
        let bad = Tensor::from_vec(vec![1, 3, 4, 4], vec![0.0; 48]);
        let e = s.submit(InferRequest::new("lenet", bad)).unwrap_err();
        assert!(matches!(e, ServeError::BadInput(_)));
        let sum = s.shutdown();
        assert_eq!(sum.rejected_invalid, 2);
        // Pin the mapping: admission rejections land on the counter their
        // variant names and nowhere else.
        assert_eq!(sum.rejected_shutdown, 0);
        assert_eq!(sum.rejected_queue_full, 0);
        assert_eq!(sum.rejected_deadline, 0);
        assert_eq!(sum.internal_errors, 0);
    }

    #[test]
    fn batch_input_must_be_single_image() {
        let s = server(ServeConfig::default());
        let two = Tensor::from_vec(vec![2, 3, 8, 8], vec![0.0; 2 * 3 * 64]);
        let e = s.submit(InferRequest::new("lenet", two)).unwrap_err();
        assert!(matches!(e, ServeError::BadInput(_)));
    }

    #[test]
    fn queue_full_rejects_instead_of_blocking() {
        // One worker, tiny queue, long max_wait: flood it.
        let cfg = ServeConfig {
            queue_depth: 2,
            max_batch: 64,
            max_wait: Duration::from_millis(250),
            workers: 1,
            ..Default::default()
        };
        let s = server(cfg);
        let mut handles = Vec::new();
        let mut rejected = 0u64;
        for i in 0..64 {
            match s.submit(InferRequest::new("lenet", input(i))) {
                Ok(h) => handles.push(h),
                Err(ServeError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(rejected > 0, "a 2-deep queue must reject a 64-request burst");
        for h in handles {
            h.wait().unwrap();
        }
        let sum = s.shutdown();
        assert_eq!(sum.rejected_queue_full, rejected);
    }

    #[test]
    fn immediate_deadline_is_rejected_not_run() {
        let cfg = ServeConfig { max_wait: Duration::from_millis(20), ..Default::default() };
        let s = server(cfg);
        let h =
            s.submit(InferRequest::new("lenet", input(0)).with_deadline(Duration::ZERO)).unwrap();
        assert_eq!(h.wait().unwrap_err(), ServeError::DeadlineExceeded);
        let sum = s.shutdown();
        assert_eq!(sum.rejected_deadline, 1);
        assert_eq!(sum.completed, 0);
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let cfg = ServeConfig {
            queue_depth: 32,
            max_batch: 4,
            max_wait: Duration::from_millis(100),
            workers: 2,
            ..Default::default()
        };
        let s = server(cfg);
        let handles: Vec<_> =
            (0..10).map(|i| s.submit(InferRequest::new("lenet", input(i))).unwrap()).collect();
        // Shut down immediately; every admitted request must still answer.
        let sum = s.shutdown();
        assert_eq!(sum.completed, 10);
        for h in handles {
            assert!(h.wait().is_ok());
        }
    }

    #[test]
    fn deploy_swaps_and_rollback_restores_bit_exactly() {
        let s = server(ServeConfig { max_wait: Duration::from_micros(200), ..Default::default() });
        let v1_logits = s.submit(InferRequest::new("lenet", input(3))).unwrap().wait().unwrap();

        // Publish a retrained checkpoint and hot-swap to it.
        let v2 = s.registry().publish("lenet", tiny_model_seeded(777), vec![]).unwrap();
        s.deploy("lenet", v2).unwrap();
        assert_eq!(s.current_version("lenet"), Some(v2));
        let v2_logits = s.submit(InferRequest::new("lenet", input(3))).unwrap().wait().unwrap();
        assert_ne!(
            v1_logits.output.as_slice(),
            v2_logits.output.as_slice(),
            "different weights must answer differently"
        );

        // Rollback: answers are bit-identical to the original version's.
        assert_eq!(s.rollback("lenet").unwrap(), 1);
        let back = s.submit(InferRequest::new("lenet", input(3))).unwrap().wait().unwrap();
        let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&v1_logits.output), bits(&back.output));

        let sum = s.shutdown();
        let versions: Vec<u64> = sum.models.iter().map(|m| m.version).collect();
        assert_eq!(versions, vec![1, 2], "both versions served and are accounted separately");
        assert_eq!(sum.models.iter().map(|m| m.completed).sum::<u64>(), 3);
    }

    #[test]
    fn deploying_unknown_or_retired_versions_fails_cleanly() {
        let s = server(ServeConfig::default());
        assert!(matches!(s.deploy("ghost", 1), Err(DeployError::UnknownModel(_))));
        assert!(matches!(s.deploy("lenet", 99), Err(DeployError::Registry(_))));
        assert!(matches!(s.rollback("lenet"), Err(DeployError::NoPreviousVersion(_))));
        // A server can't start serving a name with nothing published.
        let r = Server::builder(ServeConfig::default()).serve("empty").try_start();
        assert!(matches!(r, Err(DeployError::UnknownModel(_))));
    }

    #[test]
    fn canary_splits_traffic_deterministically() {
        let s = server(ServeConfig { max_wait: Duration::from_micros(100), ..Default::default() });
        let v2 = s.registry().publish("lenet", tiny_model_seeded(42), vec![]).unwrap();
        s.canary("lenet", v2, TrafficSplit::new(0.5).with_seed(9)).unwrap();
        assert_eq!(s.current_version("lenet"), Some(1), "canary must not move current");

        // Solo references for both versions.
        let m1 = s.registry().get("lenet", 1).unwrap();
        let m2 = s.registry().get("lenet", v2).unwrap();
        let mut fl = crate::engine::EngineKind::Float.build(Arc::default());
        let split = TrafficSplit::new(0.5).with_seed(9);
        let mut canaried = 0;
        for id in 0..24u64 {
            let r = s
                .submit(InferRequest::new("lenet", input(id as usize)).with_id(id))
                .unwrap()
                .wait()
                .unwrap();
            let expect = if split.picks_canary(id) {
                canaried += 1;
                m2.forward_eval(&input(id as usize), &mut fl)
            } else {
                m1.forward_eval(&input(id as usize), &mut fl)
            };
            assert_eq!(
                r.output.as_slice(),
                expect.as_slice(),
                "request {id} must land exactly where the split says"
            );
        }
        assert!(canaried > 0, "a 50% split over 24 ids routes some to the canary");
        s.clear_canary("lenet").unwrap();
        let sum = s.shutdown();
        assert_eq!(sum.models.len(), 2, "canary traffic is accounted under its own version");
    }
}
