//! The server: admission control, thread lifecycle, graceful shutdown.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, Sender, TrySendError};
use odq_nn::models::Model;

use crate::batcher::{self, Batch, Pending};
use crate::config::ServeConfig;
use crate::engine::EngineKind;
use crate::request::{InferRequest, ResponseHandle, ServeError};
use crate::stats::{BatchRecord, Ledger, StatsSummary};
use crate::worker::{self, lock_ledger};

/// Builder for [`Server`]: register models, pick an engine, start.
pub struct ServerBuilder {
    cfg: ServeConfig,
    engine: EngineKind,
    models: HashMap<String, Model>,
}

impl ServerBuilder {
    /// Builder with the given config, defaulting to the ODQ engine at the
    /// paper's nominal threshold.
    pub fn new(cfg: ServeConfig) -> Self {
        Self { cfg, engine: EngineKind::Odq { threshold: 0.3 }, models: HashMap::new() }
    }

    /// Select the engine every worker runs.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Register a model under `name`. Requests address models by this
    /// name; two registrations with the same name keep the later one.
    pub fn model(mut self, name: impl Into<String>, model: Model) -> Self {
        self.models.insert(name.into(), model);
        self
    }

    /// Start the batcher and worker threads and open admission.
    pub fn start(self) -> Server {
        let cfg = self.cfg;
        // One plan cache per model, shared by every worker: each layer's
        // weights are quantized and prepacked once for the whole fleet.
        let plans: Arc<HashMap<String, Arc<odq_quant::plan::PlanCache>>> =
            Arc::new(self.models.keys().map(|name| (name.clone(), Arc::default())).collect());
        let models = Arc::new(self.models);
        let ledger = Arc::new(Mutex::new(Ledger::default()));

        let (submit_tx, submit_rx) = bounded::<Pending>(cfg.queue_depth.max(1));
        // Small buffer: workers pull batches as they free up, and a full
        // channel backpressures the batcher (and through it, admission).
        let (batch_tx, batch_rx) = bounded::<Batch>(cfg.workers.max(1) * 2);

        let b_ledger = Arc::clone(&ledger);
        let batcher = std::thread::Builder::new()
            .name("odq-serve-batcher".into())
            .spawn(move || batcher::run(submit_rx, batch_tx, cfg, b_ledger))
            .expect("spawn batcher");

        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let rx = batch_rx.clone();
                let models = Arc::clone(&models);
                let ledger = Arc::clone(&ledger);
                let plans = Arc::clone(&plans);
                let kind = self.engine;
                std::thread::Builder::new()
                    .name(format!("odq-serve-worker-{i}"))
                    .spawn(move || worker::run(rx, models, kind, cfg, ledger, plans))
                    .expect("spawn worker")
            })
            .collect();
        // The batcher's sender must be the only one left, or workers
        // would never see a disconnect on shutdown.
        drop(batch_rx);

        Server { cfg, models, submit_tx: Some(submit_tx), batcher: Some(batcher), workers, ledger }
    }
}

/// A running serving instance. Dropping it shuts down gracefully.
pub struct Server {
    cfg: ServeConfig,
    models: Arc<HashMap<String, Model>>,
    submit_tx: Option<Sender<Pending>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    ledger: Arc<Mutex<Ledger>>,
}

impl Server {
    /// Configure and start a server.
    pub fn builder(cfg: ServeConfig) -> ServerBuilder {
        ServerBuilder::new(cfg)
    }

    /// Submit a request. Returns immediately: `Ok` with a handle to the
    /// eventual response, or an admission error ([`ServeError::QueueFull`]
    /// when the bounded queue is at capacity — the backpressure signal).
    pub fn submit(&self, req: InferRequest) -> Result<ResponseHandle, ServeError> {
        if let Err(e) = self.validate(&req) {
            lock_ledger(&self.ledger).rejected_invalid += 1;
            return Err(e);
        }
        let tx = match self.submit_tx.as_ref() {
            Some(tx) => tx,
            None => {
                lock_ledger(&self.ledger).rejected_shutdown += 1;
                return Err(ServeError::ShuttingDown);
            }
        };
        let now = Instant::now();
        let deadline = req.deadline.or(self.cfg.default_deadline).map(|d| now + d);
        let (resp_tx, resp_rx) = bounded(1);
        let pending = Pending { req, resp: resp_tx, enqueued: now, deadline };
        match tx.try_send(pending) {
            Ok(()) => {
                let mut led = lock_ledger(&self.ledger);
                led.admitted += 1;
                led.note_queue_depth(tx.len());
                Ok(ResponseHandle { rx: resp_rx })
            }
            Err(TrySendError::Full(_)) => {
                lock_ledger(&self.ledger).rejected_queue_full += 1;
                Err(ServeError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                lock_ledger(&self.ledger).rejected_shutdown += 1;
                Err(ServeError::ShuttingDown)
            }
        }
    }

    fn validate(&self, req: &InferRequest) -> Result<(), ServeError> {
        let model = self
            .models
            .get(&req.model)
            .ok_or_else(|| ServeError::UnknownModel(req.model.clone()))?;
        let dims = req.input.dims();
        let want = [1, model.cfg.in_channels, model.cfg.input_hw, model.cfg.input_hw];
        if dims != want {
            return Err(ServeError::BadInput(format!(
                "expected shape {want:?} for model {:?}, got {dims:?}",
                req.model
            )));
        }
        Ok(())
    }

    /// Requests currently waiting in the submission queue.
    pub fn queue_len(&self) -> usize {
        self.submit_tx.as_ref().map_or(0, |tx| tx.len())
    }

    /// Aggregated ledger snapshot. O(1) in requests served: the ledger
    /// streams everything into fixed-footprint histograms and counters.
    pub fn stats(&self) -> StatsSummary {
        lock_ledger(&self.ledger).summary()
    }

    /// Ledger snapshot as pretty-printed JSON (durations in ms).
    pub fn stats_json(&self) -> String {
        serde_json::to_string_pretty(&self.stats()).expect("summary serializes")
    }

    /// The most recently executed batches (bounded ring, newest last).
    pub fn recent_batches(&self) -> Vec<BatchRecord> {
        lock_ledger(&self.ledger).recent_batches()
    }

    /// Approximate resident size of the stats ledger in bytes. Constant
    /// in the number of requests served — the O(1)-memory guarantee the
    /// streaming ledger exists for, and what tests pin down.
    pub fn ledger_bytes(&self) -> usize {
        lock_ledger(&self.ledger).approx_bytes()
    }

    /// Graceful shutdown: close admission, let the batcher drain and
    /// flush every admitted request, let workers finish all batches, join
    /// all threads. Returns the final ledger summary.
    pub fn shutdown(mut self) -> StatsSummary {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        // Dropping the submission sender disconnects the batcher once the
        // queue drains; the batcher then drops the batch sender, which
        // stops the workers once the batch queue drains.
        drop(self.submit_tx.take());
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::InferRequest;
    use odq_nn::models::{Model, ModelCfg};
    use odq_nn::Arch;
    use odq_tensor::Tensor;
    use std::time::Duration;

    fn tiny_model() -> Model {
        let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
        cfg.input_hw = 8;
        Model::build(cfg)
    }

    fn input(seed: usize) -> Tensor {
        let v: Vec<f32> = (0..3 * 64).map(|i| ((i * 7 + seed * 13) % 97) as f32 / 97.0).collect();
        Tensor::from_vec(vec![1, 3, 8, 8], v)
    }

    fn server(cfg: ServeConfig) -> Server {
        Server::builder(cfg).engine(EngineKind::Float).model("lenet", tiny_model()).start()
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let s = server(ServeConfig { max_wait: Duration::from_micros(200), ..Default::default() });
        let h = s.submit(InferRequest::new("lenet", input(0))).unwrap();
        let r = h.wait().unwrap();
        assert_eq!(r.output.dims(), &[1, 4]);
        assert!(r.timing.batch_size >= 1);
        // The worker records the batch before responding, so a completed
        // wait() guarantees the ledger has absorbed it — no polling.
        assert_eq!(s.stats().batches, 1);
        assert_eq!(s.recent_batches().len(), 1);
        let json = s.stats_json();
        assert!(json.contains("\"counters\""), "{json}");
        let sum = s.shutdown();
        assert_eq!(sum.admitted, 1);
        assert_eq!(sum.completed, 1);
        assert_eq!(sum.batches, 1);
    }

    #[test]
    fn shutdown_rejections_are_counted() {
        let mut s = server(ServeConfig::default());
        s.close();
        let e = s.submit(InferRequest::new("lenet", input(0))).unwrap_err();
        assert_eq!(e, ServeError::ShuttingDown);
        assert_eq!(s.stats().rejected_shutdown, 1);
    }

    #[test]
    fn tight_deadline_flushes_early_and_is_served() {
        // Deadline far shorter than the batching window: the batcher must
        // dispatch early on the member deadline, not wait out max_wait and
        // then reject the request as expired.
        let cfg =
            ServeConfig { max_wait: Duration::from_secs(2), max_batch: 8, ..Default::default() };
        let s = server(cfg);
        let t0 = std::time::Instant::now();
        let h = s
            .submit(InferRequest::new("lenet", input(0)).with_deadline(Duration::from_millis(500)))
            .unwrap();
        let r = h.wait().expect("deadline-driven flush must serve this request");
        assert!(t0.elapsed() < Duration::from_secs(2), "served before the max_wait window");
        assert_eq!(r.output.dims(), &[1, 4]);
        let sum = s.shutdown();
        assert_eq!(sum.completed, 1);
        assert_eq!(sum.rejected_deadline, 0);
    }

    #[test]
    fn unknown_model_and_bad_shape_rejected_at_admission() {
        let s = server(ServeConfig::default());
        let e = s.submit(InferRequest::new("nope", input(0))).unwrap_err();
        assert!(matches!(e, ServeError::UnknownModel(_)));
        let bad = Tensor::from_vec(vec![1, 3, 4, 4], vec![0.0; 48]);
        let e = s.submit(InferRequest::new("lenet", bad)).unwrap_err();
        assert!(matches!(e, ServeError::BadInput(_)));
        let sum = s.shutdown();
        assert_eq!(sum.rejected_invalid, 2);
    }

    #[test]
    fn batch_input_must_be_single_image() {
        let s = server(ServeConfig::default());
        let two = Tensor::from_vec(vec![2, 3, 8, 8], vec![0.0; 2 * 3 * 64]);
        let e = s.submit(InferRequest::new("lenet", two)).unwrap_err();
        assert!(matches!(e, ServeError::BadInput(_)));
    }

    #[test]
    fn queue_full_rejects_instead_of_blocking() {
        // One worker, tiny queue, long max_wait: flood it.
        let cfg = ServeConfig {
            queue_depth: 2,
            max_batch: 64,
            max_wait: Duration::from_millis(250),
            workers: 1,
            ..Default::default()
        };
        let s = server(cfg);
        let mut handles = Vec::new();
        let mut rejected = 0u64;
        for i in 0..64 {
            match s.submit(InferRequest::new("lenet", input(i))) {
                Ok(h) => handles.push(h),
                Err(ServeError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(rejected > 0, "a 2-deep queue must reject a 64-request burst");
        for h in handles {
            h.wait().unwrap();
        }
        let sum = s.shutdown();
        assert_eq!(sum.rejected_queue_full, rejected);
    }

    #[test]
    fn immediate_deadline_is_rejected_not_run() {
        let cfg = ServeConfig { max_wait: Duration::from_millis(20), ..Default::default() };
        let s = server(cfg);
        let h =
            s.submit(InferRequest::new("lenet", input(0)).with_deadline(Duration::ZERO)).unwrap();
        assert_eq!(h.wait().unwrap_err(), ServeError::DeadlineExceeded);
        let sum = s.shutdown();
        assert_eq!(sum.rejected_deadline, 1);
        assert_eq!(sum.completed, 0);
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let cfg = ServeConfig {
            queue_depth: 32,
            max_batch: 4,
            max_wait: Duration::from_millis(100),
            workers: 2,
            ..Default::default()
        };
        let s = server(cfg);
        let handles: Vec<_> =
            (0..10).map(|i| s.submit(InferRequest::new("lenet", input(i))).unwrap()).collect();
        // Shut down immediately; every admitted request must still answer.
        let sum = s.shutdown();
        assert_eq!(sum.completed, 10);
        for h in handles {
            assert!(h.wait().is_ok());
        }
    }
}
