//! Request/response types and the submission error taxonomy.

use std::fmt;
use std::time::Duration;

use crossbeam::channel::Receiver;
use odq_tensor::Tensor;

/// One inference request: a single `[1, C, H, W]` image for a named model.
#[derive(Clone, Debug)]
pub struct InferRequest {
    /// Name the model was registered under ([`crate::ServerBuilder::model`]).
    pub model: String,
    /// Input image, shape `[1, C, H, W]` matching the model's configured
    /// input channels and spatial size.
    pub input: Tensor,
    /// Optional deadline, relative to submission. A request still queued
    /// or batched when its deadline passes is answered with
    /// [`ServeError::DeadlineExceeded`] instead of being run.
    pub deadline: Option<Duration>,
    /// Optional caller-chosen request id. Canary routing hashes this id
    /// (deterministically, see [`crate::TrafficSplit`]), so resubmitting
    /// with the same id lands on the same version. When `None` the server
    /// assigns the next value of an internal sequence.
    pub id: Option<u64>,
    /// Optional caller-chosen trace id for distributed tracing
    /// ([`crate::trace`]). Carried over the wire by `odq-net`'s
    /// `FLAG_TRACE` and echoed back in [`InferResponse::trace`]. When
    /// `None` the server uses the request id as the trace id.
    pub trace: Option<u64>,
}

impl InferRequest {
    /// Request without a deadline.
    pub fn new(model: impl Into<String>, input: Tensor) -> Self {
        Self { model: model.into(), input, deadline: None, id: None, trace: None }
    }

    /// Attach a deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach an explicit request id (the canary-routing key).
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }

    /// Attach an explicit trace id (propagated and echoed end to end).
    pub fn with_trace(mut self, trace: u64) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Timing observed for one request.
#[derive(Clone, Copy, Debug)]
pub struct RequestTiming {
    /// Submission → start of the forward pass that served it.
    pub queue_wait: Duration,
    /// Duration of that forward pass (shared by the whole batch).
    pub service: Duration,
    /// Submission → response ready.
    pub total: Duration,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
}

/// Successful response: the request's row of the model output.
#[derive(Clone, Debug)]
pub struct InferResponse {
    /// Output logits, shape `[1, num_classes]`.
    pub output: Tensor,
    /// Timing breakdown.
    pub timing: RequestTiming,
    /// The request's trace id, echoed back: the id the caller attached
    /// ([`InferRequest::with_trace`]), or the server-assigned one. `None`
    /// only when an older transport did not echo it.
    pub trace: Option<u64>,
}

/// Why a request was rejected or failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded submission queue is full — backpressure; retry later.
    QueueFull,
    /// No model registered under this name.
    UnknownModel(String),
    /// Input tensor shape does not match the model's expected
    /// `[1, C, H, W]`.
    BadInput(String),
    /// The deadline passed before the request reached a worker.
    DeadlineExceeded,
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// The serving pipeline dropped the response channel (worker panic).
    WorkerLost,
    /// A worker panicked while executing the batch this request rode in.
    /// The worker was restarted with a fresh engine; retrying is safe.
    Internal,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "submission queue full"),
            ServeError::UnknownModel(m) => write!(f, "unknown model {m:?}"),
            ServeError::BadInput(why) => write!(f, "bad input: {why}"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before execution"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::WorkerLost => write!(f, "serving pipeline dropped the response"),
            ServeError::Internal => {
                write!(f, "internal error: worker panicked while serving the batch")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Handle to a submitted request's eventual response.
///
/// The response arrives on a dedicated single-slot channel, so a handle
/// can be waited on from any thread, at any time after submission.
#[derive(Debug)]
pub struct ResponseHandle {
    pub(crate) rx: Receiver<Result<InferResponse, ServeError>>,
}

impl ResponseHandle {
    /// A fresh single-slot response channel: the sending half resolves the
    /// handle exactly once. This is how an out-of-process front-end (the
    /// `odq-net` client) hands out the same handle type the in-process
    /// [`crate::Server::submit`] does — a dropped sender resolves the
    /// handle to [`ServeError::WorkerLost`], exactly like a dropped
    /// pipeline.
    pub fn channel() -> (ResponseSender, ResponseHandle) {
        let (tx, rx) = crossbeam::channel::bounded(1);
        (ResponseSender { tx }, ResponseHandle { rx })
    }

    /// Block until the response is ready.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<InferResponse, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(crossbeam::channel::TryRecvError::Empty) => None,
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                Some(Err(ServeError::WorkerLost))
            }
        }
    }
}

/// The sending half of a [`ResponseHandle::channel`] pair. Resolving is
/// idempotent-safe: the slot holds one result, later sends are ignored.
#[derive(Clone, Debug)]
pub struct ResponseSender {
    tx: crossbeam::channel::Sender<Result<InferResponse, ServeError>>,
}

impl ResponseSender {
    /// Resolve the paired handle. Returns `false` when the result could
    /// not be delivered (slot already filled, or the handle was dropped).
    pub fn send(&self, result: Result<InferResponse, ServeError>) -> bool {
        self.tx.try_send(result).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    #[test]
    fn channel_pair_resolves_once() {
        let (tx, h) = ResponseHandle::channel();
        assert!(h.try_wait().is_none());
        assert!(tx.send(Err(ServeError::QueueFull)));
        assert!(!tx.send(Err(ServeError::Internal)), "slot holds exactly one result");
        assert_eq!(h.wait().unwrap_err(), ServeError::QueueFull);
    }

    #[test]
    fn dropped_response_sender_is_worker_lost() {
        let (tx, h) = ResponseHandle::channel();
        drop(tx);
        assert_eq!(h.wait().unwrap_err(), ServeError::WorkerLost);
    }

    #[test]
    fn handle_delivers_response() {
        let (tx, rx) = bounded(1);
        let h = ResponseHandle { rx };
        assert!(h.try_wait().is_none());
        tx.send(Err(ServeError::QueueFull)).unwrap();
        assert_eq!(h.wait().unwrap_err(), ServeError::QueueFull);
    }

    #[test]
    fn dropped_sender_is_worker_lost() {
        let (tx, rx) = bounded::<Result<InferResponse, ServeError>>(1);
        drop(tx);
        let h = ResponseHandle { rx };
        assert_eq!(h.wait().unwrap_err(), ServeError::WorkerLost);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ServeError::UnknownModel("x".into()).to_string().contains("x"));
        assert!(!ServeError::QueueFull.to_string().is_empty());
    }
}
