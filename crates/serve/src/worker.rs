//! Worker threads: each owns long-lived engines and executes batches.
//!
//! A worker keeps one engine instance *per model*, built lazily on the
//! first batch it serves for that model. Keeping the engine alive across
//! batches is what makes serving cheaper than per-request inference — and
//! all of a model's engines, across every worker, point at one shared
//! [`PlanCache`]: each layer's weights are quantized, bit-split and
//! summarized once per weight version for the whole fleet, and every
//! planned conv driver draws im2col scratch from the cache's workspace
//! pool instead of allocating per call.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel::Receiver;
use odq_accel::{simulate_network, EnergyModel, LayerWorkload};
use odq_nn::models::Model;
use odq_quant::plan::PlanCache;
use odq_tensor::Tensor;

use crate::batcher::Batch;
use crate::config::ServeConfig;
use crate::engine::{EngineExec, EngineKind, Profiled};
use crate::request::{InferResponse, RequestTiming, ServeError};
use crate::stats::{BatchRecord, BatchSim, Ledger, RequestRecord};

pub(crate) fn run(
    rx: Receiver<Batch>,
    models: Arc<HashMap<String, Model>>,
    kind: EngineKind,
    cfg: ServeConfig,
    ledger: Arc<Mutex<Ledger>>,
    plans: Arc<HashMap<String, Arc<PlanCache>>>,
) {
    let energy = EnergyModel::default();
    let mut engines: HashMap<String, EngineExec> = HashMap::new();
    while let Ok(batch) = rx.recv() {
        serve_batch(batch, &models, kind, &cfg, &ledger, &mut engines, &energy, &plans);
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_batch(
    batch: Batch,
    models: &HashMap<String, Model>,
    kind: EngineKind,
    cfg: &ServeConfig,
    ledger: &Arc<Mutex<Ledger>>,
    engines: &mut HashMap<String, EngineExec>,
    energy: &EnergyModel,
    plans: &HashMap<String, Arc<PlanCache>>,
) {
    // Last-chance deadline check: a batch can sit in the dispatch channel
    // behind busy workers; anything already expired is answered as missed
    // rather than burning a forward pass on it.
    let now = Instant::now();
    let (live, expired): (Vec<_>, Vec<_>) =
        batch.items.into_iter().partition(|p| p.deadline.is_none_or(|d| d > now));
    if !expired.is_empty() {
        let mut led = ledger.lock().expect("ledger poisoned");
        led.rejected_deadline += expired.len() as u64;
        drop(led);
        for p in expired {
            let _ = p.resp.send(Err(ServeError::DeadlineExceeded));
        }
    }
    if live.is_empty() {
        return;
    }
    let batch = Batch { model: batch.model, items: live };

    let n = batch.items.len();
    let model = match models.get(&batch.model) {
        Some(m) => m,
        None => {
            // Admission validates names; this can only mean a logic bug.
            for p in batch.items {
                let _ = p.resp.send(Err(ServeError::UnknownModel(batch.model.clone())));
            }
            return;
        }
    };

    // Gather [1,C,H,W] inputs into one [N,C,H,W] tensor.
    let per_image = batch.items[0].req.input.as_slice().len();
    let mut data = Vec::with_capacity(n * per_image);
    for p in &batch.items {
        data.extend_from_slice(p.req.input.as_slice());
    }
    let mut dims = batch.items[0].req.input.dims().to_vec();
    dims[0] = n;
    let x = Tensor::from_vec(dims, data);

    let exec = engines
        .entry(batch.model.clone())
        .or_insert_with(|| kind.build(plans.get(&batch.model).cloned().unwrap_or_default()));
    // Per-batch stats: clear any profile left from the previous batch.
    match exec {
        EngineExec::Odq(e) => e.reset_stats(),
        EngineExec::Drq(e) => e.stats.clear(),
        _ => {}
    }

    let start = Instant::now();
    let mut prof = Profiled::new(exec);
    let y = model.forward_eval(&x, &mut prof);
    let service = start.elapsed();
    let layer_geoms = std::mem::take(&mut prof.layers);

    // Extract the batch's measured profile before responding.
    let (sensitive_fraction, workloads) = profile(exec, &layer_geoms);
    let sim = if cfg.simulate_accel && !workloads.is_empty() {
        let accel = kind.accel_config();
        let r = simulate_network(&accel, &workloads, energy);
        Some(BatchSim {
            config: accel.name,
            cycles_per_image: r.total_cycles,
            batch_cycles: r.total_cycles * n as f64,
            time_s: r.time_s * n as f64,
            energy_nj: r.energy.total_nj() * n as f64,
        })
    } else {
        None
    };

    // Scatter output rows back to the requesters.
    let classes = y.as_slice().len() / n;
    let ys = y.as_slice();
    let done = Instant::now();
    let mut records = Vec::with_capacity(n);
    for (i, p) in batch.items.into_iter().enumerate() {
        let row = ys[i * classes..(i + 1) * classes].to_vec();
        let timing = RequestTiming {
            queue_wait: start.saturating_duration_since(p.enqueued),
            service,
            total: done.saturating_duration_since(p.enqueued),
            batch_size: n,
        };
        records.push(RequestRecord {
            model: batch.model.clone(),
            queue_wait: timing.queue_wait,
            service,
            total: timing.total,
            batch_size: n,
        });
        let _ = p
            .resp
            .send(Ok(InferResponse { output: Tensor::from_vec(vec![1, classes], row), timing }));
    }

    let mut led = ledger.lock().expect("ledger poisoned");
    led.requests.extend(records);
    led.batches.push(BatchRecord {
        model: batch.model,
        engine: kind.label(),
        size: n,
        service,
        sensitive_fraction,
        sim,
    });
}

/// Turn the engine's per-pass measurements into simulator workloads.
///
/// ODQ supplies real per-(image, channel) sensitive counts; DRQ supplies
/// per-layer high-precision MAC fractions; static/float engines run every
/// output at full precision (fraction 1.0).
fn profile(
    exec: &mut EngineExec,
    layer_geoms: &[(String, odq_tensor::ConvGeom)],
) -> (Option<f64>, Vec<LayerWorkload>) {
    match exec {
        EngineExec::Odq(e) => {
            let stats = e.stats.take();
            let frac = stats.overall_sensitive_fraction();
            let ws = stats
                .layers
                .iter()
                .map(|l| LayerWorkload::from_channel_counts(&l.name, l.geom, &l.channel_counts))
                .collect();
            (Some(frac), ws)
        }
        EngineExec::Drq(e) => {
            let ws = layer_geoms
                .iter()
                .map(|(name, geom)| {
                    let frac = e
                        .stats
                        .iter()
                        .find(|l| &l.name == name)
                        .map_or(1.0, |l| l.hi_mac_fraction());
                    LayerWorkload::uniform(name.clone(), *geom, frac)
                })
                .collect();
            (None, ws)
        }
        EngineExec::Float(_) | EngineExec::Static(_) => {
            let ws = layer_geoms
                .iter()
                .map(|(name, geom)| LayerWorkload::uniform(name.clone(), *geom, 1.0))
                .collect();
            (None, ws)
        }
    }
}
