//! Worker threads: each owns long-lived engines and executes batches.
//!
//! A worker keeps one engine instance per *(model, version)* deployment,
//! built lazily on the first batch it serves for that deployment. Keeping
//! the engine alive across batches is what makes serving cheaper than
//! per-request inference — and all of a deployment's engines, across every
//! worker, point at that deployment's shared
//! [`PlanCache`](odq_quant::plan::PlanCache): each layer's weights are
//! quantized, bit-split and summarized once per weight version for the
//! whole fleet, and every planned conv driver draws im2col scratch from
//! the cache's workspace pool instead of allocating per call. The batch
//! itself carries its `Arc<Deployment>` (weights + plans + version), so a
//! hot swap needs no worker coordination at all: old batches execute
//! their old snapshot, new batches bring the new one.
//!
//! # Supervision
//!
//! A panic anywhere inside batch execution (engine bug, model bug,
//! injected fault) must not take serving capacity down with it, and must
//! not leave the batch's clients hanging on a dead channel. Each worker
//! runs a *self-restarting shell*: one "shift" ([`run_shift`]) owns the
//! engines and serves batches with execution wrapped in `catch_unwind`.
//! When a batch panics, the shell answers every request in that batch
//! with [`ServeError::Internal`], records the panic in the ledger, throws
//! the shift's engines away (their state is suspect mid-unwind), and
//! starts a fresh shift — capacity recovers without the `Server` having
//! to notice.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel::Receiver;
use odq_accel::{simulate_network, EnergyModel, LayerWorkload};
use odq_tensor::Tensor;

use crate::batcher::{record_spans, Batch};
use crate::config::ServeConfig;
use crate::engine::{EngineExec, EngineKind, Profiled, RouteProfile};
use crate::request::{InferResponse, RequestTiming, ServeError};
use crate::stats::{BatchRecord, BatchSim, LayerProfile, Ledger, RouteSim};
use crate::trace::SpanStage;

/// Lock the ledger even if a previous holder panicked: the streaming
/// counters stay individually consistent, and refusing to record after
/// one panic would blind the very telemetry that reports panics.
pub(crate) fn lock_ledger(ledger: &Mutex<Ledger>) -> std::sync::MutexGuard<'_, Ledger> {
    ledger.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How a worker shift ended.
enum ShiftEnd {
    /// The batch channel disconnected: the server is draining. Exit.
    Disconnected,
    /// A batch panicked: the shift's engines are suspect. Restart.
    Panicked,
}

/// How many engines a worker keeps alive per model name. Two is the
/// steady-state need (current + canary or current + draining predecessor);
/// anything older is evicted so a long swap history cannot grow the
/// worker's footprint.
const ENGINES_PER_MODEL: usize = 2;

pub(crate) fn run(
    rx: Receiver<Batch>,
    kind: EngineKind,
    cfg: ServeConfig,
    ledger: Arc<Mutex<Ledger>>,
) {
    let energy = EnergyModel::default();
    // The ledger label is the same for every batch this worker ever
    // serves: intern it once instead of allocating a String per record.
    let label: Arc<str> = Arc::from(kind.label().as_ref());
    loop {
        match run_shift(&rx, &kind, &label, &cfg, &ledger, &energy) {
            ShiftEnd::Disconnected => break,
            ShiftEnd::Panicked => lock_ledger(&ledger).worker_restarts += 1,
        }
    }
}

fn run_shift(
    rx: &Receiver<Batch>,
    kind: &EngineKind,
    label: &Arc<str>,
    cfg: &ServeConfig,
    ledger: &Arc<Mutex<Ledger>>,
    energy: &EnergyModel,
) -> ShiftEnd {
    let mut engines: HashMap<(String, u64), EngineExec> = HashMap::new();
    while let Ok(batch) = rx.recv() {
        // Keep a second handle to every response channel so a panicking
        // batch can still be answered after its `Pending`s unwound away.
        let senders: Vec<_> = batch.items.iter().map(|p| p.resp.clone()).collect();
        let executed = catch_unwind(AssertUnwindSafe(|| {
            serve_batch(batch, kind, label, cfg, ledger, &mut engines, energy);
        }));
        if executed.is_err() {
            // `try_send`: a request answered before the panic has its
            // single response slot full already — leave it be and count
            // only the requests this error actually reaches.
            let answered =
                senders.iter().filter(|tx| tx.try_send(Err(ServeError::Internal)).is_ok()).count();
            lock_ledger(ledger).record_worker_panic(answered);
            return ShiftEnd::Panicked;
        }
    }
    ShiftEnd::Disconnected
}

fn serve_batch(
    batch: Batch,
    kind: &EngineKind,
    label: &Arc<str>,
    cfg: &ServeConfig,
    ledger: &Arc<Mutex<Ledger>>,
    engines: &mut HashMap<(String, u64), EngineExec>,
    energy: &EnergyModel,
) {
    // Dequeue timestamp: everything before this is queue wait, everything
    // after it (expired-partition, input gather, forward pass, scatter) is
    // the server working on the request.
    let dequeued = Instant::now();

    {
        let mut led = lock_ledger(ledger);
        led.batches_started += 1;
        let nth = led.batches_started;
        drop(led);
        // Both fault mechanisms fire *before* any engine state is touched,
        // so an injected panic never leaves a half-updated engine behind —
        // the supervision shell discards the shift's engines anyway, but
        // the injection point guarantees the shared plan cache is clean.
        if cfg.fault_panic_on_batch == Some(nth) {
            panic!("fault injection: panicking on batch {nth}");
        }
        if let Some(hook) = &cfg.fault_hook {
            if hook.should_panic(nth, &batch.dep.name, batch.dep.version) {
                panic!(
                    "fault injection: hook tripped on batch {nth} ({} v{})",
                    batch.dep.name, batch.dep.version
                );
            }
        }
    }

    // Last-chance deadline check: a batch can sit in the dispatch channel
    // behind busy workers; anything already expired is answered as missed
    // rather than burning a forward pass on it.
    let (live, expired): (Vec<_>, Vec<_>) =
        batch.items.into_iter().partition(|p| p.deadline.is_none_or(|d| d > dequeued));
    if !expired.is_empty() {
        lock_ledger(ledger).rejected_deadline += expired.len() as u64;
        for p in expired {
            let _ = p.resp.send(Err(ServeError::DeadlineExceeded));
        }
    }
    if live.is_empty() {
        return;
    }
    let batch = Batch { dep: batch.dep, items: live };
    record_spans(cfg, &batch.items, SpanStage::WorkerDequeue, dequeued, None);

    let n = batch.items.len();
    let dep = &batch.dep;
    let model = &*dep.model;

    // Gather [1,C,H,W] inputs into one [N,C,H,W] tensor.
    let per_image = batch.items[0].req.input.as_slice().len();
    let mut data = Vec::with_capacity(n * per_image);
    for p in &batch.items {
        data.extend_from_slice(p.req.input.as_slice());
    }
    let mut dims = batch.items[0].req.input.dims().to_vec();
    dims[0] = n;
    let x = Tensor::from_vec(dims, data);

    let key = (dep.name.clone(), dep.version);
    if !engines.contains_key(&key) {
        // Evict this model's stalest version beyond the cap before
        // building: superseded deployments drain quickly and never
        // come back, while current + canary stay hot.
        let mut versions: Vec<u64> =
            engines.keys().filter(|(m, _)| *m == dep.name).map(|&(_, v)| v).collect();
        versions.sort_unstable();
        for &v in versions.iter().rev().skip(ENGINES_PER_MODEL - 1) {
            engines.remove(&(dep.name.clone(), v));
        }
        // A `Policy` kind defers to the deployment's published policy, so
        // the engine a hot swap brings in routes by the *new* version's
        // policy — weights and precision policy swap atomically.
        engines.insert(key.clone(), kind.build_for(dep.policy.as_ref(), Arc::clone(&dep.plans)));
    }
    let exec = engines.get_mut(&key).expect("engine just ensured");
    // Per-batch stats: clear any profile left from the previous batch.
    exec.reset_batch_stats();

    let start = Instant::now();
    let mut prof = Profiled::new(exec, cfg.layer_profiling);
    let y = model.forward_eval(&x, &mut prof);
    let service = start.elapsed();
    let layer_geoms = std::mem::take(&mut prof.layers);
    let layer_walls = std::mem::take(&mut prof.walls);
    record_spans(cfg, &batch.items, SpanStage::EngineExecute, start, Some(service));

    // Extract the batch's measured profile before responding. A policy
    // engine yields one group per route, each costed on its own
    // accelerator configuration; single-engine kinds yield one group.
    let (sensitive_fraction, groups) = profile(exec, kind, &layer_geoms);
    // Per-layer simulated cycles (whole batch), filled by the sim loop.
    let mut layer_cycles: HashMap<String, f64> = HashMap::new();
    let sim = if cfg.simulate_accel && !groups.is_empty() {
        let mut cycles = 0.0f64;
        let mut time_s = 0.0f64;
        let mut energy_nj = 0.0f64;
        let mut routes = Vec::with_capacity(groups.len());
        for rp in &groups {
            let r = simulate_network(&rp.accel, &rp.workloads, energy);
            cycles += r.total_cycles;
            time_s += r.time_s;
            energy_nj += r.energy.total_nj();
            if cfg.layer_profiling {
                for lr in &r.layers {
                    *layer_cycles.entry(lr.name.clone()).or_insert(0.0) +=
                        lr.total_cycles * n as f64;
                }
            }
            routes.push(RouteSim {
                route: rp.label.clone(),
                config: rp.accel.name.clone(),
                layers: rp.workloads.len(),
                batch_cycles: r.total_cycles * n as f64,
                energy_nj: r.energy.total_nj() * n as f64,
            });
        }
        let config =
            if groups.len() == 1 { groups[0].accel.name.clone() } else { "mixed".to_string() };
        Some(BatchSim {
            config,
            cycles_per_image: cycles,
            batch_cycles: cycles * n as f64,
            time_s: time_s * n as f64,
            energy_nj: energy_nj * n as f64,
            routes,
        })
    } else {
        None
    };

    // Per-layer probes: pair each layer's measured wall time with the
    // route that executed it, the mask density that route measured for
    // it, and its share of the simulated cycles. The route groups are
    // already built (for the simulator) whether or not simulation ran.
    let layer_profiles: Vec<LayerProfile> = if cfg.layer_profiling {
        let mut meta: HashMap<&str, (&str, Option<f64>)> = HashMap::new();
        for rp in &groups {
            for w in &rp.workloads {
                let density = if rp.label.starts_with("odq") {
                    Some(w.odq_sensitive_fraction)
                } else if rp.label.starts_with("drq") {
                    Some(w.drq_hi_fraction)
                } else {
                    None
                };
                meta.insert(w.name.as_str(), (rp.label.as_str(), density));
            }
        }
        layer_geoms
            .iter()
            .zip(&layer_walls)
            .map(|((name, _), wall)| {
                let (route, mask_density) = match meta.get(name.as_str()) {
                    Some(&(r, d)) => (r.to_string(), d),
                    None => (label.to_string(), None),
                };
                LayerProfile {
                    layer: name.clone(),
                    route,
                    wall: *wall,
                    mask_density,
                    sim_cycles: layer_cycles.get(name.as_str()).copied().unwrap_or(0.0),
                }
            })
            .collect()
    } else {
        Vec::new()
    };

    // Record the batch in the ledger *before* scattering responses: a
    // client that has observed its response is then guaranteed the stats
    // already reflect it, so `wait()` doubles as a completion barrier and
    // tests never need to poll the ledger.
    let classes = y.as_slice().len() / n;
    let ys = y.as_slice();
    let done = Instant::now();
    let timings: Vec<RequestTiming> = batch
        .items
        .iter()
        .map(|p| RequestTiming {
            queue_wait: dequeued.saturating_duration_since(p.enqueued),
            service,
            total: done.saturating_duration_since(p.enqueued),
            batch_size: n,
        })
        .collect();
    {
        let mut led = lock_ledger(ledger);
        for t in &timings {
            led.record_request(t.queue_wait, t.service, t.total);
        }
        led.record_batch(BatchRecord {
            model: dep.name.clone(),
            version: dep.version,
            fingerprint: dep.fingerprint,
            engine: Arc::clone(label),
            size: n,
            service,
            sensitive_fraction,
            sim,
        });
        if !layer_profiles.is_empty() {
            led.record_layers(&dep.name, dep.version, &layer_profiles);
        }
    }

    // Scatter output rows back to the requesters. The scatter span is
    // recorded first, so a traced client that has seen its response is
    // guaranteed the full five-stage trace is already in the sink — the
    // same barrier discipline as the ledger above.
    record_spans(cfg, &batch.items, SpanStage::ResponseScatter, done, None);
    for ((i, p), timing) in batch.items.into_iter().enumerate().zip(timings) {
        let row = ys[i * classes..(i + 1) * classes].to_vec();
        let _ = p.resp.send(Ok(InferResponse {
            output: Tensor::from_vec(vec![1, classes], row),
            timing,
            trace: Some(p.trace),
        }));
    }
}

/// Turn the engine's per-pass measurements into per-route workload groups.
///
/// ODQ supplies real per-(image, channel) sensitive counts; DRQ supplies
/// per-layer high-precision MAC fractions; static/float engines run every
/// output at full precision (fraction 1.0). A policy engine folds each
/// sub-engine's measurements into its own group so every route is costed
/// on its own accelerator; every other kind yields exactly one group.
fn profile(
    exec: &mut EngineExec,
    kind: &EngineKind,
    layer_geoms: &[(String, odq_tensor::ConvGeom)],
) -> (Option<f64>, Vec<RouteProfile>) {
    let (frac, workloads) = match exec {
        EngineExec::Policy(p) => return p.route_profiles(layer_geoms),
        EngineExec::Odq(e) => {
            let stats = e.stats.take();
            let frac = stats.overall_sensitive_fraction();
            let ws: Vec<LayerWorkload> = stats
                .layers
                .iter()
                .map(|l| LayerWorkload::from_channel_counts(&l.name, l.geom, &l.channel_counts))
                .collect();
            (Some(frac), ws)
        }
        EngineExec::Drq(e) => {
            let ws = layer_geoms
                .iter()
                .map(|(name, geom)| {
                    let frac = e
                        .stats
                        .iter()
                        .find(|l| &l.name == name)
                        .map_or(1.0, |l| l.hi_mac_fraction());
                    LayerWorkload::uniform(name.clone(), *geom, frac)
                })
                .collect();
            (None, ws)
        }
        EngineExec::Float(_) | EngineExec::Static(_) => {
            let ws = layer_geoms
                .iter()
                .map(|(name, geom)| LayerWorkload::uniform(name.clone(), *geom, 1.0))
                .collect();
            (None, ws)
        }
    };
    let groups = if workloads.is_empty() {
        Vec::new()
    } else {
        vec![RouteProfile {
            label: kind.label().into_owned(),
            accel: kind.accel_config(),
            workloads,
        }]
    };
    (frac, groups)
}
