//! Engine selection, per-layer policy routing, and the per-pass profiler.
//!
//! Everything behind `odq_nn`'s [`ConvExecutor`] seam can serve: the float
//! reference, static DoReFa INT-k, DRQ (input-directed), ODQ
//! (output-directed) — and, through [`PolicyExecutor`], any per-layer
//! mixture of them described by an `odq_nn` [`PrecisionPolicy`]. Workers
//! own one engine instance per model, and every engine serving the same
//! model shares one per-model
//! [`PlanCache`]: layer weights are quantized,
//! bit-split and summarized exactly once across the whole worker fleet,
//! and every planned conv driver lowers through the cache's shared
//! workspace pool. A policy's sub-engines share that same cache — each
//! layer runs under exactly one route, so the cache still holds one plan
//! per layer and routing adds no thrash.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use odq_accel::{AccelConfig, LayerWorkload};
use odq_core::engine::OdqEngine;
use odq_drq::{DrqCfg, DrqEngine};
use odq_nn::executor::{ConvCtx, ConvExecutor, FloatConvExecutor, StaticQuantExecutor};
use odq_nn::policy::{PrecisionPolicy, Route};
use odq_quant::plan::PlanCache;
use odq_tensor::{ConvGeom, Tensor};

/// Which quantization engine the worker pool runs.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineKind {
    /// Float reference executor (honors QAT fake-quantization).
    Float,
    /// Static DoReFa INT-`bits` quantization for weights and activations.
    Static {
        /// Bit width for both weights and activations.
        bits: u8,
    },
    /// DRQ, the input-directed baseline (INT8-INT4 pair).
    Drq {
        /// Input-region sensitivity threshold.
        input_threshold: f32,
    },
    /// ODQ with a global output threshold (the paper's configuration).
    Odq {
        /// Output sensitivity threshold.
        threshold: f32,
    },
    /// Per-layer mixed precision: each conv layer executes under the route
    /// its [`PrecisionPolicy`] assigns. This kind's policy is the
    /// *fallback*; a deployment whose registry version was published with
    /// its own policy executes under that published policy instead, so
    /// hot-swapping versions swaps policies atomically with the weights.
    Policy(Arc<PrecisionPolicy>),
}

impl EngineKind {
    /// Short label for ledgers and reports. Borrowed for the fixed kinds,
    /// so recording a batch does not allocate.
    pub fn label(&self) -> Cow<'static, str> {
        match self {
            EngineKind::Float => Cow::Borrowed("float"),
            EngineKind::Static { bits } => Cow::Owned(format!("int{bits}")),
            EngineKind::Drq { .. } => Cow::Borrowed("drq"),
            EngineKind::Odq { .. } => Cow::Borrowed("odq"),
            EngineKind::Policy(_) => Cow::Borrowed("policy"),
        }
    }

    /// The matching Table 2 accelerator configuration for per-batch
    /// simulation: static INT16/INT8 run on the fixed-precision arrays,
    /// DRQ and ODQ on their reconfigurable designs. The float engine has
    /// no accelerator of its own in the paper; it is costed as INT16 (the
    /// highest-precision design). A policy has no single configuration —
    /// each route is costed on its own accelerator (see
    /// `route_accel_config`) — so this returns the *default* route's.
    pub fn accel_config(&self) -> AccelConfig {
        match self {
            EngineKind::Float => AccelConfig::int16(),
            EngineKind::Static { bits } if *bits <= 8 => AccelConfig::int8(),
            EngineKind::Static { .. } => AccelConfig::int16(),
            EngineKind::Drq { .. } => AccelConfig::drq(),
            EngineKind::Odq { .. } => AccelConfig::odq(),
            EngineKind::Policy(p) => route_accel_config(p.default_route()),
        }
    }

    /// Instantiate a fresh engine of this kind over a (typically
    /// per-model, fleet-shared) plan cache, honoring `published`: when
    /// this kind is [`EngineKind::Policy`] and the deployment carries a
    /// policy published with its registry version, the published policy
    /// wins over the kind's fallback.
    pub(crate) fn build_for(
        &self,
        published: Option<&Arc<PrecisionPolicy>>,
        plans: Arc<PlanCache>,
    ) -> EngineExec {
        match self {
            EngineKind::Policy(fallback) => {
                let policy = published.unwrap_or(fallback);
                EngineExec::Policy(PolicyExecutor::new(Arc::clone(policy), plans))
            }
            EngineKind::Float => EngineExec::Float(FloatConvExecutor),
            EngineKind::Static { bits } => {
                EngineExec::Static(StaticQuantExecutor::with_plan_cache(*bits, *bits, 1.0, plans))
            }
            EngineKind::Drq { input_threshold } => EngineExec::Drq(DrqEngine::with_plan_cache(
                DrqCfg::int8_int4(*input_threshold),
                plans,
            )),
            EngineKind::Odq { threshold } => {
                EngineExec::Odq(OdqEngine::with_plan_cache(*threshold, plans))
            }
        }
    }

    /// [`build_for`](Self::build_for) with no published policy.
    #[cfg(test)]
    pub(crate) fn build(&self, plans: Arc<PlanCache>) -> EngineExec {
        self.build_for(None, plans)
    }
}

/// The Table 2 accelerator configuration one policy route is costed on,
/// mirroring [`EngineKind::accel_config`] route-by-route.
pub(crate) fn route_accel_config(route: Route) -> AccelConfig {
    match route {
        Route::Float => AccelConfig::int16(),
        Route::Static { w_bits, .. } if w_bits <= 8 => AccelConfig::int8(),
        Route::Static { .. } => AccelConfig::int16(),
        Route::Drq { .. } => AccelConfig::drq(),
        Route::Odq { .. } => AccelConfig::odq(),
    }
}

/// Build the engine executing one policy route over a shared plan cache.
fn build_route(route: Route, plans: Arc<PlanCache>) -> EngineExec {
    match route {
        Route::Float => EngineExec::Float(FloatConvExecutor),
        Route::Static { w_bits, a_bits, a_clip } => {
            EngineExec::Static(StaticQuantExecutor::with_plan_cache(w_bits, a_bits, a_clip, plans))
        }
        Route::Drq { hi_bits, lo_bits, a_clip, region, input_threshold } => {
            EngineExec::Drq(DrqEngine::with_plan_cache(
                DrqCfg { hi_bits, lo_bits, a_clip, region: region as usize, input_threshold },
                plans,
            ))
        }
        Route::Odq { threshold, sparse } => {
            let mut e = OdqEngine::with_plan_cache(threshold, plans);
            e.sparse = sparse;
            EngineExec::Odq(e)
        }
    }
}

/// A [`ConvExecutor`] that routes each conv layer to the engine its
/// [`PrecisionPolicy`] assigns.
///
/// Sub-engines are built lazily, one per *distinct route* (two layers
/// routed identically share an engine instance), and all of them share
/// the model's single plan cache and workspace pool — each layer runs
/// under exactly one route, so the cache keeps exactly one plan per layer
/// no matter how many routes the policy mixes. Dispatch is memoized by
/// layer name after the first pass.
pub struct PolicyExecutor {
    policy: Arc<PrecisionPolicy>,
    plans: Arc<PlanCache>,
    /// One lazily-built engine per distinct route encountered so far.
    engines: Vec<(Route, EngineExec)>,
    /// Layer name → index into `engines`.
    dispatch: HashMap<String, usize>,
}

impl PolicyExecutor {
    /// A routed executor over `policy`, all sub-engines sharing `plans`.
    pub fn new(policy: Arc<PrecisionPolicy>, plans: Arc<PlanCache>) -> Self {
        Self { policy, plans, engines: Vec::new(), dispatch: HashMap::new() }
    }

    /// The policy this executor routes by.
    pub fn policy(&self) -> &Arc<PrecisionPolicy> {
        &self.policy
    }

    /// Sub-engines built so far (one per distinct route encountered).
    pub fn engine_count(&self) -> usize {
        self.engines.len()
    }

    fn engine_index_for(&mut self, name: &str) -> usize {
        if let Some(&i) = self.dispatch.get(name) {
            return i;
        }
        let route = self.policy.route_for(name);
        let i = match self.engines.iter().position(|(r, _)| *r == route) {
            Some(i) => i,
            None => {
                self.engines.push((route, build_route(route, Arc::clone(&self.plans))));
                self.engines.len() - 1
            }
        };
        self.dispatch.insert(name.to_string(), i);
        i
    }

    /// Clear per-batch statistics on every sub-engine.
    pub(crate) fn reset_stats(&mut self) {
        for (_, e) in &mut self.engines {
            e.reset_batch_stats();
        }
    }

    /// Fold each sub-engine's per-pass measurements into one profile
    /// group per route: ODQ routes report their real per-channel
    /// sensitive counts (and contribute to the overall sensitive
    /// fraction), DRQ routes their high-precision MAC fractions, and
    /// float/static routes uniform full-precision workloads over the
    /// layers dispatched to them.
    pub(crate) fn route_profiles(
        &mut self,
        layer_geoms: &[(String, ConvGeom)],
    ) -> (Option<f64>, Vec<RouteProfile>) {
        let mut sens_num = 0u64;
        let mut sens_den = 0u64;
        let mut profiles = Vec::new();
        let dispatch = &self.dispatch;
        for (i, (route, exec)) in self.engines.iter_mut().enumerate() {
            let mine = || layer_geoms.iter().filter(|(n, _)| dispatch.get(n) == Some(&i));
            let workloads: Vec<LayerWorkload> = match exec {
                EngineExec::Odq(e) => {
                    let stats = e.stats.take();
                    for l in &stats.layers {
                        sens_num += l.sensitive_outputs;
                        sens_den += l.total_outputs;
                    }
                    stats
                        .layers
                        .iter()
                        .map(|l| {
                            LayerWorkload::from_channel_counts(&l.name, l.geom, &l.channel_counts)
                        })
                        .collect()
                }
                EngineExec::Drq(e) => mine()
                    .map(|(name, geom)| {
                        let frac = e
                            .stats
                            .iter()
                            .find(|l| &l.name == name)
                            .map_or(1.0, |l| l.hi_mac_fraction());
                        LayerWorkload::uniform(name.clone(), *geom, frac)
                    })
                    .collect(),
                EngineExec::Float(_) | EngineExec::Static(_) => mine()
                    .map(|(name, geom)| LayerWorkload::uniform(name.clone(), *geom, 1.0))
                    .collect(),
                EngineExec::Policy(_) => unreachable!("policy sub-engines are never policies"),
            };
            if workloads.is_empty() {
                continue;
            }
            profiles.push(RouteProfile {
                label: route.label().into_owned(),
                accel: route_accel_config(*route),
                workloads,
            });
        }
        let frac = if sens_den > 0 { Some(sens_num as f64 / sens_den as f64) } else { None };
        (frac, profiles)
    }
}

impl ConvExecutor for PolicyExecutor {
    fn begin_pass(&mut self) {
        for (_, e) in &mut self.engines {
            e.begin_pass();
        }
    }

    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let i = self.engine_index_for(ctx.name);
        self.engines[i].1.conv(ctx, x)
    }
}

/// One route's share of a batch: the layers it executed, as simulator
/// workloads, and the accelerator configuration that costs them.
pub(crate) struct RouteProfile {
    /// Route label (`"odq"`, `"int4"`, ...), the per-route stats key.
    pub label: String,
    /// Accelerator configuration this route is costed on.
    pub accel: AccelConfig,
    /// Measured per-layer workloads.
    pub workloads: Vec<LayerWorkload>,
}

/// A worker-owned engine instance.
pub(crate) enum EngineExec {
    Float(FloatConvExecutor),
    Static(StaticQuantExecutor),
    Drq(DrqEngine),
    Odq(OdqEngine),
    Policy(PolicyExecutor),
}

impl EngineExec {
    /// Clear any per-batch profile left from the previous batch.
    pub(crate) fn reset_batch_stats(&mut self) {
        match self {
            EngineExec::Odq(e) => e.reset_stats(),
            EngineExec::Drq(e) => e.stats.clear(),
            EngineExec::Policy(p) => p.reset_stats(),
            EngineExec::Float(_) | EngineExec::Static(_) => {}
        }
    }
}

impl ConvExecutor for EngineExec {
    fn begin_pass(&mut self) {
        match self {
            EngineExec::Float(e) => e.begin_pass(),
            EngineExec::Static(e) => e.begin_pass(),
            EngineExec::Drq(e) => e.begin_pass(),
            EngineExec::Odq(e) => e.begin_pass(),
            EngineExec::Policy(e) => e.begin_pass(),
        }
    }

    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        match self {
            EngineExec::Float(e) => e.conv(ctx, x),
            EngineExec::Static(e) => e.conv(ctx, x),
            EngineExec::Drq(e) => e.conv(ctx, x),
            EngineExec::Odq(e) => e.conv(ctx, x),
            EngineExec::Policy(e) => e.conv(ctx, x),
        }
    }
}

/// Wraps an engine for one forward pass, recording each conv layer's
/// `(name, geometry)` in execution order — the uniform-workload fallback
/// for engines that do not collect their own per-layer profile — and,
/// when timing is enabled, each layer's accumulated wall time (the
/// serving-side half of the per-layer probes; see
/// [`crate::ServeConfig::layer_profiling`]).
pub(crate) struct Profiled<'a> {
    inner: &'a mut EngineExec,
    /// Conv layers seen this pass, in first-encounter order.
    pub layers: Vec<(String, ConvGeom)>,
    /// Wall time per entry of `layers` (all zero when timing is off).
    /// A layer invoked more than once per pass accumulates.
    pub walls: Vec<Duration>,
    /// Whether conv calls are individually timed.
    timed: bool,
    /// O(1) layer-name → index lookup (a deep model would otherwise pay
    /// a linear scan on every conv call).
    seen: HashMap<String, usize>,
}

impl<'a> Profiled<'a> {
    pub fn new(inner: &'a mut EngineExec, timed: bool) -> Self {
        Self { inner, layers: Vec::new(), walls: Vec::new(), timed, seen: HashMap::new() }
    }
}

impl ConvExecutor for Profiled<'_> {
    fn begin_pass(&mut self) {
        self.layers.clear();
        self.walls.clear();
        self.seen.clear();
        self.inner.begin_pass();
    }

    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let i = match self.seen.get(ctx.name) {
            Some(&i) => i,
            None => {
                let i = self.layers.len();
                self.seen.insert(ctx.name.to_string(), i);
                self.layers.push((ctx.name.to_string(), ctx.geom));
                self.walls.push(Duration::ZERO);
                i
            }
        };
        if self.timed {
            let t0 = Instant::now();
            let y = self.inner.conv(ctx, x);
            self.walls[i] += t0.elapsed();
            y
        } else {
            self.inner.conv(ctx, x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_accel_configs_match() {
        assert_eq!(EngineKind::Float.label(), "float");
        assert_eq!(EngineKind::Static { bits: 8 }.label(), "int8");
        assert_eq!(EngineKind::Static { bits: 8 }.accel_config().name, "INT8");
        assert_eq!(EngineKind::Static { bits: 16 }.accel_config().name, "INT16");
        assert_eq!(EngineKind::Odq { threshold: 0.3 }.label(), "odq");
        assert_eq!(EngineKind::Drq { input_threshold: 0.1 }.label(), "drq");
        let policy =
            Arc::new(PrecisionPolicy::uniform(Route::Odq { threshold: 0.3, sparse: false }));
        assert_eq!(EngineKind::Policy(Arc::clone(&policy)).label(), "policy");
        assert_eq!(EngineKind::Policy(policy).accel_config().name, "ODQ");
        assert_eq!(
            route_accel_config(Route::Static { w_bits: 4, a_bits: 4, a_clip: 1.0 }).name,
            "INT8"
        );
        assert_eq!(route_accel_config(Route::Float).name, "INT16");
    }

    #[test]
    fn profiled_records_each_layer_once() {
        let mut exec = EngineKind::Float.build(Arc::new(PlanCache::new()));
        let mut prof = Profiled::new(&mut exec, true);
        let g = ConvGeom::new(1, 2, 4, 4, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(1), vec![0.5; 16]);
        let w = Tensor::from_vec(g.weight_shape(), vec![0.1; 2 * 9]);
        let ctx = ConvCtx { name: "C1", geom: g, weights: &w, bias: None, qat: None };
        prof.begin_pass();
        let _ = prof.conv(&ctx, &x);
        let _ = prof.conv(&ctx, &x);
        assert_eq!(prof.layers.len(), 1);
        assert_eq!(prof.layers[0].0, "C1");
        assert_eq!(prof.walls.len(), 1, "one wall-time slot per recorded layer");
        assert!(prof.walls[0] > Duration::ZERO, "both calls accumulate into the slot");
    }

    #[test]
    fn policy_executor_shares_engines_across_identically_routed_layers() {
        let policy = PrecisionPolicy::uniform(Route::Float)
            .with("C1", Route::Odq { threshold: 0.3, sparse: false })
            .with("C2", Route::Odq { threshold: 0.3, sparse: false })
            .with("C3", Route::Static { w_bits: 8, a_bits: 8, a_clip: 1.0 });
        let mut exec = PolicyExecutor::new(Arc::new(policy), Arc::new(PlanCache::new()));
        let g = ConvGeom::new(2, 2, 4, 4, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(1), vec![0.5; 2 * 16]);
        let w = Tensor::from_vec(g.weight_shape(), vec![0.1; 2 * 2 * 9]);
        exec.begin_pass();
        for name in ["C1", "C2", "C3", "C9"] {
            let ctx = ConvCtx { name, geom: g, weights: &w, bias: None, qat: None };
            let _ = exec.conv(&ctx, &x);
        }
        // C1 and C2 share one ODQ engine; C3 gets static; C9 the default.
        assert_eq!(exec.engine_count(), 3);
    }

    #[test]
    fn deployment_policy_overrides_the_kinds_fallback() {
        let fallback = Arc::new(PrecisionPolicy::uniform(Route::Float));
        let published =
            Arc::new(PrecisionPolicy::uniform(Route::Odq { threshold: 0.5, sparse: false }));
        let kind = EngineKind::Policy(Arc::clone(&fallback));
        match kind.build_for(Some(&published), Arc::new(PlanCache::new())) {
            EngineExec::Policy(p) => assert_eq!(p.policy().as_ref(), published.as_ref()),
            _ => panic!("policy kind must build a policy executor"),
        }
        match kind.build(Arc::new(PlanCache::new())) {
            EngineExec::Policy(p) => assert_eq!(p.policy().as_ref(), fallback.as_ref()),
            _ => panic!("policy kind must build a policy executor"),
        }
    }
}
