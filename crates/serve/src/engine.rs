//! Engine selection and the per-pass profiling wrapper.
//!
//! Everything behind `odq_nn`'s [`ConvExecutor`] seam can serve: the float
//! reference, static DoReFa INT-k, DRQ (input-directed), and ODQ
//! (output-directed). Workers own one engine instance per model, and every
//! engine serving the same model shares one per-model
//! [`PlanCache`](odq_quant::plan::PlanCache): layer weights are quantized,
//! bit-split and summarized exactly once across the whole worker fleet,
//! and every planned conv driver lowers through the cache's shared
//! workspace pool.

use std::sync::Arc;

use odq_accel::AccelConfig;
use odq_core::engine::OdqEngine;
use odq_drq::{DrqCfg, DrqEngine};
use odq_nn::executor::{ConvCtx, ConvExecutor, FloatConvExecutor, StaticQuantExecutor};
use odq_quant::plan::PlanCache;
use odq_tensor::{ConvGeom, Tensor};

/// Which quantization engine the worker pool runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineKind {
    /// Float reference executor (honors QAT fake-quantization).
    Float,
    /// Static DoReFa INT-`bits` quantization for weights and activations.
    Static {
        /// Bit width for both weights and activations.
        bits: u8,
    },
    /// DRQ, the input-directed baseline (INT8-INT4 pair).
    Drq {
        /// Input-region sensitivity threshold.
        input_threshold: f32,
    },
    /// ODQ with a global output threshold (the paper's configuration).
    Odq {
        /// Output sensitivity threshold.
        threshold: f32,
    },
}

impl EngineKind {
    /// Short label for ledgers and reports.
    pub fn label(&self) -> String {
        match self {
            EngineKind::Float => "float".into(),
            EngineKind::Static { bits } => format!("int{bits}"),
            EngineKind::Drq { .. } => "drq".into(),
            EngineKind::Odq { .. } => "odq".into(),
        }
    }

    /// The matching Table 2 accelerator configuration for per-batch
    /// simulation: static INT16/INT8 run on the fixed-precision arrays,
    /// DRQ and ODQ on their reconfigurable designs. The float engine has
    /// no accelerator of its own in the paper; it is costed as INT16 (the
    /// highest-precision design).
    pub fn accel_config(&self) -> AccelConfig {
        match self {
            EngineKind::Float => AccelConfig::int16(),
            EngineKind::Static { bits } if *bits <= 8 => AccelConfig::int8(),
            EngineKind::Static { .. } => AccelConfig::int16(),
            EngineKind::Drq { .. } => AccelConfig::drq(),
            EngineKind::Odq { .. } => AccelConfig::odq(),
        }
    }

    /// Instantiate a fresh engine of this kind over a (typically
    /// per-model, fleet-shared) plan cache.
    pub(crate) fn build(&self, plans: Arc<PlanCache>) -> EngineExec {
        match *self {
            EngineKind::Float => EngineExec::Float(FloatConvExecutor),
            EngineKind::Static { bits } => {
                EngineExec::Static(StaticQuantExecutor::with_plan_cache(bits, bits, 1.0, plans))
            }
            EngineKind::Drq { input_threshold } => EngineExec::Drq(DrqEngine::with_plan_cache(
                DrqCfg::int8_int4(input_threshold),
                plans,
            )),
            EngineKind::Odq { threshold } => {
                EngineExec::Odq(OdqEngine::with_plan_cache(threshold, plans))
            }
        }
    }
}

/// A worker-owned engine instance.
pub(crate) enum EngineExec {
    Float(FloatConvExecutor),
    Static(StaticQuantExecutor),
    Drq(DrqEngine),
    Odq(OdqEngine),
}

impl ConvExecutor for EngineExec {
    fn begin_pass(&mut self) {
        match self {
            EngineExec::Float(e) => e.begin_pass(),
            EngineExec::Static(e) => e.begin_pass(),
            EngineExec::Drq(e) => e.begin_pass(),
            EngineExec::Odq(e) => e.begin_pass(),
        }
    }

    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        match self {
            EngineExec::Float(e) => e.conv(ctx, x),
            EngineExec::Static(e) => e.conv(ctx, x),
            EngineExec::Drq(e) => e.conv(ctx, x),
            EngineExec::Odq(e) => e.conv(ctx, x),
        }
    }
}

/// Wraps an engine for one forward pass, recording each conv layer's
/// `(name, geometry)` in execution order — the uniform-workload fallback
/// for engines that do not collect their own per-layer profile.
pub(crate) struct Profiled<'a> {
    inner: &'a mut EngineExec,
    /// Conv layers seen this pass, in first-encounter order.
    pub layers: Vec<(String, ConvGeom)>,
}

impl<'a> Profiled<'a> {
    pub fn new(inner: &'a mut EngineExec) -> Self {
        Self { inner, layers: Vec::new() }
    }
}

impl ConvExecutor for Profiled<'_> {
    fn begin_pass(&mut self) {
        self.layers.clear();
        self.inner.begin_pass();
    }

    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        if !self.layers.iter().any(|(n, _)| n == ctx.name) {
            self.layers.push((ctx.name.to_string(), ctx.geom));
        }
        self.inner.conv(ctx, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_accel_configs_match() {
        assert_eq!(EngineKind::Float.label(), "float");
        assert_eq!(EngineKind::Static { bits: 8 }.label(), "int8");
        assert_eq!(EngineKind::Static { bits: 8 }.accel_config().name, "INT8");
        assert_eq!(EngineKind::Static { bits: 16 }.accel_config().name, "INT16");
        assert_eq!(EngineKind::Odq { threshold: 0.3 }.label(), "odq");
        assert_eq!(EngineKind::Drq { input_threshold: 0.1 }.label(), "drq");
    }

    #[test]
    fn profiled_records_each_layer_once() {
        let mut exec = EngineKind::Float.build(Arc::new(PlanCache::new()));
        let mut prof = Profiled::new(&mut exec);
        let g = ConvGeom::new(1, 2, 4, 4, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(1), vec![0.5; 16]);
        let w = Tensor::from_vec(g.weight_shape(), vec![0.1; 2 * 9]);
        let ctx = ConvCtx { name: "C1", geom: g, weights: &w, bias: None, qat: None };
        prof.begin_pass();
        let _ = prof.conv(&ctx, &x);
        let _ = prof.conv(&ctx, &x);
        assert_eq!(prof.layers.len(), 1);
        assert_eq!(prof.layers[0].0, "C1");
    }
}
