//! odq-serve — batched, backpressured inference serving.
//!
//! The paper evaluates ODQ on single-image latency and energy; this crate
//! turns the engines into a small *serving system*, the deployment shape
//! the paper motivates ("real-time inference ... on resource-constrained
//! systems", Sec. 1):
//!
//! ```text
//!   submit() ──► bounded queue ──► micro-batcher ──► worker pool ──► responses
//!   (admission     (capacity =      (coalesce same     (each worker
//!    control:       queue_depth,     model+shape up     owns long-lived
//!    reject when    try_send)        to max_batch or    engines; weight
//!    full)                           max_wait)          caches amortize)
//!                                                          │
//!                                                          ▼
//!                                                  streaming stats ledger
//!                                              (log-bucketed latency
//!                                               histograms, outcome
//!                                               counters, queue/batch
//!                                               gauges, simulated
//!                                               accelerator cycles/energy
//!                                               — O(1) memory in requests)
//! ```
//!
//! Requests carry one `[1, C, H, W]` image for a named model and an
//! optional deadline. The batcher coalesces *compatible* requests (same
//! model, same input shape) into one `[N, C, H, W]` tensor; a worker runs
//! one forward pass through its engine ([`EngineKind`] selects float,
//! static INT-k, DRQ, ODQ, or a per-layer mixed-precision
//! [`odq_nn::policy::PrecisionPolicy`] routed by [`PolicyExecutor`] —
//! anything behind `odq_nn`'s `ConvExecutor` seam) and scatters the
//! `[N, classes]` output back to the per-request response channels.
//! Batching is exact: per-sample im2col/GEMM and batch-independent
//! quantization scales make the batched outputs element-wise identical to
//! solo runs (asserted by this crate's tests).
//!
//! Per batch, the worker also feeds the measured sensitivity profile (for
//! ODQ, the engine's per-channel counts; for others, uniform workloads)
//! through `odq_accel`'s cycle-level simulator, so the ledger reports what
//! each served batch *would* cost on the paper's accelerator. Under a
//! precision policy, each route is costed on its own accelerator
//! configuration and the ledger splits cycles and energy per route
//! ([`RouteStats`] / the `simulated_accel.routes` section of
//! [`Server::stats_json`]).
//!
//! [`Server::shutdown`] is graceful: admission closes first, then the
//! batcher drains and flushes every admitted request, then workers finish
//! in-flight batches — no response is lost or duplicated.
//!
//! Models are *versioned*: every server is backed by an
//! `odq_registry::ModelRegistry`, admission resolves each request to an
//! immutable [`Deployment`] snapshot (weights + per-version plan cache)
//! exactly once, and [`Server::deploy`] / [`Server::rollback`] swap the
//! route atomically with zero downtime — in-flight requests finish on the
//! version they were admitted under, batches never mix versions, and the
//! incoming plan cache is seeded from the outgoing one so a swap costs
//! only the plan rebuilds of layers whose weights changed.
//! [`Server::canary`] routes a deterministic, seeded fraction of request
//! ids ([`TrafficSplit`]) to a candidate version, with per-version
//! completions and service latency split out in the stats ledger.
//!
//! The server itself is transport-agnostic — everything enters through
//! [`Server::submit`]. The `odq-net` crate puts a TCP front-end on top
//! (the `ODQ1` length-prefixed wire protocol), streaming its
//! connection/byte/frame counters into this crate's ledger through
//! [`NetTap`], and its load generators drive either side of the wire via
//! [`LoadTarget`].
//!
//! Workers are *supervised*: a panic during batch execution is caught,
//! every request in the panicked batch is answered with
//! [`ServeError::Internal`], the panic and restart are counted in the
//! ledger, and the worker restarts with fresh engines so capacity
//! recovers. The [`fault`] module injects such panics on demand — a
//! [`FaultHook`] consulted at the top of every batch, with deterministic
//! nth-batch, per-model, and seeded-probability triggers
//! ([`ServeConfig::fault_panic_on_batch`] remains as an nth-batch shim) —
//! so the recovery path stays tested, and the chaos harness
//! (`odq-chaos`) can drive it under schedule. Requests whose deadline
//! is shorter than the batching window are dispatched early by the
//! deadline-aware batcher instead of expiring in it.
//!
//! The ledger's counters obey a checkable conservation law — every
//! admitted request reaches exactly one terminal outcome —
//! and [`Server::reconcile`] / [`StatsSummary::reconcile`] audit it,
//! returning a typed [`ReconcileReport`] that also cross-checks the
//! streaming aggregates against each other.

#![warn(missing_docs)]

pub mod config;
pub mod deploy;
pub mod engine;
pub mod fault;
pub mod loadgen;
pub mod request;
pub mod server;
pub mod stats;
pub mod trace;

mod batcher;
mod worker;

pub use config::ServeConfig;
pub use deploy::{DeployError, Deployment, TrafficSplit};
pub use engine::{EngineKind, PolicyExecutor};
pub use fault::{FaultHook, NthBatchFault, PerModelNthFault, SeededProbFault};
pub use loadgen::{run_closed_loop, run_open_loop, LoadReport, LoadSpec, LoadTarget};
pub use request::{
    InferRequest, InferResponse, RequestTiming, ResponseHandle, ResponseSender, ServeError,
};
pub use server::{Server, ServerBuilder};
pub use stats::{
    BatchRecord, BatchSim, LatencyStats, LayerProfile, LayerRuntimeStats, LogHistogram,
    ModelVersionStats, NetStats, NetTap, ReconcileReport, RouteSim, RouteStats, StatsHandle,
    StatsSummary,
};
pub use trace::{SpanRecord, SpanStage, TraceSink};
