//! Seeded load generators for benchmarking the server.
//!
//! Two standard shapes:
//!
//! * **closed loop** — a fixed number of in-flight requests; a new one is
//!   submitted the moment an old one completes. Measures peak sustainable
//!   throughput.
//! * **open loop** — requests arrive on a Poisson process at a target
//!   rate regardless of completions. Measures behavior under offered load,
//!   including queue-full rejections and deadline misses.
//!
//! Both are deterministic given a seed (ChaCha8 streams), modulo thread
//! scheduling on the serving side.
//!
//! Both run against any [`LoadTarget`]: the in-process [`Server`]
//! directly, or a remote one through the `odq-net` TCP client — the same
//! generator measures both sides of the wire.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::request::{InferRequest, ResponseHandle, ServeError};
use crate::server::Server;
use crate::stats::LogHistogram;
use odq_tensor::Tensor;

/// Anything the load generators can drive: submit a request, get back a
/// [`ResponseHandle`]. Implemented by the in-process [`Server`] and by
/// `odq-net`'s TCP client, so one generator measures either side of the
/// wire.
pub trait LoadTarget {
    /// Submit a request; errors are admission rejections (for a remote
    /// target, transport-level refusals).
    fn submit(&self, req: InferRequest) -> Result<ResponseHandle, ServeError>;
}

impl LoadTarget for Server {
    fn submit(&self, req: InferRequest) -> Result<ResponseHandle, ServeError> {
        Server::submit(self, req)
    }
}

/// One model's share of the generated load.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Registered model name.
    pub model: String,
    /// Input channels.
    pub in_channels: usize,
    /// Input spatial size (square).
    pub hw: usize,
    /// Relative weight of this model in the mix.
    pub weight: f64,
}

/// What a load-generation run observed.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests submitted (including rejected ones).
    pub submitted: u64,
    /// Rejected at admission with [`ServeError::QueueFull`].
    pub rejected: u64,
    /// Answered with [`ServeError::DeadlineExceeded`].
    pub deadline_missed: u64,
    /// Answered with a pipeline failure ([`ServeError::Internal`] after a
    /// worker panic, or [`ServeError::WorkerLost`]).
    pub failed: u64,
    /// Submissions refused because the server was shutting down; the run
    /// stops at the first one instead of panicking.
    pub shutdown_rejected: u64,
    /// Submissions rejected as invalid (unknown model / bad shape) —
    /// a misconfigured spec, counted rather than panicked on.
    pub invalid: u64,
    /// Successfully completed.
    pub completed: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// End-to-end latency distribution of completed requests, streamed as
    /// nanoseconds into a fixed-footprint [`LogHistogram`] — a long soak
    /// run does not grow the report (the same O(1)-in-requests discipline
    /// as the server's ledger). Quantiles carry the histogram's ≤12.5%
    /// relative bucket error.
    pub latencies: LogHistogram,
}

impl LoadReport {
    /// Completed requests per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.elapsed.as_secs_f64()
    }

    /// Latency percentile over completed requests, accurate to the
    /// histogram's ≤12.5% relative bucket width (exact at the observed
    /// minimum and maximum).
    pub fn latency_percentile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.latencies.value_at_quantile(q))
    }

    fn absorb(&mut self, outcome: Result<Duration, ServeError>) {
        match outcome {
            Ok(lat) => {
                self.completed += 1;
                self.latencies.record(lat.as_nanos() as u64);
            }
            Err(ServeError::DeadlineExceeded) => self.deadline_missed += 1,
            // Over a network target, admission rejections arrive through
            // the handle instead of at submit; classify them the same way.
            Err(ServeError::QueueFull) => self.rejected += 1,
            Err(ServeError::ShuttingDown) => self.shutdown_rejected += 1,
            Err(ServeError::UnknownModel(_) | ServeError::BadInput(_)) => self.invalid += 1,
            // Every other in-flight failure (worker panic, lost channel,
            // drain) is a terminal outcome the generator must survive.
            Err(ServeError::WorkerLost | ServeError::Internal) => self.failed += 1,
        }
    }

    /// Record a submission rejection. Returns `false` when the run should
    /// stop (the server is shutting down).
    fn absorb_submit_error(&mut self, e: ServeError) -> bool {
        match e {
            ServeError::QueueFull => self.rejected += 1,
            ServeError::ShuttingDown => {
                self.shutdown_rejected += 1;
                return false;
            }
            _ => self.invalid += 1,
        }
        true
    }
}

/// Deterministic pseudo-image in `[0, 1)`.
pub fn random_input(rng: &mut ChaCha8Rng, in_channels: usize, hw: usize) -> Tensor {
    let len = in_channels * hw * hw;
    let v: Vec<f32> = (0..len).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    Tensor::from_vec(vec![1, in_channels, hw, hw], v)
}

fn pick<'a>(specs: &'a [LoadSpec], rng: &mut ChaCha8Rng) -> &'a LoadSpec {
    let total: f64 = specs.iter().map(|s| s.weight).sum();
    let mut draw = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for s in specs {
        if draw < s.weight {
            return s;
        }
        draw -= s.weight;
    }
    specs.last().expect("non-empty specs")
}

fn make_request(
    specs: &[LoadSpec],
    rng: &mut ChaCha8Rng,
    deadline: Option<Duration>,
) -> InferRequest {
    let spec = pick(specs, rng);
    let mut req =
        InferRequest::new(spec.model.clone(), random_input(rng, spec.in_channels, spec.hw));
    req.deadline = deadline;
    req
}

/// Closed-loop run: keep `concurrency` requests in flight until `total`
/// have been submitted, then drain. Drives any [`LoadTarget`] — the
/// in-process server or a remote one over TCP.
pub fn run_closed_loop(
    server: &impl LoadTarget,
    specs: &[LoadSpec],
    total: usize,
    concurrency: usize,
    seed: u64,
) -> LoadReport {
    assert!(!specs.is_empty(), "need at least one load spec");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut report = LoadReport::default();
    let mut inflight = VecDeque::new();
    let start = Instant::now();
    for _ in 0..total {
        // At capacity: wait for the oldest in-flight request first.
        while inflight.len() >= concurrency.max(1) {
            let (t0, h): (Instant, crate::request::ResponseHandle) =
                inflight.pop_front().expect("non-empty");
            report.absorb(h.wait().map(|_| t0.elapsed()));
        }
        report.submitted += 1;
        match server.submit(make_request(specs, &mut rng, None)) {
            Ok(h) => inflight.push_back((Instant::now(), h)),
            Err(ServeError::QueueFull) => {
                report.rejected += 1;
                // Closed loop never abandons: wait out one completion,
                // then retry the slot on the next iteration.
                if let Some((t0, h)) = inflight.pop_front() {
                    report.absorb(h.wait().map(|_| t0.elapsed()));
                }
            }
            // A shutting-down server ends the run; anything else is a
            // misconfigured spec, counted rather than panicked on.
            Err(e) => {
                if !report.absorb_submit_error(e) {
                    break;
                }
            }
        }
    }
    for (t0, h) in inflight {
        report.absorb(h.wait().map(|_| t0.elapsed()));
    }
    report.elapsed = start.elapsed();
    report
}

/// Open-loop run: `total` requests offered at `rate_rps` (Poisson
/// arrivals), each carrying `deadline` if given. Queue-full rejections
/// are counted, not retried — exactly what an overloaded server sheds.
/// Drives any [`LoadTarget`] — the in-process server or a remote one
/// over TCP.
pub fn run_open_loop(
    server: &impl LoadTarget,
    specs: &[LoadSpec],
    total: usize,
    rate_rps: f64,
    deadline: Option<Duration>,
    seed: u64,
) -> LoadReport {
    assert!(!specs.is_empty(), "need at least one load spec");
    assert!(rate_rps > 0.0, "rate must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut report = LoadReport::default();
    let mut inflight = Vec::new();
    let start = Instant::now();
    let mut next_arrival = start;
    for _ in 0..total {
        let now = Instant::now();
        if next_arrival > now {
            std::thread::sleep(next_arrival - now);
        }
        // Exponential inter-arrival with mean 1/rate.
        let u: f64 = rng.gen_range(0.0..1.0);
        let gap = -(1.0 - u).ln() / rate_rps;
        next_arrival += Duration::from_secs_f64(gap);

        report.submitted += 1;
        match server.submit(make_request(specs, &mut rng, deadline)) {
            Ok(h) => inflight.push((Instant::now(), h)),
            Err(e) => {
                if !report.absorb_submit_error(e) {
                    break;
                }
            }
        }
    }
    for (t0, h) in inflight {
        report.absorb(h.wait().map(|_| t0.elapsed()));
    }
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_input_shape_and_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t = random_input(&mut rng, 3, 8);
        assert_eq!(t.dims(), &[1, 3, 8, 8]);
        assert!(t.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn pick_respects_weights() {
        let specs = vec![
            LoadSpec { model: "a".into(), in_channels: 1, hw: 8, weight: 0.0 },
            LoadSpec { model: "b".into(), in_channels: 1, hw: 8, weight: 1.0 },
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(pick(&specs, &mut rng).model, "b");
        }
    }

    #[test]
    fn report_aggregates() {
        let mut r = LoadReport::default();
        r.absorb(Ok(Duration::from_millis(4)));
        r.absorb(Ok(Duration::from_millis(8)));
        r.absorb(Err(ServeError::DeadlineExceeded));
        r.elapsed = Duration::from_secs(1);
        assert_eq!(r.completed, 2);
        assert_eq!(r.deadline_missed, 1);
        assert!((r.throughput() - 2.0).abs() < 1e-9);
        assert_eq!(r.latency_percentile(1.0), Duration::from_millis(8));
    }

    #[test]
    fn report_latencies_are_streaming_with_bounded_error() {
        // Regression: `latencies` was an unbounded Vec<Duration>, so a
        // long soak run grew the report without bound. It is now a
        // fixed-footprint LogHistogram (no heap at all) whose quantiles
        // carry the documented ≤12.5% relative bucket error.
        let mut r = LoadReport::default();
        for i in 1..=100_000u64 {
            r.absorb(Ok(Duration::from_micros(i)));
        }
        assert_eq!(r.completed, 100_000);
        for (q, exact_us) in [(0.5, 50_000.0), (0.95, 95_000.0), (0.99, 99_000.0)] {
            let got = r.latency_percentile(q).as_micros() as f64;
            let rel = (got - exact_us).abs() / exact_us;
            assert!(rel <= 0.125, "q={q}: got {got} us, exact {exact_us} us, rel err {rel}");
        }
        // The extremes are exact.
        assert_eq!(r.latency_percentile(1.0), Duration::from_micros(100_000));
        assert_eq!(r.latency_percentile(0.0), Duration::from_micros(1));
    }

    #[test]
    fn report_absorbs_failures_and_submit_errors() {
        let mut r = LoadReport::default();
        r.absorb(Err(ServeError::Internal));
        r.absorb(Err(ServeError::WorkerLost));
        assert_eq!(r.failed, 2);
        assert!(r.absorb_submit_error(ServeError::QueueFull), "queue-full keeps running");
        assert!(r.absorb_submit_error(ServeError::UnknownModel("x".into())));
        assert!(!r.absorb_submit_error(ServeError::ShuttingDown), "shutdown stops the run");
        assert_eq!(r.rejected, 1);
        assert_eq!(r.invalid, 1);
        assert_eq!(r.shutdown_rejected, 1);
    }
}
