//! The micro-batcher: coalesces compatible requests into batches.
//!
//! One thread pulls admitted requests off the bounded submission queue and
//! groups them by *batch key* — model name plus input shape. A group is
//! flushed to the worker pool when it reaches `max_batch`, or when its
//! oldest member has waited `max_wait`. On shutdown (submission side
//! disconnects) every remaining admitted request is flushed, so draining
//! loses nothing.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::config::ServeConfig;
use crate::request::{InferRequest, InferResponse, ServeError};
use crate::stats::Ledger;

/// An admitted request travelling through the pipeline.
pub(crate) struct Pending {
    pub req: InferRequest,
    pub resp: Sender<Result<InferResponse, ServeError>>,
    pub enqueued: Instant,
    pub deadline: Option<Instant>,
}

impl Pending {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// A flushed batch: same model, same input shape.
pub(crate) struct Batch {
    pub model: String,
    pub items: Vec<Pending>,
}

/// Requests batch together iff they ask for the same model with the same
/// input shape.
type BatchKey = (String, Vec<usize>);

pub(crate) fn run(
    rx: Receiver<Pending>,
    batch_tx: Sender<Batch>,
    cfg: ServeConfig,
    ledger: Arc<Mutex<Ledger>>,
) {
    let mut groups: HashMap<BatchKey, Vec<Pending>> = HashMap::new();

    loop {
        // Sleep at most until the oldest forming batch must flush.
        let now = Instant::now();
        let timeout = groups
            .values()
            .filter_map(|g| g.first())
            .map(|p| (p.enqueued + cfg.max_wait).saturating_duration_since(now))
            .min()
            .unwrap_or(cfg.max_wait)
            .max(Duration::from_micros(50));

        match rx.recv_timeout(timeout) {
            Ok(p) => {
                if p.expired(Instant::now()) {
                    reject_expired(p, &ledger);
                } else {
                    let key = (p.req.model.clone(), p.req.input.dims().to_vec());
                    let group = groups.entry(key).or_default();
                    group.push(p);
                    if group.len() >= cfg.max_batch {
                        let key = (group[0].req.model.clone(), group[0].req.input.dims().to_vec());
                        let items = groups.remove(&key).expect("group just filled");
                        flush(items, &batch_tx, &ledger);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Flush any group whose oldest request has waited long enough.
        let now = Instant::now();
        let due: Vec<BatchKey> = groups
            .iter()
            .filter(|(_, g)| g.first().is_some_and(|p| now >= p.enqueued + cfg.max_wait))
            .map(|(k, _)| k.clone())
            .collect();
        for key in due {
            let items = groups.remove(&key).expect("key just listed");
            flush(items, &batch_tx, &ledger);
        }
    }

    // Shutdown drain: the submission side is gone; flush everything that
    // was admitted so no response is lost.
    for (_, items) in groups.drain() {
        flush(items, &batch_tx, &ledger);
    }
}

fn reject_expired(p: Pending, ledger: &Arc<Mutex<Ledger>>) {
    ledger.lock().expect("ledger poisoned").rejected_deadline += 1;
    let _ = p.resp.send(Err(ServeError::DeadlineExceeded));
}

fn flush(items: Vec<Pending>, batch_tx: &Sender<Batch>, ledger: &Arc<Mutex<Ledger>>) {
    let now = Instant::now();
    let (live, expired): (Vec<Pending>, Vec<Pending>) =
        items.into_iter().partition(|p| !p.expired(now));
    for p in expired {
        reject_expired(p, ledger);
    }
    if live.is_empty() {
        return;
    }
    let model = live[0].req.model.clone();
    // A worker-side disconnect can only happen after the pool stopped;
    // answer the items as lost rather than panicking.
    if let Err(e) = batch_tx.send(Batch { model, items: live }) {
        for p in e.into_inner().items {
            let _ = p.resp.send(Err(ServeError::WorkerLost));
        }
    }
}
