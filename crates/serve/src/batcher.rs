//! The micro-batcher: coalesces compatible requests into batches.
//!
//! One thread pulls admitted requests off the bounded submission queue and
//! groups them by *batch key* — model name, deployment version, and input
//! shape. The version is part of the key, so a hot swap or canary split
//! never mixes two weight versions in one forward pass. A group is
//! flushed to the worker pool when it reaches `max_batch`, when its oldest
//! member has waited `max_wait`, or when the *earliest member deadline* is
//! close enough that waiting any longer would risk missing it (a request
//! whose deadline budget is shorter than the batching window must not sit
//! out the full window only to expire — it is dispatched early instead).
//! On shutdown (submission side disconnects) every remaining admitted
//! request is flushed, so draining loses nothing.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::config::ServeConfig;
use crate::deploy::Deployment;
use crate::request::{InferRequest, InferResponse, ServeError};
use crate::stats::Ledger;
use crate::trace::{SpanRecord, SpanStage};
use crate::worker::lock_ledger;

/// An admitted request travelling through the pipeline, pinned to the
/// deployment snapshot admission resolved for it — the version decision
/// is made exactly once, so a swap mid-flight cannot tear the request.
pub(crate) struct Pending {
    pub req: InferRequest,
    /// The deployment (weights + plans) that will execute this request.
    pub dep: Arc<Deployment>,
    pub resp: Sender<Result<InferResponse, ServeError>>,
    pub enqueued: Instant,
    pub deadline: Option<Instant>,
    /// The request id admission resolved (caller-chosen or assigned).
    pub id: u64,
    /// The request's trace id (caller-chosen or the request id).
    pub trace: u64,
    /// Whether the configured [`crate::trace::TraceSink`] sampled this
    /// trace — decided exactly once, at admission.
    pub traced: bool,
}

/// Report one pipeline stage for every traced member of `items` to the
/// configured sink. No-op (and no per-item work) without a sink.
pub(crate) fn record_spans(
    cfg: &ServeConfig,
    items: &[Pending],
    stage: SpanStage,
    at: Instant,
    dur: Option<Duration>,
) {
    let Some(sink) = &cfg.trace else { return };
    for p in items.iter().filter(|p| p.traced) {
        sink.record(SpanRecord {
            trace: p.trace,
            request: p.id,
            model: p.dep.name.clone(),
            version: p.dep.version,
            stage,
            at,
            dur,
        });
    }
}

impl Pending {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// A flushed batch: same model, same deployment version, same input shape.
pub(crate) struct Batch {
    /// The deployment every item in this batch executes on.
    pub dep: Arc<Deployment>,
    pub items: Vec<Pending>,
}

/// Requests batch together iff they ask for the same model at the same
/// deployment version with the same input shape.
type BatchKey = (String, u64, Vec<usize>);

/// When a forming group must flush: the oldest member's `max_wait` window,
/// or earlier if any member's deadline demands it. A member with deadline
/// `d` is dispatched no later than `d - max_wait`, reserving one batching
/// window of slack for dispatch and execution — so a request whose
/// deadline is shorter than `max_wait` flushes (effectively) immediately
/// instead of waiting out a window it cannot survive.
fn group_due(group: &[Pending], max_wait: Duration, now: Instant) -> Instant {
    let mut due = match group.first() {
        Some(p) => p.enqueued + max_wait,
        None => return now + max_wait,
    };
    for p in group {
        if let Some(d) = p.deadline {
            let latest_dispatch = d.checked_sub(max_wait).unwrap_or(now);
            due = due.min(latest_dispatch);
        }
    }
    due
}

pub(crate) fn run(
    rx: Receiver<Pending>,
    batch_tx: Sender<Batch>,
    cfg: ServeConfig,
    ledger: Arc<Mutex<Ledger>>,
) {
    let mut groups: HashMap<BatchKey, Vec<Pending>> = HashMap::new();

    loop {
        // Sleep at most until the earliest-due forming batch must flush
        // (its max_wait window or an imminent member deadline).
        let now = Instant::now();
        let timeout = groups
            .values()
            .map(|g| group_due(g, cfg.max_wait, now).saturating_duration_since(now))
            .min()
            .unwrap_or(cfg.max_wait)
            .max(Duration::from_micros(50));

        match rx.recv_timeout(timeout) {
            Ok(p) => {
                if p.expired(Instant::now()) {
                    reject_expired(p, &ledger);
                } else {
                    let key = (p.dep.name.clone(), p.dep.version, p.req.input.dims().to_vec());
                    let group = groups.entry(key.clone()).or_default();
                    group.push(p);
                    if group.len() >= cfg.max_batch {
                        let items = groups.remove(&key).expect("group just filled");
                        flush(items, &batch_tx, &cfg, &ledger);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Flush any group that has come due — oldest member waited out
        // max_wait, or an earliest member deadline is imminent.
        let now = Instant::now();
        let due: Vec<BatchKey> = groups
            .iter()
            .filter(|(_, g)| now >= group_due(g, cfg.max_wait, now))
            .map(|(k, _)| k.clone())
            .collect();
        for key in due {
            let items = groups.remove(&key).expect("key just listed");
            flush(items, &batch_tx, &cfg, &ledger);
        }
    }

    // Shutdown drain: the submission side is gone; flush everything that
    // was admitted so no response is lost.
    for (_, items) in groups.drain() {
        flush(items, &batch_tx, &cfg, &ledger);
    }
}

fn reject_expired(p: Pending, ledger: &Arc<Mutex<Ledger>>) {
    lock_ledger(ledger).rejected_deadline += 1;
    let _ = p.resp.send(Err(ServeError::DeadlineExceeded));
}

fn flush(
    items: Vec<Pending>,
    batch_tx: &Sender<Batch>,
    cfg: &ServeConfig,
    ledger: &Arc<Mutex<Ledger>>,
) {
    let now = Instant::now();
    let (live, expired): (Vec<Pending>, Vec<Pending>) =
        items.into_iter().partition(|p| !p.expired(now));
    for p in expired {
        reject_expired(p, ledger);
    }
    if live.is_empty() {
        return;
    }
    record_spans(cfg, &live, SpanStage::BatchForm, now, None);
    let dep = Arc::clone(&live[0].dep);
    // A worker-side disconnect can only happen after the pool stopped;
    // answer the items as lost rather than panicking.
    if let Err(e) = batch_tx.send(Batch { dep, items: live }) {
        for p in e.into_inner().items {
            let _ = p.resp.send(Err(ServeError::WorkerLost));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use odq_tensor::Tensor;

    fn pending(enqueued: Instant, deadline: Option<Instant>) -> Pending {
        use odq_nn::models::{Model, ModelCfg};
        // Any deployment will do: group_due never executes it.
        let dep = Arc::new(Deployment {
            name: "m".into(),
            version: 1,
            model: Arc::new(Model::build(ModelCfg::small(odq_nn::Arch::LeNet5, 2))),
            plans: Arc::default(),
            fingerprint: 0,
            policy: None,
        });
        // The receiver is dropped: these tests never send a response.
        let (tx, _rx) = bounded(1);
        Pending {
            req: InferRequest::new("m", Tensor::from_vec(vec![1, 1, 1, 1], vec![0.0])),
            dep,
            resp: tx,
            enqueued,
            deadline,
            id: 0,
            trace: 0,
            traced: false,
        }
    }

    #[test]
    fn due_is_max_wait_without_deadlines() {
        let now = Instant::now();
        let w = Duration::from_millis(10);
        let g = vec![pending(now, None), pending(now + w / 2, None)];
        assert_eq!(group_due(&g, w, now), now + w);
    }

    #[test]
    fn tight_deadline_pulls_due_before_the_window() {
        let now = Instant::now();
        let w = Duration::from_millis(250);
        // Deadline (20 ms) far shorter than max_wait: due immediately.
        let g = vec![pending(now, Some(now + Duration::from_millis(20)))];
        assert!(group_due(&g, w, now) <= now);
    }

    #[test]
    fn loose_deadline_leaves_the_window_alone() {
        let now = Instant::now();
        let w = Duration::from_millis(2);
        let g = vec![pending(now, Some(now + Duration::from_secs(10)))];
        assert_eq!(group_due(&g, w, now), now + w);
    }

    #[test]
    fn deadline_shorter_than_max_wait_dispatches_immediately() {
        // Regression for the `checked_sub(..).unwrap_or(now)` branch of
        // `group_due`: a request whose whole deadline budget is shorter
        // than the batching window must flush (effectively) immediately —
        // through the real batcher loop, not just the due computation.
        let cfg = ServeConfig {
            max_wait: Duration::from_secs(5),
            max_batch: 8,
            ..ServeConfig::default()
        };
        let (tx, rx) = bounded::<Pending>(4);
        let (batch_tx, batch_rx) = bounded::<Batch>(4);
        let ledger = Arc::new(Mutex::new(Ledger::default()));
        let b_ledger = Arc::clone(&ledger);
        let batcher = std::thread::spawn(move || run(rx, batch_tx, cfg, b_ledger));

        let now = Instant::now();
        // Deadline (300 ms) far below max_wait (5 s): sitting out the
        // window would expire it.
        tx.send(pending(now, Some(now + Duration::from_millis(300)))).unwrap();
        let batch = batch_rx
            .recv_timeout(Duration::from_secs(2))
            .expect("deadline-driven flush must dispatch well before max_wait");
        assert!(
            now.elapsed() < Duration::from_secs(2),
            "dispatched after {:?}, not within the deadline budget",
            now.elapsed()
        );
        assert_eq!(batch.items.len(), 1);
        assert_eq!(lock_ledger(&ledger).rejected_deadline, 0, "dispatched, not expired");

        drop(tx);
        batcher.join().unwrap();
    }

    #[test]
    fn earliest_member_deadline_wins() {
        let now = Instant::now();
        let w = Duration::from_millis(5);
        let g = vec![
            pending(now, Some(now + Duration::from_secs(1))),
            pending(now, Some(now + Duration::from_millis(8))),
        ];
        assert_eq!(group_due(&g, w, now), now + Duration::from_millis(3));
    }
}
