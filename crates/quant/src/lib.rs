//! # odq-quant
//!
//! Quantization substrate for the ODQ reproduction, modeled on
//! DoReFa-Net-style uniform quantization (Zhou et al., 2016 — the scheme the
//! paper's INT16/INT8 static baselines and its own INT4 front end use):
//!
//! * [`dorefa`] — k-bit uniform quantizers. Activations are clipped to
//!   `[0, clip]` and coded unsigned; weights are scaled symmetrically and
//!   coded signed. "Fake-quantize" (quantize→dequantize) variants support
//!   quantization-aware training with a straight-through estimator.
//! * [`qtensor`] — a quantized tensor: integer codes + scale + scheme.
//! * [`bitsplit`] — two's-complement bit-plane splitting of integer codes
//!   into high-order and low-order parts (`I_HBS`/`I_LBS`, `W_HBS`/`W_LBS`
//!   in the paper's Eq. 3). The identity `code = (high << low_bits) + low`
//!   holds exactly, with `high` carrying the sign.
//! * [`qconv`] — integer convolution over quantized tensors
//!   (im2col + `i16`×`i16`→`i32/i64` GEMM) with offset-binary affine
//!   corrections, the full product and the
//!   per-bit-plane partial products of Eq. 3.
//! * [`plan`] — per-layer convolution plans ([`plan::QConvPlan`]):
//!   quantized weights, their bit planes and the predictor's per-filter
//!   constants prepacked once per weight version and cached in a
//!   [`plan::PlanCache`] keyed by a full-content fingerprint.

//! # Example
//!
//! ```
//! use odq_quant::{quantize_activation, quantize_weights, split_qtensor};
//! use odq_quant::qconv::{combine_planes, qconv2d, qconv2d_planes};
//! use odq_tensor::{ConvGeom, Tensor};
//!
//! let g = ConvGeom::new(2, 3, 4, 4, 3, 1, 1);
//! let x = Tensor::from_vec(g.input_shape(1), vec![0.5; 32]);
//! let w = Tensor::from_vec(g.weight_shape(), vec![0.25; 54]);
//!
//! // Quantize to INT4 (offset-binary weights), split into 2-bit planes,
//! // and verify the Eq. 3 decomposition reconstructs the full product.
//! let qx = quantize_activation(&x, 4, 1.0);
//! let qw = quantize_weights(&w, 4);
//! let planes = qconv2d_planes(&split_qtensor(&qx, 2), &split_qtensor(&qw, 2), &g);
//! let full = combine_planes(&planes);
//! assert_eq!(full.as_slice().len(), g.out_features());
//!
//! // The affine-aware convolution dequantizes exactly: 0.5 codes to 8/15
//! // and 0.25 is on the weight grid, so the center output (all 18 taps
//! // in bounds) is 18 · (8/15) · 0.25.
//! let y = qconv2d(&qx, &qw, &g);
//! let center = y.at(&[0, 0, 1, 1]);
//! assert!((center - 18.0 * (8.0 / 15.0) * 0.25).abs() < 1e-3);
//! ```

pub mod bitsplit;
pub mod dorefa;
pub mod plan;
pub mod predict;
pub mod qconv;
pub mod qtensor;
pub mod sqnr;

pub use bitsplit::{join_planes, split_codes, split_qtensor, BitPlanes};
pub use dorefa::{
    fake_quantize_activation, fake_quantize_weights, quantize_activation, quantize_weights,
    quantize_weights_symmetric,
};
pub use plan::{weight_fingerprint, PlanCache, PlanSpec, QConvPlan};
pub use predict::{odq_estimate_precomputed, odq_predict, odq_predict_from_hh, OdqPrediction};
pub use qtensor::{QScheme, QTensor};
