//! The ODQ sensitivity predictor's output estimate.
//!
//! The predictor sees only the high-order activation plane `a_H` and the
//! high-order weight plane `n_H` (the paper's `I_HBS`, `W_HBS`). Writing
//! the full code-domain product as (Eq. 3, with `d = low_bits`,
//! `pow = 2^d`):
//!
//! ```text
//! Σ a·n = pow²·Σ a_H n_H + pow·Σ a_H n_L + pow·Σ a_L n_H + Σ a_L n_L
//! y     = s · (Σ a·n − z_w · Σ a),   Σ a = pow·Σ a_H + Σ a_L
//! ```
//!
//! the predictor computes `HH = Σ a_H n_H` exactly (its INT2 MACs) and,
//! at near-zero hardware cost, the running sum `SaH = Σ a_H` (one extra
//! accumulator on the same operand stream). The unseen low-plane terms
//! are replaced by their expectations, using offline per-filter constants
//! (`Σ n_H`, `Σ n_L`) and the mean low-plane activation `m = (pow−1)/2`:
//!
//! ```text
//! Σ a_H n_L ≈ (SaH / valid) · Σ n_L · valid / K   (per-output mean a_H)
//! Σ a_L n_H ≈ m · Σ n_H · valid / K
//! Σ a_L n_L ≈ m · Σ n_L · valid / K
//! Σ a       ≈ pow·SaH + m·valid
//! ```
//!
//! where `valid` is the output's in-bounds tap count and `K = col_len`.
//! The paper does not spell these corrections out; without them the raw
//! `HH` term is a *biased* estimator (the dropped planes are non-negative)
//! and the threshold comparison misfires — documented in DESIGN.md as an
//! implementation refinement.

use odq_tensor::{ConvGeom, Tensor};

use crate::bitsplit::BitPlanes;
use crate::qconv::{filter_code_sums, qconv2d_codes, receptive_sums, valid_tap_counts};

/// Predictor outputs for one layer.
pub struct OdqPrediction {
    /// Raw high×high partial sums `HH`, code domain, `[N, Co, OH, OW]`.
    pub hh: Tensor<i32>,
    /// High-plane receptive sums `SaH`, `[N, OH, OW]`.
    pub sa_h: Tensor<i32>,
    /// Value-domain output estimates `p̂` (scale applied),
    /// `[N, Co, OH, OW]` — what the hardware thresholds against and emits
    /// for insensitive outputs.
    pub estimate: Tensor,
}

/// Run the predictor: INT2 MACs over the high planes plus the expectation
/// corrections described in the module docs.
///
/// * `x_high` — high-order activation plane codes `[N, Ci, H, W]`;
/// * `w_planes` — weight bit planes;
/// * `w_zero` — the weight zero point `z_w`;
/// * `scale` — `s_a · s_w`.
pub fn odq_predict(
    x_high: &Tensor<i16>,
    w_planes: &BitPlanes,
    w_zero: f32,
    scale: f32,
    g: &ConvGeom,
) -> OdqPrediction {
    let hh = qconv2d_codes(x_high, &w_planes.high, g);
    odq_predict_from_hh(hh, x_high, w_planes, w_zero, scale, g)
}

/// [`odq_predict`] when the high×high partial sums are already available
/// (e.g. from [`crate::qconv::qconv2d_planes`]) — avoids recomputing the
/// predictor GEMM in instrumented paths that need all four planes anyway.
pub fn odq_predict_from_hh(
    hh: Tensor<i32>,
    x_high: &Tensor<i16>,
    w_planes: &BitPlanes,
    w_zero: f32,
    scale: f32,
    g: &ConvGeom,
) -> OdqPrediction {
    let sa_h = receptive_sums(x_high, g);
    let valid = valid_tap_counts(g);
    let sum_nh = filter_code_sums(&w_planes.high, g.out_channels);
    let sum_nl = filter_code_sums(&w_planes.low, g.out_channels);
    let estimate = odq_estimate_precomputed(
        &hh,
        &sa_h,
        &sum_nh,
        &sum_nl,
        &valid,
        w_planes.low_bits,
        w_zero,
        scale,
        g,
    );
    OdqPrediction { hh, sa_h, estimate }
}

/// The predictor's estimate when every input is already in hand: the `HH`
/// partial sums and `SaH` receptive sums from the lowered activations, and
/// the per-filter code sums / valid-tap counts prepacked in a layer plan.
/// This is the pure arithmetic core of [`odq_predict_from_hh`]; the f32
/// operation order matches it exactly, so results are bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn odq_estimate_precomputed(
    hh: &Tensor<i32>,
    sa_h: &Tensor<i32>,
    sum_nh: &[i32],
    sum_nl: &[i32],
    valid: &[u32],
    low_bits: u8,
    w_zero: f32,
    scale: f32,
    g: &ConvGeom,
) -> Tensor {
    let pow = (1u32 << low_bits as u32) as f32;
    let mean_low = (pow - 1.0) / 2.0;
    let k = g.col_len() as f32;

    let co = g.out_channels;
    let spatial = g.out_spatial();
    let n = hh.numel() / (co * spatial);
    let mut est = Tensor::zeros(g.output_shape(n));
    {
        let e = est.as_mut_slice();
        let hhs = hh.as_slice();
        let sahs = sa_h.as_slice();
        for img in 0..n {
            for f in 0..co {
                let snh = sum_nh[f] as f32;
                let snl = sum_nl[f] as f32;
                let base = (img * co + f) * spatial;
                for sp in 0..spatial {
                    let v = valid[sp] as f32;
                    let sah = sahs[img * spatial + sp] as f32;
                    let hh_v = hhs[base + sp] as f32;
                    let mean_ah = if v > 0.0 { sah / v } else { 0.0 };
                    let frac = v / k;
                    // Each of the K weights pairs with a tap that is only
                    // `valid/K` likely to be in bounds at this output, so
                    // every expectation term carries `frac`.
                    let code_est = pow * pow * hh_v
                        + pow * mean_ah * snl * frac
                        + pow * mean_low * snh * frac
                        + mean_low * snl * frac
                        - w_zero * (pow * sah + mean_low * v);
                    e[base + sp] = scale * code_est;
                }
            }
        }
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitsplit::split_qtensor;
    use crate::dorefa::{quantize_activation, quantize_weights};
    use crate::qconv::qconv2d;

    fn pseudo(n: usize, seed: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 2654435761 + seed * 97) % 1000) as f32 / 1000.0).collect()
    }

    fn pseudo_signed(n: usize, seed: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 40503 + seed * 31) % 1000) as f32 / 500.0 - 1.0).collect()
    }

    fn setup() -> (Tensor, Tensor, ConvGeom) {
        let g = ConvGeom::new(4, 6, 10, 10, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(2), pseudo(2 * 4 * 100, 3));
        let w = Tensor::from_vec(g.weight_shape(), pseudo_signed(6 * 4 * 9, 4));
        (x, w, g)
    }

    #[test]
    fn estimate_is_nearly_unbiased() {
        let (x, w, g) = setup();
        let qx = quantize_activation(&x, 4, 1.0);
        let qw = quantize_weights(&w, 4);
        let full = qconv2d(&qx, &qw, &g);
        let xp = split_qtensor(&qx, 2);
        let wp = split_qtensor(&qw, 2);
        let pred = odq_predict(&xp.high, &wp, qw.zero, qx.scale * qw.scale, &g);

        let mut bias = 0.0f64;
        for (e, f) in pred.estimate.as_slice().iter().zip(full.as_slice()) {
            bias += (*e - *f) as f64;
        }
        bias /= full.numel() as f64;
        let spread = odq_tensor::stats::std_dev(full.as_slice()) as f64;
        assert!(
            bias.abs() < 0.15 * spread,
            "estimate bias {bias:.4} too large vs output spread {spread:.4}"
        );
    }

    #[test]
    fn estimate_correlates_with_full_output() {
        let (x, w, g) = setup();
        let qx = quantize_activation(&x, 4, 1.0);
        let qw = quantize_weights(&w, 4);
        let full = qconv2d(&qx, &qw, &g);
        let xp = split_qtensor(&qx, 2);
        let wp = split_qtensor(&qw, 2);
        let pred = odq_predict(&xp.high, &wp, qw.zero, qx.scale * qw.scale, &g);

        // Pearson correlation between estimate and full output.
        let e = pred.estimate.as_slice();
        let f = full.as_slice();
        let n = e.len() as f64;
        let me = e.iter().map(|&v| v as f64).sum::<f64>() / n;
        let mf = f.iter().map(|&v| v as f64).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut ve = 0.0;
        let mut vf = 0.0;
        for (&a, &b) in e.iter().zip(f) {
            cov += (a as f64 - me) * (b as f64 - mf);
            ve += (a as f64 - me).powi(2);
            vf += (b as f64 - mf).powi(2);
        }
        let r = cov / (ve.sqrt() * vf.sqrt()).max(1e-12);
        assert!(r > 0.9, "predictor estimate should track the output: r = {r:.3}");
    }

    #[test]
    fn prediction_masks_agree_with_truth() {
        let (x, w, g) = setup();
        let qx = quantize_activation(&x, 4, 1.0);
        let qw = quantize_weights(&w, 4);
        let full = qconv2d(&qx, &qw, &g);
        let xp = split_qtensor(&qx, 2);
        let wp = split_qtensor(&qw, 2);
        let pred = odq_predict(&xp.high, &wp, qw.zero, qx.scale * qw.scale, &g);

        // Threshold at the 70th percentile of |full|.
        let abs: Vec<f32> = full.as_slice().iter().map(|v| v.abs()).collect();
        let thr = odq_tensor::stats::quantile(&abs, 0.7);
        let (mut agree, mut hit, mut truth_count) = (0usize, 0usize, 0usize);
        for (e, f) in pred.estimate.as_slice().iter().zip(full.as_slice()) {
            let p = e.abs() >= thr;
            let t = f.abs() >= thr;
            agree += (p == t) as usize;
            if t {
                truth_count += 1;
                hit += p as usize;
            }
        }
        let n = full.numel();
        let agree_frac = agree as f64 / n as f64;
        let recall = hit as f64 / truth_count.max(1) as f64;
        assert!(agree_frac > 0.85, "agreement {agree_frac:.3}");
        assert!(recall > 0.7, "sensitive recall {recall:.3}");
    }

    /// All-zero filter bank: `max|w| == 0` degenerates the weight scale to
    /// 1.0 and every code to the (rounded) zero point. The predictor must
    /// produce finite estimates — the per-filter code sums are constants,
    /// not zeros, and nothing divides by them.
    #[test]
    fn all_zero_filter_predicts_finite_estimates() {
        let g = ConvGeom::new(3, 2, 6, 6, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(1), pseudo(3 * 36, 5));
        let w = Tensor::<f32>::zeros(g.weight_shape());
        let qx = quantize_activation(&x, 4, 1.0);
        let qw = quantize_weights(&w, 4);
        let xp = split_qtensor(&qx, 2);
        let wp = split_qtensor(&qw, 2);
        let pred = odq_predict(&xp.high, &wp, qw.zero, qx.scale * qw.scale, &g);
        assert!(pred.estimate.as_slice().iter().all(|v| v.is_finite()));
        // Dequantized all-zero weights are a constant (code − zero)·scale
        // per tap, so the exact code-domain output is that constant times
        // Σa — and the estimate must track the same near-zero magnitude.
        let full = qconv2d(&qx, &qw, &g);
        let worst = pred
            .estimate
            .as_slice()
            .iter()
            .zip(full.as_slice())
            .map(|(e, f)| (e - f).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 1.0, "estimate should stay near the exact output, worst gap {worst}");
    }

    /// Saturating INT2: inputs far above the clip all quantize to the top
    /// code (3 = 0b11), so with a 1-bit split the high plane is all-ones
    /// and `HH` at a fully-valid output equals the filter's high-plane
    /// code sum exactly.
    #[test]
    fn saturating_int2_high_plane_sums_are_exact() {
        let g = ConvGeom::new(2, 3, 4, 4, 3, 1, 0);
        let x = Tensor::from_vec(g.input_shape(1), vec![7.5f32; 2 * 16]);
        let w = Tensor::from_vec(g.weight_shape(), pseudo_signed(3 * 2 * 9, 9));
        let qx = quantize_activation(&x, 2, 1.0);
        assert!(qx.codes.as_slice().iter().all(|&c| c == 3), "all inputs must saturate");
        let qw = quantize_weights(&w, 2);
        let xp = split_qtensor(&qx, 1);
        let wp = split_qtensor(&qw, 1);
        let pred = odq_predict(&xp.high, &wp, qw.zero, qx.scale * qw.scale, &g);
        let snh = filter_code_sums(&wp.high, g.out_channels);
        let spatial = g.out_spatial();
        for (f, &expected) in snh.iter().enumerate() {
            for sp in 0..spatial {
                assert_eq!(
                    pred.hh.as_slice()[f * spatial + sp],
                    expected,
                    "filter {f} output {sp}: HH must equal Σ n_H when a_H ≡ 1"
                );
            }
        }
        assert!(pred.estimate.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Single-pixel feature map with padding: a 1×1 input under a 1×1
    /// kernel and padding 1 yields a 3×3 output where all eight border
    /// outputs see *zero* in-bounds taps. Those outputs must take the
    /// `valid == 0` guard (mean a_H is 0, not 0/0) and come out exactly
    /// 0.0; only the centre carries signal.
    #[test]
    fn single_pixel_feature_map_padding_only_outputs_are_zero() {
        let g = ConvGeom::new(2, 2, 1, 1, 1, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (3, 3));
        let x = Tensor::from_vec(g.input_shape(1), vec![0.9f32, 0.4]);
        let w = Tensor::from_vec(g.weight_shape(), vec![0.7f32, -0.3, 0.5, 0.2]);
        let qx = quantize_activation(&x, 4, 1.0);
        let qw = quantize_weights(&w, 4);
        let xp = split_qtensor(&qx, 2);
        let wp = split_qtensor(&qw, 2);
        let pred = odq_predict(&xp.high, &wp, qw.zero, qx.scale * qw.scale, &g);
        let est = pred.estimate.as_slice();
        let spatial = g.out_spatial();
        for f in 0..g.out_channels {
            for sp in 0..spatial {
                let v = est[f * spatial + sp];
                if sp == 4 {
                    assert!(v.is_finite(), "centre estimate must be finite, got {v}");
                } else {
                    assert_eq!(v, 0.0, "filter {f} border output {sp} sees only padding");
                }
            }
        }
    }

    #[test]
    fn shapes() {
        let (x, w, g) = setup();
        let qx = quantize_activation(&x, 4, 1.0);
        let qw = quantize_weights(&w, 4);
        let xp = split_qtensor(&qx, 2);
        let wp = split_qtensor(&qw, 2);
        let pred = odq_predict(&xp.high, &wp, qw.zero, qx.scale * qw.scale, &g);
        assert_eq!(pred.estimate.dims(), g.output_shape(2).0.as_slice());
        assert_eq!(pred.hh.dims(), g.output_shape(2).0.as_slice());
        assert_eq!(pred.sa_h.dims(), &[2, g.out_h(), g.out_w()]);
    }
}
