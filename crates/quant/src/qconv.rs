//! Integer convolution over quantized tensors.
//!
//! This is the arithmetic every accelerator path in the paper reduces to:
//! im2col lowering followed by integer GEMM with `i32` accumulation, plus
//! the affine correction terms required by offset-binary weight coding.
//!
//! With activations `value_a = s_a · a` (zero point 0) and weights
//! `value_w = s_w · (n − z_w)`, a convolution output is
//!
//! ```text
//! y = s_a · s_w · ( Σ a·n  −  z_w · Σ a )
//! ```
//!
//! `Σ a·n` is the integer code convolution ([`qconv2d_codes`]); `Σ a` is
//! the *receptive sum* of the activation codes ([`receptive_sums`]) — in
//! hardware a single extra accumulator fed by the same operand stream.

use odq_tensor::gemm::{gemm_i16_i32, gemm_i16_i64};
use odq_tensor::workspace::WorkspacePool;
use odq_tensor::{ConvGeom, Tensor};
use rayon::prelude::*;

use crate::bitsplit::BitPlanes;
use crate::qtensor::QTensor;

/// Integer convolution returning raw `i32` accumulators (`Σ a·n`).
///
/// `x`: quantized activations `[N, Ci, H, W]`; `w`: quantized weights
/// `[Co, Ci, K, K]`. Output `[N, Co, OH, OW]` of code-domain products.
pub fn qconv2d_codes(x: &Tensor<i16>, w: &Tensor<i16>, g: &ConvGeom) -> Tensor<i32> {
    qconv2d_codes_with(x, w, g, &WorkspacePool::new())
}

/// [`qconv2d_codes`] drawing im2col scratch from a caller-owned pool,
/// batch-parallel over images.
pub fn qconv2d_codes_with(
    x: &Tensor<i16>,
    w: &Tensor<i16>,
    g: &ConvGeom,
    pool: &WorkspacePool,
) -> Tensor<i32> {
    let n = x.dims()[0];
    assert_eq!(x.dims(), g.input_shape(n).0.as_slice(), "input shape mismatch");
    assert_eq!(w.dims(), g.weight_shape().0.as_slice(), "weight shape mismatch");

    let out_spatial = g.out_spatial();
    let per_img = g.out_channels * out_spatial;
    let mut y = Tensor::<i32>::zeros(g.output_shape(n));
    y.as_mut_slice().par_chunks_mut(per_img.max(1)).enumerate().for_each(|(i, yi)| {
        pool.with(|wk| {
            let col = wk.lower_i16(x.outer(i), g);
            gemm_i16_i32(w.as_slice(), col, yi, g.out_channels, g.col_len(), out_spatial);
        });
    });
    y
}

/// Integer convolution with `i64` accumulation (wide static baselines:
/// 15-bit products over deep reductions overflow `i32`).
pub fn qconv2d_codes_wide(x: &Tensor<i16>, w: &Tensor<i16>, g: &ConvGeom) -> Tensor<i64> {
    qconv2d_codes_wide_with(x, w, g, &WorkspacePool::new())
}

/// [`qconv2d_codes_wide`] drawing im2col scratch from a caller-owned
/// pool, batch-parallel over images.
pub fn qconv2d_codes_wide_with(
    x: &Tensor<i16>,
    w: &Tensor<i16>,
    g: &ConvGeom,
    pool: &WorkspacePool,
) -> Tensor<i64> {
    let n = x.dims()[0];
    assert_eq!(x.dims(), g.input_shape(n).0.as_slice(), "input shape mismatch");
    assert_eq!(w.dims(), g.weight_shape().0.as_slice(), "weight shape mismatch");

    let out_spatial = g.out_spatial();
    let per_img = g.out_channels * out_spatial;
    let mut y = Tensor::<i64>::zeros(g.output_shape(n));
    y.as_mut_slice().par_chunks_mut(per_img.max(1)).enumerate().for_each(|(i, yi)| {
        pool.with(|wk| {
            let col = wk.lower_i16(x.outer(i), g);
            gemm_i16_i64(w.as_slice(), col, yi, g.out_channels, g.col_len(), out_spatial);
        });
    });
    y
}

/// Receptive sums: `Σ a` over each output position's receptive field,
/// `[N, OH, OW]` (identical for every output channel, which all read the
/// same window). Padded taps contribute 0.
pub fn receptive_sums(x: &Tensor<i16>, g: &ConvGeom) -> Tensor<i32> {
    receptive_sums_with(x, g, &WorkspacePool::new())
}

/// [`receptive_sums`] drawing im2col scratch from a caller-owned pool,
/// batch-parallel over images.
pub fn receptive_sums_with(x: &Tensor<i16>, g: &ConvGeom, pool: &WorkspacePool) -> Tensor<i32> {
    let n = x.dims()[0];
    assert_eq!(x.dims(), g.input_shape(n).0.as_slice(), "input shape mismatch");
    let out_spatial = g.out_spatial();
    let col_len = g.col_len();
    let mut y = Tensor::<i32>::zeros([n, g.out_h(), g.out_w()]);
    y.as_mut_slice().par_chunks_mut(out_spatial.max(1)).enumerate().for_each(|(i, yi)| {
        pool.with(|wk| {
            let col = wk.lower_i16(x.outer(i), g);
            accumulate_column_rows(col, yi, col_len, out_spatial);
        });
    });
    y
}

/// Row-wise accumulation of a `[col_len, out_spatial]` column matrix into
/// per-output sums — the same reduction order as [`receptive_sums`] always
/// used, so results stay bit-identical (exact in `i32` regardless).
pub fn accumulate_column_rows(col: &[i16], acc: &mut [i32], col_len: usize, out_spatial: usize) {
    for row in 0..col_len {
        let r = &col[row * out_spatial..(row + 1) * out_spatial];
        for (a, &v) in acc.iter_mut().zip(r) {
            *a += v as i32;
        }
    }
}

/// Fused integer convolution + receptive sums: one im2col per image feeds
/// both the GEMM and the `Σ a` accumulator (the accelerator's shared
/// operand stream). Returns `(Σ a·n, Σ a)`.
pub fn qconv2d_codes_with_sums(
    x: &Tensor<i16>,
    w: &Tensor<i16>,
    g: &ConvGeom,
    pool: &WorkspacePool,
) -> (Tensor<i32>, Tensor<i32>) {
    let n = x.dims()[0];
    assert_eq!(x.dims(), g.input_shape(n).0.as_slice(), "input shape mismatch");
    assert_eq!(w.dims(), g.weight_shape().0.as_slice(), "weight shape mismatch");

    let out_spatial = g.out_spatial();
    let per_img = g.out_channels * out_spatial;
    let col_len = g.col_len();
    let mut y = Tensor::<i32>::zeros(g.output_shape(n));
    let mut sa = Tensor::<i32>::zeros([n, g.out_h(), g.out_w()]);

    let per_image: Vec<Vec<i32>> = (0..n)
        .into_par_iter()
        .map(|i| {
            pool.with(|wk| {
                let col = wk.lower_i16(x.outer(i), g);
                let mut buf = vec![0i32; per_img + out_spatial];
                let (yi, si) = buf.split_at_mut(per_img);
                gemm_i16_i32(w.as_slice(), col, yi, g.out_channels, col_len, out_spatial);
                accumulate_column_rows(col, si, col_len, out_spatial);
                buf
            })
        })
        .collect();
    for (i, buf) in per_image.iter().enumerate() {
        y.as_mut_slice()[i * per_img..(i + 1) * per_img].copy_from_slice(&buf[..per_img]);
        sa.as_mut_slice()[i * out_spatial..(i + 1) * out_spatial].copy_from_slice(&buf[per_img..]);
    }
    (y, sa)
}

/// Number of in-bounds (non-padding) taps in each output position's
/// receptive field, `[OH * OW]`. Interior outputs see `col_len`; border
/// outputs see fewer when padding > 0.
pub fn valid_tap_counts(g: &ConvGeom) -> Vec<u32> {
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut out = vec![0u32; oh * ow];
    for oy in 0..oh {
        for ox in 0..ow {
            let mut count = 0u32;
            for ki in 0..g.kernel {
                let iy = (oy * g.stride + ki) as isize - g.padding as isize;
                if iy < 0 || iy >= g.in_h as isize {
                    continue;
                }
                for kj in 0..g.kernel {
                    let ix = (ox * g.stride + kj) as isize - g.padding as isize;
                    if ix < 0 || ix >= g.in_w as isize {
                        continue;
                    }
                    count += 1;
                }
            }
            out[oy * ow + ox] = count * g.in_channels as u32;
        }
    }
    out
}

/// Per-filter sums of weight codes, `[Co]`.
pub fn filter_code_sums(w: &Tensor<i16>, out_channels: usize) -> Vec<i32> {
    let total = w.numel();
    assert_eq!(total % out_channels, 0, "weight size not divisible by filters");
    let col_len = total / out_channels;
    let ws = w.as_slice();
    (0..out_channels)
        .map(|f| ws[f * col_len..(f + 1) * col_len].iter().map(|&v| v as i32).sum())
        .collect()
}

/// Quantized convolution returning dequantized `f32` outputs, handling the
/// offset-binary weight zero point:
/// `y = s_a·s_w·(Σ a·n − z_w·Σ a)`.
///
/// Accumulates in `i32` for narrow schemes and transparently switches to
/// `i64` when `a_bits + w_bits > 16` (a conservative bound: products of
/// `b` total bits summed over up to 2^14 taps stay within i32 only while
/// `b + 14 < 31`).
///
/// # Panics
/// Panics if the activation tensor has a nonzero zero point (zero padding
/// is only value-correct for `z_a = 0`).
pub fn qconv2d(x: &QTensor, w: &QTensor, g: &ConvGeom) -> Tensor {
    qconv2d_with(x, w, g, &WorkspacePool::new())
}

/// [`qconv2d`] drawing im2col scratch from a caller-owned pool. On the
/// narrow (`i32`) path with an offset-binary zero point, the products and
/// receptive sums share a single lowering per image.
pub fn qconv2d_with(x: &QTensor, w: &QTensor, g: &ConvGeom, pool: &WorkspacePool) -> Tensor {
    assert_eq!(x.zero, 0.0, "activation zero point must be 0 (zero padding)");
    let s = x.scale * w.scale;
    let zw = w.zero;
    let n = x.codes.dims()[0];
    let spatial = g.out_spatial();
    let co = g.out_channels;

    let mut out = Tensor::zeros(g.output_shape(n));

    if x.scheme.bits as u32 + w.scheme.bits as u32 > 16 {
        let sa = if zw != 0.0 { Some(receptive_sums_with(&x.codes, g, pool)) } else { None };
        let p = qconv2d_codes_wide_with(&x.codes, &w.codes, g, pool);
        fill_affine(&mut out, p.as_slice(), sa.as_ref(), s, zw, n, co, spatial);
    } else if zw != 0.0 {
        let (p, sa) = qconv2d_codes_with_sums(&x.codes, &w.codes, g, pool);
        fill_affine(&mut out, p.as_slice(), Some(&sa), s, zw, n, co, spatial);
    } else {
        let p = qconv2d_codes_with(&x.codes, &w.codes, g, pool);
        fill_affine(&mut out, p.as_slice(), None, s, zw, n, co, spatial);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn fill_affine<T: Copy + Into<i64>>(
    out: &mut Tensor,
    p: &[T],
    sa: Option<&Tensor<i32>>,
    s: f32,
    zw: f32,
    n: usize,
    co: usize,
    spatial: usize,
) {
    let o = out.as_mut_slice();
    match sa {
        Some(sa) => {
            let sas = sa.as_slice();
            for img in 0..n {
                for f in 0..co {
                    let base = (img * co + f) * spatial;
                    for sp in 0..spatial {
                        let pv: i64 = p[base + sp].into();
                        let a_sum = sas[img * spatial + sp] as f32;
                        o[base + sp] = s * (pv as f32 - zw * a_sum);
                    }
                }
            }
        }
        None => {
            for (ov, &pv) in o.iter_mut().zip(p) {
                let pv: i64 = pv.into();
                *ov = s * pv as f32;
            }
        }
    }
}

/// The four per-bit-plane partial products of Eq. 3, *unshifted*.
///
/// With activation planes `(a_H, a_L)` and weight planes `(n_H, n_L)`:
/// `hh = Σ a_H·n_H`, `hl = Σ a_H·n_L`, `lh = Σ a_L·n_H`, `ll = Σ a_L·n_L`.
/// [`combine_planes`] applies the shifts and sums to recover `Σ a·n`.
#[derive(Clone, Debug)]
pub struct PlaneProducts {
    /// High×high partial sums (the ODQ predictor's term).
    pub hh: Tensor<i32>,
    /// High(activation)×low(weight) partial sums.
    pub hl: Tensor<i32>,
    /// Low(activation)×high(weight) partial sums.
    pub lh: Tensor<i32>,
    /// Low×low partial sums.
    pub ll: Tensor<i32>,
    /// Bit width of the low-order planes (`N_LBS` in Eq. 3).
    pub low_bits: u8,
}

impl PlaneProducts {
    /// The predictor's raw term in code domain: `hh << 2·low_bits`.
    pub fn predictor_codes(&self) -> Tensor<i32> {
        let shift = 2 * self.low_bits;
        self.hh.map(|v| v << shift)
    }

    /// The executor's remaining contribution in code domain:
    /// `(hl + lh) << low_bits + ll`.
    pub fn executor_codes(&self) -> Tensor<i32> {
        let shift = self.low_bits;
        let mut out = Tensor::<i32>::zeros(self.hh.shape().clone());
        let o = out.as_mut_slice();
        for (((o, &hl), &lh), &ll) in
            o.iter_mut().zip(self.hl.as_slice()).zip(self.lh.as_slice()).zip(self.ll.as_slice())
        {
            *o = ((hl + lh) << shift) + ll;
        }
        out
    }
}

/// Compute all four Eq. 3 partial products for a batch.
///
/// `x_planes`/`w_planes` are the bit planes of the activation and weight
/// codes; their `low_bits` must agree. Each activation plane is lowered
/// (im2col) once per image and reused for both of its GEMMs.
pub fn qconv2d_planes(x_planes: &BitPlanes, w_planes: &BitPlanes, g: &ConvGeom) -> PlaneProducts {
    assert_eq!(x_planes.low_bits, w_planes.low_bits, "low_bits mismatch between planes");
    let pool = WorkspacePool::new();
    let n = x_planes.high.dims()[0];
    let out_spatial = g.out_spatial();
    let per_img = g.out_channels * out_spatial;
    let (m, k) = (g.out_channels, g.col_len());

    let mut hh = Tensor::<i32>::zeros(g.output_shape(n));
    let mut hl = Tensor::<i32>::zeros(g.output_shape(n));
    let mut lh = Tensor::<i32>::zeros(g.output_shape(n));
    let mut ll = Tensor::<i32>::zeros(g.output_shape(n));
    let per_image: Vec<Vec<i32>> = (0..n)
        .into_par_iter()
        .map(|i| {
            pool.with(|wk| {
                let wh = w_planes.high.as_slice();
                let wl = w_planes.low.as_slice();
                let mut buf = vec![0i32; 4 * per_img];
                {
                    let col_h = wk.lower_i16(x_planes.high.outer(i), g);
                    let (b_hh, rest) = buf.split_at_mut(per_img);
                    let (b_hl, _) = rest.split_at_mut(per_img);
                    gemm_i16_i32(wh, col_h, b_hh, m, k, out_spatial);
                    gemm_i16_i32(wl, col_h, b_hl, m, k, out_spatial);
                }
                {
                    let col_l = wk.lower_i16(x_planes.low.outer(i), g);
                    let (_, rest) = buf.split_at_mut(2 * per_img);
                    let (b_lh, b_ll) = rest.split_at_mut(per_img);
                    gemm_i16_i32(wh, col_l, b_lh, m, k, out_spatial);
                    gemm_i16_i32(wl, col_l, b_ll, m, k, out_spatial);
                }
                buf
            })
        })
        .collect();
    for (i, buf) in per_image.iter().enumerate() {
        let r = i * per_img..(i + 1) * per_img;
        hh.as_mut_slice()[r.clone()].copy_from_slice(&buf[..per_img]);
        hl.as_mut_slice()[r.clone()].copy_from_slice(&buf[per_img..2 * per_img]);
        lh.as_mut_slice()[r.clone()].copy_from_slice(&buf[2 * per_img..3 * per_img]);
        ll.as_mut_slice()[r].copy_from_slice(&buf[3 * per_img..]);
    }
    PlaneProducts { hh, hl, lh, ll, low_bits: x_planes.low_bits }
}

/// Everything the ODQ predictor and executor need from one pass over the
/// lowered activations: the four Eq. 3 plane products plus the receptive
/// sums of the full codes (`Σ a`) and of the high plane (`Σ a_H`).
pub struct OdqLoweredProducts {
    /// The four unshifted Eq. 3 partial products.
    pub planes: PlaneProducts,
    /// `Σ a` per output position, `[N, OH, OW]` (offset-binary correction).
    pub sa: Tensor<i32>,
    /// `Σ a_H` per output position, `[N, OH, OW]` (predictor expectation).
    pub sa_h: Tensor<i32>,
}

/// Fused single-lowering ODQ kernel: lower each image's codes **once**,
/// derive the high/low activation planes in the column domain, and run the
/// four plane GEMMs plus both receptive-sum reductions from that one
/// column matrix — the accelerator's shared operand stream (Fig. 12).
///
/// Bit-identical to the unfused pipeline
/// (`split_qtensor` → [`qconv2d_planes`] + [`receptive_sums`] × 2):
/// zero-padded taps split to `(0, 0)`, reduction order per output element
/// is unchanged, and all accumulation is exact `i32`.
pub fn qconv2d_planes_fused(
    x_codes: &Tensor<i16>,
    w_planes: &BitPlanes,
    g: &ConvGeom,
    pool: &WorkspacePool,
) -> OdqLoweredProducts {
    let n = x_codes.dims()[0];
    assert_eq!(x_codes.dims(), g.input_shape(n).0.as_slice(), "input shape mismatch");
    let low_bits = w_planes.low_bits;
    let out_spatial = g.out_spatial();
    let per_img = g.out_channels * out_spatial;
    let (m, k) = (g.out_channels, g.col_len());

    let mut hh = Tensor::<i32>::zeros(g.output_shape(n));
    let mut hl = Tensor::<i32>::zeros(g.output_shape(n));
    let mut lh = Tensor::<i32>::zeros(g.output_shape(n));
    let mut ll = Tensor::<i32>::zeros(g.output_shape(n));
    let mut sa = Tensor::<i32>::zeros([n, g.out_h(), g.out_w()]);
    let mut sa_h = Tensor::<i32>::zeros([n, g.out_h(), g.out_w()]);

    let per_image: Vec<Vec<i32>> = (0..n)
        .into_par_iter()
        .map(|i| {
            pool.with(|wk| {
                let (col, col_h, col_l) = wk.lower_i16_split(x_codes.outer(i), g, low_bits);
                let wh = w_planes.high.as_slice();
                let wl = w_planes.low.as_slice();
                let mut buf = vec![0i32; 4 * per_img + 2 * out_spatial];
                let (b_hh, rest) = buf.split_at_mut(per_img);
                let (b_hl, rest) = rest.split_at_mut(per_img);
                let (b_lh, rest) = rest.split_at_mut(per_img);
                let (b_ll, rest) = rest.split_at_mut(per_img);
                let (b_sa, b_sah) = rest.split_at_mut(out_spatial);
                gemm_i16_i32(wh, col_h, b_hh, m, k, out_spatial);
                gemm_i16_i32(wl, col_h, b_hl, m, k, out_spatial);
                gemm_i16_i32(wh, col_l, b_lh, m, k, out_spatial);
                gemm_i16_i32(wl, col_l, b_ll, m, k, out_spatial);
                accumulate_column_rows(col, b_sa, k, out_spatial);
                accumulate_column_rows(col_h, b_sah, k, out_spatial);
                buf
            })
        })
        .collect();
    for (i, buf) in per_image.iter().enumerate() {
        let r = i * per_img..(i + 1) * per_img;
        hh.as_mut_slice()[r.clone()].copy_from_slice(&buf[..per_img]);
        hl.as_mut_slice()[r.clone()].copy_from_slice(&buf[per_img..2 * per_img]);
        lh.as_mut_slice()[r.clone()].copy_from_slice(&buf[2 * per_img..3 * per_img]);
        ll.as_mut_slice()[r].copy_from_slice(&buf[3 * per_img..4 * per_img]);
        let s = i * out_spatial..(i + 1) * out_spatial;
        sa.as_mut_slice()[s.clone()].copy_from_slice(&buf[4 * per_img..4 * per_img + out_spatial]);
        sa_h.as_mut_slice()[s].copy_from_slice(&buf[4 * per_img + out_spatial..]);
    }
    OdqLoweredProducts { planes: PlaneProducts { hh, hl, lh, ll, low_bits }, sa, sa_h }
}

/// Recombine the plane products into full code-domain products
/// (Eq. 3): `(hh << 2N) + ((hl + lh) << N) + ll = Σ a·n`.
pub fn combine_planes(p: &PlaneProducts) -> Tensor<i32> {
    let pred = p.predictor_codes();
    let exec = p.executor_codes();
    let mut out = pred;
    for (a, b) in out.as_mut_slice().iter_mut().zip(exec.as_slice()) {
        *a += b;
    }
    out
}

/// Requantize codes to a coarser grid that shares the same scale and zero
/// point: `c' = round(c / step) · step`, where
/// `step = (2^hi_bits − 1) / (2^lo_bits − 1)` (integer for the paper's
/// 8→4 and 4→2 pairs: 17 and 5).
///
/// This is DRQ's "low-precision" representation: the coarse levels embed
/// exactly into the fine grid, so mixed-precision sums need no rescaling.
pub fn requantize_codes(codes: &Tensor<i16>, step: i16) -> Tensor<i16> {
    assert!(step > 0, "step must be positive");
    codes.map(|c| {
        let q = (c as f32 / step as f32).round() as i16;
        q * step
    })
}

/// The requantization step between two bit widths
/// (`(2^hi − 1)/(2^lo − 1)`), when integral.
///
/// # Panics
/// Panics when the step is not an integer (the paper's pairs 8→4 and 4→2
/// both are).
pub fn requant_step(hi_bits: u8, lo_bits: u8) -> i16 {
    let hi = (1i32 << hi_bits) - 1;
    let lo = (1i32 << lo_bits) - 1;
    assert_eq!(hi % lo, 0, "no integral requantization step for {hi_bits}->{lo_bits}");
    (hi / lo) as i16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitsplit::split_qtensor;
    use crate::dorefa::{quantize_activation, quantize_weights};
    use odq_tensor::conv::conv2d;

    fn pseudo(n: usize, seed: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 2654435761 + seed * 97) % 1000) as f32 / 1000.0).collect()
    }

    fn pseudo_signed(n: usize, seed: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 40503 + seed * 31) % 1000) as f32 / 500.0 - 1.0).collect()
    }

    #[test]
    fn qconv_matches_dequantized_float_conv() {
        let g = ConvGeom::new(3, 4, 6, 6, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(2), pseudo(2 * 3 * 36, 1));
        let w = Tensor::from_vec(g.weight_shape(), pseudo_signed(4 * 3 * 9, 2));

        let qx = quantize_activation(&x, 8, 1.0);
        let qw = quantize_weights(&w, 8);
        let yq = qconv2d(&qx, &qw, &g);

        // The integer path must match the float conv over *dequantized*
        // operands (same sum, different order).
        let yf = conv2d(&qx.dequantize(), &qw.dequantize(), None, &g);
        assert!(yq.max_abs_diff(&yf) < 1e-3, "diff {}", yq.max_abs_diff(&yf));

        // And at 8 bits it approximates the true float conv well.
        let ytrue = conv2d(&x, &w, None, &g);
        assert!(yq.mean_abs_diff(&ytrue) < 0.05);
    }

    #[test]
    fn qconv_handles_padding_with_offset_weights() {
        // Zero-padded taps must contribute exactly zero even though the
        // offset grid has no zero weight level.
        let g = ConvGeom::new(1, 1, 3, 3, 3, 1, 1);
        let x = Tensor::full(g.input_shape(1), 1.0f32);
        let w = Tensor::full(g.weight_shape(), 0.5f32);
        let qx = quantize_activation(&x, 4, 1.0);
        let qw = quantize_weights(&w, 4);
        let y = qconv2d(&qx, &qw, &g);
        // Center output sees 9 taps, corner outputs 4.
        let center = y.at(&[0, 0, 1, 1]);
        let corner = y.at(&[0, 0, 0, 0]);
        assert!((center / corner - 9.0 / 4.0).abs() < 0.05, "{center} vs {corner}");
    }

    #[test]
    fn receptive_sums_counts_window() {
        let g = ConvGeom::new(1, 1, 3, 3, 2, 1, 0);
        let x = Tensor::from_vec(g.input_shape(1), (1..=9).map(|v| v as i16).collect::<Vec<_>>());
        let s = receptive_sums(&x, &g);
        // windows: (1+2+4+5, 2+3+5+6, 4+5+7+8, 5+6+8+9)
        assert_eq!(s.as_slice(), &[12, 16, 24, 28]);
    }

    #[test]
    fn valid_tap_counts_border_vs_interior() {
        let g = ConvGeom::new(2, 1, 4, 4, 3, 1, 1);
        let v = valid_tap_counts(&g);
        assert_eq!(v.len(), 16);
        // corner: 2x2 spatial taps x 2 channels = 8; interior: 9x2 = 18.
        assert_eq!(v[0], 8);
        assert_eq!(v[5], 18);
        // no padding: all equal col_len.
        let g2 = ConvGeom::new(3, 1, 4, 4, 2, 1, 0);
        assert!(valid_tap_counts(&g2).iter().all(|&c| c as usize == g2.col_len()));
    }

    #[test]
    fn filter_sums() {
        let w = Tensor::from_vec([2, 1, 1, 3], vec![1i16, 2, 3, 10, 20, 30]);
        assert_eq!(filter_code_sums(&w, 2), vec![6, 60]);
    }

    #[test]
    fn plane_decomposition_reconstructs_full_product() {
        let g = ConvGeom::new(2, 3, 5, 5, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(1), pseudo(2 * 25, 7));
        let w = Tensor::from_vec(g.weight_shape(), pseudo_signed(3 * 2 * 9, 8));

        let qx = quantize_activation(&x, 4, 1.0);
        let qw = quantize_weights(&w, 4);
        let full = qconv2d_codes(&qx.codes, &qw.codes, &g);

        let xp = split_qtensor(&qx, 2);
        let wp = split_qtensor(&qw, 2);
        let planes = qconv2d_planes(&xp, &wp, &g);
        let recombined = combine_planes(&planes);

        assert_eq!(full.as_slice(), recombined.as_slice(), "Eq. 3 must be exact");
    }

    #[test]
    fn wide_qconv_matches_narrow_on_shared_range() {
        let g = ConvGeom::new(2, 3, 5, 5, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(1), pseudo(2 * 25, 31));
        let w = Tensor::from_vec(g.weight_shape(), pseudo_signed(3 * 2 * 9, 32));
        let qx = quantize_activation(&x, 8, 1.0);
        let qw = quantize_weights(&w, 8);
        let narrow = qconv2d_codes(&qx.codes, &qw.codes, &g);
        let wide = qconv2d_codes_wide(&qx.codes, &qw.codes, &g);
        for (a, b) in narrow.as_slice().iter().zip(wide.as_slice()) {
            assert_eq!(*a as i64, *b);
        }
    }

    #[test]
    fn int15_qconv_does_not_overflow() {
        // Deep reduction with near-max wide codes must use the i64 path.
        let g = ConvGeom::new(64, 2, 4, 4, 3, 1, 1);
        let x = Tensor::full(g.input_shape(1), 1.0f32);
        let w = Tensor::full(g.weight_shape(), 1.0f32);
        let qx = quantize_activation(&x, 15, 1.0);
        let qw = quantize_weights(&w, 15);
        let y = qconv2d(&qx, &qw, &g);
        // All values 1.0: interior outputs sum 64*9 products of ~1.0.
        let max = y.max_abs();
        assert!((max - 576.0).abs() < 2.0, "got {max}");
        assert!(y.as_slice().iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn requantize_grid_embedding() {
        assert_eq!(requant_step(8, 4), 17);
        assert_eq!(requant_step(4, 2), 5);
        let codes = Tensor::from_vec([6], vec![0i16, 3, 7, 8, 14, 15]);
        let rq = requantize_codes(&codes, 5);
        assert_eq!(rq.as_slice(), &[0, 5, 5, 10, 15, 15]);
        // idempotent
        let rq2 = requantize_codes(&rq, 5);
        assert_eq!(rq.as_slice(), rq2.as_slice());
    }

    #[test]
    fn qconv_codes_shapes() {
        let g = ConvGeom::new(2, 5, 6, 4, 3, 2, 1);
        let x = Tensor::<i16>::zeros(g.input_shape(3));
        let w = Tensor::<i16>::zeros(g.weight_shape());
        let y = qconv2d_codes(&x, &w, &g);
        assert_eq!(y.dims(), g.output_shape(3).0.as_slice());
        assert!(y.as_slice().iter().all(|&v| v == 0));
    }
}
