//! Quantized tensors: integer codes plus an affine dequantization map.

use odq_tensor::Tensor;

/// A quantization scheme: bit width and signedness of the integer codes.
///
/// * Activations are unsigned (post-ReLU features are non-negative), with
///   codes in `0 ..= 2^bits - 1` and zero point 0.
/// * Weights use DoReFa-style **offset-binary** coding: unsigned codes in
///   `0 ..= 2^bits - 1` with zero point `(2^bits - 1)/2`, i.e. values on a
///   uniform grid over `[-max|w|, +max|w|]` with no zero level. This
///   matters at low bit widths: a symmetric signed grid maps most of a
///   Gaussian weight distribution to the zero code, destroying the model,
///   while the offset grid keeps every weight informative (see
///   [`crate::dorefa::quantize_weights_symmetric`] for the alternative).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QScheme {
    /// Bit width of the codes (2, 4, 8, or 16 in this repository).
    pub bits: u8,
    /// Whether codes are signed (the symmetric ablation scheme) or
    /// unsigned (activations and offset-binary weights).
    pub signed: bool,
}

impl QScheme {
    /// Unsigned activation scheme of the given width.
    pub const fn activation(bits: u8) -> Self {
        Self { bits, signed: false }
    }

    /// Unsigned offset-binary weight scheme of the given width.
    pub const fn weight(bits: u8) -> Self {
        Self { bits, signed: false }
    }

    /// Signed-symmetric weight scheme (ablation alternative).
    pub const fn weight_symmetric(bits: u8) -> Self {
        Self { bits, signed: true }
    }

    /// Largest representable code.
    pub fn max_code(&self) -> i32 {
        if self.signed {
            (1 << (self.bits - 1)) - 1
        } else {
            (1 << self.bits) - 1
        }
    }

    /// Smallest representable code.
    pub fn min_code(&self) -> i32 {
        if self.signed {
            -self.max_code()
        } else {
            0
        }
    }

    /// Number of quantization levels.
    pub fn levels(&self) -> u32 {
        (self.max_code() - self.min_code() + 1) as u32
    }
}

/// A quantized tensor: `value ≈ scale * (code - zero)` elementwise.
///
/// Codes are stored in `i16`, which covers every scheme with `bits <= 16`:
/// the dynamic-quantization paths (INT4/INT2 for ODQ, INT8/INT4 for DRQ)
/// and the INT8/INT16 static baselines.
#[derive(Clone, Debug)]
pub struct QTensor {
    /// Integer codes, same shape as the source tensor.
    pub codes: Tensor<i16>,
    /// Dequantization scale.
    pub scale: f32,
    /// Zero point: `value = scale * (code - zero)`. 0.0 for activations
    /// and symmetric weights; `(2^bits - 1)/2` for offset-binary weights.
    pub zero: f32,
    /// The scheme the codes conform to.
    pub scheme: QScheme,
}

impl QTensor {
    /// Dequantize back to floats.
    pub fn dequantize(&self) -> Tensor {
        let s = self.scale;
        let z = self.zero;
        self.codes.map(|c| (c as f32 - z) * s)
    }

    /// Verify every code is within the scheme's range (debug aid; O(n)).
    pub fn codes_in_range(&self) -> bool {
        let (lo, hi) = (self.scheme.min_code(), self.scheme.max_code());
        self.codes.as_slice().iter().all(|&c| (c as i32) >= lo && (c as i32) <= hi)
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.codes.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_ranges() {
        let a4 = QScheme::activation(4);
        assert_eq!((a4.min_code(), a4.max_code()), (0, 15));
        assert_eq!(a4.levels(), 16);

        let w4 = QScheme::weight(4);
        assert_eq!((w4.min_code(), w4.max_code()), (0, 15));
        assert_eq!(w4.levels(), 16);

        let ws4 = QScheme::weight_symmetric(4);
        assert_eq!((ws4.min_code(), ws4.max_code()), (-7, 7));
        assert_eq!(ws4.levels(), 15);

        let a2 = QScheme::activation(2);
        assert_eq!((a2.min_code(), a2.max_code()), (0, 3));
    }

    #[test]
    fn dequantize_applies_affine_map() {
        let q = QTensor {
            codes: Tensor::from_vec([4], vec![0i16, 1, 2, 3]),
            scale: 0.5,
            zero: 1.5,
            scheme: QScheme::weight(2),
        };
        assert_eq!(q.dequantize().as_slice(), &[-0.75, -0.25, 0.25, 0.75]);
        assert!(q.codes_in_range());
        assert_eq!(q.numel(), 4);
    }

    #[test]
    fn zero_point_zero_is_plain_scaling() {
        let q = QTensor {
            codes: Tensor::from_vec([3], vec![0i16, 2, 4]),
            scale: 0.25,
            zero: 0.0,
            scheme: QScheme::activation(3),
        };
        assert_eq!(q.dequantize().as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn range_check_detects_violation() {
        let q = QTensor {
            codes: Tensor::from_vec([2], vec![0i16, 9]),
            scale: 1.0,
            zero: 0.0,
            scheme: QScheme::activation(2),
        };
        assert!(!q.codes_in_range());
    }
}
