//! DoReFa-style uniform quantizers.
//!
//! DoReFa-Net quantizes activations by clipping to a bounded interval and
//! rounding to `2^k` uniform levels, and weights by rescaling to `[-1, 1]`
//! and rounding to `2^k` uniform levels — an **offset-binary** grid
//! `w = s·(n − (2^k−1)/2)`, `n ∈ 0..2^k−1`, with *no* zero level. We keep
//! that coding exactly (it is what makes 2-bit weights usable: a symmetric
//! signed grid collapses most of a Gaussian weight distribution onto the
//! zero code; see [`quantize_weights_symmetric`], kept for the ablation
//! study). The tanh pre-warp of the original DoReFa is omitted — it only
//! reshapes the float distribution before the same uniform rounding and
//! interacts badly with our small synthetic models.

use odq_tensor::Tensor;

use crate::qtensor::{QScheme, QTensor};

/// Quantize activations to unsigned `bits`-wide codes with zero point 0.
///
/// Values are clamped to `[0, clip]` and mapped uniformly onto
/// `0 ..= 2^bits - 1`; `scale = clip / (2^bits - 1)`.
///
/// # Panics
/// Panics if `bits` is 0 or > 15, or `clip <= 0`.
pub fn quantize_activation(x: &Tensor, bits: u8, clip: f32) -> QTensor {
    assert!((1..=15).contains(&bits), "activation bits must be in 1..=15");
    assert!(clip > 0.0, "clip must be positive");
    let scheme = QScheme::activation(bits);
    let max_code = scheme.max_code() as f32;
    let scale = clip / max_code;
    // Compute the forward mapping directly from max_code/clip: deriving it
    // as 1/scale loses a ulp and mis-rounds exact half-steps (e.g. 0.5 at
    // 4 bits must code to 8, not 7).
    let inv = max_code / clip;
    let codes = x.map(|v| {
        let clamped = v.clamp(0.0, clip);
        (clamped * inv).round() as i16
    });
    QTensor { codes, scale, zero: 0.0, scheme }
}

/// Quantize weights to DoReFa-style offset-binary codes (the default
/// weight quantizer throughout this repository).
///
/// `value = scale · (code − zero)` with `zero = (2^bits − 1)/2` and
/// `scale = 2·max|w| / (2^bits − 1)`: a uniform grid over
/// `[-max|w|, +max|w|]` whose levels straddle zero symmetrically.
///
/// An all-zero weight tensor quantizes to all-`zero`-adjacent codes with
/// scale 1 (every level decodes near 0).
pub fn quantize_weights(w: &Tensor, bits: u8) -> QTensor {
    assert!((2..=15).contains(&bits), "weight bits must be in 2..=15");
    let scheme = QScheme::weight(bits);
    let max_code = scheme.max_code() as f32; // 2^bits - 1
    let zero = max_code / 2.0;
    let max_abs = w.max_abs();
    let scale = if max_abs == 0.0 { 1.0 } else { 2.0 * max_abs / max_code };
    let inv = 1.0 / scale;
    let codes = w.map(|v| (v * inv + zero).round().clamp(0.0, max_code) as i16);
    QTensor { codes, scale, zero, scheme }
}

/// Quantize weights to signed-symmetric codes (ablation alternative to
/// [`quantize_weights`]): `scale = max|w| / (2^(bits-1) - 1)`, codes in
/// `-(2^(bits-1)-1) ..= 2^(bits-1)-1`, zero point 0.
///
/// At ≤4 bits this collapses most near-zero weights onto the zero code —
/// exactly the failure mode the `ablate_weight_coding` bench demonstrates.
pub fn quantize_weights_symmetric(w: &Tensor, bits: u8) -> QTensor {
    assert!((2..=16).contains(&bits), "weight bits must be in 2..=16");
    let scheme = QScheme::weight_symmetric(bits);
    let max_code = scheme.max_code() as f32;
    let max_abs = w.max_abs();
    let scale = if max_abs == 0.0 { 1.0 } else { max_abs / max_code };
    let inv = if max_abs == 0.0 { 1.0 } else { max_code / max_abs };
    let codes = w.map(|v| (v * inv).round().clamp(-max_code, max_code) as i16);
    QTensor { codes, scale, zero: 0.0, scheme }
}

/// Quantize→dequantize activations ("fake quantization").
///
/// Used in quantization-aware training: the forward pass sees quantized
/// values while the backward pass treats this as identity within the clip
/// range (straight-through estimator).
pub fn fake_quantize_activation(x: &Tensor, bits: u8, clip: f32) -> Tensor {
    quantize_activation(x, bits, clip).dequantize()
}

/// Quantize→dequantize weights onto the offset-binary grid,
/// straight-through in the backward pass.
pub fn fake_quantize_weights(w: &Tensor, bits: u8) -> Tensor {
    quantize_weights(w, bits).dequantize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_codes_cover_range() {
        let x = Tensor::from_vec([5], vec![-0.5, 0.0, 0.5, 1.0, 2.0]);
        let q = quantize_activation(&x, 4, 1.0);
        assert!(q.codes_in_range());
        assert_eq!(q.codes.as_slice(), &[0, 0, 8, 15, 15]); // clamp + round
        assert!((q.scale - 1.0 / 15.0).abs() < 1e-7);
        assert_eq!(q.zero, 0.0);
    }

    #[test]
    fn activation_roundtrip_error_bounded() {
        let xs: Vec<f32> = (0..100).map(|i| i as f32 / 99.0).collect();
        let x = Tensor::from_vec([100], xs);
        for bits in [2u8, 4, 8] {
            let q = quantize_activation(&x, bits, 1.0);
            let err = q.dequantize().max_abs_diff(&x);
            let half_step = 0.5 / ((1 << bits) - 1) as f32;
            assert!(err <= half_step + 1e-6, "bits={bits}: err {err} > {half_step}");
        }
    }

    #[test]
    fn offset_weights_have_no_zero_level_and_bounded_error() {
        let ws: Vec<f32> = (0..101).map(|i| (i as f32 - 50.0) / 50.0).collect();
        let w = Tensor::from_vec([101], ws);
        for bits in [2u8, 4, 8] {
            let q = quantize_weights(&w, bits);
            assert!(q.codes_in_range(), "bits={bits}");
            // Every decoded level is nonzero (offset grid straddles 0).
            let back = q.dequantize();
            assert!(back.as_slice().iter().all(|&v| v != 0.0), "bits={bits}");
            // Roundtrip error bounded by half a step.
            let err = back.max_abs_diff(&w);
            assert!(err <= 0.5 * q.scale + 1e-6, "bits={bits}: err {err}");
        }
    }

    #[test]
    fn offset_weights_2bit_are_informative() {
        // Gaussian-ish small weights: symmetric 2-bit coding zeroes them,
        // offset coding keeps sign information.
        let ws: Vec<f32> = (0..64).map(|i| 0.3 * (((i * 37) % 64) as f32 / 32.0 - 1.0)).collect();
        let mut wmax = ws.clone();
        wmax.push(1.0); // one outlier sets the scale
        let w = Tensor::from_vec([65], wmax);
        let off = quantize_weights(&w, 2).dequantize();
        let sym = quantize_weights_symmetric(&w, 2).dequantize();
        let sym_zeroed = sym.as_slice().iter().filter(|&&v| v == 0.0).count();
        let off_zeroed = off.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(sym_zeroed > 40, "symmetric grid zeroes small weights: {sym_zeroed}");
        assert_eq!(off_zeroed, 0, "offset grid never zeroes");
        // Offset coding preserves the sign of most weights.
        let sign_ok = off
            .as_slice()
            .iter()
            .zip(w.as_slice())
            .filter(|(&q, &v)| q != 0.0 && v != 0.0 && q.signum() == v.signum())
            .count();
        assert!(sign_ok > 55, "offset coding should preserve signs: {sign_ok}");
    }

    #[test]
    fn symmetric_weights_codes() {
        let w = Tensor::from_vec([4], vec![-1.0, -0.5, 0.5, 1.0]);
        let q = quantize_weights_symmetric(&w, 4);
        assert!(q.codes_in_range());
        assert_eq!(q.codes.as_slice(), &[-7, -4, 4, 7]);
        assert_eq!(q.zero, 0.0);
    }

    #[test]
    fn zero_weights_do_not_divide_by_zero() {
        let w = Tensor::<f32>::zeros([8]);
        let q = quantize_weights(&w, 4);
        assert!(q.codes_in_range());
        // decoded values are all within half a (unit-scale) step of zero.
        assert!(q.dequantize().max_abs() <= 0.5 + 1e-6);
        let qs = quantize_weights_symmetric(&w, 4);
        assert!(qs.codes.as_slice().iter().all(|&c| c == 0));
    }

    #[test]
    fn fake_quant_matches_quant_dequant() {
        let x = Tensor::from_vec([3], vec![0.1, 0.6, 0.9]);
        let fq = fake_quantize_activation(&x, 4, 1.0);
        let qd = quantize_activation(&x, 4, 1.0).dequantize();
        assert_eq!(fq.as_slice(), qd.as_slice());

        let w = Tensor::from_vec([3], vec![-0.3, 0.2, 0.7]);
        let fw = fake_quantize_weights(&w, 4);
        let wd = quantize_weights(&w, 4).dequantize();
        assert_eq!(fw.as_slice(), wd.as_slice());
    }

    #[test]
    fn int16_symmetric_weights() {
        let w = Tensor::from_vec([3], vec![-2.0, 0.25, 2.0]);
        let q = quantize_weights_symmetric(&w, 16);
        assert_eq!(q.codes.as_slice()[0], -32767);
        assert_eq!(q.codes.as_slice()[2], 32767);
        assert!(q.dequantize().max_abs_diff(&w) < 1e-3);
    }

    #[test]
    fn finer_bits_never_increase_error() {
        let xs: Vec<f32> = (0..64).map(|i| ((i * 37) % 64) as f32 / 63.0).collect();
        let x = Tensor::from_vec([64], xs);
        let e2 = quantize_activation(&x, 2, 1.0).dequantize().mean_abs_diff(&x);
        let e4 = quantize_activation(&x, 4, 1.0).dequantize().mean_abs_diff(&x);
        let e8 = quantize_activation(&x, 8, 1.0).dequantize().mean_abs_diff(&x);
        assert!(e8 <= e4 && e4 <= e2, "{e8} <= {e4} <= {e2} violated");

        let ws: Vec<f32> = (0..64).map(|i| ((i * 53) % 64) as f32 / 32.0 - 1.0).collect();
        let w = Tensor::from_vec([64], ws);
        let w2 = quantize_weights(&w, 2).dequantize().mean_abs_diff(&w);
        let w4 = quantize_weights(&w, 4).dequantize().mean_abs_diff(&w);
        let w8 = quantize_weights(&w, 8).dequantize().mean_abs_diff(&w);
        assert!(w8 <= w4 && w4 <= w2, "{w8} <= {w4} <= {w2} violated");
    }
}
