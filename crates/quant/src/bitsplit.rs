//! Two's-complement bit-plane splitting (the paper's Eq. 3 decomposition).
//!
//! An INT4 code `c` splits into a high plane `h` and a low plane `l` with
//! `c = (h << low_bits) + l`, where `l` is the unsigned low-order bits and
//! `h = c >> low_bits` (arithmetic shift, so `h` carries the sign for
//! signed codes). For the paper's 4-bit/2-bit configuration with
//! offset-binary weight codes:
//!
//! * activations: `a ∈ 0..=15`, `a = 4·a_H + a_L`, `a_H, a_L ∈ 0..=3`;
//! * weights: `n ∈ 0..=15`, `n = 4·n_H + n_L`, `n_H, n_L ∈ 0..=3`
//!   (the zero point is handled by the affine convolution, not the split);
//! * symmetric (ablation) weights: `q ∈ -7..=7`, `q_H ∈ -2..=1`,
//!   `q_L ∈ 0..=3`.
//!
//! The product then decomposes exactly as Eq. 3:
//!
//! ```text
//! a·q = (a_H·q_H) << 2·low_bits  +  (a_H·q_L) << low_bits
//!     + (a_L·q_H) << low_bits    +   a_L·q_L
//! ```
//!
//! The ODQ sensitivity predictor computes only the first term; the result
//! executor adds the remaining three for outputs predicted sensitive.

use odq_tensor::Tensor;

use crate::qtensor::QTensor;

/// High- and low-order bit planes of a tensor of integer codes.
#[derive(Clone, Debug)]
pub struct BitPlanes {
    /// High-order plane (`code >> low_bits`, arithmetic — signed for
    /// signed schemes).
    pub high: Tensor<i16>,
    /// Low-order plane (`code & ((1 << low_bits) - 1)`, always unsigned).
    pub low: Tensor<i16>,
    /// Number of low-order bits.
    pub low_bits: u8,
}

/// Split a slice of codes into `(high, low)` planes.
///
/// `signed` controls nothing arithmetically — `i16`'s `>>` is already an
/// arithmetic shift — but is kept as documentation of intent and validated
/// in debug builds (unsigned codes must be non-negative).
pub fn split_codes(codes: &[i16], low_bits: u8, signed: bool) -> (Vec<i16>, Vec<i16>) {
    assert!(low_bits > 0 && low_bits < 15, "low_bits must be in 1..15");
    let mask = (1i16 << low_bits) - 1;
    let mut high = Vec::with_capacity(codes.len());
    let mut low = Vec::with_capacity(codes.len());
    for &c in codes {
        debug_assert!(signed || c >= 0, "unsigned scheme with negative code {c}");
        high.push(c >> low_bits);
        low.push(c & mask);
    }
    (high, low)
}

/// Split a [`QTensor`]'s codes into bit planes (shape preserved).
pub fn split_qtensor(q: &QTensor, low_bits: u8) -> BitPlanes {
    let (high, low) = split_codes(q.codes.as_slice(), low_bits, q.scheme.signed);
    let shape = q.codes.shape().clone();
    BitPlanes {
        high: Tensor::from_vec(shape.clone(), high),
        low: Tensor::from_vec(shape, low),
        low_bits,
    }
}

/// Reassemble codes from planes: `code = (high << low_bits) + low`.
pub fn join_planes(high: &[i16], low: &[i16], low_bits: u8) -> Vec<i16> {
    assert!(low_bits > 0 && low_bits < 15, "low_bits must be in 1..15");
    assert_eq!(high.len(), low.len(), "plane length mismatch");
    high.iter().zip(low).map(|(&h, &l)| (h << low_bits).wrapping_add(l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qtensor::QScheme;

    #[test]
    fn split_unsigned_int4() {
        let codes: Vec<i16> = (0..=15).collect();
        let (h, l) = split_codes(&codes, 2, false);
        for (i, c) in codes.iter().enumerate() {
            assert_eq!(h[i] * 4 + l[i], *c);
            assert!((0..=3).contains(&h[i]));
            assert!((0..=3).contains(&l[i]));
        }
        assert_eq!(h[13], 3);
        assert_eq!(l[13], 1);
    }

    #[test]
    fn split_signed_int4_twos_complement() {
        let codes: Vec<i16> = (-8..=7).collect();
        let (h, l) = split_codes(&codes, 2, true);
        for (i, c) in codes.iter().enumerate() {
            assert_eq!(h[i] * 4 + l[i], *c, "identity failed for {c}");
            assert!((-2..=1).contains(&h[i]), "high plane out of INT2 range for {c}");
            assert!((0..=3).contains(&l[i]), "low plane must be unsigned for {c}");
        }
        // Spot checks: -1 = 4*(-1) + 3; -5 = 4*(-2) + 3.
        assert_eq!((h[7], l[7]), (-1, 3)); // c = -1
        assert_eq!((h[3], l[3]), (-2, 3)); // c = -5
    }

    #[test]
    fn join_inverts_split() {
        let codes: Vec<i16> = (-8..=7).chain(0..=15).collect();
        let (h, l) = split_codes(&codes, 2, true);
        assert_eq!(join_planes(&h, &l, 2), codes);
        // Also for a 3/5 split of INT8 codes.
        let codes8: Vec<i16> = (-128..=127).collect();
        let (h8, l8) = split_codes(&codes8, 4, true);
        assert_eq!(join_planes(&h8, &l8, 4), codes8);
    }

    #[test]
    fn eq3_product_decomposition_is_exact() {
        // For every (a, q) pair of INT4 activation × weight codes, the four
        // bit-plane partial products sum to the exact product (Eq. 3).
        for a in 0i32..=15 {
            for q in -7i32..=7 {
                let (ah, al) = (a >> 2, a & 3);
                let (qh, ql) = (q >> 2, q & 3);
                let recomposed = ((ah * qh) << 4) + ((ah * ql) << 2) + ((al * qh) << 2) + al * ql;
                assert_eq!(recomposed, a * q, "decomposition failed for a={a}, q={q}");
            }
        }
    }

    #[test]
    fn split_qtensor_preserves_shape() {
        let q = QTensor {
            codes: Tensor::from_vec([2, 3], vec![0i16, 5, 10, 15, 7, 3]),
            scale: 1.0 / 15.0,
            zero: 0.0,
            scheme: QScheme::activation(4),
        };
        let planes = split_qtensor(&q, 2);
        assert_eq!(planes.high.dims(), &[2, 3]);
        assert_eq!(planes.low.dims(), &[2, 3]);
        assert_eq!(planes.low_bits, 2);
        let joined = join_planes(planes.high.as_slice(), planes.low.as_slice(), 2);
        assert_eq!(joined, q.codes.as_slice());
    }

    #[test]
    #[should_panic(expected = "low_bits")]
    fn rejects_zero_low_bits() {
        split_codes(&[1, 2], 0, false);
    }
}
