//! Per-layer convolution plans: quantize, bit-split and summarize weights
//! **once** per (layer, weight version) instead of on every forward call.
//!
//! Every engine in the workspace used to carry its own ad-hoc
//! `HashMap<String, (fingerprint, QTensor)>` weight cache — and still
//! re-split the weight planes and re-derived per-filter constants each
//! batch. A [`QConvPlan`] prepacks everything a conv kernel needs from the
//! weights alone:
//!
//! * the quantized weights (`qw`),
//! * their Eq. 3 bit planes (ODQ),
//! * the per-filter code sums `Σ n_H`, `Σ n_L` the predictor's expectation
//!   corrections consume,
//! * the requantized low-precision weights (DRQ),
//! * a lazily-built cache of per-geometry valid-tap counts.
//!
//! [`PlanCache`] maps layer names to plans, invalidating on a full-content
//! weight fingerprint, and owns the [`WorkspacePool`] the planned drivers
//! lower through — one shared scratch arena per engine.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use odq_tensor::workspace::WorkspacePool;
use odq_tensor::{ConvGeom, Tensor};

use crate::bitsplit::{split_qtensor, BitPlanes};
use crate::dorefa::{quantize_weights, quantize_weights_symmetric};
use crate::qconv::{filter_code_sums, requant_step, requantize_codes, valid_tap_counts};
use crate::qtensor::QTensor;

/// What a plan must prepack, fully determined by an engine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanSpec {
    /// Weight bit width.
    pub w_bits: u8,
    /// Symmetric (no zero point) weight coding instead of offset-binary.
    pub symmetric: bool,
    /// `Some(d)` prepacks the Eq. 3 bit planes and the predictor's
    /// per-filter constants (ODQ engines).
    pub low_bits: Option<u8>,
    /// `Some(lo)` prepacks weights requantized onto the coarser
    /// `lo`-bit grid (DRQ engines).
    pub lo_bits: Option<u8>,
}

impl PlanSpec {
    /// Plan for a static uniform-quantization executor. Wide schemes
    /// (`w_bits > 15`) use symmetric coding, matching
    /// [`quantize_weights_symmetric`]'s domain.
    pub fn static_quant(w_bits: u8) -> Self {
        Self { w_bits, symmetric: w_bits > 15, low_bits: None, lo_bits: None }
    }

    /// Plan for the ODQ engine: offset-binary weights split into
    /// `low_bits`-wide low planes.
    pub fn odq(w_bits: u8, low_bits: u8) -> Self {
        Self { w_bits, symmetric: false, low_bits: Some(low_bits), lo_bits: None }
    }

    /// Plan for the DRQ engine: `hi_bits` weights plus their requantized
    /// `lo_bits` counterpart.
    pub fn drq(hi_bits: u8, lo_bits: u8) -> Self {
        Self { w_bits: hi_bits, symmetric: false, low_bits: None, lo_bits: Some(lo_bits) }
    }
}

/// A prepacked per-layer convolution plan (weights-side state only; the
/// activation side is per-batch and flows through the workspace pool).
pub struct QConvPlan {
    /// The spec this plan was built for.
    pub spec: PlanSpec,
    /// Quantized weights.
    pub qw: QTensor,
    /// Eq. 3 weight bit planes (ODQ specs only).
    pub planes: Option<BitPlanes>,
    /// Per-filter `Σ n_H` (ODQ specs only, empty otherwise).
    pub sum_nh: Vec<i32>,
    /// Per-filter `Σ n_L` (ODQ specs only, empty otherwise).
    pub sum_nl: Vec<i32>,
    /// Weights requantized onto the low-precision grid (DRQ specs only).
    pub w_lo: Option<Tensor<i16>>,
    /// Per-geometry valid-tap counts, built on first use. Engines run a
    /// layer under one geometry, so a single slot suffices.
    valid: Mutex<Option<(ConvGeom, Arc<Vec<u32>>)>>,
}

impl QConvPlan {
    /// Quantize `weights` `[Co, Ci, K, K]` and prepack everything `spec`
    /// calls for.
    pub fn build(weights: &Tensor, spec: PlanSpec) -> Self {
        let qw = if spec.symmetric {
            quantize_weights_symmetric(weights, spec.w_bits)
        } else {
            quantize_weights(weights, spec.w_bits)
        };
        let out_channels = weights.dims()[0];
        let (planes, sum_nh, sum_nl) = match spec.low_bits {
            Some(d) => {
                let p = split_qtensor(&qw, d);
                let nh = filter_code_sums(&p.high, out_channels);
                let nl = filter_code_sums(&p.low, out_channels);
                (Some(p), nh, nl)
            }
            None => (None, Vec::new(), Vec::new()),
        };
        let w_lo =
            spec.lo_bits.map(|lo| requantize_codes(&qw.codes, requant_step(spec.w_bits, lo)));
        Self { spec, qw, planes, sum_nh, sum_nl, w_lo, valid: Mutex::new(None) }
    }

    /// Valid-tap counts for `g`, computed once per geometry and shared.
    pub fn valid_taps(&self, g: &ConvGeom) -> Arc<Vec<u32>> {
        let mut slot = self.valid.lock().expect("plan valid-taps lock poisoned");
        match &*slot {
            Some((cached_g, v)) if cached_g == g => Arc::clone(v),
            _ => {
                let v = Arc::new(valid_tap_counts(g));
                *slot = Some((*g, Arc::clone(&v)));
                v
            }
        }
    }
}

/// Full-content weight fingerprint: FNV-1a over the bit patterns of every
/// element, seeded with the element count. Any single-element perturbation
/// anywhere in the tensor changes the digest (each byte folds through the
/// avalanching multiply), so stale plans cannot survive a weight update —
/// the regression the old sampled hash allowed.
pub fn weight_fingerprint(w: &Tensor) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (w.numel() as u64);
    for &v in w.as_slice() {
        h = (h ^ v.to_bits() as u64).wrapping_mul(PRIME);
    }
    h
}

struct PlanEntry {
    spec: PlanSpec,
    fingerprint: u64,
    plan: Arc<QConvPlan>,
}

/// Shared per-engine cache of layer plans plus the workspace pool the
/// planned drivers lower through.
///
/// Clones of the `Arc<PlanCache>` handed to an engine share both: a serve
/// worker pool pointing its per-model engines at one cache quantizes and
/// bit-splits each layer's weights exactly once across the fleet.
#[derive(Default)]
pub struct PlanCache {
    entries: Mutex<HashMap<String, PlanEntry>>,
    pool: WorkspacePool,
    builds: std::sync::atomic::AtomicU64,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The plan for `name`, building (or rebuilding, when the weight
    /// fingerprint or spec changed) as needed.
    pub fn plan_for(&self, name: &str, weights: &Tensor, spec: PlanSpec) -> Arc<QConvPlan> {
        let fp = weight_fingerprint(weights);
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        if let Some(e) = entries.get(name) {
            if e.fingerprint == fp && e.spec == spec {
                return Arc::clone(&e.plan);
            }
        }
        let plan = Arc::new(QConvPlan::build(weights, spec));
        self.builds.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        entries
            .insert(name.to_string(), PlanEntry { spec, fingerprint: fp, plan: Arc::clone(&plan) });
        plan
    }

    /// The workspace pool planned drivers should lower through.
    pub fn pool(&self) -> &WorkspacePool {
        &self.pool
    }

    /// Total plan builds (quantize + bit-split passes) performed. Stays at
    /// the layer count across repeated forwards with unchanged weights —
    /// the "split at most once per layer per weight version" invariant.
    pub fn builds(&self) -> u64 {
        self.builds.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache poisoned").len()
    }

    /// Whether no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached plans (weights changed wholesale, e.g. a training
    /// step or a model reload).
    pub fn invalidate(&self) {
        self.entries.lock().expect("plan cache poisoned").clear();
    }

    /// Adopt every plan entry from `other` (sharing the prepacked plans
    /// via `Arc`, not copying them). Entries keep their fingerprints, so a
    /// layer whose weights changed since `other` was built is rebuilt on
    /// first use while unchanged layers hit immediately — this is how a
    /// hot-swapped model version pays only for the plans of the layers a
    /// retrain actually touched.
    pub fn seed_from(&self, other: &PlanCache) {
        let src = other.entries.lock().expect("plan cache poisoned");
        let mut dst = self.entries.lock().expect("plan cache poisoned");
        for (name, e) in src.iter() {
            dst.entry(name.clone()).or_insert_with(|| PlanEntry {
                spec: e.spec,
                fingerprint: e.fingerprint,
                plan: Arc::clone(&e.plan),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights() -> Tensor {
        let v: Vec<f32> = (0..2 * 3 * 9).map(|i| ((i * 37) % 19) as f32 / 9.5 - 1.0).collect();
        Tensor::from_vec([2, 3, 3, 3], v)
    }

    #[test]
    fn odq_plan_prepacks_planes_and_filter_sums() {
        let w = weights();
        let plan = QConvPlan::build(&w, PlanSpec::odq(4, 2));
        let p = plan.planes.as_ref().expect("odq plan has planes");
        let qw = quantize_weights(&w, 4);
        assert_eq!(p.high.as_slice(), split_qtensor(&qw, 2).high.as_slice());
        assert_eq!(plan.sum_nh, filter_code_sums(&p.high, 2));
        assert_eq!(plan.sum_nl, filter_code_sums(&p.low, 2));
        assert!(plan.w_lo.is_none());
    }

    #[test]
    fn drq_plan_prepacks_requantized_weights() {
        let w = weights();
        let plan = QConvPlan::build(&w, PlanSpec::drq(8, 4));
        let qw = quantize_weights(&w, 8);
        let expect = requantize_codes(&qw.codes, requant_step(8, 4));
        assert_eq!(plan.w_lo.as_ref().unwrap().as_slice(), expect.as_slice());
        assert!(plan.planes.is_none());
    }

    #[test]
    fn cache_hits_until_weights_or_spec_change() {
        let cache = PlanCache::new();
        let w = weights();
        let spec = PlanSpec::odq(4, 2);
        let a = cache.plan_for("c1", &w, spec);
        let b = cache.plan_for("c1", &w, spec);
        assert!(Arc::ptr_eq(&a, &b), "same weights + spec must hit");
        assert_eq!(cache.len(), 1);

        let mut w2 = w.clone();
        w2.as_mut_slice()[5] += 0.25;
        let c = cache.plan_for("c1", &w2, spec);
        assert!(!Arc::ptr_eq(&a, &c), "changed weights must rebuild");

        let d = cache.plan_for("c1", &w2, PlanSpec::odq(4, 1));
        assert!(!Arc::ptr_eq(&c, &d), "changed spec must rebuild");

        cache.invalidate();
        assert!(cache.is_empty());
    }

    #[test]
    fn fingerprint_sees_every_element() {
        // Satellite regression: the seed's sampled hash missed interior
        // perturbations; the full FNV-1a digest must not.
        let w = weights();
        let base = weight_fingerprint(&w);
        for i in 0..w.numel() {
            let mut p = w.clone();
            p.as_mut_slice()[i] += 1e-3;
            assert_ne!(
                weight_fingerprint(&p),
                base,
                "perturbing element {i} must change the fingerprint"
            );
        }
        // And it distinguishes lengths even with identical prefixes.
        let short = Tensor::from_vec([1, 1, 1, 1], vec![0.0f32]);
        let long = Tensor::from_vec([1, 1, 1, 2], vec![0.0f32, 0.0]);
        assert_ne!(weight_fingerprint(&short), weight_fingerprint(&long));
    }

    #[test]
    fn seed_from_shares_unchanged_plans_and_rebuilds_changed_ones() {
        let old = PlanCache::new();
        let spec = PlanSpec::odq(4, 2);
        let w1 = weights();
        let mut w2 = weights();
        w2.as_mut_slice()[3] -= 0.5;
        let p1 = old.plan_for("c1", &w1, spec);
        let p2 = old.plan_for("c2", &w2, spec);

        // New version: c1 unchanged, c2 retrained.
        let mut w2_new = w2.clone();
        w2_new.as_mut_slice()[0] += 0.25;
        let fresh = PlanCache::new();
        fresh.seed_from(&old);
        assert_eq!(fresh.len(), 2);
        assert_eq!(fresh.builds(), 0, "seeding copies, it does not build");

        let q1 = fresh.plan_for("c1", &w1, spec);
        assert!(Arc::ptr_eq(&p1, &q1), "unchanged layer must hit the seeded plan");
        let q2 = fresh.plan_for("c2", &w2_new, spec);
        assert!(!Arc::ptr_eq(&p2, &q2), "changed layer must rebuild");
        assert_eq!(fresh.builds(), 1, "swap cost is exactly the changed layers");
    }

    #[test]
    fn valid_taps_cached_per_geometry() {
        let plan = QConvPlan::build(&weights(), PlanSpec::static_quant(4));
        let g = ConvGeom::new(3, 2, 6, 6, 3, 1, 1);
        let a = plan.valid_taps(&g);
        let b = plan.valid_taps(&g);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, valid_tap_counts(&g));
        let g2 = ConvGeom::new(3, 2, 6, 6, 3, 2, 0);
        assert_eq!(*plan.valid_taps(&g2), valid_tap_counts(&g2));
    }
}
