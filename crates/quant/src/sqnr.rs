//! Signal-to-quantization-noise analysis.
//!
//! SQNR (in dB) quantifies how much signal survives a quantizer:
//! `10·log10(Σ signal² / Σ error²)`. The classic rule of thumb is ~6 dB per
//! bit for uniform quantization of a full-range signal; the tests pin that
//! behaviour, and the `ablate_weight_coding` experiment reports these
//! alongside task accuracy (they can disagree — see the tests).

use odq_tensor::Tensor;

use crate::dorefa::{quantize_activation, quantize_weights, quantize_weights_symmetric};

/// SQNR in dB between a reference signal and its approximation.
///
/// Returns `f32::INFINITY` for a perfect reconstruction and
/// `f32::NEG_INFINITY` for an all-zero reference.
pub fn sqnr_db(reference: &Tensor, approx: &Tensor) -> f32 {
    assert_eq!(reference.numel(), approx.numel(), "length mismatch");
    let mut signal = 0.0f64;
    let mut noise = 0.0f64;
    for (&r, &a) in reference.as_slice().iter().zip(approx.as_slice()) {
        signal += (r as f64) * r as f64;
        noise += ((r - a) as f64) * (r - a) as f64;
    }
    if signal == 0.0 {
        return f32::NEG_INFINITY;
    }
    if noise == 0.0 {
        return f32::INFINITY;
    }
    (10.0 * (signal / noise).log10()) as f32
}

/// SQNR of the activation quantizer at a given width.
pub fn activation_sqnr_db(x: &Tensor, bits: u8, clip: f32) -> f32 {
    sqnr_db(x, &quantize_activation(x, bits, clip).dequantize())
}

/// SQNR of the offset-binary weight quantizer at a given width.
pub fn weight_sqnr_db(w: &Tensor, bits: u8) -> f32 {
    sqnr_db(w, &quantize_weights(w, bits).dequantize())
}

/// SQNR of the symmetric (ablation) weight quantizer at a given width.
pub fn weight_symmetric_sqnr_db(w: &Tensor, bits: u8) -> f32 {
    sqnr_db(w, &quantize_weights_symmetric(w, bits).dequantize())
}

/// The smallest bit width in `min_bits..=max_bits` whose offset-binary
/// weight SQNR reaches `floor_db`, or `None` if even `max_bits` falls
/// short. This is the greedy "cheapest bits subject to a quality floor"
/// primitive the auto-policy builder assigns static widths with; SQNR is
/// monotone in bits (pinned by `sqnr_monotone_in_bits`), so the first
/// width that clears the floor is the cheapest.
pub fn weight_bits_for_sqnr(w: &Tensor, floor_db: f32, min_bits: u8, max_bits: u8) -> Option<u8> {
    (min_bits..=max_bits).find(|&bits| weight_sqnr_db(w, bits) >= floor_db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Tensor {
        Tensor::from_vec([n], (0..n).map(|i| i as f32 / (n - 1) as f32).collect::<Vec<_>>())
    }

    fn gaussianish(n: usize) -> Tensor {
        // Sum of three phase-shifted sinusoids: zero-mean, bell-ish.
        Tensor::from_vec(
            [n],
            (0..n)
                .map(|i| {
                    let t = i as f32 / n as f32 * std::f32::consts::TAU;
                    ((3.0 * t).sin() + (7.0 * t + 1.0).sin() + (13.0 * t + 2.0).sin()) / 3.0
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn six_db_per_bit_rule() {
        let x = ramp(4096);
        let mut last = 0.0;
        for bits in 2u8..=8 {
            let s = activation_sqnr_db(&x, bits, 1.0);
            if bits > 2 {
                let gain = s - last;
                assert!(
                    (4.5..8.0).contains(&gain),
                    "bits {bits}: expected ~6 dB/bit, got {gain:.2}"
                );
            }
            last = s;
        }
    }

    #[test]
    fn perfect_and_degenerate_cases() {
        let x = ramp(64);
        assert_eq!(sqnr_db(&x, &x), f32::INFINITY);
        let zeros = Tensor::<f32>::zeros([64]);
        assert_eq!(sqnr_db(&zeros, &x), f32::NEG_INFINITY);
    }

    /// SQNR and task accuracy can *disagree* about weight codings — a
    /// nuance worth pinning. On a concentrated distribution with a
    /// range-setting outlier, the symmetric grid zeroes the small weights,
    /// which minimizes mean-squared error (better SQNR) but erases the
    /// *sign* information that convolutions actually need — which is why
    /// the accuracy ablation (`ablate_weight_coding`) shows symmetric
    /// INT2 collapsing while offset INT2 works.
    #[test]
    fn sqnr_prefers_symmetric_on_concentrated_weights() {
        let mut vals: Vec<f32> = gaussianish(512).into_vec();
        for v in vals.iter_mut() {
            *v *= 0.3;
        }
        vals.push(1.0); // outlier sets max|w|
        let w = Tensor::from_vec([vals.len()], vals);
        let off2 = weight_sqnr_db(&w, 2);
        let sym2 = weight_symmetric_sqnr_db(&w, 2);
        assert!(sym2 > off2, "MSE-wise: symmetric {sym2:.1} dB vs offset {off2:.1} dB");
        // …while the offset code preserves nearly every weight's sign and
        // the symmetric code destroys most (maps them to 0).
        let off = quantize_weights(&w, 2).dequantize();
        let sym = quantize_weights_symmetric(&w, 2).dequantize();
        // (f32::signum maps +0.0 to 1.0, so exclude zeroed codes first.)
        let sign_kept = |q: &Tensor| {
            q.as_slice()
                .iter()
                .zip(w.as_slice())
                .filter(|(&a, &b)| a != 0.0 && b != 0.0 && a.signum() == b.signum())
                .count()
        };
        assert!(sign_kept(&off) > 9 * w.numel() / 10);
        assert!(sign_kept(&sym) < w.numel() / 2);
    }

    #[test]
    fn offset_beats_symmetric_on_full_range_weights() {
        // On full-range (uniform-ish) weights the offset grid's extra level
        // (4 vs 3 at 2 bits) gives a finer step and better SQNR.
        let w = gaussianish(1024); // spans most of [-1, 1]
        let off2 = weight_sqnr_db(&w, 2);
        let sym2 = weight_symmetric_sqnr_db(&w, 2);
        assert!(off2 > sym2, "offset {off2:.1} dB vs symmetric {sym2:.1} dB");
    }

    /// All-zero filter: both weight quantizers represent 0 exactly (the
    /// degenerate `max|w| == 0` scale is 1.0 and every code lands on the
    /// zero point), so signal and noise are both zero and the convention
    /// is `-inf` — never NaN.
    #[test]
    fn all_zero_filter_reports_neg_infinity_not_nan() {
        let zeros = Tensor::<f32>::zeros([3, 2, 3, 3]);
        for bits in [2u8, 4, 8] {
            let off = weight_sqnr_db(&zeros, bits);
            let sym = weight_symmetric_sqnr_db(&zeros, bits);
            assert_eq!(off, f32::NEG_INFINITY, "offset bits {bits}");
            assert_eq!(sym, f32::NEG_INFINITY, "symmetric bits {bits}");
            assert!(!off.is_nan() && !sym.is_nan());
        }
    }

    /// Saturating INT2: activations far above the clip all collapse onto
    /// the top code. SQNR must stay finite (clipping error, not NaN or a
    /// divide blow-up) and be much worse than for in-range signals.
    #[test]
    fn saturating_int2_activations_have_finite_degraded_sqnr() {
        let hot =
            Tensor::from_vec([64], (0..64).map(|i| 2.0 + i as f32 * 0.25).collect::<Vec<_>>());
        let s_hot = activation_sqnr_db(&hot, 2, 1.0);
        assert!(s_hot.is_finite(), "saturated SQNR must be finite, got {s_hot}");
        let s_ok = activation_sqnr_db(&ramp(64), 2, 1.0);
        assert!(
            s_ok > s_hot + 6.0,
            "clipping should cost well over a bit: in-range {s_ok:.1} dB vs saturated {s_hot:.1} dB"
        );
    }

    /// Single-pixel feature map: one-element tensors go through the same
    /// code path. A value on the INT2 grid reconstructs exactly (`+inf`);
    /// one off the grid yields a finite ratio.
    #[test]
    fn single_pixel_feature_map_sqnr() {
        let on_grid = Tensor::from_vec([1, 1, 1, 1], vec![1.0f32 / 3.0]);
        assert_eq!(activation_sqnr_db(&on_grid, 2, 1.0), f32::INFINITY);
        let off_grid = Tensor::from_vec([1, 1, 1, 1], vec![0.5f32]);
        let s = activation_sqnr_db(&off_grid, 2, 1.0);
        assert!(s.is_finite() && s > 0.0, "got {s}");
    }

    #[test]
    fn sqnr_monotone_in_bits() {
        let w = gaussianish(1024);
        let mut last = f32::NEG_INFINITY;
        for bits in 2u8..=8 {
            let s = weight_sqnr_db(&w, bits);
            assert!(s > last, "bits {bits}: {s} should exceed {last}");
            last = s;
        }
    }

    #[test]
    fn bits_for_sqnr_picks_cheapest_width_that_clears_floor() {
        let w = gaussianish(1024);
        let bits = weight_bits_for_sqnr(&w, 20.0, 2, 8).expect("8 bits should clear 20 dB");
        assert!(weight_sqnr_db(&w, bits) >= 20.0);
        if bits > 2 {
            assert!(weight_sqnr_db(&w, bits - 1) < 20.0, "bits-1 would also have cleared");
        }
        // Unreachable floor → None; trivial floor → min width.
        assert_eq!(weight_bits_for_sqnr(&w, 1e6, 2, 8), None);
        assert_eq!(weight_bits_for_sqnr(&w, f32::NEG_INFINITY, 3, 8), Some(3));
    }
}
