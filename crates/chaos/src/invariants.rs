//! The whole-stack invariant suite a chaos run must satisfy at quiesce.
//!
//! Five families, each a [`InvariantVerdict`]:
//!
//! 1. **Terminal outcomes** — every submitted request reaches *exactly
//!    one* terminal outcome: a typed admission error at submit, or a
//!    single response (`Ok`, `DeadlineExceeded`, `Internal`,
//!    `WorkerLost`) on its handle. Never zero (a hang), never two.
//! 2. **Conservation** — the serve ledger reconciles
//!    ([`ReconcileReport::is_balanced`]): admitted = completed +
//!    deadline-drops + internal + in-queue, with every streaming
//!    aggregate agreeing with every other.
//! 3. **Oracle bit-exactness** — every `Ok` response's output tensor
//!    bit-matches the scalar [`OracleExecutor`] run of a version ever
//!    published for that model. Worker panics, wire faults, and
//!    mid-flight swaps may reject requests, but they may never corrupt
//!    an answer or fabricate weights no version ever had.
//! 4. **Gauges clear** — at final quiesce the admission queue and the
//!    connection gauge are back to zero ([`ReconcileReport::gauges_clear`]).
//! 5. **Summary sanity** — no aggregate is self-contradictory: quantiles
//!    are ordered (p50 ≤ p95 ≤ p99 ≤ max), per-version batch counts sum
//!    to the global one, connection counters round-trip, the observed
//!    queue high-water mark respects the configured bound. (All ledger
//!    counters are unsigned, so "no gauge goes negative" is enforced at
//!    the type level; what *can* go wrong is drift between aggregates,
//!    which is exactly what these equalities catch.)
//! 6. **Trace integrity** — every trace the sampled [`TraceBuffer`]
//!    collected is internally consistent: spans in pipeline-stage order
//!    with non-decreasing timestamps, and (while nothing has been
//!    evicted) any trace that reached response-scatter carries all five
//!    stages. Which requests complete is timing-dependent, so only the
//!    boolean verdict is log-worthy — the counts stay in `detail`.

use std::collections::HashMap;

use odq_conformance::{OracleExecutor, OracleKind};
use odq_nn::models::{Model, ModelCfg};
use odq_nn::Arch;
use odq_obs::TraceBuffer;
use odq_serve::{LatencyStats, ReconcileReport, SpanStage, StatsSummary};
use odq_tensor::Tensor;

use crate::plan::MODEL_NAMES;

/// One invariant's outcome. `name` and `pass` are deterministic for a
/// given seed (and go into the replayable event log); `detail` may carry
/// timing-dependent counts for humans and stays out of the log.
#[derive(Clone, Debug)]
pub struct InvariantVerdict {
    /// Which invariant (stable, log-worthy).
    pub name: String,
    /// Did it hold?
    pub pass: bool,
    /// Human-facing specifics (may contain timing-dependent counts).
    pub detail: String,
}

impl InvariantVerdict {
    fn new(name: impl Into<String>, pass: bool, detail: impl Into<String>) -> Self {
        Self { name: name.into(), pass, detail: detail.into() }
    }
}

/// The model every chaos checkpoint builds: a tiny LeNet-5 (8×8 single-
/// channel input, 4 classes) whose weights are fully determined by
/// `seed` — so the oracle can rebuild any published version from the
/// seed recorded in the plan.
pub fn build_model(seed: u64) -> Model {
    let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
    cfg.input_hw = 8;
    cfg.in_channels = 1;
    cfg.seed = seed;
    Model::build(cfg)
}

/// The deterministic input image for `(model_idx, image_seed)`.
pub fn image(model_idx: usize, image_seed: u64) -> Tensor {
    let s = image_seed as usize + 31 * model_idx;
    let v: Vec<f32> = (0..64).map(|i| ((i * 7 + s * 13) % 97) as f32 / 97.0).collect();
    Tensor::from_vec(vec![1, 1, 8, 8], v)
}

/// An `Ok` response captured during the run, ready for oracle matching.
#[derive(Clone, Debug)]
pub struct ObservedResponse {
    /// Index into [`MODEL_NAMES`].
    pub model: usize,
    /// Image seed the request carried.
    pub image_seed: u64,
    /// The response tensor's f32 bit patterns.
    pub bits: Vec<u32>,
}

/// Bit pattern of a tensor's payload.
pub fn tensor_bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Memoized oracle forwards: models are rebuilt from recorded weight
/// seeds, outputs cached per (model_idx, version, image_seed) so a soak
/// with thousands of responses pays for each distinct forward once.
pub struct OracleCache {
    kind: OracleKind,
    models: HashMap<(usize, u64), Model>,
    forwards: HashMap<(usize, u64, u64), Vec<u32>>,
}

impl OracleCache {
    /// A cache for one schedule's oracle configuration.
    pub fn new(kind: OracleKind) -> Self {
        Self { kind, models: HashMap::new(), forwards: HashMap::new() }
    }

    /// Oracle output bits for `(model_idx, version)` (weights from
    /// `weight_seed`) applied to `image(model_idx, image_seed)`.
    pub fn bits(
        &mut self,
        model_idx: usize,
        version: u64,
        weight_seed: u64,
        image_seed: u64,
    ) -> &[u32] {
        let fwd_key = (model_idx, version, image_seed);
        if !self.forwards.contains_key(&fwd_key) {
            let model =
                self.models.entry((model_idx, version)).or_insert_with(|| build_model(weight_seed));
            let y = model.forward_eval(
                &image(model_idx, image_seed),
                &mut OracleExecutor { kind: self.kind },
            );
            self.forwards.insert(fwd_key, tensor_bits(&y));
        }
        &self.forwards[&fwd_key]
    }
}

/// Every version ever published per model: `(version, weight_seed)` in
/// publish order. Retired versions stay listed — in-flight requests and
/// warm rollbacks can legitimately complete on them.
pub type PublishedVersions = Vec<Vec<(u64, u64)>>;

/// Invariant 3: each observed response bit-matches the oracle for at
/// least one published version of its model.
///
/// "At least", not "exactly": under coarse quantization two distinct
/// checkpoints can legitimately collapse to bit-identical outputs for
/// some input (observed in practice with DRQ int8/int4 on the tiny chaos
/// model), so a multi-match is reported in the detail but is not a
/// failure. Zero matches — an answer no published version could have
/// produced — always is.
pub fn check_oracle(
    name: impl Into<String>,
    observed: &[ObservedResponse],
    published: &PublishedVersions,
    cache: &mut OracleCache,
) -> InvariantVerdict {
    let mut mismatched = 0usize;
    let mut ambiguous = 0usize;
    for r in observed {
        let mut matches = 0usize;
        for &(version, weight_seed) in &published[r.model] {
            if cache.bits(r.model, version, weight_seed, r.image_seed) == r.bits.as_slice() {
                matches += 1;
            }
        }
        match matches {
            1 => {}
            0 => mismatched += 1,
            _ => ambiguous += 1,
        }
    }
    InvariantVerdict::new(
        name,
        mismatched == 0,
        format!(
            "{} responses checked, {mismatched} matched no published version \
             ({ambiguous} collided onto more than one)",
            observed.len()
        ),
    )
}

/// Invariant 6: every sampled trace is internally consistent.
///
/// Monotonicity must hold unconditionally — the worker records each span
/// with the timestamp of the pipeline step it marks, so a trace whose
/// spans run backwards means the pipeline is mis-threaded. Completeness
/// (scatter implies all five stages) is only checkable while the ring
/// has evicted nothing; once eviction starts, early spans of a live
/// trace may be legitimately gone.
pub fn check_traces(name: impl Into<String>, traces: &TraceBuffer) -> InvariantVerdict {
    let views = traces.traces(usize::MAX);
    let mut non_monotone = 0usize;
    let mut torn = 0usize;
    for t in &views {
        if !t.is_monotone() {
            non_monotone += 1;
        }
        let scattered = t.spans.iter().any(|s| s.stage == SpanStage::ResponseScatter);
        if traces.evicted() == 0 && scattered && !t.is_complete() {
            torn += 1;
        }
    }
    InvariantVerdict::new(
        name,
        non_monotone == 0 && torn == 0,
        format!(
            "{} traces sampled, {non_monotone} with non-monotone spans, \
             {torn} scattered-but-incomplete ({} spans evicted)",
            views.len(),
            traces.evicted()
        ),
    )
}

/// Invariant 2 (and 4 when `require_gauges_clear`): the ledger
/// reconciles, and optionally every in-flight gauge is back to zero.
pub fn check_reconcile(
    name: impl Into<String>,
    r: &ReconcileReport,
    require_gauges_clear: bool,
) -> InvariantVerdict {
    let pass = r.is_balanced() && (!require_gauges_clear || r.gauges_clear());
    InvariantVerdict::new(name, pass, format!("{r}"))
}

fn quantiles_ordered(l: &LatencyStats) -> bool {
    l.count == 0 || (l.p50 <= l.p95 && l.p95 <= l.p99 && l.p99 <= l.max)
}

/// Invariant 5: the final summary's aggregates agree with each other.
pub fn check_summary_sanity(
    name: impl Into<String>,
    s: &StatsSummary,
    queue_depth_cfg: u64,
) -> InvariantVerdict {
    let mut problems: Vec<String> = Vec::new();
    for (label, l) in
        [("latency", &s.latency), ("queue_wait", &s.queue_wait), ("service", &s.service)]
    {
        if !quantiles_ordered(l) {
            problems.push(format!("{label} quantiles out of order"));
        }
    }
    if s.models.iter().map(|m| m.batches).sum::<u64>() != s.batches {
        problems.push("per-version batch counts do not sum to the global counter".into());
    }
    if s.models.iter().any(|m| !MODEL_NAMES.contains(&m.model.as_str())) {
        problems.push("a version row names a model the schedule never served".into());
    }
    if s.max_queue_depth > queue_depth_cfg {
        problems.push(format!(
            "queue high-water {} exceeds configured depth {queue_depth_cfg}",
            s.max_queue_depth
        ));
    }
    if s.net.connections_opened < s.net.connections_closed {
        problems.push("more connections closed than opened".into());
    }
    if s.net.frames_out > 0 && s.net.bytes_out == 0 {
        problems.push("frames out without bytes out".into());
    }
    if s.worker_restarts != s.worker_panics {
        problems.push(format!(
            "after shutdown every panic must have restarted: {} panics, {} restarts",
            s.worker_panics, s.worker_restarts
        ));
    }
    if (s.mean_batch_size > 0.0) != (s.batches > 0) {
        problems.push("mean batch size disagrees with the batch counter".into());
    }
    let pass = problems.is_empty();
    InvariantVerdict::new(
        name,
        pass,
        if pass { "all aggregates agree".into() } else { problems.join("; ") },
    )
}

/// Invariant 1, tallied by the driver as handles resolve.
pub fn check_outcomes(
    name: impl Into<String>,
    unanswered: u64,
    double_answered: u64,
) -> InvariantVerdict {
    InvariantVerdict::new(
        name,
        unanswered == 0 && double_answered == 0,
        format!("{unanswered} requests never answered, {double_answered} answered twice"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_cache_matches_direct_forward_and_flags_mismatch() {
        let mut cache = OracleCache::new(OracleKind::Float);
        let published: PublishedVersions = vec![vec![(1, 77)], vec![]];
        let model = build_model(77);
        let y = model.forward_eval(&image(0, 3), &mut OracleExecutor { kind: OracleKind::Float });
        let ok = ObservedResponse { model: 0, image_seed: 3, bits: tensor_bits(&y) };
        let v = check_oracle("t", std::slice::from_ref(&ok), &published, &mut cache);
        assert!(v.pass, "{}", v.detail);

        let mut bad = ok;
        bad.bits[0] ^= 1;
        let v = check_oracle("t", &[bad], &published, &mut cache);
        assert!(!v.pass, "a flipped bit must fail the oracle invariant");
    }

    #[test]
    fn reconcile_check_respects_gauges_flag() {
        let r = ReconcileReport {
            admitted: 3,
            completed: 0,
            rejected_deadline: 0,
            internal_errors: 0,
            in_queue: 3,
            rejected_queue_full: 0,
            rejected_invalid: 0,
            rejected_shutdown: 0,
            latency_samples: 0,
            per_version_completed: 0,
            batches: 0,
            batch_samples: 0,
            worker_panics: 0,
            worker_restarts: 0,
            active_connections: 0,
            net_open_minus_closed: 0,
        };
        assert!(check_reconcile("t", &r, false).pass, "balanced with in-flight work");
        assert!(!check_reconcile("t", &r, true).pass, "but gauges are not clear");
    }

    #[test]
    fn outcome_check_fails_on_hangs_and_doubles() {
        assert!(check_outcomes("t", 0, 0).pass);
        assert!(!check_outcomes("t", 1, 0).pass);
        assert!(!check_outcomes("t", 0, 1).pass);
    }
}
