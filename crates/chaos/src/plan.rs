//! Seeded chaos schedules: what happens, in what order, decided up front.
//!
//! A [`ChaosPlan`] is a pure function of a [`ChaosConfig`] (whose printed
//! `u64` seed is the whole replay token): the op sequence, every injected
//! fault, every published checkpoint's weight seed, the canary splits,
//! and the engine under test are all fixed before the stack spins up.
//! Execution timing still varies run to run — batch formation, which
//! batch a probabilistic panic lands on, which requests a deadline
//! catches — but the *schedule* and every decision function inside the
//! stack (fault hooks, traffic splits) are deterministic in the seed,
//! which is what makes a failure replayable.

use odq_conformance::OracleKind;
use odq_net::ConnFault;
use odq_serve::EngineKind;

use crate::rng::{substream, SplitMix64};

/// Model names every schedule serves. Two co-served models, so per-model
/// faults and per-model accounting have something to isolate.
pub const MODEL_NAMES: [&str; 2] = ["alpha", "beta"];

/// Distinct input images per schedule (by image seed). Small, so oracle
/// forwards cache well across repeated submits of the same image.
pub const IMAGE_SEEDS: u64 = 16;

/// One scheduled action against the stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosOp {
    /// Submit one inference for `MODEL_NAMES[model]` with the image
    /// derived from `image_seed`. `deadline_ms` of `Some(0)` is expired
    /// on arrival (must be rejected, never executed).
    Submit {
        /// Index into [`MODEL_NAMES`].
        model: usize,
        /// Input image seed (`0..IMAGE_SEEDS`).
        image_seed: u64,
        /// Optional request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Publish a fresh checkpoint (weights seeded by `model_seed`) and
    /// hot-swap the route to it.
    Deploy {
        /// Index into [`MODEL_NAMES`].
        model: usize,
        /// Weight seed for the published checkpoint.
        model_seed: u64,
    },
    /// Roll the route back to the warm previous deployment (typed failure
    /// when there is none — also part of the schedule).
    Rollback {
        /// Index into [`MODEL_NAMES`].
        model: usize,
    },
    /// Publish a candidate and canary `percent`% of traffic onto it.
    Canary {
        /// Index into [`MODEL_NAMES`].
        model: usize,
        /// Weight seed for the candidate checkpoint.
        model_seed: u64,
        /// Traffic percentage routed to the candidate.
        percent: u64,
    },
    /// Clear any canary; all traffic returns to current.
    ClearCanary {
        /// Index into [`MODEL_NAMES`].
        model: usize,
    },
    /// Retire the registry version *behind* the latest (the warm-previous
    /// edge: the route's kept `Arc` must still roll back bit-exactly).
    RetirePrevious {
        /// Index into [`MODEL_NAMES`].
        model: usize,
    },
    /// Drop the current client connection and open a new one through the
    /// fault proxy, which applies `fault` to it. No-op in-process.
    Reconnect {
        /// The sabotage the proxy applies to the new connection.
        fault: ConnFault,
    },
    /// Wait out every outstanding response handle, then run the invariant
    /// suite against the quiescent stack.
    Quiesce,
}

/// Knobs for one chaos schedule. The `seed` alone determines the plan;
/// the rest shape the stack under test.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Root seed — the printed replay token.
    pub seed: u64,
    /// Scheduled ops (a final `Quiesce` is always appended).
    pub ops: usize,
    /// Drive the stack through the ODQ1 TCP front-end and the fault
    /// proxy instead of in-process `submit`.
    pub via_net: bool,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Micro-batcher cap.
    pub max_batch: usize,
    /// Admission queue depth.
    pub queue_depth: usize,
    /// Per-batch probability of an injected worker panic
    /// (seeded-deterministic; see `odq_serve::fault::SeededProbFault`).
    pub panic_prob: f64,
}

impl ChaosConfig {
    /// A bounded default schedule for `seed`: enough ops to exercise
    /// every fault class, small enough for `cargo test`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ops: 120,
            via_net: false,
            workers: 2,
            max_batch: 4,
            queue_depth: 64,
            panic_prob: 0.04,
        }
    }

    /// Same schedule shape, driven over TCP through the fault proxy.
    pub fn via_net(mut self) -> Self {
        self.via_net = true;
        self
    }
}

/// A fully materialized schedule: the ops, the engine under test, its
/// matching oracle, and the initial checkpoint seeds.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// The root seed the plan was generated from.
    pub seed: u64,
    /// The engine every worker runs.
    pub engine: EngineKind,
    /// The conformance oracle configured to match `engine` bit for bit.
    pub oracle: OracleKind,
    /// Initial weight seed per [`MODEL_NAMES`] entry (version 1).
    pub initial_seeds: Vec<u64>,
    /// The op sequence (ends with a `Quiesce`).
    pub ops: Vec<ChaosOp>,
}

/// Pick the (engine, oracle) pair for a schedule. Every pair here is one
/// the conformance suite has already proven bit-identical end to end
/// (`tests/conformance.rs::serving_matches_oracle_for_single_engine_kinds`).
fn engine_for(pick: u64) -> (EngineKind, OracleKind) {
    match pick % 4 {
        0 => (EngineKind::Float, OracleKind::Float),
        1 => (EngineKind::Static { bits: 8 }, OracleKind::Static { bits: 8 }),
        2 => (EngineKind::Odq { threshold: 0.3 }, OracleKind::Odq { threshold: 0.3 }),
        _ => (EngineKind::Drq { input_threshold: 0.25 }, OracleKind::Drq { input_threshold: 0.25 }),
    }
}

impl ChaosPlan {
    /// Materialize the schedule for `cfg` — a pure function of it.
    pub fn generate(cfg: &ChaosConfig) -> Self {
        let mut rng = SplitMix64::new(substream(cfg.seed, 0x9a11));
        let (engine, oracle) = engine_for(rng.next_u64());
        let initial_seeds: Vec<u64> = MODEL_NAMES.iter().map(|_| rng.next_u64() | 1).collect();

        let mut ops = Vec::with_capacity(cfg.ops + 1);
        for _ in 0..cfg.ops {
            let roll = rng.next_f64();
            let model = rng.gen_range(0, MODEL_NAMES.len() as u64) as usize;
            let op = if roll < 0.70 {
                let deadline_ms = if rng.chance(0.05) {
                    Some(0) // Expired on arrival.
                } else if rng.chance(0.10) {
                    Some(rng.gen_range(200, 800))
                } else {
                    None
                };
                ChaosOp::Submit { model, image_seed: rng.gen_range(0, IMAGE_SEEDS), deadline_ms }
            } else if roll < 0.76 {
                ChaosOp::Deploy { model, model_seed: rng.next_u64() | 1 }
            } else if roll < 0.80 {
                ChaosOp::Rollback { model }
            } else if roll < 0.84 {
                ChaosOp::Canary {
                    model,
                    model_seed: rng.next_u64() | 1,
                    percent: rng.gen_range(10, 91),
                }
            } else if roll < 0.87 {
                ChaosOp::ClearCanary { model }
            } else if roll < 0.90 {
                ChaosOp::RetirePrevious { model }
            } else if roll < 0.96 && cfg.via_net {
                ChaosOp::Reconnect { fault: pick_fault(&mut rng) }
            } else {
                ChaosOp::Quiesce
            };
            ops.push(op);
        }
        ops.push(ChaosOp::Quiesce);

        Self { seed: cfg.seed, engine, oracle, initial_seeds, ops }
    }

    /// The per-connection fault list the proxy needs, in accept order:
    /// the initial connection is clean, each `Reconnect` opens a
    /// connection carrying its planned fault, and each `Quiesce` opens a
    /// clean one (the driver cycles the connection at every quiesce so a
    /// wire-wedged request resolves typed instead of hanging).
    pub fn connection_faults(&self) -> Vec<ConnFault> {
        let mut faults = vec![ConnFault::Pass];
        for op in &self.ops {
            match op {
                ChaosOp::Reconnect { fault } => faults.push(*fault),
                ChaosOp::Quiesce => faults.push(ConnFault::Pass),
                _ => {}
            }
        }
        faults
    }
}

fn pick_fault(rng: &mut SplitMix64) -> ConnFault {
    match rng.gen_range(0, 10) {
        0..=2 => ConnFault::Pass,
        3 | 4 => ConnFault::TruncateAfter(rng.gen_range(1, 600) as usize),
        5 | 6 => ConnFault::CorruptHeaderByte {
            offset: rng.gen_range(0, 9) as usize,
            mask: (1u8 << rng.gen_range(0, 8)).max(1),
        },
        7 | 8 => ConnFault::StallAt {
            at: rng.gen_range(0, 200) as usize,
            millis: rng.gen_range(20, 120),
        },
        _ => ConnFault::CloseOnAccept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = ChaosPlan::generate(&ChaosConfig::new(0xabc));
        let b = ChaosPlan::generate(&ChaosConfig::new(0xabc));
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.initial_seeds, b.initial_seeds);
        assert_eq!(a.engine.label(), b.engine.label());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = ChaosPlan::generate(&ChaosConfig::new(1));
        let b = ChaosPlan::generate(&ChaosConfig::new(2));
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn plans_cover_the_op_space() {
        // Over a handful of seeds, every op class and every fault class
        // must appear — otherwise the distribution has silently collapsed
        // and the harness stops testing what it claims to.
        let mut submits = 0;
        let mut deploys = 0;
        let mut rollbacks = 0;
        let mut canaries = 0;
        let mut clears = 0;
        let mut retires = 0;
        let mut reconnects = 0;
        let mut quiesces = 0;
        for seed in 0..24u64 {
            let plan = ChaosPlan::generate(&ChaosConfig::new(seed).via_net());
            for op in &plan.ops {
                match op {
                    ChaosOp::Submit { .. } => submits += 1,
                    ChaosOp::Deploy { .. } => deploys += 1,
                    ChaosOp::Rollback { .. } => rollbacks += 1,
                    ChaosOp::Canary { .. } => canaries += 1,
                    ChaosOp::ClearCanary { .. } => clears += 1,
                    ChaosOp::RetirePrevious { .. } => retires += 1,
                    ChaosOp::Reconnect { .. } => reconnects += 1,
                    ChaosOp::Quiesce => quiesces += 1,
                }
            }
        }
        for (n, what) in [
            (submits, "submits"),
            (deploys, "deploys"),
            (rollbacks, "rollbacks"),
            (canaries, "canaries"),
            (clears, "clear-canaries"),
            (retires, "retires"),
            (reconnects, "reconnects"),
            (quiesces, "quiesces"),
        ] {
            assert!(n > 0, "24 plans produced zero {what}");
        }
        assert!(submits > deploys, "load dominates churn");
    }

    #[test]
    fn ops_always_end_in_quiesce() {
        for seed in 0..8u64 {
            let plan = ChaosPlan::generate(&ChaosConfig::new(seed));
            assert_eq!(plan.ops.last(), Some(&ChaosOp::Quiesce));
        }
    }

    #[test]
    fn in_process_plans_schedule_no_reconnects() {
        for seed in 0..8u64 {
            let plan = ChaosPlan::generate(&ChaosConfig::new(seed));
            assert!(!plan.ops.iter().any(|op| matches!(op, ChaosOp::Reconnect { .. })));
            // Only clean connections (one initial + one per quiesce cycle).
            assert!(plan.connection_faults().iter().all(|f| *f == ConnFault::Pass));
        }
    }
}
