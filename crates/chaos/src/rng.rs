//! The harness's own tiny deterministic RNG.
//!
//! Chaos schedules must replay bit-identically from a printed `u64` seed,
//! with no dependence on global RNG state, thread timing, or crate
//! versions — so the harness carries its own splitmix64 (the same
//! finalizer `odq_serve::TrafficSplit` and `odq_serve::fault` use) rather
//! than depending on an external RNG whose stream might shift.

/// The splitmix64 finalizer: a bijective avalanche over `u64`.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derive an independent sub-seed from a root seed and a stream label.
/// Pure, so every derived stream is a fixed function of the printed seed.
pub fn substream(seed: u64, stream: u64) -> u64 {
    mix(seed ^ mix(stream))
}

/// A splitmix64 sequence generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the draw.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(substream(42, 1));
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "substreams diverge from the root stream");
    }

    #[test]
    fn ranges_and_chances_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.gen_range(3, 9);
            assert!((3..9).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        let mut r = SplitMix64::new(8);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
