//! The chaos driver: execute a [`ChaosPlan`] against a live stack and
//! check invariants at every quiesce point.
//!
//! The driver is single-threaded by design: every registry publish,
//! route operation, and connection cycle happens in op order, so their
//! outcomes (version numbers, typed rejections) are deterministic and go
//! into the replayable event log. Traffic *outcomes* — which batch a
//! probabilistic panic lands on, which requests a deadline catches, how
//! many admissions a full queue refuses — depend on thread timing and
//! are tallied but never logged: the event log contains only what two
//! runs of the same seed must agree on.

use std::sync::Arc;
use std::time::{Duration, Instant};

use odq_net::{FaultyTransport, NetClient, NetConfig, NetServer};
use odq_obs::TraceBuffer;
use odq_registry::ModelRegistry;
use odq_serve::{
    FaultHook, InferRequest, ReconcileReport, ResponseHandle, SeededProbFault, ServeConfig,
    ServeError, Server, StatsSummary, TrafficSplit,
};

use crate::invariants::{
    build_model, check_oracle, check_outcomes, check_reconcile, check_summary_sanity, check_traces,
    image, tensor_bits, InvariantVerdict, ObservedResponse, OracleCache, PublishedVersions,
};
use crate::plan::{ChaosConfig, ChaosOp, ChaosPlan, MODEL_NAMES};
use crate::rng::substream;

/// How long a quiesce waits for outstanding handles before declaring a
/// hang (itself an invariant failure) — generous against CI scheduling
/// noise, tight enough that a real wedge fails the run promptly.
const RESOLVE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a reconcile check retries before reporting the last
/// (unbalanced) snapshot. The ledger records a worker panic *after*
/// answering the batch, so a client that has seen every outcome can be
/// microseconds ahead of the counters.
const SETTLE_TIMEOUT: Duration = Duration::from_secs(3);

/// Client-side terminal-outcome tallies. Timing-dependent (except
/// `submits`), so reported but never written to the event log.
#[derive(Clone, Copy, Debug, Default)]
pub struct OutcomeTally {
    /// Submit ops executed.
    pub submits: u64,
    /// Typed errors at the `submit` call itself.
    pub submit_errors: u64,
    /// `Ok` responses.
    pub completed: u64,
    /// `DeadlineExceeded` through the handle.
    pub deadline: u64,
    /// `Internal` (worker panic) through the handle.
    pub internal: u64,
    /// `WorkerLost` (connection/pipeline died under the request).
    pub worker_lost: u64,
    /// Other typed rejections through the handle (queue full over the
    /// wire, shutdown, ...).
    pub rejected: u64,
    /// Handles that never resolved within the quiesce timeout — always
    /// an invariant failure.
    pub unanswered: u64,
    /// Handles that yielded a second outcome — always an invariant
    /// failure.
    pub double_answered: u64,
}

/// Everything a chaos run reports back.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The seed that replays this schedule.
    pub seed: u64,
    /// Label of the engine under test.
    pub engine_label: String,
    /// The deterministic event log: schedule header, op-by-op registry
    /// and route outcomes, invariant verdicts. Two runs of the same
    /// config produce identical logs (compared by the replay test).
    pub event_log: Vec<String>,
    /// Every invariant checked, in order.
    pub verdicts: Vec<InvariantVerdict>,
    /// Client-side outcome tallies (timing-dependent).
    pub tally: OutcomeTally,
    /// The stack's final ledger summary.
    pub summary: StatsSummary,
    /// `Ok` responses that went through oracle matching.
    pub responses_checked: usize,
}

impl ChaosReport {
    /// Did every invariant hold?
    pub fn all_pass(&self) -> bool {
        self.verdicts.iter().all(|v| v.pass)
    }

    /// The invariants that failed (empty when [`all_pass`](Self::all_pass)).
    pub fn failures(&self) -> Vec<&InvariantVerdict> {
        self.verdicts.iter().filter(|v| !v.pass).collect()
    }
}

/// The transport the schedule runs through.
enum Stack {
    /// In-process `Server::submit`.
    Local(Server),
    /// TCP through the fault proxy: client → proxy → NetServer → Server.
    Net { net: NetServer, proxy: FaultyTransport, client: Option<NetClient> },
}

impl Stack {
    fn server(&self) -> &Server {
        match self {
            Stack::Local(s) => s,
            Stack::Net { net, .. } => net.server(),
        }
    }

    fn submit(&self, req: InferRequest) -> Result<ResponseHandle, ServeError> {
        match self {
            Stack::Local(s) => s.submit(req),
            Stack::Net { client, .. } => {
                client.as_ref().expect("client present between cycles").submit(req)
            }
        }
    }

    /// Net mode: close the current connection (forcing every handle it
    /// still owes to a typed resolution) and open the next one; the
    /// proxy assigns that connection's planned fault by accept order.
    /// No-op in-process.
    fn cycle_connection(&mut self) {
        if let Stack::Net { proxy, client, .. } = self {
            if let Some(c) = client.take() {
                c.close();
            }
            *client =
                Some(NetClient::connect(proxy.local_addr()).expect("reconnect through live proxy"));
        }
    }

    /// Tear everything down gracefully; the final ledger summary.
    fn finish(self) -> StatsSummary {
        match self {
            Stack::Local(s) => s.shutdown(),
            Stack::Net { net, proxy, client } => {
                if let Some(c) = client {
                    c.close();
                }
                let summary = net.shutdown();
                proxy.shutdown();
                summary
            }
        }
    }
}

/// One in-flight request the driver is tracking.
struct Out {
    model: usize,
    image_seed: u64,
    handle: ResponseHandle,
}

/// Run one seeded chaos schedule to completion and report.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let plan = ChaosPlan::generate(cfg);
    let mut log: Vec<String> = vec![format!(
        "chaos seed=0x{seed:016x} ops={ops} net={net} engine={engine} workers={w} \
         max_batch={mb} queue_depth={qd} panic_prob={pp}",
        seed = cfg.seed,
        ops = plan.ops.len(),
        net = cfg.via_net,
        engine = plan.engine.label(),
        w = cfg.workers,
        mb = cfg.max_batch,
        qd = cfg.queue_depth,
        pp = cfg.panic_prob,
    )];

    // --- Build the stack. -------------------------------------------------
    let registry = Arc::new(ModelRegistry::new());
    let fault_hook: Option<Arc<dyn FaultHook>> = (cfg.panic_prob > 0.0).then(|| {
        Arc::new(SeededProbFault::new(substream(cfg.seed, 0xFA), cfg.panic_prob))
            as Arc<dyn FaultHook>
    });
    // Tracing rides along under chaos: sampling is a pure hash of the
    // trace id, so turning it on cannot perturb the replayable event
    // log, and the final trace-integrity invariant checks what it saw.
    let traces = Arc::new(TraceBuffer::new(substream(cfg.seed, 0x0B5), 4, 4096));
    let serve_cfg = ServeConfig {
        queue_depth: cfg.queue_depth,
        max_batch: cfg.max_batch,
        max_wait: Duration::from_micros(300),
        workers: cfg.workers,
        default_deadline: None,
        simulate_accel: false,
        fault_panic_on_batch: None,
        fault_hook,
        trace: Some(traces.clone()),
        layer_profiling: true,
    };
    let mut builder =
        Server::builder(serve_cfg).engine(plan.engine.clone()).registry(Arc::clone(&registry));
    for (i, name) in MODEL_NAMES.iter().enumerate() {
        builder = builder.model(*name, build_model(plan.initial_seeds[i]));
    }
    let server = builder.start();
    let mut stack = if cfg.via_net {
        let net =
            NetServer::bind(server, "127.0.0.1:0", NetConfig::default()).expect("bind net server");
        let proxy = FaultyTransport::bind(net.local_addr(), plan.connection_faults())
            .expect("bind fault proxy");
        let client = NetClient::connect(proxy.local_addr()).expect("initial connect");
        Stack::Net { net, proxy, client: Some(client) }
    } else {
        Stack::Local(server)
    };

    // --- Execute the schedule. --------------------------------------------
    // Every version ever published, per model, with its weight seed; the
    // oracle's candidate set.
    let mut published: PublishedVersions =
        MODEL_NAMES.iter().enumerate().map(|(i, _)| vec![(1u64, plan.initial_seeds[i])]).collect();
    let mut oracle = OracleCache::new(plan.oracle);
    let mut outstanding: Vec<Out> = Vec::new();
    let mut observed: Vec<ObservedResponse> = Vec::new();
    let mut tally = OutcomeTally::default();
    let mut verdicts: Vec<InvariantVerdict> = Vec::new();
    let mut quiesce_n = 0usize;

    for (i, op) in plan.ops.iter().enumerate() {
        match op {
            ChaosOp::Submit { model, image_seed, deadline_ms } => {
                log.push(format!(
                    "op#{i:03} submit {} img={image_seed} deadline={deadline_ms:?}",
                    MODEL_NAMES[*model]
                ));
                tally.submits += 1;
                let mut req = InferRequest::new(MODEL_NAMES[*model], image(*model, *image_seed));
                if let Some(ms) = deadline_ms {
                    req = req.with_deadline(Duration::from_millis(*ms));
                }
                match stack.submit(req) {
                    Ok(handle) => {
                        outstanding.push(Out { model: *model, image_seed: *image_seed, handle });
                    }
                    Err(_) => tally.submit_errors += 1,
                }
            }
            ChaosOp::Deploy { model, model_seed } => {
                let name = MODEL_NAMES[*model];
                match registry.publish(name, build_model(*model_seed), vec![]) {
                    Ok(v) => {
                        published[*model].push((v, *model_seed));
                        match stack.server().deploy(name, v) {
                            Ok(()) => log.push(format!("op#{i:03} deploy {name} -> v{v}")),
                            Err(e) => {
                                log.push(format!("op#{i:03} deploy {name} v{v} rejected: {e}"))
                            }
                        }
                    }
                    Err(e) => log.push(format!("op#{i:03} publish {name} rejected: {e}")),
                }
            }
            ChaosOp::Rollback { model } => {
                let name = MODEL_NAMES[*model];
                match stack.server().rollback(name) {
                    Ok(v) => log.push(format!("op#{i:03} rollback {name} -> v{v}")),
                    Err(e) => log.push(format!("op#{i:03} rollback {name} rejected: {e}")),
                }
            }
            ChaosOp::Canary { model, model_seed, percent } => {
                let name = MODEL_NAMES[*model];
                match registry.publish(name, build_model(*model_seed), vec![]) {
                    Ok(v) => {
                        published[*model].push((v, *model_seed));
                        let split = TrafficSplit::new(*percent as f64 / 100.0)
                            .with_seed(substream(cfg.seed, 0xCA00 ^ i as u64));
                        match stack.server().canary(name, v, split) {
                            Ok(()) => {
                                log.push(format!("op#{i:03} canary {name} v{v} at {percent}%"))
                            }
                            Err(e) => {
                                log.push(format!("op#{i:03} canary {name} v{v} rejected: {e}"))
                            }
                        }
                    }
                    Err(e) => log.push(format!("op#{i:03} publish {name} rejected: {e}")),
                }
            }
            ChaosOp::ClearCanary { model } => {
                let name = MODEL_NAMES[*model];
                match stack.server().clear_canary(name) {
                    Ok(()) => log.push(format!("op#{i:03} clear-canary {name}")),
                    Err(e) => log.push(format!("op#{i:03} clear-canary {name} rejected: {e}")),
                }
            }
            ChaosOp::RetirePrevious { model } => {
                let name = MODEL_NAMES[*model];
                let prev = registry.latest(name).and_then(|l| registry.previous(name, l));
                match prev {
                    Some(p) => match registry.retire(name, p) {
                        Ok(()) => log.push(format!("op#{i:03} retire {name} v{p}")),
                        Err(e) => log.push(format!("op#{i:03} retire {name} v{p} rejected: {e}")),
                    },
                    None => log.push(format!("op#{i:03} retire {name}: nothing to retire")),
                }
            }
            ChaosOp::Reconnect { fault } => {
                log.push(format!("op#{i:03} reconnect fault={fault:?}"));
                stack.cycle_connection();
            }
            ChaosOp::Quiesce => {
                resolve_outstanding(&mut stack, &mut outstanding, &mut tally, &mut observed);
                let r = settled_reconcile(stack.server());
                let q = quiesce_n;
                quiesce_n += 1;
                let vs = [
                    check_outcomes(
                        format!("quiesce#{q} exactly-one-outcome"),
                        tally.unanswered,
                        tally.double_answered,
                    ),
                    check_reconcile(format!("quiesce#{q} reconcile"), &r, false),
                    check_oracle(format!("quiesce#{q} oracle"), &observed, &published, &mut oracle),
                ];
                for v in vs {
                    log.push(format!(
                        "op#{i:03} invariant {}: {}",
                        v.name,
                        if v.pass { "PASS" } else { "FAIL" }
                    ));
                    verdicts.push(v);
                }
            }
        }
    }

    // --- Tear down and run the final invariants. --------------------------
    let summary = stack.finish();
    let finals = [
        check_reconcile("final reconcile+gauges", &summary.reconcile(), true),
        check_summary_sanity("final summary-sanity", &summary, cfg.queue_depth as u64),
        check_oracle("final oracle", &observed, &published, &mut oracle),
        check_traces("final trace-integrity", &traces),
    ];
    for v in finals {
        log.push(format!("invariant {}: {}", v.name, if v.pass { "PASS" } else { "FAIL" }));
        verdicts.push(v);
    }

    ChaosReport {
        seed: cfg.seed,
        engine_label: plan.engine.label().into_owned(),
        event_log: log,
        verdicts,
        tally,
        summary,
        responses_checked: observed.len(),
    }
}

/// Drain every outstanding handle to its single terminal outcome.
///
/// Polls `try_wait` (so a genuine hang becomes a counted invariant
/// failure instead of wedging the harness). In net mode the connection is
/// then cycled — closing it forces any handle the wire swallowed
/// (truncated frame, corrupted header wedging the server mid-read) to a
/// typed `WorkerLost` — and stragglers get one more polling round.
fn resolve_outstanding(
    stack: &mut Stack,
    outstanding: &mut Vec<Out>,
    tally: &mut OutcomeTally,
    observed: &mut Vec<ObservedResponse>,
) {
    poll_outstanding(outstanding, tally, observed, RESOLVE_TIMEOUT);
    // Unconditional in net mode, even with nothing outstanding: each
    // quiesce consumes exactly one proxy connection, keeping the plan's
    // accept-order fault assignment deterministic.
    stack.cycle_connection();
    if !outstanding.is_empty() {
        poll_outstanding(outstanding, tally, observed, RESOLVE_TIMEOUT);
    }
    tally.unanswered += outstanding.len() as u64;
    outstanding.clear();
}

fn poll_outstanding(
    outstanding: &mut Vec<Out>,
    tally: &mut OutcomeTally,
    observed: &mut Vec<ObservedResponse>,
    timeout: Duration,
) {
    let start = Instant::now();
    while !outstanding.is_empty() && start.elapsed() < timeout {
        outstanding.retain(|out| {
            let Some(outcome) = out.handle.try_wait() else { return true };
            match outcome {
                Ok(resp) => {
                    tally.completed += 1;
                    observed.push(ObservedResponse {
                        model: out.model,
                        image_seed: out.image_seed,
                        bits: tensor_bits(&resp.output),
                    });
                }
                Err(ServeError::DeadlineExceeded) => tally.deadline += 1,
                Err(ServeError::Internal) => tally.internal += 1,
                Err(ServeError::WorkerLost) => tally.worker_lost += 1,
                Err(_) => tally.rejected += 1,
            }
            // The one response slot is spent: a second outcome (beyond
            // the channel-closed artifact) is a duplicated answer.
            if !matches!(out.handle.try_wait(), None | Some(Err(ServeError::WorkerLost))) {
                tally.double_answered += 1;
            }
            false
        });
        if !outstanding.is_empty() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Read the reconcile report, retrying briefly until it balances with an
/// empty queue: the ledger's panic accounting trails the answered
/// requests by design (see [`RESOLVE_TIMEOUT`] docs), and in net mode a
/// cut connection resolves client handles while the server is still
/// finishing the batch.
fn settled_reconcile(server: &Server) -> ReconcileReport {
    let start = Instant::now();
    loop {
        let r = server.reconcile();
        if (r.is_balanced() && r.in_queue == 0) || start.elapsed() > SETTLE_TIMEOUT {
            return r;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}
