//! Soak the ODQ stack with chaos schedules for a time budget.
//!
//! Walks seeds derived from a root seed (so the whole soak is replayable
//! from one number), alternating in-process and over-the-wire schedules,
//! until the time budget runs out or an invariant fails. On failure it
//! prints the schedule's seed and the exact replay command, then exits 1.
//!
//! ```text
//! chaos_soak [--seed N] [--seconds N] [--ops N]      # soak mode
//! chaos_soak --replay SEED [--net] [--ops N]         # replay one schedule
//! ```

use std::time::{Duration, Instant};

use odq_chaos::{quiet_fault_panics, run_chaos, substream, ChaosConfig};

fn usage() -> ! {
    eprintln!("usage: chaos_soak [--seed N] [--seconds N] [--ops N]");
    eprintln!("       chaos_soak --replay SEED [--net] [--ops N]");
    eprintln!("  --seed N     root seed (default 1); schedule k runs seed substream(N, k)");
    eprintln!("  --seconds N  time budget in seconds (default 30)");
    eprintln!("  --ops N      ops per schedule (default 120)");
    eprintln!("  --replay S   run exactly one schedule with seed S, print its event log");
    eprintln!("  --net        with --replay: drive it over TCP through the fault proxy");
    std::process::exit(2)
}

struct Args {
    seed: u64,
    seconds: u64,
    ops: usize,
    replay: Option<u64>,
    net: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args { seed: 1, seconds: 30, ops: 120, replay: None, net: false };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--net" {
            parsed.net = true;
            continue;
        }
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--seed" => parsed.seed = parse_u64(&value),
            "--seconds" => parsed.seconds = parse_u64(&value),
            "--ops" => parsed.ops = parse_u64(&value) as usize,
            "--replay" => parsed.replay = Some(parse_u64(&value)),
            _ => usage(),
        }
    }
    parsed
}

/// Accept decimal or `0x`-prefixed hex (the harness prints seeds in hex).
fn parse_u64(s: &str) -> u64 {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| usage())
}

fn main() {
    let args = parse_args();
    quiet_fault_panics();

    if let Some(seed) = args.replay {
        let mut cfg = ChaosConfig::new(seed);
        cfg.ops = args.ops;
        if args.net {
            cfg = cfg.via_net();
        }
        println!(
            "replaying seed 0x{seed:016x} ({}, {} ops)",
            if cfg.via_net { "net" } else { "in-process" },
            cfg.ops
        );
        let report = run_chaos(&cfg);
        for line in &report.event_log {
            println!("  {line}");
        }
        if report.all_pass() {
            println!("replay PASSED: {} invariants held", report.verdicts.len());
            return;
        }
        for v in report.failures() {
            eprintln!("FAIL {}: {}", v.name, v.detail);
        }
        std::process::exit(1);
    }

    let (root_seed, seconds, ops) = (args.seed, args.seconds, args.ops);
    println!("chaos_soak: root seed 0x{root_seed:016x}, budget {seconds}s, {ops} ops/schedule");

    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut schedule = 0u64;
    let mut responses = 0usize;
    while Instant::now() < deadline {
        let seed = substream(root_seed, schedule);
        // Alternate transports so both the in-process path and the wire
        // (with its fault proxy) soak in one run.
        let mut cfg = ChaosConfig::new(seed);
        cfg.ops = ops;
        if schedule % 2 == 1 {
            cfg = cfg.via_net();
        }
        println!(
            "schedule #{schedule}: seed 0x{seed:016x} ({})",
            if cfg.via_net { "net" } else { "in-process" }
        );
        let report = run_chaos(&cfg);
        responses += report.responses_checked;
        if !report.all_pass() {
            eprintln!("\nINVARIANT FAILURE in schedule #{schedule}, seed 0x{seed:016x}");
            for v in report.failures() {
                eprintln!("  FAIL {}: {}", v.name, v.detail);
            }
            eprintln!("\nevent log:");
            for line in &report.event_log {
                eprintln!("  {line}");
            }
            eprintln!(
                "\nreplay: cargo run --release -p odq-chaos --bin chaos_soak -- \
                 --replay 0x{seed:016x}{} --ops {ops}",
                if cfg.via_net { " --net" } else { "" }
            );
            eprintln!(
                "or in code: run_chaos(&ChaosConfig::new(0x{seed:016x}){})",
                if cfg.via_net { ".via_net()" } else { "" }
            );
            std::process::exit(1);
        }
        println!(
            "  ok: engine={}, {} invariants, {} responses oracle-checked",
            report.engine_label,
            report.verdicts.len(),
            report.responses_checked
        );
        schedule += 1;
    }
    println!("chaos_soak: {schedule} schedules passed, {responses} responses oracle-checked");
}
