//! odq-chaos: seeded fault-schedule soak harness for the ODQ stack.
//!
//! The harness turns a single printed `u64` seed into a [`ChaosPlan`] — a
//! deterministic interleaving of inference load (mixed deadlines),
//! injected worker panics, connection-level wire faults through a
//! [`FaultyTransport`](odq_net::FaultyTransport) proxy, and registry
//! churn (deploy / canary / rollback / retire) — then runs it against the
//! real stack (net → serve → registry → engine) and checks whole-stack
//! invariants at every quiesce point:
//!
//! 1. every submitted request reaches exactly one terminal outcome;
//! 2. the serve ledger reconciles (conservation of requests);
//! 3. every completed tensor bit-matches the conformance oracle for
//!    exactly one published version of its model;
//! 4. admission and connection gauges return to zero at the end;
//! 5. no aggregate contradicts another (quantile ordering, per-version
//!    sums, connection round-trips).
//!
//! A failing run reports its seed; re-running [`run_chaos`] with the same
//! [`ChaosConfig`] replays the identical schedule — the replay test in
//! `tests/chaos.rs` asserts the full event log is bit-identical across
//! two runs. `chaos_soak` (the bundled binary) walks seeds derived from a
//! root seed for a time budget, for CI soaking and overnight runs.

pub mod engine;
pub mod invariants;
pub mod plan;
pub mod rng;

pub use engine::{run_chaos, ChaosReport, OutcomeTally};
pub use invariants::{InvariantVerdict, ObservedResponse, OracleCache, PublishedVersions};
pub use plan::{ChaosConfig, ChaosOp, ChaosPlan, IMAGE_SEEDS, MODEL_NAMES};
pub use rng::{mix, substream, SplitMix64};

use std::panic;
use std::sync::Once;

/// Silence the default panic-hook backtrace for *injected* faults only.
///
/// Chaos schedules panic workers on purpose; the default hook would print
/// one "thread panicked" header per injection and bury real output. This
/// filters on the `"fault injection"` message marker every injected panic
/// carries (see `odq_serve::fault`) and defers anything else — a genuine
/// bug still reports normally. Install-once and process-global; safe to
/// call from every test.
pub fn quiet_fault_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("fault injection") {
                default(info);
            }
        }));
    });
}
