//! A deliberately tiny HTTP/1.0 exposition endpoint — `std::net` only.
//!
//! [`MetricsServer`] binds a listener and answers exactly two routes:
//!
//! * `GET /metrics` — the Prometheus text exposition of the current
//!   ledger snapshot ([`crate::prom::render_summary`]).
//! * `GET /traces/recent` — the trace buffer's recent traces as JSON
//!   (`{"evicted": n, "traces": [...]}`), when a buffer is attached.
//!
//! Requests are handled serially on one thread: a scrape is a read-only
//! snapshot, responses are small, and `Connection: close` keeps the state
//! machine trivial. Hardening over correctness tricks: a slow or hostile
//! client hits a read timeout and is dropped without wedging the
//! endpoint.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use odq_serve::{StatsHandle, StatsSummary};

use crate::prom::render_summary;
use crate::trace::TraceBuffer;

/// How many recent traces `/traces/recent` returns.
const RECENT_TRACES: usize = 32;

/// Per-connection socket timeout: a client that cannot deliver a request
/// line or absorb a response this fast is dropped.
const CLIENT_TIMEOUT: Duration = Duration::from_millis(500);

/// Where the endpoint reads its snapshots. Implemented for
/// [`StatsHandle`] (the usual wiring: outlives the server, locks only for
/// the snapshot) and for plain closures in tests.
pub trait StatsSource: Send + Sync {
    /// A point-in-time ledger snapshot.
    fn summary(&self) -> StatsSummary;
}

impl StatsSource for StatsHandle {
    fn summary(&self) -> StatsSummary {
        StatsHandle::summary(self)
    }
}

/// The metrics endpoint: a bound listener plus its serving thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (port 0 for ephemeral) and serve `source`'s snapshots,
    /// with `traces` backing `/traces/recent` when given.
    pub fn bind(
        addr: impl ToSocketAddrs,
        source: Arc<dyn StatsSource>,
        traces: Option<Arc<TraceBuffer>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("odq-obs-metrics".into())
            .spawn(move || serve_loop(listener, source, traces, stop_flag))?;
        Ok(Self { addr, stop, thread: Some(thread) })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the endpoint and join its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(
    listener: TcpListener,
    source: Arc<dyn StatsSource>,
    traces: Option<Arc<TraceBuffer>>,
    stop: Arc<AtomicBool>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let _ = handle(stream, source.as_ref(), traces.as_deref());
    }
}

fn handle(
    mut stream: TcpStream,
    source: &dyn StatsSource,
    traces: Option<&TraceBuffer>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).ok();
    stream.set_write_timeout(Some(CLIENT_TIMEOUT)).ok();
    let path = match read_request_path(&mut stream)? {
        Some(p) => p,
        None => return Ok(()), // not a GET / garbage: drop silently
    };
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", render_summary(&source.summary())),
        "/traces/recent" => {
            let json = match traces {
                Some(t) => t.to_json(RECENT_TRACES),
                None => serde_json::Value::Object(vec![
                    ("evicted".to_string(), serde_json::Value::U64(0)),
                    ("traces".to_string(), serde_json::Value::Array(Vec::new())),
                ]),
            };
            ("200 OK", "application/json", serde_json::to_string_pretty(&json).expect("json"))
        }
        _ => ("404 Not Found", "text/plain", "not found: try /metrics or /traces/recent\n".into()),
    };
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

/// Read up to the end of the request head and return the path of a `GET`
/// request line, or `None` for anything else.
fn read_request_path(stream: &mut TcpStream) -> io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    // Read until the first CRLF (the request line is all we act on) or a
    // hard cap, whichever comes first.
    while !buf.windows(2).any(|w| w == b"\r\n") && buf.len() < 4096 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    let line = match buf.split(|&b| b == b'\n').next() {
        Some(l) => String::from_utf8_lossy(l).trim_end().to_string(),
        None => return Ok(None),
    };
    let mut parts = line.split(' ');
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(None),
    }
}

/// Minimal HTTP GET for tests, benches, and examples: returns
/// `(status code, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: odq\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let mut head_and_body = raw.splitn(2, "\r\n\r\n");
    let head = head_and_body.next().unwrap_or("");
    let body = head_and_body.next().unwrap_or("").to_string();
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no status line"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Empty;
    impl StatsSource for Empty {
        fn summary(&self) -> StatsSummary {
            StatsSummary::default()
        }
    }

    fn empty_source() -> Arc<dyn StatsSource> {
        Arc::new(Empty)
    }

    #[test]
    fn metrics_endpoint_serves_parseable_exposition() {
        let srv = MetricsServer::bind("127.0.0.1:0", empty_source(), None).unwrap();
        let (status, body) = http_get(srv.local_addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        let parsed = crate::prom::parse(&body).expect("served exposition must parse");
        assert!(parsed.get("odq_uptime_milliseconds", &[]).is_some());
        srv.shutdown();
    }

    #[test]
    fn traces_route_answers_empty_without_a_buffer() {
        let srv = MetricsServer::bind("127.0.0.1:0", empty_source(), None).unwrap();
        let (status, body) = http_get(srv.local_addr(), "/traces/recent").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"traces\""), "{body}");
        let (status, _) = http_get(srv.local_addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        srv.shutdown();
    }

    #[test]
    fn hostile_clients_do_not_wedge_the_endpoint() {
        let srv = MetricsServer::bind("127.0.0.1:0", empty_source(), None).unwrap();
        // Garbage, then a half request with no CRLF, then silence.
        let mut s1 = TcpStream::connect(srv.local_addr()).unwrap();
        s1.write_all(b"\x00\x01\x02garbage").unwrap();
        let mut s2 = TcpStream::connect(srv.local_addr()).unwrap();
        s2.write_all(b"GET /metrics").unwrap(); // never finishes the line
                                                // A well-formed scrape still succeeds afterwards.
        let (status, _) = http_get(srv.local_addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        srv.shutdown();
    }
}
