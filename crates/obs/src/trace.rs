//! A lock-cheap trace collector: sharded rings, seeded sampling.
//!
//! [`TraceBuffer`] is the reference [`TraceSink`] implementation the
//! serving stack is wired with. Its two design constraints come straight
//! from the rest of the stack:
//!
//! * **Sampling must be deterministic.** The chaos harness replays a
//!   seeded schedule and asserts identical event logs across runs, so
//!   whether a request is traced may depend only on `(seed, trace id)` —
//!   never on wall time, collection state, or thread interleaving.
//!   [`TraceBuffer::sample`] is a pure `splitmix64` test.
//! * **Recording must be cheap and bounded.** Spans land in one of a
//!   fixed set of mutex-guarded rings, picked by trace id, so concurrent
//!   workers rarely contend on the same shard, and memory is capped at
//!   `capacity` spans regardless of how long the server runs (oldest
//!   spans are overwritten first, per shard).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use odq_serve::{SpanRecord, SpanStage, TraceSink};

/// Shard count. A small fixed power of two: enough that the batcher, the
/// submitters, and a handful of workers almost never collide on a lock,
/// while a scrape still only has a few locks to take.
const SHARDS: usize = 8;

/// The `splitmix64` finalizer: a cheap, well-mixed hash of `(seed, id)`.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One collected span, normalized for export: the `Instant` of the live
/// [`SpanRecord`] becomes nanoseconds since the buffer's epoch, so spans
/// are comparable and serializable.
#[derive(Clone, Debug)]
pub struct StoredSpan {
    /// Trace id the span belongs to.
    pub trace: u64,
    /// Server-side request id.
    pub request: u64,
    /// Model served.
    pub model: String,
    /// Deployment version served.
    pub version: u64,
    /// Which pipeline stage this span marks.
    pub stage: SpanStage,
    /// Nanoseconds since the buffer was created.
    pub at_ns: u64,
    /// Stage duration in nanoseconds, for stages that measure one.
    pub dur_ns: Option<u64>,
}

struct Shard {
    ring: VecDeque<StoredSpan>,
}

/// A bounded, sharded collector of sampled request traces.
pub struct TraceBuffer {
    seed: u64,
    /// Sample iff `splitmix64(seed ^ trace) <= threshold`; `0` after a
    /// `sample_one_in(0)` means "trace nothing".
    threshold: u64,
    epoch: Instant,
    per_shard_cap: usize,
    shards: Vec<Mutex<Shard>>,
    /// Spans evicted to keep the rings bounded (observability for the
    /// observability: a scrape can tell when it is seeing a window).
    evicted: AtomicU64,
}

impl fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("seed", &self.seed)
            .field("threshold", &self.threshold)
            .field("capacity", &(self.per_shard_cap * SHARDS))
            .finish()
    }
}

fn lock(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    shard.lock().unwrap_or_else(|p| p.into_inner())
}

impl TraceBuffer {
    /// Buffer sampling one in `one_in` traces (deterministically, by
    /// seeded hash of the trace id), holding at most `capacity` spans.
    /// `one_in == 0` samples nothing; `one_in == 1` samples everything.
    pub fn new(seed: u64, one_in: u64, capacity: usize) -> Self {
        let threshold = match one_in {
            0 => 0,
            n => u64::MAX / n,
        };
        let per_shard_cap = capacity.div_ceil(SHARDS).max(1);
        Self {
            seed,
            threshold,
            epoch: Instant::now(),
            per_shard_cap,
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Shard { ring: VecDeque::with_capacity(8) }))
                .collect(),
            evicted: AtomicU64::new(0),
        }
    }

    /// Buffer sampling every trace — what tests and the examples use.
    pub fn sample_all(capacity: usize) -> Self {
        Self::new(0, 1, capacity)
    }

    /// Spans evicted so far to keep the buffer bounded.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Every collected span, ordered by capture time (then by pipeline
    /// stage, so the five spans of one trace always read in stage order
    /// even when two land on the same nanosecond tick).
    pub fn spans(&self) -> Vec<StoredSpan> {
        let mut all: Vec<StoredSpan> = Vec::new();
        for shard in &self.shards {
            all.extend(lock(shard).ring.iter().cloned());
        }
        all.sort_by_key(|s| (s.at_ns, s.stage as u8));
        all
    }

    /// The collected spans grouped per trace, most recently started trace
    /// last, at most `limit` traces. Each trace's spans are in stage
    /// order.
    pub fn traces(&self, limit: usize) -> Vec<TraceView> {
        let mut by_trace: Vec<TraceView> = Vec::new();
        for s in self.spans() {
            match by_trace.iter_mut().find(|t| t.trace == s.trace) {
                Some(t) => t.spans.push(s),
                None => {
                    by_trace.push(TraceView {
                        trace: s.trace,
                        request: s.request,
                        model: s.model.clone(),
                        version: s.version,
                        spans: vec![s],
                    });
                }
            }
        }
        for t in &mut by_trace {
            t.spans.sort_by_key(|s| (s.stage as u8, s.at_ns));
        }
        by_trace.sort_by_key(|t| t.spans.first().map_or(0, |s| s.at_ns));
        if by_trace.len() > limit {
            by_trace.drain(..by_trace.len() - limit);
        }
        by_trace
    }

    /// The `/traces/recent` payload: newest-last array of traces, each
    /// with its spans as `{stage, at_ns, dur_ns?}` objects.
    pub fn to_json(&self, limit: usize) -> serde_json::Value {
        use serde_json::Value;
        let traces: Vec<Value> = self
            .traces(limit)
            .into_iter()
            .map(|t| {
                let complete = t.is_complete();
                let spans: Vec<Value> = t
                    .spans
                    .iter()
                    .map(|s| {
                        let mut o = vec![
                            ("stage".to_string(), Value::String(s.stage.label().to_string())),
                            ("at_ns".to_string(), Value::U64(s.at_ns)),
                        ];
                        if let Some(d) = s.dur_ns {
                            o.push(("dur_ns".to_string(), Value::U64(d)));
                        }
                        Value::Object(o)
                    })
                    .collect();
                Value::Object(vec![
                    ("trace".to_string(), Value::U64(t.trace)),
                    ("request".to_string(), Value::U64(t.request)),
                    ("model".to_string(), Value::String(t.model)),
                    ("version".to_string(), Value::U64(t.version)),
                    ("complete".to_string(), Value::Bool(complete)),
                    ("spans".to_string(), Value::Array(spans)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("evicted".to_string(), Value::U64(self.evicted())),
            ("traces".to_string(), Value::Array(traces)),
        ])
    }
}

impl TraceSink for TraceBuffer {
    fn sample(&self, trace: u64) -> bool {
        splitmix64(self.seed ^ trace) <= self.threshold
    }

    fn record(&self, span: SpanRecord) {
        let stored = StoredSpan {
            trace: span.trace,
            request: span.request,
            model: span.model,
            version: span.version,
            stage: span.stage,
            at_ns: span.at.saturating_duration_since(self.epoch).as_nanos().min(u64::MAX as u128)
                as u64,
            dur_ns: span.dur.map(|d| d.as_nanos().min(u64::MAX as u128) as u64),
        };
        let shard = &self.shards[(span.trace % SHARDS as u64) as usize];
        let mut s = lock(shard);
        if s.ring.len() >= self.per_shard_cap {
            s.ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        s.ring.push_back(stored);
    }
}

/// One trace's spans, grouped for export.
#[derive(Clone, Debug)]
pub struct TraceView {
    /// Trace id.
    pub trace: u64,
    /// Server-side request id.
    pub request: u64,
    /// Model served.
    pub model: String,
    /// Deployment version served.
    pub version: u64,
    /// Collected spans, in pipeline-stage order.
    pub spans: Vec<StoredSpan>,
}

impl TraceView {
    /// Whether all five pipeline stages were collected.
    pub fn is_complete(&self) -> bool {
        SpanStage::ALL.iter().all(|want| self.spans.iter().any(|s| s.stage == *want))
    }

    /// Whether the collected spans' timestamps are monotone in pipeline
    /// order — the invariant a correctly threaded pipeline must uphold
    /// (submit ≤ batch-form ≤ worker-dequeue ≤ execute ≤ scatter).
    pub fn is_monotone(&self) -> bool {
        self.spans
            .windows(2)
            .all(|w| w[0].stage as u8 <= w[1].stage as u8 && w[0].at_ns <= w[1].at_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span(trace: u64, stage: SpanStage, at: Instant) -> SpanRecord {
        SpanRecord {
            trace,
            request: trace,
            model: "m".into(),
            version: 1,
            stage,
            at,
            dur: Some(Duration::from_micros(5)),
        }
    }

    #[test]
    fn sampling_is_pure_and_seed_dependent() {
        let a = TraceBuffer::new(42, 4, 64);
        let b = TraceBuffer::new(42, 4, 64);
        let c = TraceBuffer::new(43, 4, 64);
        let picks = |t: &TraceBuffer| (0..512u64).filter(|&i| t.sample(i)).collect::<Vec<_>>();
        assert_eq!(picks(&a), picks(&b), "same seed, same picks — replay determinism");
        assert_ne!(picks(&a), picks(&c), "a different seed picks differently");
        let n = picks(&a).len();
        assert!((64..=192).contains(&n), "1-in-4 of 512 should land near 128, got {n}");
    }

    #[test]
    fn one_in_zero_and_one_are_the_extremes() {
        let none = TraceBuffer::new(1, 0, 8);
        let all = TraceBuffer::new(1, 1, 8);
        assert!((0..256u64).all(|i| !none.sample(i)));
        assert!((0..256u64).all(|i| all.sample(i)));
    }

    #[test]
    fn traces_group_and_order_spans() {
        let buf = TraceBuffer::sample_all(64);
        let t0 = buf.epoch;
        // Record trace 7 out of order; trace 9 interleaved.
        buf.record(span(7, SpanStage::BatchForm, t0 + Duration::from_micros(10)));
        buf.record(span(9, SpanStage::Submit, t0 + Duration::from_micros(2)));
        buf.record(span(7, SpanStage::Submit, t0 + Duration::from_micros(1)));
        buf.record(span(7, SpanStage::WorkerDequeue, t0 + Duration::from_micros(20)));
        buf.record(span(7, SpanStage::EngineExecute, t0 + Duration::from_micros(30)));
        buf.record(span(7, SpanStage::ResponseScatter, t0 + Duration::from_micros(40)));
        let traces = buf.traces(10);
        assert_eq!(traces.len(), 2);
        let seven = traces.iter().find(|t| t.trace == 7).unwrap();
        assert!(seven.is_complete());
        assert!(seven.is_monotone());
        let labels: Vec<&str> = seven.spans.iter().map(|s| s.stage.label()).collect();
        assert_eq!(
            labels,
            ["submit", "batch_form", "worker_dequeue", "engine_execute", "response_scatter"]
        );
        let nine = traces.iter().find(|t| t.trace == 9).unwrap();
        assert!(!nine.is_complete());
        let json = serde_json::to_string(&buf.to_json(10)).unwrap();
        assert!(json.contains("\"response_scatter\""), "{json}");
    }

    #[test]
    fn capacity_is_bounded_and_eviction_counted() {
        let buf = TraceBuffer::sample_all(SHARDS); // one span per shard
        let t0 = buf.epoch;
        for i in 0..10 * SHARDS as u64 {
            buf.record(span(i, SpanStage::Submit, t0 + Duration::from_micros(i)));
        }
        assert_eq!(buf.spans().len(), SHARDS);
        assert_eq!(buf.evicted(), 9 * SHARDS as u64);
    }
}
