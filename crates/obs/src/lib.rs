//! odq-obs — observability for the ODQ serving stack.
//!
//! Three pieces, each usable alone, designed to be wired together:
//!
//! ```text
//!             ┌───────────── odq-serve pipeline ─────────────┐
//!   submit ──►│ queue ──► batcher ──► workers ──► scatter    │
//!             └──┬───────────┬──────────┬────────────┬───────┘
//!     spans      ▼           ▼          ▼            ▼
//!   (sampled) TraceBuffer ◄──────────────────────────┘    stats Ledger
//!                │  sharded rings, seeded sampling             │
//!                ▼                                             ▼
//!        GET /traces/recent ◄──── MetricsServer ────► GET /metrics
//!                                  (std::net HTTP)    (Prometheus text)
//! ```
//!
//! * [`TraceBuffer`] — the reference [`odq_serve::TraceSink`]: per-request
//!   pipeline spans (submit → batch-form → worker-dequeue →
//!   engine-execute → response-scatter) land in a bounded, sharded ring.
//!   Sampling is a pure seeded hash of the trace id, so the chaos
//!   harness's replay determinism survives tracing being on.
//! * [`prom`] — [`prom::render_summary`] turns a ledger snapshot into the
//!   Prometheus text exposition format (stable series names, `# HELP` /
//!   `# TYPE` on every family, per-layer ODQ mask-density series);
//!   [`prom::parse`] validates the format strictly enough for golden and
//!   end-to-end tests.
//! * [`MetricsServer`] — a tiny `std::net`-only HTTP/1.0 listener serving
//!   `GET /metrics` and `GET /traces/recent`, fed by a
//!   [`StatsSource`] (usually [`odq_serve::StatsHandle`], which stays
//!   valid across the server's whole lifetime).
//!
//! Wiring it up end to end:
//!
//! ```no_run
//! use std::sync::Arc;
//! use odq_obs::{MetricsServer, TraceBuffer};
//! use odq_serve::{ServeConfig, Server};
//!
//! let traces = Arc::new(TraceBuffer::new(/*seed*/ 7, /*one_in*/ 16, /*cap*/ 4096));
//! let cfg = ServeConfig { trace: Some(traces.clone()), ..ServeConfig::default() };
//! let server = Server::builder(cfg)/* .model(...) */.start();
//! let metrics = MetricsServer::bind(
//!     "127.0.0.1:0",
//!     Arc::new(server.stats_handle()),
//!     Some(traces),
//! ).unwrap();
//! println!("scrape http://{}/metrics", metrics.local_addr());
//! ```

#![warn(missing_docs)]

pub mod http;
pub mod prom;
pub mod trace;

pub use http::{http_get, MetricsServer, StatsSource};
pub use prom::{parse, render_summary, Exposition, Sample};
pub use trace::{StoredSpan, TraceBuffer, TraceView};
