//! Prometheus text-format exposition of the serving ledger, plus a strict
//! parser so tests can assert the output is well-formed without a real
//! Prometheus in the loop.
//!
//! [`render_summary`] turns a [`StatsSummary`] snapshot into the
//! `text/plain; version=0.0.4` exposition format: every family gets a
//! `# HELP` and `# TYPE` line, label values are escaped, and names are
//! stable — dashboards can depend on them. [`parse`] is the inverse
//! direction's gatekeeper: it validates comment lines, metric names,
//! label syntax, and float values, and hands back typed samples for
//! golden-file and end-to-end tests to query.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use odq_serve::{LatencyStats, StatsSummary};

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Format a float the exposition way: integral values without a trailing
/// `.0` is fine either way, but `NaN`/infinities must use the spec
/// spellings.
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else {
        format!("{v}")
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Incremental exposition writer: `family` emits the HELP/TYPE header,
/// `sample` appends one line.
struct Exposer {
    out: String,
}

impl Exposer {
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", num(value));
    }
}

fn latency_family(
    e: &mut Exposer,
    name: &str,
    help: &str,
    series: &[(&str, &LatencyStats)],
    label: &str,
) {
    e.family(name, "summary", help);
    for (val, stats) in series {
        for (q, d) in [("0.5", stats.p50), ("0.95", stats.p95), ("0.99", stats.p99)] {
            e.sample(name, &[(label, val.to_string()), ("quantile", q.to_string())], ms(d));
        }
    }
    let count = format!("{name}_count");
    for (val, stats) in series {
        e.sample(&count, &[(label, val.to_string())], stats.count as f64);
    }
}

/// Render a ledger snapshot as the Prometheus text exposition format.
///
/// Series names are stable API. The core families:
///
/// * `odq_uptime_milliseconds` — gauge, server uptime.
/// * `odq_requests_admitted_total` / `odq_requests_completed_total` /
///   `odq_requests_rejected_total{reason}` / `odq_internal_errors_total`
///   — the admission conservation law, as counters.
/// * `odq_queue_depth{kind="last"|"max"}` — submission-queue gauges.
/// * `odq_latency_milliseconds{stage,quantile}` — queue-wait / service /
///   total latency summaries.
/// * `odq_net_*` — transport counters (zero without a front-end).
/// * `odq_sim_cycles_total`, `odq_route_sim_cycles_total{route}` — the
///   accelerator-simulator cost model.
/// * `odq_model_info{model,version,fingerprint}` — one constant `1` per
///   deployed (model, version), fingerprint as 16 hex digits.
/// * `odq_layer_mask_density{model,version,layer,route}` and friends —
///   the per-layer profile (wall-time summary, passes, simulated
///   cycles), present when layer profiling is on.
pub fn render_summary(s: &StatsSummary) -> String {
    let mut e = Exposer { out: String::with_capacity(4096) };

    e.family("odq_uptime_milliseconds", "gauge", "Server uptime in milliseconds.");
    e.sample("odq_uptime_milliseconds", &[], ms(s.uptime));

    e.family(
        "odq_requests_admitted_total",
        "counter",
        "Requests that passed admission into the bounded queue.",
    );
    e.sample("odq_requests_admitted_total", &[], s.admitted as f64);
    e.family("odq_requests_completed_total", "counter", "Requests answered successfully.");
    e.sample("odq_requests_completed_total", &[], s.completed as f64);
    e.family(
        "odq_requests_rejected_total",
        "counter",
        "Requests rejected, by terminal reason (queue_full, deadline, invalid, shutdown).",
    );
    for (reason, v) in [
        ("queue_full", s.rejected_queue_full),
        ("deadline", s.rejected_deadline),
        ("invalid", s.rejected_invalid),
        ("shutdown", s.rejected_shutdown),
    ] {
        e.sample("odq_requests_rejected_total", &[("reason", reason.to_string())], v as f64);
    }
    e.family(
        "odq_internal_errors_total",
        "counter",
        "Requests answered Internal after a worker panic.",
    );
    e.sample("odq_internal_errors_total", &[], s.internal_errors as f64);
    e.family("odq_batches_total", "counter", "Batches executed to completion.");
    e.sample("odq_batches_total", &[], s.batches as f64);
    e.family("odq_worker_panics_total", "counter", "Worker panics caught by supervision.");
    e.sample("odq_worker_panics_total", &[], s.worker_panics as f64);
    e.family("odq_worker_restarts_total", "counter", "Workers restarted after a panic.");
    e.sample("odq_worker_restarts_total", &[], s.worker_restarts as f64);

    e.family(
        "odq_queue_depth",
        "gauge",
        "Submission-queue depth observed at admission (last and max).",
    );
    e.sample("odq_queue_depth", &[("kind", "last".into())], s.last_queue_depth as f64);
    e.sample("odq_queue_depth", &[("kind", "max".into())], s.max_queue_depth as f64);
    e.family("odq_batch_size_mean", "gauge", "Mean executed batch size.");
    e.sample("odq_batch_size_mean", &[], s.mean_batch_size);
    e.family("odq_batch_size_max", "gauge", "Largest executed batch.");
    e.sample("odq_batch_size_max", &[], s.max_batch_size as f64);

    latency_family(
        &mut e,
        "odq_latency_milliseconds",
        "Request latency quantiles in milliseconds, by pipeline stage.",
        &[("queue_wait", &s.queue_wait), ("service", &s.service), ("total", &s.latency)],
        "stage",
    );

    e.family(
        "odq_net_connections_total",
        "counter",
        "Front-end connections, by lifecycle event (opened, closed, rejected).",
    );
    for (event, v) in [
        ("opened", s.net.connections_opened),
        ("closed", s.net.connections_closed),
        ("rejected", s.net.connections_rejected),
    ] {
        e.sample("odq_net_connections_total", &[("event", event.to_string())], v as f64);
    }
    e.family("odq_net_active_connections", "gauge", "Currently open front-end connections.");
    e.sample("odq_net_active_connections", &[], s.net.active_connections as f64);
    e.family("odq_net_bytes_total", "counter", "Wire bytes, by direction.");
    e.sample("odq_net_bytes_total", &[("direction", "in".into())], s.net.bytes_in as f64);
    e.sample("odq_net_bytes_total", &[("direction", "out".into())], s.net.bytes_out as f64);
    e.family("odq_net_frames_total", "counter", "Wire frames, by direction.");
    e.sample("odq_net_frames_total", &[("direction", "in".into())], s.net.frames_in as f64);
    e.sample("odq_net_frames_total", &[("direction", "out".into())], s.net.frames_out as f64);
    e.family("odq_net_protocol_errors_total", "counter", "Malformed or oversized inbound frames.");
    e.sample("odq_net_protocol_errors_total", &[], s.net.protocol_errors as f64);

    e.family(
        "odq_sim_cycles_total",
        "counter",
        "Simulated accelerator cycles across all executed batches.",
    );
    e.sample("odq_sim_cycles_total", &[], s.sim_cycles);
    e.family(
        "odq_sim_energy_nanojoules_total",
        "counter",
        "Simulated accelerator energy across all executed batches.",
    );
    e.sample("odq_sim_energy_nanojoules_total", &[], s.sim_energy_nj);
    if let Some(f) = s.mean_sensitive_fraction {
        e.family(
            "odq_sensitive_fraction_mean",
            "gauge",
            "Output-weighted mean ODQ sensitive-output fraction.",
        );
        e.sample("odq_sensitive_fraction_mean", &[], f);
    }
    if !s.routes.is_empty() {
        e.family(
            "odq_route_sim_cycles_total",
            "counter",
            "Simulated cycles split by precision route.",
        );
        for r in &s.routes {
            e.sample("odq_route_sim_cycles_total", &[("route", r.route.clone())], r.cycles);
        }
        e.family(
            "odq_route_energy_nanojoules_total",
            "counter",
            "Simulated energy split by precision route.",
        );
        for r in &s.routes {
            e.sample(
                "odq_route_energy_nanojoules_total",
                &[("route", r.route.clone())],
                r.energy_nj,
            );
        }
        e.family(
            "odq_route_layers_total",
            "counter",
            "Conv-layer executions attributed to each precision route.",
        );
        for r in &s.routes {
            e.sample("odq_route_layers_total", &[("route", r.route.clone())], r.layers as f64);
        }
    }

    if !s.models.is_empty() {
        e.family(
            "odq_model_info",
            "gauge",
            "One series per deployed (model, version); fingerprint is the registry weight fingerprint.",
        );
        for m in &s.models {
            e.sample(
                "odq_model_info",
                &[
                    ("model", m.model.clone()),
                    ("version", m.version.to_string()),
                    ("fingerprint", format!("{:016x}", m.fingerprint)),
                ],
                1.0,
            );
        }
        e.family(
            "odq_model_completed_total",
            "counter",
            "Requests answered, split by (model, version).",
        );
        for m in &s.models {
            e.sample(
                "odq_model_completed_total",
                &[("model", m.model.clone()), ("version", m.version.to_string())],
                m.completed as f64,
            );
        }
    }

    if !s.layers.is_empty() {
        let layer_labels = |l: &odq_serve::LayerRuntimeStats| {
            vec![
                ("model", l.model.clone()),
                ("version", l.version.to_string()),
                ("layer", l.layer.clone()),
                ("route", l.route.clone()),
            ]
        };
        e.family(
            "odq_layer_passes_total",
            "counter",
            "Batched forward passes each conv layer has executed.",
        );
        for l in &s.layers {
            e.sample("odq_layer_passes_total", &layer_labels(l), l.passes as f64);
        }
        e.family(
            "odq_layer_wall_milliseconds",
            "summary",
            "Per-pass conv wall time quantiles, per (model, version, layer).",
        );
        for l in &s.layers {
            let mut labels = layer_labels(l);
            labels.push(("quantile", "0.5".into()));
            e.sample("odq_layer_wall_milliseconds", &labels, ms(l.wall.p50));
            labels.last_mut().expect("just pushed").1 = "0.99".into();
            e.sample("odq_layer_wall_milliseconds", &labels, ms(l.wall.p99));
        }
        e.family(
            "odq_layer_sim_cycles_total",
            "counter",
            "Simulated accelerator cycles attributed to each conv layer.",
        );
        for l in &s.layers {
            e.sample("odq_layer_sim_cycles_total", &layer_labels(l), l.sim_cycles);
        }
        e.family(
            "odq_layer_mask_density",
            "gauge",
            "Mean measured mask density per layer: the ODQ sensitive-output fraction (or DRQ high-precision fraction) its route observed.",
        );
        for l in &s.layers {
            if let Some(d) = l.mask_density {
                e.sample("odq_layer_mask_density", &layer_labels(l), d);
            }
        }
    }

    e.out
}

// ---------------------------------------------------------------------
// Parsing (the test-side validator)
// ---------------------------------------------------------------------

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Labels, in exposition order.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
}

/// A parsed exposition: declared families and every sample.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    /// `# TYPE` declarations: family name → type.
    pub families: BTreeMap<String, String>,
    /// All samples, in document order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The first sample with this exact name whose labels include every
    /// `(key, value)` pair in `labels`.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples.iter().find(|s| {
            s.name == name
                && labels.iter().all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
    }

    /// All samples of one family (exact name match).
    pub fn series(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        s => s.parse::<f64>().map_err(|_| format!("bad value {s:?}")),
    }
}

/// Parse label pairs from the text between `{` and `}`.
fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = &rest[..eq];
        if !valid_label_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value must be quoted: {rest:?}"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e @ ('\\' | '"'))) => value.push(e),
                    other => return Err(format!("bad escape {other:?}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_string())?;
        labels.push((key.to_string(), value));
        rest = &rest[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

/// Parse and validate a Prometheus text exposition. Returns the declared
/// families and samples, or the first syntax error found.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let kind = it.next().ok_or(format!("line {n}: TYPE without a type"))?;
                if !valid_name(name) {
                    return Err(format!("line {n}: bad family name {name:?}"));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(format!("line {n}: unknown metric type {kind:?}"));
                }
                if out.families.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {n}: duplicate TYPE for {name}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {n}: bad family name {name:?}"));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line.rfind('}').ok_or(format!("line {n}: unterminated labels"))?;
                if close < brace {
                    return Err(format!("line {n}: '}}' before '{{'"));
                }
                let labels =
                    parse_labels(&line[brace + 1..close]).map_err(|e| format!("line {n}: {e}"))?;
                ((&line[..brace], labels), &line[close + 1..])
            }
            None => {
                let sp = line.find(' ').ok_or(format!("line {n}: no value"))?;
                ((&line[..sp], Vec::new()), &line[sp..])
            }
        };
        let (name, labels) = name_part;
        if !valid_name(name) {
            return Err(format!("line {n}: bad metric name {name:?}"));
        }
        let mut fields = rest.split_whitespace();
        let value = parse_value(fields.next().ok_or(format!("line {n}: no value"))?)
            .map_err(|e| format!("line {n}: {e}"))?;
        if let Some(ts) = fields.next() {
            ts.parse::<i64>().map_err(|_| format!("line {n}: bad timestamp {ts:?}"))?;
        }
        if fields.next().is_some() {
            return Err(format!("line {n}: trailing fields"));
        }
        out.samples.push(Sample { name: name.to_string(), labels, value });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_parser() {
        let mut e = Exposer { out: String::new() };
        e.family("m_total", "counter", "help text");
        e.sample("m_total", &[("k", "a\"b\\c\nd".into())], 3.0);
        let parsed = parse(&e.out).unwrap();
        assert_eq!(parsed.families.get("m_total").map(String::as_str), Some("counter"));
        let s = &parsed.samples[0];
        assert_eq!(s.labels[0], ("k".to_string(), "a\"b\\c\nd".to_string()));
        assert_eq!(s.value, 3.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("1bad_name 3").is_err());
        assert!(parse("m{unterminated=\"x 3").is_err());
        assert!(parse("m{k=unquoted} 3").is_err());
        assert!(parse("m notanumber").is_err());
        assert!(parse("# TYPE m sometype").is_err());
        assert!(parse("# TYPE m counter\n# TYPE m counter").is_err());
        assert!(parse("m 3 12 extra").is_err());
    }

    #[test]
    fn parser_accepts_specials_and_timestamps() {
        let p = parse("m +Inf\nn{a=\"b\"} -Inf 1712345678\no NaN\n").unwrap();
        assert_eq!(p.samples.len(), 3);
        assert!(p.samples[0].value.is_infinite());
        assert!(p.samples[2].value.is_nan());
    }

    #[test]
    fn render_of_a_default_summary_parses_and_has_core_series() {
        let s = default_summary();
        let text = render_summary(&s);
        let p = parse(&text).expect("exposition must parse");
        assert!(p.get("odq_uptime_milliseconds", &[]).is_some());
        assert!(p.get("odq_queue_depth", &[("kind", "last")]).is_some());
        assert!(p.get("odq_queue_depth", &[("kind", "max")]).is_some());
        assert!(p.get("odq_requests_admitted_total", &[]).is_some());
        assert!(p
            .get("odq_latency_milliseconds", &[("stage", "total"), ("quantile", "0.99")])
            .is_some());
        assert_eq!(p.families.get("odq_queue_depth").map(String::as_str), Some("gauge"));
        assert_eq!(
            p.families.get("odq_requests_admitted_total").map(String::as_str),
            Some("counter")
        );
        // Every sample's family is declared.
        for sample in &p.samples {
            let fam = sample.name.strip_suffix("_count").unwrap_or(&sample.name);
            assert!(
                p.families.contains_key(fam) || p.families.contains_key(&sample.name),
                "sample {} has no TYPE declaration",
                sample.name
            );
        }
    }

    /// An all-zero snapshot, as an idle just-started server would report.
    fn default_summary() -> StatsSummary {
        StatsSummary::default()
    }
}
