//! Procedural synthetic datasets.

use odq_tensor::Tensor;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An in-memory labeled image dataset (`[N, C, H, W]` images in `[0, 1]`).
pub struct Dataset {
    /// Images, `[N, C, H, W]`, values in `[0, 1]`.
    pub images: Tensor,
    /// Labels in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Specification for a synthetic dataset.
#[derive(Clone, Copy, Debug)]
pub struct SynthSpec {
    /// Number of classes (10 for the CIFAR-10 stand-in, 100 for CIFAR-100).
    pub num_classes: usize,
    /// Image channels (3 = color, 1 = grayscale/MNIST-like).
    pub channels: usize,
    /// Square image size.
    pub hw: usize,
    /// Additive noise amplitude (0.0–0.5 sensible).
    pub noise: f32,
    /// Generator seed; same seed + spec = identical dataset.
    pub seed: u64,
}

impl SynthSpec {
    /// The CIFAR-10 stand-in at a given resolution.
    pub fn cifar10(hw: usize) -> Self {
        Self { num_classes: 10, channels: 3, hw, noise: 0.08, seed: 0x00C1_FA10 }
    }

    /// The CIFAR-100 stand-in at a given resolution.
    pub fn cifar100(hw: usize) -> Self {
        Self { num_classes: 100, channels: 3, hw, noise: 0.08, seed: 0x0C1F_A100 }
    }

    /// The MNIST stand-in (grayscale digits-like blobs).
    pub fn mnist(hw: usize) -> Self {
        Self { num_classes: 10, channels: 1, hw, noise: 0.05, seed: 0x3A15 }
    }

    /// Generate `n` samples, cycling deterministically through classes.
    pub fn generate(&self, n: usize) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let templates: Vec<ClassTemplate> =
            (0..self.num_classes).map(|c| ClassTemplate::new(c, self, &mut rng)).collect();

        let per = self.channels * self.hw * self.hw;
        let mut data = vec![0.0f32; n * per];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.num_classes;
            labels.push(class);
            templates[class].render(self, &mut rng, &mut data[i * per..(i + 1) * per]);
        }
        Dataset {
            images: Tensor::from_vec([n, self.channels, self.hw, self.hw], data),
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Generate a disjoint train/test split (`n_train`, `n_test` samples).
    ///
    /// Test samples come from the same templates but different jitter/noise
    /// draws, like fresh photographs of the same object classes.
    pub fn generate_split(&self, n_train: usize, n_test: usize) -> (Dataset, Dataset) {
        let all = self.generate(n_train + n_test);
        let per = self.channels * self.hw * self.hw;
        let (train_data, test_data) = all.images.as_slice().split_at(n_train * per);
        let train = Dataset {
            images: Tensor::from_vec(
                [n_train, self.channels, self.hw, self.hw],
                train_data.to_vec(),
            ),
            labels: all.labels[..n_train].to_vec(),
            num_classes: self.num_classes,
        };
        let test = Dataset {
            images: Tensor::from_vec([n_test, self.channels, self.hw, self.hw], test_data.to_vec()),
            labels: all.labels[n_train..].to_vec(),
            num_classes: self.num_classes,
        };
        (train, test)
    }
}

/// Per-class generative template: an oriented grating plus a bright blob,
/// with class-dependent frequency, phase, position and per-channel gains.
struct ClassTemplate {
    freq: f32,
    angle: f32,
    blob_cx: f32,
    blob_cy: f32,
    blob_r: f32,
    chan_gain: [f32; 3],
}

impl ClassTemplate {
    fn new(class: usize, spec: &SynthSpec, rng: &mut ChaCha8Rng) -> Self {
        // Deterministic class structure plus a dash of generator randomness
        // so class templates are well-separated but not axis-aligned.
        let golden = 0.618_034f32;
        let t = (class as f32 * golden).fract();
        Self {
            freq: 1.0 + 3.0 * ((class % 5) as f32) / 5.0 + rng.gen_range(-0.1..0.1),
            angle: std::f32::consts::PI * t + rng.gen_range(-0.05..0.05),
            blob_cx: 0.2
                + 0.6
                    * ((class * 7 % spec.num_classes.max(1)) as f32
                        / spec.num_classes.max(1) as f32),
            blob_cy: 0.2 + 0.6 * t,
            blob_r: 0.15 + 0.1 * ((class % 3) as f32) / 3.0,
            chan_gain: [
                0.5 + 0.5 * ((class % 3) as f32 / 3.0),
                0.5 + 0.5 * ((class % 4) as f32 / 4.0),
                0.5 + 0.5 * ((class % 5) as f32 / 5.0),
            ],
        }
    }

    fn render(&self, spec: &SynthSpec, rng: &mut ChaCha8Rng, out: &mut [f32]) {
        let hw = spec.hw;
        // Per-sample jitter: small shifts and amplitude variation.
        let dx = rng.gen_range(-0.08f32..0.08);
        let dy = rng.gen_range(-0.08f32..0.08);
        let amp = rng.gen_range(0.85f32..1.15);
        let (sin_a, cos_a) = self.angle.sin_cos();

        for c in 0..spec.channels {
            let gain = self.chan_gain[c % 3];
            for y in 0..hw {
                for x in 0..hw {
                    let u = x as f32 / hw as f32 - 0.5 + dx;
                    let v = y as f32 / hw as f32 - 0.5 + dy;
                    let proj = u * cos_a + v * sin_a;
                    let grating = 0.5 + 0.5 * (proj * self.freq * std::f32::consts::TAU).sin();
                    let bx = u + 0.5 - self.blob_cx;
                    let by = v + 0.5 - self.blob_cy;
                    let blob = (-(bx * bx + by * by) / (self.blob_r * self.blob_r)).exp();
                    let noise = rng.gen_range(-spec.noise..spec.noise);
                    // Dark background with a localized, class-textured
                    // object: natural images are mostly low-intensity, and
                    // CNNs trained on them develop *sparse* post-ReLU
                    // features — the heavy-tailed output distributions the
                    // ODQ sensitivity threshold exploits (Figs. 9/10 show
                    // 50–90% of outputs insensitive on real CIFAR models).
                    let val = amp * gain * blob * (0.45 + 0.55 * grating) + noise;
                    out[(c * hw + y) * hw + x] = val.clamp(0.0, 1.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SynthSpec::cifar10(16);
        let a = spec.generate(20);
        let b = spec.generate(20);
        assert_eq!(a.images.as_slice(), b.images.as_slice());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn values_in_unit_range_and_labels_valid() {
        let spec = SynthSpec::cifar100(8);
        let d = spec.generate(150);
        assert!(d.images.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(d.labels.iter().all(|&l| l < 100));
        assert_eq!(d.len(), 150);
        assert!(!d.is_empty());
    }

    #[test]
    fn classes_cycle() {
        let spec = SynthSpec::cifar10(8);
        let d = spec.generate(25);
        assert_eq!(d.labels[0], 0);
        assert_eq!(d.labels[9], 9);
        assert_eq!(d.labels[10], 0);
    }

    #[test]
    fn same_class_samples_are_similar_but_not_identical() {
        let spec = SynthSpec::cifar10(16);
        let d = spec.generate(40);
        let per = 3 * 16 * 16;
        let img = |i: usize| &d.images.as_slice()[i * per..(i + 1) * per];
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32
        };
        // samples 0 and 10 are class 0; samples 0 and 5 are different classes.
        let same = dist(img(0), img(10));
        let diff = dist(img(0), img(5));
        assert!(same > 0.0, "jitter must differentiate same-class samples");
        assert!(diff > same, "cross-class distance {diff} should exceed within-class {same}");
    }

    #[test]
    fn split_is_disjoint_and_sized() {
        let spec = SynthSpec::mnist(8);
        let (train, test) = spec.generate_split(30, 12);
        assert_eq!(train.len(), 30);
        assert_eq!(test.len(), 12);
        assert_eq!(train.images.dims(), &[30, 1, 8, 8]);
        assert_eq!(test.images.dims(), &[12, 1, 8, 8]);
    }

    #[test]
    fn different_seeds_give_different_data() {
        let mut s1 = SynthSpec::cifar10(8);
        let mut s2 = SynthSpec::cifar10(8);
        s1.seed = 1;
        s2.seed = 2;
        let a = s1.generate(5);
        let b = s2.generate(5);
        assert_ne!(a.images.as_slice(), b.images.as_slice());
    }
}
