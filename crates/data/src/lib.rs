//! # odq-data
//!
//! Deterministic synthetic image-classification datasets standing in for
//! CIFAR-10, CIFAR-100 and MNIST (which are unavailable in this offline
//! environment — see DESIGN.md, substitution 1).
//!
//! Each class is defined by a procedurally-generated template (class-specific
//! oriented gratings + blob layout); samples are template instances with
//! per-sample geometric jitter and additive noise. The generator reproduces
//! the statistical properties the paper's method exploits:
//!
//! * activations after ReLU have heavy-tailed magnitude distributions, so a
//!   minority of output features are "sensitive" (large magnitude);
//! * class information survives moderate quantization noise but degrades as
//!   bit widths shrink, giving the accuracy-vs-precision trade-off of
//!   Fig. 18/22.

pub mod augment;
pub mod synth;

pub use augment::{augment_batch, AugmentCfg};
pub use synth::{Dataset, SynthSpec};
