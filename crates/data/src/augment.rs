//! Training-time data augmentation.
//!
//! The standard CIFAR recipe — random shifts with zero padding, horizontal
//! flips, and cutout — adapted to the synthetic datasets. Augmentation
//! noticeably improves the small models' generalization, which tightens the
//! accuracy comparisons of Fig. 18 (every quantization scheme shares the
//! same augmented training run).

use odq_tensor::Tensor;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Augmentation configuration.
#[derive(Clone, Copy, Debug)]
pub struct AugmentCfg {
    /// Maximum |shift| in pixels for random translation (0 disables).
    pub max_shift: usize,
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
    /// Cutout square size (0 disables).
    pub cutout: usize,
}

impl Default for AugmentCfg {
    fn default() -> Self {
        Self { max_shift: 2, flip_prob: 0.5, cutout: 3 }
    }
}

impl AugmentCfg {
    /// No-op configuration.
    pub fn none() -> Self {
        Self { max_shift: 0, flip_prob: 0.0, cutout: 0 }
    }
}

/// Augment a batch of NCHW images, returning a new tensor.
pub fn augment_batch(images: &Tensor, cfg: &AugmentCfg, rng: &mut ChaCha8Rng) -> Tensor {
    let dims = images.dims();
    assert_eq!(dims.len(), 4, "expected NCHW");
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let mut out = images.clone();
    let per_img = c * h * w;
    for i in 0..n {
        let src = images.outer(i).to_vec();
        let dst = &mut out.as_mut_slice()[i * per_img..(i + 1) * per_img];

        // Random shift with zero fill.
        let (dy, dx) = if cfg.max_shift > 0 {
            let s = cfg.max_shift as isize;
            (rng.gen_range(-s..=s), rng.gen_range(-s..=s))
        } else {
            (0, 0)
        };
        let flip = cfg.flip_prob > 0.0 && rng.gen_bool(cfg.flip_prob as f64);

        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let sy = y as isize - dy;
                    let sx0 = if flip { (w - 1 - x) as isize } else { x as isize };
                    let sx = sx0 - dx;
                    let v = if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                        src[(ci * h + sy as usize) * w + sx as usize]
                    } else {
                        0.0
                    };
                    dst[(ci * h + y) * w + x] = v;
                }
            }
        }

        // Cutout: zero a random square across all channels.
        if cfg.cutout > 0 && cfg.cutout < h.min(w) {
            let cy = rng.gen_range(0..h - cfg.cutout + 1);
            let cx = rng.gen_range(0..w - cfg.cutout + 1);
            for ci in 0..c {
                for y in cy..cy + cfg.cutout {
                    for x in cx..cx + cfg.cutout {
                        dst[(ci * h + y) * w + x] = 0.0;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    fn batch() -> Tensor {
        Tensor::from_vec(
            [2, 1, 6, 6],
            (0..72).map(|i| (i % 10) as f32 / 10.0 + 0.05).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn noop_config_is_identity() {
        let x = batch();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let y = augment_batch(&x, &AugmentCfg::none(), &mut rng);
        assert_eq!(x.as_slice(), y.as_slice());
    }

    #[test]
    fn deterministic_given_rng_state() {
        let x = batch();
        let a = augment_batch(&x, &AugmentCfg::default(), &mut ChaCha8Rng::seed_from_u64(3));
        let b = augment_batch(&x, &AugmentCfg::default(), &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn shift_fills_with_zeros() {
        let x = Tensor::full([1, 1, 4, 4], 1.0f32);
        let cfg = AugmentCfg { max_shift: 2, flip_prob: 0.0, cutout: 0 };
        // Try several seeds; at least one produces a nonzero shift, which
        // must introduce zeros at the border.
        let mut saw_zeros = false;
        for seed in 0..10 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let y = augment_batch(&x, &cfg, &mut rng);
            if y.as_slice().contains(&0.0) {
                saw_zeros = true;
            }
            // Values are only ever 0 or 1 (no interpolation).
            assert!(y.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        }
        assert!(saw_zeros);
    }

    #[test]
    fn flip_preserves_multiset() {
        let x = batch();
        let cfg = AugmentCfg { max_shift: 0, flip_prob: 1.0, cutout: 0 };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let y = augment_batch(&x, &cfg, &mut rng);
        // Flipping only permutes pixels within each row.
        let mut a: Vec<f32> = x.as_slice().to_vec();
        let mut b: Vec<f32> = y.as_slice().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
        assert_ne!(x.as_slice(), y.as_slice(), "flip must change layout");
    }

    #[test]
    fn cutout_zeroes_a_square() {
        let x = Tensor::full([1, 2, 8, 8], 1.0f32);
        let cfg = AugmentCfg { max_shift: 0, flip_prob: 0.0, cutout: 3 };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let y = augment_batch(&x, &cfg, &mut rng);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 3 * 3 * 2, "3x3 square across 2 channels");
    }
}
