//! Motivation-study instrumentation (Sec. 2 of the paper, Figs. 2–5).
//!
//! Runs a model under DRQ while measuring, per layer:
//!
//! * **Fig. 2** — for each *sensitive* output (large magnitude at full
//!   precision), the share of low-precision inputs in its receptive field,
//!   bucketed into 0–25 / 25–50 / 50–75 / 75–100%.
//! * **Fig. 3** — mean precision loss `|O_drq − O_hp|` over sensitive
//!   outputs.
//! * **Fig. 4** — for each *insensitive* output, the share of
//!   high-precision inputs, same buckets.
//! * **Fig. 5** — computation waste: `max |O_drq − O_lp|` over insensitive
//!   outputs (the paper's Eq. 1 "extra precision").

use odq_nn::executor::{ConvCtx, ConvExecutor};
use odq_tensor::stats::quantile;
use odq_tensor::Tensor;

use crate::drq_conv::{drq_conv2d, DrqCfg};

/// Counts of outputs whose input-precision share falls in each quartile
/// bucket: `[0–25%, 25–50%, 50–75%, 75–100%]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShareBuckets {
    /// Bucket counts.
    pub counts: [u64; 4],
}

impl ShareBuckets {
    /// Add one observation of a share in `[0, 1]`.
    pub fn add(&mut self, share: f32) {
        let b = ((share * 4.0).floor() as usize).min(3);
        self.counts[b] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bucket percentages (0–100), zeros when empty.
    pub fn percentages(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        let mut out = [0.0; 4];
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o = 100.0 * c as f64 / t as f64;
        }
        out
    }
}

/// Per-layer motivation-study record.
#[derive(Clone, Debug)]
pub struct MotivationLayer {
    /// Layer name (`C1`, `C2`, ... as in Figs. 2–5's x-axis).
    pub name: String,
    /// Fig. 2: low-precision-input share buckets over sensitive outputs.
    pub lp_share_sensitive: ShareBuckets,
    /// Fig. 4: high-precision-input share buckets over insensitive outputs.
    pub hp_share_insensitive: ShareBuckets,
    /// Fig. 3 numerator: Σ |O_drq − O_hp| over sensitive outputs.
    pub precision_loss_sum: f64,
    /// Fig. 3 denominator.
    pub sensitive_outputs: u64,
    /// Fig. 5: running max |O_drq − O_lp| over insensitive outputs.
    pub extra_precision_max: f64,
    /// Total outputs seen.
    pub total_outputs: u64,
}

impl MotivationLayer {
    /// Fig. 3's per-layer value.
    pub fn mean_precision_loss(&self) -> f64 {
        if self.sensitive_outputs == 0 {
            return 0.0;
        }
        self.precision_loss_sum / self.sensitive_outputs as f64
    }
}

/// Aggregated motivation-study statistics.
#[derive(Clone, Debug, Default)]
pub struct MotivationStats {
    /// Per-layer records, in first-encounter order.
    pub layers: Vec<MotivationLayer>,
}

impl MotivationStats {
    /// Find a layer by name.
    pub fn layer(&self, name: &str) -> Option<&MotivationLayer> {
        self.layers.iter().find(|l| l.name == name)
    }
}

/// A [`ConvExecutor`] that runs DRQ and accumulates [`MotivationStats`].
///
/// Output sensitivity ground truth: an output is *sensitive* iff its
/// full-high-precision magnitude is at or above the per-layer
/// `out_quantile` of |outputs| in the current batch (the paper defines
/// sensitive outputs as "those with a larger magnitude").
pub struct MotivationExecutor {
    /// DRQ configuration under study.
    pub cfg: DrqCfg,
    /// Quantile of |O_hp| defining output sensitivity (e.g. 0.75 ⇒ the
    /// top 25% of outputs by magnitude are sensitive).
    pub out_quantile: f32,
    /// Accumulated statistics.
    pub stats: MotivationStats,
}

impl MotivationExecutor {
    /// New instrumentation executor.
    pub fn new(cfg: DrqCfg, out_quantile: f32) -> Self {
        assert!((0.0..1.0).contains(&out_quantile), "quantile must be in [0,1)");
        Self { cfg, out_quantile, stats: MotivationStats::default() }
    }

    fn entry(&mut self, name: &str) -> &mut MotivationLayer {
        if let Some(pos) = self.stats.layers.iter().position(|l| l.name == name) {
            &mut self.stats.layers[pos]
        } else {
            self.stats.layers.push(MotivationLayer {
                name: name.to_string(),
                lp_share_sensitive: ShareBuckets::default(),
                hp_share_insensitive: ShareBuckets::default(),
                precision_loss_sum: 0.0,
                sensitive_outputs: 0,
                extra_precision_max: 0.0,
                total_outputs: 0,
            });
            self.stats.layers.last_mut().expect("just pushed")
        }
    }
}

impl ConvExecutor for MotivationExecutor {
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let r = drq_conv2d(x, ctx.weights, ctx.bias, &ctx.geom, &self.cfg);

        // Per-layer output-sensitivity threshold from this batch's
        // distribution of |O_hp|.
        let abs_hp: Vec<f32> = r.reference_hp.as_slice().iter().map(|v| v.abs()).collect();
        let thr = quantile(&abs_hp, self.out_quantile);

        let n = x.dims()[0];
        let co = ctx.geom.out_channels;
        let spatial = ctx.geom.out_spatial();
        let entry = self.entry(ctx.name);
        let o = r.output.as_slice();
        let hp = r.reference_hp.as_slice();
        let lp = r.reference_lp.as_slice();
        for img in 0..n {
            for ch in 0..co {
                let base = (img * co + ch) * spatial;
                for s in 0..spatial {
                    let i = base + s;
                    let lp_share = r.lp_share[img * spatial + s];
                    entry.total_outputs += 1;
                    if hp[i].abs() >= thr {
                        entry.sensitive_outputs += 1;
                        entry.lp_share_sensitive.add(lp_share);
                        entry.precision_loss_sum += (o[i] - hp[i]).abs() as f64;
                    } else {
                        entry.hp_share_insensitive.add(1.0 - lp_share);
                        let waste = (o[i] - lp[i]).abs() as f64;
                        if waste > entry.extra_precision_max {
                            entry.extra_precision_max = waste;
                        }
                    }
                }
            }
        }
        r.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_data::SynthSpec;
    use odq_nn::models::{Model, ModelCfg};
    use odq_nn::Arch;

    #[test]
    fn buckets_quartiles() {
        let mut b = ShareBuckets::default();
        for s in [0.0, 0.1, 0.26, 0.5, 0.74, 0.76, 1.0] {
            b.add(s);
        }
        assert_eq!(b.counts, [2, 1, 2, 2]);
        assert_eq!(b.total(), 7);
        let p = b.percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_buckets_percentages_zero() {
        assert_eq!(ShareBuckets::default().percentages(), [0.0; 4]);
    }

    #[test]
    fn motivation_executor_collects_all_figures() {
        let mut mcfg = ModelCfg::small(Arch::ResNet20, 10);
        mcfg.input_hw = 8;
        let m = Model::build(mcfg);
        let data = SynthSpec::cifar10(8).generate(3);
        let mut exec = MotivationExecutor::new(DrqCfg::int8_int4(0.4), 0.75);
        let _ = m.forward_eval(&data.images, &mut exec);

        assert!(!exec.stats.layers.is_empty());
        for l in &exec.stats.layers {
            assert!(l.total_outputs > 0, "{}", l.name);
            // ~25% of outputs sensitive by construction of the quantile.
            let frac = l.sensitive_outputs as f64 / l.total_outputs as f64;
            assert!(frac > 0.05 && frac < 0.6, "{}: sensitive frac {frac}", l.name);
            // Buckets account for every output.
            assert_eq!(
                l.lp_share_sensitive.total() + l.hp_share_insensitive.total(),
                l.total_outputs
            );
            assert!(l.extra_precision_max >= 0.0);
        }
    }

    #[test]
    fn sensitive_outputs_do_receive_lp_inputs() {
        // The paper's core observation (Fig. 2): under input-directed
        // quantization, many sensitive outputs are computed with >25%
        // low-precision inputs. Verify our DRQ reproduces this.
        let mut mcfg = ModelCfg::small(Arch::ResNet20, 10);
        mcfg.input_hw = 8;
        let m = Model::build(mcfg);
        let data = SynthSpec::cifar10(8).generate(4);
        let mut exec = MotivationExecutor::new(DrqCfg::int8_int4(0.5), 0.75);
        let _ = m.forward_eval(&data.images, &mut exec);
        let polluted: u64 = exec
            .stats
            .layers
            .iter()
            .map(|l| l.lp_share_sensitive.counts[1..].iter().sum::<u64>())
            .sum();
        let total: u64 = exec.stats.layers.iter().map(|l| l.lp_share_sensitive.total()).sum();
        assert!(total > 0);
        assert!(
            polluted as f64 / total as f64 > 0.3,
            "expected many sensitive outputs with >25% LP inputs, got {polluted}/{total}"
        );
    }
}
