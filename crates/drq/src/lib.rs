//! # odq-drq
//!
//! Reimplementation of **DRQ** (Song et al., ISCA 2020) — the
//! *input-directed* region-based dynamic quantization framework the paper
//! compares against — plus the instrumentation behind the paper's
//! motivation study (Sec. 2, Figs. 2–5).
//!
//! DRQ's algorithm, as described in the ODQ paper:
//!
//! 1. Partition each input feature map into regions and compare each
//!    region's mean magnitude against a threshold: large ⇒ the region is
//!    *sensitive*.
//! 2. Inputs in sensitive regions (and the weights multiplying them) are
//!    used at **high precision**; inputs in insensitive regions compute at
//!    **low precision** (their low-order bits — and the corresponding
//!    weights' — are dropped).
//!
//! Because the decision is made on the *inputs*, every output mixes
//! contributions of both precisions — which is exactly the inefficiency the
//! ODQ paper quantifies:
//!
//! * sensitive outputs receive low-precision contributions (accuracy loss,
//!   Figs. 2–3);
//! * insensitive outputs receive high-precision contributions (wasted
//!   computation, Figs. 4–5).
//!
//! Precision pairs follow the paper: INT8-INT4 (`DrqCfg::int8_int4`) and
//! INT4-INT2 (`DrqCfg::int4_int2`).

pub mod drq_conv;
pub mod engine;
pub mod stats;

pub use drq_conv::{drq_conv2d, region_sensitivity_mask, DrqCfg, DrqConvOutput};
pub use engine::DrqEngine;
pub use stats::{MotivationExecutor, MotivationStats, ShareBuckets};
