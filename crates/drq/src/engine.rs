//! [`DrqEngine`] — run whole models under DRQ.

use std::sync::Arc;

use odq_nn::executor::{ConvCtx, ConvExecutor};
use odq_quant::plan::{PlanCache, PlanSpec};
use odq_tensor::Tensor;

use crate::drq_conv::{drq_conv2d_planned, DrqCfg};

/// Per-layer DRQ execution record.
#[derive(Clone, Debug)]
pub struct DrqLayerStats {
    /// Layer name.
    pub name: String,
    /// Total input features seen.
    pub total_inputs: u64,
    /// Of those, sensitive (high-precision).
    pub hi_inputs: u64,
    /// Total MACs executed.
    pub total_macs: u64,
    /// Of those, at high precision.
    pub hi_macs: u64,
}

impl DrqLayerStats {
    /// Fraction of inputs kept at high precision.
    pub fn hi_input_fraction(&self) -> f64 {
        if self.total_inputs == 0 {
            return 0.0;
        }
        self.hi_inputs as f64 / self.total_inputs as f64
    }

    /// Fraction of MACs executed at high precision.
    pub fn hi_mac_fraction(&self) -> f64 {
        if self.total_macs == 0 {
            return 0.0;
        }
        self.hi_macs as f64 / self.total_macs as f64
    }
}

/// A [`ConvExecutor`] running every conv layer under DRQ.
pub struct DrqEngine {
    /// DRQ configuration (bit pair, region size, input threshold).
    pub cfg: DrqCfg,
    /// Whether to record per-layer statistics.
    pub record: bool,
    /// Accumulated statistics in first-encounter order.
    pub stats: Vec<DrqLayerStats>,
    plans: Arc<PlanCache>,
}

impl DrqEngine {
    /// Engine with the given configuration.
    pub fn new(cfg: DrqCfg) -> Self {
        Self::with_plan_cache(cfg, Arc::new(PlanCache::new()))
    }

    /// Engine sharing an existing plan cache (prepacked weights built once
    /// across every engine pointed at it).
    pub fn with_plan_cache(cfg: DrqCfg, plans: Arc<PlanCache>) -> Self {
        Self { cfg, record: true, stats: Vec::new(), plans }
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// Output-weighted fraction of high-precision MACs across layers.
    pub fn overall_hi_mac_fraction(&self) -> f64 {
        let total: u64 = self.stats.iter().map(|l| l.total_macs).sum();
        if total == 0 {
            return 0.0;
        }
        let hi: u64 = self.stats.iter().map(|l| l.hi_macs).sum();
        hi as f64 / total as f64
    }
}

impl ConvExecutor for DrqEngine {
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let spec = PlanSpec::drq(self.cfg.hi_bits, self.cfg.lo_bits);
        let plan = self.plans.plan_for(ctx.name, ctx.weights, spec);
        let r = drq_conv2d_planned(x, &plan, ctx.bias, &ctx.geom, &self.cfg, self.plans.pool());
        if self.record {
            let hi_inputs = r.input_mask.iter().filter(|&&b| b).count() as u64;
            let total_inputs = r.input_mask.len() as u64;
            // Every input feature participates in the same number of MACs
            // on average; approximate hi-MAC share by the hi input share
            // weighted by the layer's MAC count.
            let macs = ctx.geom.macs() * x.dims()[0] as u64;
            let hi_macs = (macs as f64 * hi_inputs as f64 / total_inputs.max(1) as f64) as u64;
            let entry = match self.stats.iter_mut().find(|l| l.name == ctx.name) {
                Some(e) => e,
                None => {
                    self.stats.push(DrqLayerStats {
                        name: ctx.name.to_string(),
                        total_inputs: 0,
                        hi_inputs: 0,
                        total_macs: 0,
                        hi_macs: 0,
                    });
                    self.stats.last_mut().expect("just pushed")
                }
            };
            entry.total_inputs += total_inputs;
            entry.hi_inputs += hi_inputs;
            entry.total_macs += macs;
            entry.hi_macs += hi_macs;
        }
        r.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_data::SynthSpec;
    use odq_nn::models::{Model, ModelCfg};
    use odq_nn::Arch;

    #[test]
    fn engine_runs_model_and_records() {
        let mut cfg = ModelCfg::small(Arch::ResNet20, 10);
        cfg.input_hw = 8;
        let m = Model::build(cfg);
        let data = SynthSpec::cifar10(8).generate(3);
        let mut engine = DrqEngine::new(DrqCfg::int8_int4(0.4));
        let y = m.forward_eval(&data.images, &mut engine);
        assert_eq!(y.dims(), &[3, 10]);
        assert!(!engine.stats.is_empty());
        for l in &engine.stats {
            assert!(l.total_inputs > 0);
            assert!(l.hi_input_fraction() >= 0.0 && l.hi_input_fraction() <= 1.0);
        }
        let f = engine.overall_hi_mac_fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn threshold_monotone_in_hi_fraction() {
        let mut cfg = ModelCfg::small(Arch::ResNet20, 10);
        cfg.input_hw = 8;
        let m = Model::build(cfg);
        let data = SynthSpec::cifar10(8).generate(3);
        let mut lo = DrqEngine::new(DrqCfg::int8_int4(0.1));
        let _ = m.forward_eval(&data.images, &mut lo);
        let mut hi = DrqEngine::new(DrqCfg::int8_int4(0.9));
        let _ = m.forward_eval(&data.images, &mut hi);
        assert!(lo.overall_hi_mac_fraction() >= hi.overall_hi_mac_fraction());
    }
}
