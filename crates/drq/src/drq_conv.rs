//! The DRQ mixed-precision convolution.

use odq_nn::executor::add_bias;
use odq_quant::plan::QConvPlan;
use odq_quant::qconv::{
    qconv2d_codes, qconv2d_codes_with_sums, receptive_sums, requant_step, requantize_codes,
};
use odq_quant::{quantize_activation, quantize_weights};
use odq_tensor::workspace::WorkspacePool;
use odq_tensor::{ConvGeom, Tensor};

/// DRQ configuration.
#[derive(Clone, Copy, Debug)]
pub struct DrqCfg {
    /// High-precision bit width (sensitive regions).
    pub hi_bits: u8,
    /// Low-precision bit width (insensitive regions): inputs and weights
    /// are requantized onto the coarser `lo_bits` grid (which embeds
    /// exactly into the `hi_bits` grid, see
    /// [`odq_quant::qconv::requantize_codes`]).
    pub lo_bits: u8,
    /// Activation clip for quantization.
    pub a_clip: f32,
    /// Square region edge for the input sensitivity test (the paper's DRQ
    /// uses small square regions per channel).
    pub region: usize,
    /// Input sensitivity threshold: a region is sensitive iff its mean
    /// |value| (pre-quantization, in input units) meets this.
    pub input_threshold: f32,
}

impl DrqCfg {
    /// The INT8-INT4 configuration of the paper's comparison.
    pub fn int8_int4(input_threshold: f32) -> Self {
        Self { hi_bits: 8, lo_bits: 4, a_clip: 1.0, region: 2, input_threshold }
    }

    /// The INT4-INT2 configuration (where DRQ's accuracy collapses,
    /// Fig. 18).
    pub fn int4_int2(input_threshold: f32) -> Self {
        Self { hi_bits: 4, lo_bits: 2, a_clip: 1.0, region: 2, input_threshold }
    }

    /// Requantization step between the two grids.
    pub fn step(&self) -> i16 {
        requant_step(self.hi_bits, self.lo_bits)
    }
}

/// Result of a DRQ convolution.
pub struct DrqConvOutput {
    /// Mixed-precision outputs, dequantized, `[N, Co, OH, OW]`.
    pub output: Tensor,
    /// Per-input-feature sensitivity (true = high precision),
    /// `[N, Ci, H, W]` flattened.
    pub input_mask: Vec<bool>,
    /// Fraction of low-precision inputs in each output's receptive field,
    /// `[N, OH, OW]` flattened (identical across output channels, which all
    /// read the same window).
    pub lp_share: Vec<f32>,
    /// Reference output with *all* inputs at high precision.
    pub reference_hp: Tensor,
    /// Reference output with *all* inputs at low precision.
    pub reference_lp: Tensor,
}

/// Compute the per-input-feature sensitivity mask: each `region × region`
/// tile of each channel is sensitive iff its mean |value| ≥ threshold.
pub fn region_sensitivity_mask(x: &Tensor, region: usize, threshold: f32) -> Vec<bool> {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let r = region.max(1);
    let xs = x.as_slice();
    let mut mask = vec![false; xs.len()];
    for img_ch in 0..n * c {
        let base = img_ch * h * w;
        let mut y0 = 0;
        while y0 < h {
            let mut x0 = 0;
            let y1 = (y0 + r).min(h);
            while x0 < w {
                let x1 = (x0 + r).min(w);
                let mut sum = 0.0f32;
                for y in y0..y1 {
                    for x in x0..x1 {
                        sum += xs[base + y * w + x].abs();
                    }
                }
                let mean = sum / ((y1 - y0) * (x1 - x0)) as f32;
                let sensitive = mean >= threshold;
                if sensitive {
                    for y in y0..y1 {
                        for x in x0..x1 {
                            mask[base + y * w + x] = true;
                        }
                    }
                }
                x0 = x1;
            }
            y0 = y1;
        }
    }
    mask
}

/// Run a DRQ mixed-precision convolution.
///
/// Decomposition: quantize input and weights at `hi_bits` (offset-binary
/// weights, zero point `z_w`); requantize codes onto the `lo_bits` grid on
/// the insensitive path (input *and* weight, per the paper's description
/// of low-precision computation); then
///
/// ```text
/// out = s · [ conv(x_sens, n) + conv(x_insens_lo, n_lo) − z_w · Σa ]
/// ```
///
/// where `x_sens` holds codes only at sensitive positions (zeros
/// elsewhere) and vice versa. The coarse grid embeds exactly into the fine
/// one (same scale and zero point), so the mixed sum needs no rescaling.
pub fn drq_conv2d(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    g: &ConvGeom,
    cfg: &DrqCfg,
) -> DrqConvOutput {
    let n = x.dims()[0];
    let qx = quantize_activation(x, cfg.hi_bits, cfg.a_clip);
    let qw = quantize_weights(w, cfg.hi_bits);
    let scale = qx.scale * qw.scale;
    let zw = qw.zero;
    let step = cfg.step();

    let input_mask = region_sensitivity_mask(x, cfg.region, cfg.input_threshold);

    // Split input codes by sensitivity; requantize the insensitive part.
    let codes = qx.codes.as_slice();
    let mut x_hi = vec![0i16; codes.len()];
    let mut x_lo = vec![0i16; codes.len()];
    for (i, (&c, &m)) in codes.iter().zip(&input_mask).enumerate() {
        if m {
            x_hi[i] = c;
        } else {
            x_lo[i] = ((c as f32 / step as f32).round() as i16) * step;
        }
    }
    let x_hi = Tensor::from_vec(qx.codes.shape().clone(), x_hi);
    let x_lo = Tensor::from_vec(qx.codes.shape().clone(), x_lo);

    // Requantized weights for the low-precision path.
    let w_lo = requantize_codes(&qw.codes, step);

    let y_hi = qconv2d_codes(&x_hi, &qw.codes, g);
    let y_lo = qconv2d_codes(&x_lo, &w_lo, g);
    let sa_hi = receptive_sums(&x_hi, g);
    let sa_lo = receptive_sums(&x_lo, g);

    // Shared affine dequantization: y = scale * (codes − z_w · Σa).
    let dequant = |codes: &[i32], sa: &[i32]| -> Tensor {
        let spatial = g.out_spatial();
        let co = g.out_channels;
        let mut t = Tensor::zeros(g.output_shape(n));
        let o = t.as_mut_slice();
        for img in 0..n {
            for f in 0..co {
                let base = (img * co + f) * spatial;
                for sp in 0..spatial {
                    o[base + sp] =
                        scale * (codes[base + sp] as f32 - zw * sa[img * spatial + sp] as f32);
                }
            }
        }
        t
    };

    let mixed_codes: Vec<i32> =
        y_hi.as_slice().iter().zip(y_lo.as_slice()).map(|(a, b)| a + b).collect();
    let sa_mixed: Vec<i32> =
        sa_hi.as_slice().iter().zip(sa_lo.as_slice()).map(|(a, b)| a + b).collect();
    let mut out = dequant(&mixed_codes, &sa_mixed);

    // References: everything high precision / everything low precision.
    let mut reference_hp = odq_quant::qconv::qconv2d(&qx, &qw, g);
    let x_all_lo = requantize_codes(&qx.codes, step);
    let ref_lp_codes = qconv2d_codes(&x_all_lo, &w_lo, g);
    let sa_all_lo = receptive_sums(&x_all_lo, g);
    let mut reference_lp = dequant(ref_lp_codes.as_slice(), sa_all_lo.as_slice());

    // Low-precision share of each output's receptive field.
    let lp_share = lp_share_per_output(&input_mask, g, n);

    if let Some(b) = bias {
        add_bias(&mut out, b, g);
        add_bias(&mut reference_hp, b, g);
        add_bias(&mut reference_lp, b, g);
    }

    DrqConvOutput { output: out, input_mask, lp_share, reference_hp, reference_lp }
}

/// The planned DRQ forward's result: just what the engine's serving path
/// consumes. The instrumented references ([`DrqConvOutput::reference_hp`]
/// etc.) stay on the unplanned [`drq_conv2d`].
pub struct DrqPlanned {
    /// Mixed-precision outputs, dequantized, `[N, Co, OH, OW]`.
    pub output: Tensor,
    /// Per-input-feature sensitivity (true = high precision).
    pub input_mask: Vec<bool>,
}

/// [`drq_conv2d`] over a prepacked plan (quantized + requantized weights
/// built once per weight version) and a shared workspace pool. Skips the
/// all-HP/all-LP reference convolutions — the engine's forward path never
/// reads them — and fuses each path's products with its receptive sums so
/// both precision branches lower each image exactly once.
///
/// Bit-identical to [`drq_conv2d`]'s `output`/`input_mask`: the same
/// code-domain splits, GEMM reduction orders and affine dequantization.
///
/// # Panics
/// Panics if the plan lacks requantized low-precision weights or its bit
/// width disagrees with `cfg.hi_bits`.
pub fn drq_conv2d_planned(
    x: &Tensor,
    plan: &QConvPlan,
    bias: Option<&[f32]>,
    g: &ConvGeom,
    cfg: &DrqCfg,
    pool: &WorkspacePool,
) -> DrqPlanned {
    assert_eq!(plan.spec.w_bits, cfg.hi_bits, "plan bit width mismatch");
    let w_lo = plan.w_lo.as_ref().expect("plan lacks DRQ low-precision weights");
    let qw = &plan.qw;
    let n = x.dims()[0];
    let qx = quantize_activation(x, cfg.hi_bits, cfg.a_clip);
    let scale = qx.scale * qw.scale;
    let zw = qw.zero;
    let step = cfg.step();

    let input_mask = region_sensitivity_mask(x, cfg.region, cfg.input_threshold);

    let codes = qx.codes.as_slice();
    let mut x_hi = vec![0i16; codes.len()];
    let mut x_lo = vec![0i16; codes.len()];
    for (i, (&c, &m)) in codes.iter().zip(&input_mask).enumerate() {
        if m {
            x_hi[i] = c;
        } else {
            x_lo[i] = ((c as f32 / step as f32).round() as i16) * step;
        }
    }
    let x_hi = Tensor::from_vec(qx.codes.shape().clone(), x_hi);
    let x_lo = Tensor::from_vec(qx.codes.shape().clone(), x_lo);

    let (y_hi, sa_hi) = qconv2d_codes_with_sums(&x_hi, &qw.codes, g, pool);
    let (y_lo, sa_lo) = qconv2d_codes_with_sums(&x_lo, w_lo, g, pool);

    let spatial = g.out_spatial();
    let co = g.out_channels;
    let mut out = Tensor::zeros(g.output_shape(n));
    {
        let o = out.as_mut_slice();
        let (yh, yl) = (y_hi.as_slice(), y_lo.as_slice());
        let (sh, sl) = (sa_hi.as_slice(), sa_lo.as_slice());
        for img in 0..n {
            for f in 0..co {
                let base = (img * co + f) * spatial;
                for sp in 0..spatial {
                    let code = (yh[base + sp] + yl[base + sp]) as f32;
                    let sa = (sh[img * spatial + sp] + sl[img * spatial + sp]) as f32;
                    o[base + sp] = scale * (code - zw * sa);
                }
            }
        }
    }
    if let Some(b) = bias {
        add_bias(&mut out, b, g);
    }
    DrqPlanned { output: out, input_mask }
}

/// For every output spatial position, the fraction of its receptive-field
/// inputs (including zero padding, which is precision-neutral and counted
/// as high precision) that are low precision.
fn lp_share_per_output(input_mask: &[bool], g: &ConvGeom, n: usize) -> Vec<f32> {
    let (c, h, w, k) = (g.in_channels, g.in_h, g.in_w, g.kernel);
    let (oh, ow) = (g.out_h(), g.out_w());
    let col_len = g.col_len();
    let mut out = vec![0.0f32; n * oh * ow];
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut lp = 0usize;
                for ci in 0..c {
                    for ki in 0..k {
                        let iy = (oy * g.stride + ki) as isize - g.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..k {
                            let ix = (ox * g.stride + kj) as isize - g.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = ((img * c + ci) * h + iy as usize) * w + ix as usize;
                            if !input_mask[idx] {
                                lp += 1;
                            }
                        }
                    }
                }
                out[(img * oh + oy) * ow + ox] = lp as f32 / col_len as f32;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 2654435761 + seed * 13) % 1000) as f32 / 1000.0).collect()
    }

    fn pseudo_signed(n: usize, seed: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 40503 + seed * 7) % 1000) as f32 / 500.0 - 1.0).collect()
    }

    fn setup() -> (Tensor, Tensor, ConvGeom) {
        let g = ConvGeom::new(3, 4, 8, 8, 3, 1, 1);
        let x = Tensor::from_vec(g.input_shape(2), pseudo(2 * 3 * 64, 1));
        let w = Tensor::from_vec(g.weight_shape(), pseudo_signed(4 * 27, 2));
        (x, w, g)
    }

    #[test]
    fn region_mask_marks_bright_regions() {
        let mut data = vec![0.0f32; 16];
        // one bright 2x2 tile in a 4x4 single-channel image
        data[0] = 0.9;
        data[1] = 0.9;
        data[4] = 0.9;
        data[5] = 0.9;
        let x = Tensor::from_vec([1, 1, 4, 4], data);
        let m = region_sensitivity_mask(&x, 2, 0.5);
        assert!(m[0] && m[1] && m[4] && m[5]);
        assert_eq!(m.iter().filter(|&&b| b).count(), 4);
    }

    #[test]
    fn zero_threshold_equals_full_high_precision() {
        let (x, w, g) = setup();
        let r = drq_conv2d(&x, &w, None, &g, &DrqCfg::int8_int4(0.0));
        assert!(r.input_mask.iter().all(|&b| b), "all inputs sensitive at thr 0");
        assert!(r.output.max_abs_diff(&r.reference_hp) < 1e-5);
        assert!(r.lp_share.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn infinite_threshold_equals_all_low_precision() {
        let (x, w, g) = setup();
        let r = drq_conv2d(&x, &w, None, &g, &DrqCfg::int8_int4(f32::INFINITY));
        assert!(r.input_mask.iter().all(|&b| !b));
        assert!(r.output.max_abs_diff(&r.reference_lp) < 1e-5);
    }

    #[test]
    fn mixed_threshold_interpolates() {
        let (x, w, g) = setup();
        let cfg = DrqCfg::int8_int4(0.45);
        let r = drq_conv2d(&x, &w, None, &g, &cfg);
        let frac_hi =
            r.input_mask.iter().filter(|&&b| b).count() as f32 / r.input_mask.len() as f32;
        assert!(frac_hi > 0.05 && frac_hi < 0.95, "got {frac_hi}");
        // DRQ error vs full HP is between zero and the all-LP error.
        let e_mixed = r.output.mean_abs_diff(&r.reference_hp);
        let e_lp = r.reference_lp.mean_abs_diff(&r.reference_hp);
        assert!(e_mixed > 0.0);
        assert!(e_mixed < e_lp, "mixed {e_mixed} must beat all-LP {e_lp}");
    }

    #[test]
    fn lp_share_bounds_and_consistency() {
        let (x, w, g) = setup();
        let r = drq_conv2d(&x, &w, None, &g, &DrqCfg::int4_int2(0.4));
        assert_eq!(r.lp_share.len(), 2 * g.out_spatial());
        assert!(r.lp_share.iter().all(|&f| (0.0..=1.0).contains(&f)));
        let frac_lp_inputs =
            r.input_mask.iter().filter(|&&b| !b).count() as f32 / r.input_mask.len() as f32;
        let mean_share: f32 = r.lp_share.iter().sum::<f32>() / r.lp_share.len() as f32;
        // Receptive-field average ≈ global LP fraction (padding skews a bit).
        assert!((mean_share - frac_lp_inputs).abs() < 0.2, "{mean_share} vs {frac_lp_inputs}");
    }

    #[test]
    fn int8_int4_more_accurate_than_int4_int2() {
        let (x, w, g) = setup();
        let hi = drq_conv2d(&x, &w, None, &g, &DrqCfg::int8_int4(0.45));
        let lo = drq_conv2d(&x, &w, None, &g, &DrqCfg::int4_int2(0.45));
        // compare each against its own hi-precision reference, normalized
        // by reference magnitude.
        let e_hi = hi.output.mean_abs_diff(&hi.reference_hp) / hi.reference_hp.max_abs();
        let e_lo = lo.output.mean_abs_diff(&lo.reference_hp) / lo.reference_hp.max_abs();
        assert!(e_hi < e_lo, "8-4 error {e_hi} should beat 4-2 error {e_lo}");
    }

    #[test]
    fn planned_matches_unplanned_bit_exact() {
        use odq_quant::plan::PlanSpec;
        let (x, w, g) = setup();
        let bias = vec![0.5f32, -0.25, 0.0, 1.0];
        for cfg in [DrqCfg::int8_int4(0.45), DrqCfg::int4_int2(0.4)] {
            let seed = drq_conv2d(&x, &w, Some(&bias), &g, &cfg);
            let plan = QConvPlan::build(&w, PlanSpec::drq(cfg.hi_bits, cfg.lo_bits));
            let pool = WorkspacePool::new();
            let planned = drq_conv2d_planned(&x, &plan, Some(&bias), &g, &cfg, &pool);
            assert_eq!(planned.output.as_slice(), seed.output.as_slice(), "outputs bit-equal");
            assert_eq!(planned.input_mask, seed.input_mask);
            // One lowering per (precision path, image) for a batch of 2.
            assert_eq!(pool.lowerings(), 4);
        }
    }

    #[test]
    fn bias_applied() {
        let (x, w, g) = setup();
        let bias = vec![1.0f32, 0.0, -1.0, 0.5];
        let with = drq_conv2d(&x, &w, Some(&bias), &g, &DrqCfg::int8_int4(0.45));
        let without = drq_conv2d(&x, &w, None, &g, &DrqCfg::int8_int4(0.45));
        let spatial = g.out_spatial();
        let d = with.output.as_slice()[0] - without.output.as_slice()[0];
        assert!((d - 1.0).abs() < 1e-6);
        let d2 = with.output.as_slice()[2 * spatial] - without.output.as_slice()[2 * spatial];
        assert!((d2 + 1.0).abs() < 1e-6);
    }
}
