//! # odq-bench
//!
//! Experiment harness for the ODQ reproduction. Each binary in `src/bin/`
//! regenerates one table or figure of the paper (see DESIGN.md's
//! per-experiment index); this library holds the shared machinery:
//!
//! * [`trained_model`] — build and train a width-scaled model on the
//!   synthetic dataset (DESIGN.md substitutions 1–2);
//! * [`measured_fractions`] / [`full_size_workloads`] — measure per-layer
//!   ODQ sensitive fractions on the trained model and map them onto the
//!   *full-size* network geometries for the accelerator simulator;
//! * table-printing and JSON-result helpers.

pub mod chart;

use odq_accel::LayerWorkload;
use odq_core::OdqEngine;
use odq_data::{Dataset, SynthSpec};
use odq_nn::models::{Model, ModelCfg};
use odq_nn::param::init_rng;
use odq_nn::train::{train_epoch, SgdCfg};
use odq_nn::Arch;

/// Standard experiment scale: kept small enough that every binary runs in
/// seconds-to-minutes on one CPU core while exercising the full pipeline.
#[derive(Clone, Copy, Debug)]
pub struct ExpScale {
    /// Image size for the scaled models.
    pub hw: usize,
    /// Training images.
    pub n_train: usize,
    /// Test images.
    pub n_test: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for ExpScale {
    fn default() -> Self {
        Self { hw: 12, n_train: 280, n_test: 120, epochs: 7, batch: 28 }
    }
}

impl ExpScale {
    /// A faster scale for smoke runs (`--quick`).
    pub fn quick() -> Self {
        Self { hw: 8, n_train: 96, n_test: 48, epochs: 2, batch: 24 }
    }

    /// Select from CLI args: `--quick` anywhere selects the quick scale.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::default()
        }
    }
}

/// Bump when the training recipe changes (invalidates cached models).
const TRAIN_RECIPE_VERSION: u32 = 1;

fn model_cache_path(
    arch: Arch,
    num_classes: usize,
    scale: ExpScale,
    seed: u64,
) -> std::path::PathBuf {
    std::path::Path::new("results").join(".model-cache").join(format!(
        "v{TRAIN_RECIPE_VERSION}_{}_{num_classes}c_{}px_{}n_{}e_{seed:x}.f32",
        arch.name().replace('-', ""),
        scale.hw,
        scale.n_train,
        scale.epochs
    ))
}

fn save_state(path: &std::path::Path, state: &[f32]) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let bytes: Vec<u8> = state.iter().flat_map(|v| v.to_le_bytes()).collect();
    let _ = std::fs::write(path, bytes);
}

fn load_state(path: &std::path::Path, expected_len: usize) -> Option<Vec<f32>> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() != expected_len * 4 {
        return None;
    }
    Some(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// Build a width-scaled model of `arch` and train it on the synthetic
/// dataset: float epochs followed by INT4 quantization-aware fine-tuning
/// (the paper's models are DoReFa-trained at 4 bits before ODQ is applied,
/// Sec. 3). Returns the model and the train/test split.
///
/// Trained weights are cached under `results/.model-cache/` keyed by the
/// full training configuration, so repeated experiment runs skip training.
/// Delete that directory (or set `ODQ_NO_CACHE=1`) to force retraining.
pub fn trained_model(
    arch: Arch,
    num_classes: usize,
    scale: ExpScale,
    seed: u64,
) -> (Model, Dataset, Dataset) {
    let mut cfg = ModelCfg::small(arch, num_classes);
    cfg.input_hw = scale.hw;
    cfg.seed = seed;
    let mut model = Model::build(cfg);

    let mut spec =
        if num_classes > 10 { SynthSpec::cifar100(scale.hw) } else { SynthSpec::cifar10(scale.hw) };
    spec.num_classes = num_classes;
    let (train, test) = spec.generate_split(scale.n_train, scale.n_test);

    let use_cache = std::env::var_os("ODQ_NO_CACHE").is_none();
    let cache = model_cache_path(arch, num_classes, scale, seed);
    if use_cache {
        let want = model.snapshot_state().len();
        if let Some(state) = load_state(&cache, want) {
            model.restore_state(&state);
            model.set_qat(Some(odq_nn::layers::QatCfg::int4()));
            return (model, train, test);
        }
    }

    let mut rng = init_rng(seed ^ 0x5EED);
    let sgd = SgdCfg { lr: 0.06, momentum: 0.9, weight_decay: 1e-4, grad_clip: 5.0 };
    for _ in 0..scale.epochs {
        train_epoch(&mut model, &train.images, &train.labels, scale.batch, &sgd, &mut rng);
    }
    // 4-bit quantization-aware fine-tuning (straight-through estimator).
    model.set_qat(Some(odq_nn::layers::QatCfg::int4()));
    let ft = SgdCfg { lr: 0.02, momentum: 0.9, weight_decay: 1e-4, grad_clip: 5.0 };
    for _ in 0..scale.epochs.div_ceil(2).max(2) {
        train_epoch(&mut model, &train.images, &train.labels, scale.batch, &ft, &mut rng);
    }
    if use_cache {
        save_state(&cache, &model.snapshot_state());
    }
    (model, train, test)
}

/// ODQ threshold-in-the-loop retraining (the paper's "weights are
/// retrained after introducing the threshold", Sec. 3).
///
/// The threshold is annealed up to its target over the epochs — jumping
/// straight to a large threshold replaces most outputs with predictor
/// estimates at once and regularly diverges on small models; ramping lets
/// the network adapt gradually (the paper reports 3–4 retraining rounds
/// per model, consistent with a staged schedule).
pub fn odq_retrain(model: &mut Model, train: &Dataset, threshold: f32, scale: ExpScale, seed: u64) {
    let mut rng = init_rng(seed ^ 0x0D12);
    let sgd = SgdCfg { lr: 0.01, momentum: 0.9, weight_decay: 1e-4, grad_clip: 5.0 };

    // Retrain AT the target threshold: adaptation to the emulated ODQ
    // noise does not transfer from smaller thresholds, so annealing wastes
    // epochs (empirically the real-ODQ accuracy only recovers after 2-3
    // epochs at the final threshold). Small-model retraining is not
    // monotone, so keep the best checkpoint by real-ODQ training accuracy
    // (including the pre-retraining state — retraining can only help).
    let eval_odq = |m: &Model| {
        let mut engine = odq_core::OdqEngine::new(threshold);
        engine.record = false;
        odq_nn::train::evaluate(m, &train.images, &train.labels, scale.batch, &mut engine)
    };
    let mut best_acc = eval_odq(model);
    let mut best_state = model.snapshot_state();
    for _ in 0..8 {
        model.set_odq_emu(Some(odq_nn::layers::OdqEmuCfg { threshold }));
        train_epoch(model, &train.images, &train.labels, scale.batch, &sgd, &mut rng);
        model.set_odq_emu(None);
        let acc = eval_odq(model);
        if acc >= best_acc {
            best_acc = acc;
            best_state = model.snapshot_state();
        }
    }
    model.restore_state(&best_state);
}

/// Measure per-layer ODQ sensitive fractions on a trained model.
///
/// Returns `(layer_name, sensitive_fraction)` in layer order.
pub fn measured_fractions(
    model: &Model,
    images: &odq_tensor::Tensor,
    threshold: f32,
) -> Vec<(String, f64)> {
    let mut engine = OdqEngine::new(threshold);
    let _ = model.forward_eval(images, &mut engine);
    engine.stats.layers.iter().map(|l| (l.name.clone(), l.sensitive_fraction())).collect()
}

/// Map measured per-layer sensitive fractions onto the **full-size**
/// network's conv geometries by relative depth (the scaled model has fewer
/// layers than the full architecture; fraction profiles are stretched
/// proportionally, preserving the early-vs-late layer trend).
pub fn full_size_workloads(arch: Arch, input_hw: usize, fractions: &[f64]) -> Vec<LayerWorkload> {
    let geoms = arch.conv_geometries(input_hw);
    assert!(!fractions.is_empty(), "need at least one measured fraction");
    geoms
        .iter()
        .enumerate()
        .map(|(i, nc)| {
            let pos = i as f64 / geoms.len().max(1) as f64;
            let j = ((pos * fractions.len() as f64).floor() as usize).min(fractions.len() - 1);
            LayerWorkload::uniform(nc.name.clone(), nc.geom, fractions[j].clamp(0.0, 1.0))
        })
        .collect()
}

/// The common experiment pipeline for accelerator figures: train (cached),
/// calibrate a threshold at quantile `q`, measure per-layer sensitive
/// fractions, and map them onto the full-size geometry.
pub fn measured_workloads(arch: Arch, scale: ExpScale, seed: u64, q: f32) -> Vec<LayerWorkload> {
    let (model, _train, test) = trained_model(arch, 10, scale, seed);
    let thr = calibrated_threshold(&model, &test.images, q);
    let fr: Vec<f64> =
        measured_fractions(&model, &test.images, thr).into_iter().map(|(_, s)| s).collect();
    full_size_workloads(arch, 32, &fr)
}

/// Full-size workloads with one uniform sensitive fraction (for sweeps).
pub fn uniform_workloads(arch: Arch, input_hw: usize, s: f64) -> Vec<LayerWorkload> {
    arch.conv_geometries(input_hw)
        .iter()
        .map(|nc| LayerWorkload::uniform(nc.name.clone(), nc.geom, s))
        .collect()
}

/// Calibrate a sensitivity threshold at quantile `q` of the model's
/// |predictor output| distribution (the paper's threshold-initialization
/// procedure, Sec. 3). `q = 0.7` marks roughly the top 30% of outputs
/// sensitive — the middle of the paper's observed 8–50% range.
pub fn calibrated_threshold(model: &Model, images: &odq_tensor::Tensor, q: f32) -> f32 {
    odq_core::threshold::calibrate_initial_threshold(model, images, 8, q)
}

/// Run the Sec.-2 motivation study: DRQ on a trained (width-scaled)
/// ResNet-20 over SynthCIFAR-10, collecting the Figs. 2–5 instrumentation.
///
/// We instrument the INT4-INT2 configuration: our DRQ implementation
/// requantizes onto an exactly-embedded coarse grid (smaller error than
/// plain bit truncation), so the paper's "noise on sensitive outputs"
/// effect — which it already demonstrates at INT8-INT4 — shows at the
/// 4/2-bit pair here (the same pair whose accuracy collapse Fig. 18
/// demonstrates).
pub fn motivation_run(scale: ExpScale) -> odq_drq::MotivationStats {
    let (model, _train, test) = trained_model(Arch::ResNet20, 10, scale, 0xF16);
    let mut exec = odq_drq::MotivationExecutor::new(odq_drq::DrqCfg::int4_int2(0.4), 0.75);
    let _ = model.forward_eval(&test.images, &mut exec);
    exec.stats
}

/// Print a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let head: Vec<String> = headers.iter().zip(&widths).map(|(h, w)| format!("{h:<w$}")).collect();
    println!("{}", head.join("  "));
    println!("{}", "-".repeat(head.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect();
        println!("{}", line.join("  "));
    }
}

/// Write a JSON result file under `results/` (created on demand).
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_size_workloads_stretch_profile() {
        let fr = [0.1, 0.5];
        let ws = full_size_workloads(Arch::ResNet20, 32, &fr);
        assert_eq!(ws.len(), Arch::ResNet20.conv_geometries(32).len());
        // First half ≈ 0.1, second half ≈ 0.5.
        assert!((ws[0].odq_sensitive_fraction - 0.1).abs() < 1e-9);
        assert!((ws.last().unwrap().odq_sensitive_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_workloads_all_same_fraction() {
        let ws = uniform_workloads(Arch::Vgg16, 32, 0.3);
        assert_eq!(ws.len(), 13);
        assert!(ws.iter().all(|w| (w.odq_sensitive_fraction - 0.3).abs() < 1e-9));
    }

    #[test]
    fn quick_scale_smaller() {
        let q = ExpScale::quick();
        let d = ExpScale::default();
        assert!(q.n_train < d.n_train && q.hw < d.hw);
    }

    #[test]
    fn trained_model_learns_something() {
        use odq_nn::executor::FloatConvExecutor;
        use odq_nn::train::evaluate;
        let scale = ExpScale { hw: 8, n_train: 96, n_test: 32, epochs: 7, batch: 16 };
        let (m, _train, test) = trained_model(Arch::ResNet20, 4, scale, 7);
        let acc = evaluate(&m, &test.images, &test.labels, 16, &mut FloatConvExecutor);
        assert!(acc > 0.3, "model should beat 4-class chance: {acc}");
    }
}
