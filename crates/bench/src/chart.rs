//! Terminal "figures": ASCII bar charts for experiment outputs, so the
//! per-figure binaries can render the paper's plots directly in the
//! terminal and the `report` binary can summarize a results directory.

/// Render a horizontal bar chart. `rows` are `(label, value)`; bars are
/// scaled to `width` characters against the maximum value.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize, unit: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n{title}\n"));
    if rows.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let max = rows.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max).max(1e-12);
    for (label, value) in rows {
        let filled = ((value / max) * width as f64).round().max(0.0) as usize;
        let bar: String = std::iter::repeat_n('█', filled.min(width)).collect();
        out.push_str(&format!("  {label:<label_w$} |{bar:<width$}| {value:.3}{unit}\n"));
    }
    out
}

/// Render grouped bars (one group per row, one bar per series) — the shape
/// of the paper's Figs. 18/19/21.
pub fn grouped_bar_chart(
    title: &str,
    series: &[&str],
    rows: &[(String, Vec<f64>)],
    width: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n{title}\n"));
    let label_w =
        rows.iter().map(|(l, _)| l.len()).chain(series.iter().map(|s| s.len())).max().unwrap_or(0);
    let max =
        rows.iter().flat_map(|(_, vs)| vs.iter().copied()).fold(f64::MIN, f64::max).max(1e-12);
    for (label, values) in rows {
        out.push_str(&format!("  {label}\n"));
        for (s, v) in series.iter().zip(values) {
            let filled = ((*v / max) * width as f64).round().max(0.0) as usize;
            let bar: String = std::iter::repeat_n('▒', filled.min(width)).collect();
            out.push_str(&format!("    {s:<label_w$} |{bar:<width$}| {v:.3}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let s = bar_chart("t", &rows, 10, "x");
        // The max row fills the width.
        assert!(s.contains(&"█".repeat(10)));
        // Labels are padded to equal width.
        assert!(s.contains("a  |") || s.contains("a |"));
        assert!(s.contains("2.000x"));
    }

    #[test]
    fn empty_chart() {
        let s = bar_chart("t", &[], 10, "");
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn grouped_chart_contains_all_series() {
        let rows = vec![("ResNet-20".to_string(), vec![1.0, 0.25])];
        let s = grouped_bar_chart("fig", &["INT16", "ODQ"], &rows, 20);
        assert!(s.contains("INT16"));
        assert!(s.contains("ODQ"));
        assert!(s.contains("ResNet-20"));
        assert!(s.contains("0.250"));
    }

    #[test]
    fn zero_values_render() {
        let rows = vec![("z".to_string(), 0.0)];
        let s = bar_chart("t", &rows, 8, "");
        assert!(s.contains("0.000"));
    }
}
