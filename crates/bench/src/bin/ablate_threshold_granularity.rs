//! Ablation: one global threshold (the paper's choice, Sec. 6.4) vs
//! per-layer calibrated thresholds.

use std::collections::HashMap;

use odq_bench::{calibrated_threshold, print_table, trained_model, write_json, ExpScale};
use odq_core::OdqEngine;
use odq_nn::train::evaluate;
use odq_nn::Arch;
use odq_quant::{quantize_activation, quantize_weights, split_qtensor};
use odq_tensor::stats::quantile;

fn main() {
    let scale = ExpScale::from_args();
    println!("Ablation: global vs per-layer sensitivity thresholds (ResNet-20)");
    let (model, _train, test) = trained_model(Arch::ResNet20, 10, scale, 0xAB2);
    let t = (&test.images, test.labels.as_slice());

    // Global threshold at the 65th percentile of pooled predictor outputs.
    let global = calibrated_threshold(&model, &test.images, 0.4);
    let mut ge = OdqEngine::new(global);
    let acc_global = evaluate(&model, t.0, t.1, scale.batch, &mut ge);
    let ins_global = 1.0 - ge.stats.overall_sensitive_fraction();

    // Per-layer thresholds at the same quantile of each layer's own
    // predictor-output distribution.
    struct Collect {
        samples: HashMap<String, Vec<f32>>,
    }
    impl odq_nn::executor::ConvExecutor for Collect {
        fn conv(
            &mut self,
            ctx: &odq_nn::executor::ConvCtx<'_>,
            x: &odq_tensor::Tensor,
        ) -> odq_tensor::Tensor {
            let qx = quantize_activation(x, 4, 1.0);
            let qw = quantize_weights(ctx.weights, 4);
            let xp = split_qtensor(&qx, 2);
            let wp = split_qtensor(&qw, 2);
            let pred =
                odq_quant::odq_predict(&xp.high, &wp, qw.zero, qx.scale * qw.scale, &ctx.geom);
            let entry = self.samples.entry(ctx.name.to_string()).or_default();
            for (i, &p) in pred.estimate.as_slice().iter().enumerate() {
                if i % 5 == 0 {
                    entry.push(p.abs());
                }
            }
            let mut y = odq_quant::qconv::qconv2d(&qx, &qw, &ctx.geom);
            if let Some(b) = ctx.bias {
                odq_nn::executor::add_bias(&mut y, b, &ctx.geom);
            }
            y
        }
    }
    let mut collect = Collect { samples: HashMap::new() };
    let _ = model.forward_eval(&test.images, &mut collect);
    let map: HashMap<String, f32> =
        collect.samples.iter().map(|(k, v)| (k.clone(), quantile(v, 0.4))).collect();
    let mut pe = OdqEngine::with_per_layer(map, global);
    let acc_per = evaluate(&model, t.0, t.1, scale.batch, &mut pe);
    let ins_per = 1.0 - pe.stats.overall_sensitive_fraction();

    // Per-layer spread of insensitive fractions under each policy.
    let spread = |e: &OdqEngine| {
        let fr: Vec<f64> = e.stats.layers.iter().map(|l| l.insensitive_fraction()).collect();
        let m = fr.iter().sum::<f64>() / fr.len().max(1) as f64;
        (fr.iter().map(|v| (v - m).powi(2)).sum::<f64>() / fr.len().max(1) as f64).sqrt()
    };
    let (sd_g, sd_p) = (spread(&ge), spread(&pe));
    print_table(
        "global vs per-layer thresholds",
        &["policy", "Top-1 acc %", "insensitive %", "per-layer stddev"],
        &[
            vec![
                "global (paper)".into(),
                format!("{:.1}", 100.0 * acc_global),
                format!("{:.1}", 100.0 * ins_global),
                format!("{:.1}", 100.0 * sd_g),
            ],
            vec![
                "per-layer".into(),
                format!("{:.1}", 100.0 * acc_per),
                format!("{:.1}", 100.0 * ins_per),
                format!("{:.1}", 100.0 * sd_p),
            ],
        ],
    );
    println!(
        "\nThe paper uses one threshold per model for design simplicity; per-layer \
         calibration equalizes the insensitive share across layers at similar accuracy."
    );
    write_json(
        "ablate_threshold_granularity",
        &serde_json::json!({
            "global": {"acc": acc_global, "insensitive": ins_global},
            "per_layer": {"acc": acc_per, "insensitive": ins_per},
        }),
    );
}
