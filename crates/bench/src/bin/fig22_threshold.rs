//! Figure 22 — threshold analysis on ResNet-20: sweeping the sensitivity
//! threshold from 0 to 1 trades accuracy against the share of low-precision
//! (INT2, insensitive) computation.

use odq_bench::{odq_retrain, print_table, trained_model, write_json, ExpScale};
use odq_core::threshold_sweep;
use odq_nn::Arch;

fn main() {
    let scale = ExpScale::from_args();
    println!("Fig. 22: threshold sweep on ResNet-20 (with threshold retraining per point)");
    let thresholds = [0.0f32, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];
    // Each sweep point retrains a fresh copy of the base model with the
    // threshold in the loop — the paper's models are likewise retrained
    // per threshold (Sec. 3/6.4). The base model comes from the training
    // cache, so the sweep cost is the retraining itself.
    let mut pts = Vec::new();
    for &thr in &thresholds {
        let (mut model, train, test) = trained_model(Arch::ResNet20, 10, scale, 0xF22);
        if thr > 0.0 {
            odq_retrain(&mut model, &train, thr, scale, 0xF22);
        }
        let p = threshold_sweep(&model, (&test.images, &test.labels), &[thr], scale.batch);
        pts.extend(p);
    }
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.3}", p.threshold),
                format!("{:.1}", 100.0 * p.accuracy),
                format!("{:.1}", 100.0 * p.insensitive_fraction),
                format!("{:.1}", 100.0 * p.sensitive_fraction),
            ]
        })
        .collect();
    print_table(
        "accuracy vs precision mix across thresholds",
        &["threshold", "Top-1 acc %", "INT2 (insensitive) %", "INT4 (sensitive) %"],
        &rows,
    );
    let acc_drop = (pts[0].accuracy - pts.last().unwrap().accuracy) * 100.0;
    let ins_gain = (pts.last().unwrap().insensitive_fraction - pts[0].insensitive_fraction) * 100.0;
    println!(
        "\nPaper: raising the threshold 0→1 costs ~1.8% accuracy while adding ~40% \
         insensitive outputs; 0.5 is the chosen balance. \
         Measured: accuracy drop {acc_drop:.1}%, insensitive gain {ins_gain:.1}%."
    );
    let json: Vec<_> = pts
        .iter()
        .map(|p| {
            serde_json::json!({
                "threshold": p.threshold, "accuracy": p.accuracy,
                "insensitive": p.insensitive_fraction,
            })
        })
        .collect();
    write_json("fig22_threshold", &json);
}
