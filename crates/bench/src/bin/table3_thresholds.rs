//! Table 3 — the sensitivity threshold selected per model by the adaptive
//! search (Sec. 3): calibrate from the predictor-output distribution,
//! retrain with the threshold in the loop, halve until the accuracy
//! expectation is met.

use odq_bench::{print_table, trained_model, write_json, ExpScale};
use odq_core::{search_threshold, SearchCfg};
use odq_nn::param::init_rng;
use odq_nn::Arch;

fn main() {
    let scale = ExpScale::from_args();
    println!("Table 3: per-model thresholds from the adaptive search");
    let paper = [("ResNet-56", 0.5f32), ("ResNet-20", 0.5), ("VGG-16", 0.3), ("DenseNet", 0.05)];
    let cfg =
        SearchCfg { retrain_epochs: 1, max_halvings: 5, acc_tolerance: 0.03, ..Default::default() };
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (arch, (pname, pthr)) in Arch::EVAL_MODELS.iter().zip(&paper) {
        let (mut model, train, test) = trained_model(*arch, 10, scale, 0x7A3);
        let mut rng = init_rng(0x7A3);
        let r = search_threshold(
            &mut model,
            (&train.images, &train.labels),
            (&test.images, &test.labels),
            &cfg,
            &mut rng,
        );
        rows.push(vec![
            pname.to_string(),
            format!("{:.3}", r.threshold),
            format!("{pthr}"),
            r.trials.len().to_string(),
            format!("{}", r.converged),
            format!("{:.1}", 100.0 * r.baseline_accuracy),
            format!("{:.1}", 100.0 * r.trials.last().map(|t| t.accuracy).unwrap_or(0.0)),
        ]);
        json.push(serde_json::json!({
            "model": pname, "threshold": r.threshold, "paper": pthr,
            "trials": r.trials.len(), "converged": r.converged,
        }));
    }
    print_table(
        "selected thresholds (ours vs paper)",
        &[
            "model",
            "threshold (ours)",
            "paper",
            "#trials",
            "converged",
            "INT4 baseline acc %",
            "ODQ acc %",
        ],
        &rows,
    );
    println!(
        "\nAbsolute thresholds depend on weight/activation scales, which differ on \
         synthetic data; the reproduced property is that the search converges in a \
         few halvings to a threshold preserving accuracy (paper: 3-4 retraining \
         rounds per model)."
    );
    write_json("table3_thresholds", &json);
}
