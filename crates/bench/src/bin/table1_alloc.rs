//! Table 1 — PE-array configurations and the maximum percentage of
//! sensitive output features each sustains without pipeline bubbles.
//! Derived analytically (`s_max = E / 3P`) and validated by simulating a
//! synthetic layer at the boundary.

use odq_accel::alloc::{max_sensitive_fraction, Allocation};
use odq_accel::sim::simulate_layer;
use odq_accel::{AccelConfig, LayerWorkload};
use odq_bench::{print_table, write_json};
use odq_tensor::ConvGeom;

fn main() {
    println!("Table 1: PE-array allocation vs maximum bubble-free sensitive fraction");
    let paper = [66, 41, 26, 16, 9];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let g = ConvGeom::new(64, 64, 32, 32, 3, 1, 1);
    for (a, &paper_pct) in Allocation::table1().iter().zip(&paper) {
        let s_max = max_sensitive_fraction(*a);
        // Validate by simulation: just below the bound the layer is
        // predictor-bound (no bubbles); 10% above it becomes executor-bound.
        let cfg =
            AccelConfig::odq_static(a.predictor_arrays).expect("Table 1 allocations are in range");
        let below = simulate_layer(&cfg, &LayerWorkload::uniform("t", g, (s_max * 0.98).min(1.0)));
        let above = simulate_layer(&cfg, &LayerWorkload::uniform("t", g, (s_max * 1.10).min(1.0)));
        let bubble_free = below.idle_fraction < 0.08;
        let bubbles_above = above.idle_fraction > below.idle_fraction;
        rows.push(vec![
            a.predictor_arrays.to_string(),
            a.executor_arrays.to_string(),
            format!("{}", (s_max * 100.0).floor()),
            paper_pct.to_string(),
            format!("{bubble_free} / {bubbles_above}"),
        ]);
        json.push((a.predictor_arrays, a.executor_arrays, s_max, paper_pct));
    }
    print_table(
        "Table 1 (ours vs paper)",
        &[
            "#pred arrays",
            "#exec arrays",
            "max sensitive % (ours)",
            "paper",
            "sim: free below / bubbles above",
        ],
        &rows,
    );
    write_json("table1_alloc", &json);
}
