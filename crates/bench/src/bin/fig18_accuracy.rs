//! Figure 18 — Top-1 accuracy and high/low-precision computation shares of
//! {INT16, INT8, DRQ 8-4, DRQ 4-2, ODQ 4-2} across the four evaluation
//! models on the SynthCIFAR-10 and SynthCIFAR-100 stand-ins.
//!
//! Expected shape (paper): ODQ ≈ INT16 ≈ INT8 ≈ DRQ 8-4 (within ~0.6%),
//! while DRQ 4-2 degrades by 2.5-10%.

use odq_bench::{
    calibrated_threshold, odq_retrain, print_table, trained_model, write_json, ExpScale,
};
use odq_core::OdqEngine;
use odq_drq::{DrqCfg, DrqEngine};
use odq_nn::executor::StaticQuantExecutor;
use odq_nn::train::evaluate;
use odq_nn::Arch;

fn main() {
    let scale = ExpScale::from_args();
    println!("Fig. 18: accuracy of quantization schemes across models/datasets");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (ds_name, classes) in [("SynthCIFAR-10", 10usize), ("SynthCIFAR-100", 20)] {
        for arch in Arch::EVAL_MODELS {
            let (mut model, train, test) = trained_model(arch, classes, scale, 0xF18);
            let t = (&test.images, test.labels.as_slice());

            // INT16 static baseline (activation codes capped at 15 bits by
            // the unsigned i16 representation; indistinguishable from FP32
            // at these scales).
            let mut int16 = StaticQuantExecutor::with_bits(16, 15, 1.0);
            let acc16 = evaluate(&model, t.0, t.1, scale.batch, &mut int16);
            let mut int8 = StaticQuantExecutor::int(8);
            let acc8 = evaluate(&model, t.0, t.1, scale.batch, &mut int8);
            let mut drq84 = DrqEngine::new(DrqCfg::int8_int4(0.4));
            let acc_drq84 = evaluate(&model, t.0, t.1, scale.batch, &mut drq84);
            let hi84 = drq84.overall_hi_mac_fraction();
            let mut drq42 = DrqEngine::new(DrqCfg::int4_int2(0.4));
            let acc_drq42 = evaluate(&model, t.0, t.1, scale.batch, &mut drq42);
            // ODQ: calibrate the threshold, retrain with the threshold in
            // the loop (Sec. 3; the paper retrains 3-4 times per model),
            // then evaluate under ODQ.
            let thr = calibrated_threshold(&model, &test.images, 0.65);
            odq_retrain(&mut model, &train, thr, scale, 0xF18);
            let mut odq = OdqEngine::new(thr);
            let acc_odq = evaluate(&model, t.0, t.1, scale.batch, &mut odq);
            let odq_hi = odq.stats.overall_sensitive_fraction();

            rows.push(vec![
                format!("{} / {}", arch.name(), ds_name),
                format!("{:.1}", 100.0 * acc16),
                format!("{:.1}", 100.0 * acc8),
                format!("{:.1}", 100.0 * acc_drq84),
                format!("{:.1}", 100.0 * acc_drq42),
                format!("{:.1}", 100.0 * acc_odq),
                format!("{:.0}/{:.0}", 100.0 * odq_hi, 100.0 * (1.0 - odq_hi)),
                format!("{:.0}", 100.0 * hi84),
            ]);
            json.push(serde_json::json!({
                "model": arch.name(), "dataset": ds_name,
                "int16": acc16, "int8": acc8,
                "drq_8_4": acc_drq84, "drq_4_2": acc_drq42, "odq": acc_odq,
                "odq_int4_share": odq_hi, "drq84_hi_share": hi84,
            }));
        }
    }
    print_table(
        "Top-1 accuracy (%) per scheme",
        &[
            "model/dataset",
            "INT16",
            "INT8",
            "DRQ 8-4",
            "DRQ 4-2",
            "ODQ 4-2",
            "ODQ %4b/%2b",
            "DRQ84 %hi",
        ],
        &rows,
    );
    println!("\nExpected shape: ODQ within ~1pt of INT16/INT8/DRQ 8-4; DRQ 4-2 clearly worse.");
    write_json("fig18_accuracy", &json);
}
