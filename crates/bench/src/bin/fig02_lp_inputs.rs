//! Figure 2 — percentage of low-precision inputs used in generating
//! *sensitive* outputs under input-directed (DRQ) quantization, per layer
//! of ResNet-20, bucketed into 0–25 / 25–50 / 50–75 / 75–100%.

use odq_bench::{motivation_run, print_table, write_json, ExpScale};

fn main() {
    println!("Fig. 2: LP-input share of sensitive outputs (DRQ INT8-INT4, ResNet-20)");
    let stats = motivation_run(ExpScale::from_args());
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for l in &stats.layers {
        let p = l.lp_share_sensitive.percentages();
        rows.push(vec![
            l.name.clone(),
            format!("{:.1}", p[0]),
            format!("{:.1}", p[1]),
            format!("{:.1}", p[2]),
            format!("{:.1}", p[3]),
        ]);
        json.push((l.name.clone(), p));
    }
    print_table(
        "share of sensitive outputs by LP-input fraction bucket (%)",
        &["layer", "0-25%", "25-50%", "50-75%", "75-100%"],
        &rows,
    );
    let polluted: f64 = stats
        .layers
        .iter()
        .map(|l| l.lp_share_sensitive.percentages()[1..].iter().sum::<f64>())
        .sum::<f64>()
        / stats.layers.len().max(1) as f64;
    println!(
        "\nPaper's observation: in almost every layer most sensitive outputs use >25% \
         LP inputs. Measured mean share with >25% LP inputs: {polluted:.1}%"
    );
    write_json("fig02_lp_inputs", &json);
}
