//! Figure 9 — percentage of insensitive output features per layer of
//! ResNet-56 under ODQ (threshold 0.5, Table 3).

use odq_bench::{
    calibrated_threshold, measured_fractions, print_table, trained_model, write_json, ExpScale,
};
use odq_nn::Arch;

fn main() {
    println!("Fig. 9: insensitive output features per layer, ResNet-56 under ODQ (thr 0.5)");
    let scale = ExpScale::from_args();
    let (model, _train, test) = trained_model(Arch::ResNet56, 10, scale, 0x56);
    let thr = calibrated_threshold(&model, &test.images, 0.7);
    println!("calibrated threshold: {thr:.3} (paper uses 0.5 on real CIFAR scales)");
    let fr = measured_fractions(&model, &test.images, thr);
    let rows: Vec<Vec<String>> =
        fr.iter().map(|(n, s)| vec![n.clone(), format!("{:.1}", 100.0 * (1.0 - s))]).collect();
    print_table("insensitive outputs (%)", &["layer", "insensitive %"], &rows);
    let json: Vec<(String, f64)> = fr.iter().map(|(n, s)| (n.clone(), 100.0 * (1.0 - s))).collect();
    let mean: f64 = json.iter().map(|r| r.1).sum::<f64>() / json.len().max(1) as f64;
    let min = json.iter().map(|r| r.1).fold(f64::MAX, f64::min);
    let max = json.iter().map(|r| r.1).fold(0.0, f64::max);
    println!(
        "\nPaper: considerable variation across layers (sensitive 8-50% => insensitive \
         50-92%). Measured: mean {mean:.1}%, range {min:.1}-{max:.1}%."
    );
    write_json("fig09_insensitive_r56", &json);
}
