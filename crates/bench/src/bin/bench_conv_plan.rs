//! Throughput benchmark for the plan/workspace convolution path: batched
//! ResNet-20 forward passes under the Float, static INT4, and ODQ engines,
//! reported as images/second.
//!
//! Writes `results/bench_conv_plan_<tag>.json`; the committed
//! `BENCH_conv_plan.json` at the repo root merges a pre-refactor `before`
//! run with a post-refactor `after` run on the same machine.
//!
//! Usage: `bench_conv_plan [tag] [batch] [reps]` (defaults: run, 16, 6).

use std::time::Instant;

use odq_core::engine::OdqEngine;
use odq_data::SynthSpec;
use odq_nn::executor::{ConvExecutor, FloatConvExecutor, StaticQuantExecutor};
use odq_nn::models::{Model, ModelCfg};
use odq_nn::Arch;
use odq_tensor::Tensor;

fn time_forward(model: &Model, x: &Tensor, exec: &mut dyn ConvExecutor, reps: usize) -> f64 {
    // Warm-up pass: fills weight/plan caches so steady-state cost is
    // measured, matching how serving workers run.
    let _ = model.forward_eval(x, exec);
    let n = x.dims()[0];
    let start = Instant::now();
    for _ in 0..reps {
        let _ = model.forward_eval(x, exec);
    }
    let dt = start.elapsed().as_secs_f64();
    (reps * n) as f64 / dt
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tag = args.get(1).cloned().unwrap_or_else(|| "run".into());
    let batch: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let reps: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(6);

    let cfg = ModelCfg::small(Arch::ResNet20, 10);
    let model = Model::build(cfg);
    let data = SynthSpec::cifar10(cfg.input_hw).generate(batch);
    let x = &data.images;

    let mut results = Vec::new();
    let ips_float = time_forward(&model, x, &mut FloatConvExecutor, reps);
    results.push(("float", ips_float));
    let mut int4 = StaticQuantExecutor::int(4);
    let ips_int4 = time_forward(&model, x, &mut int4, reps);
    results.push(("int4", ips_int4));
    let mut odq = OdqEngine::new(0.3);
    odq.record = false;
    let ips_odq = time_forward(&model, x, &mut odq, reps);
    results.push(("odq", ips_odq));

    println!("ResNet-20 forward throughput (batch {batch}, {reps} reps), images/sec:");
    for (name, ips) in &results {
        println!("  {name:>6}: {ips:10.2}");
    }
    let json = serde_json::json!({
        "tag": tag,
        "model": "resnet20-small",
        "batch": batch,
        "reps": reps,
        "images_per_sec": {
            "float": ips_float,
            "int4": ips_int4,
            "odq": ips_odq,
        },
    });
    odq_bench::write_json(&format!("bench_conv_plan_{tag}"), &json);
}
