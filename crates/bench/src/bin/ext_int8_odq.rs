//! Extension experiment (paper Sec. 5.1: "ODQ is not limited to 4-bit and
//! 2-bit quantization and can be easily extended to support other types of
//! precision, e.g., INT8"): run ODQ with 8-bit operands split into 4-bit
//! planes (predictor = INT4 MACs) and compare against the 4/2-bit default.

use odq_bench::{print_table, trained_model, write_json, ExpScale};
use odq_core::engine::ThresholdPolicy;
use odq_core::{OdqCfg, OdqEngine};
use odq_nn::executor::StaticQuantExecutor;
use odq_nn::train::evaluate;
use odq_nn::Arch;

fn engine_with_cfg(cfg: OdqCfg) -> OdqEngine {
    let mut e = OdqEngine::new(cfg.threshold);
    e.cfg = cfg;
    e.policy = ThresholdPolicy::Global(cfg.threshold);
    e
}

fn main() {
    let scale = ExpScale::from_args();
    println!("Extension: ODQ at 8/4-bit precision (vs the paper's 4/2-bit)");
    let (model, _train, test) = trained_model(Arch::ResNet20, 10, scale, 0xE18);
    let t = (&test.images, test.labels.as_slice());

    let mut int8 = StaticQuantExecutor::int(8);
    let acc8 = evaluate(&model, t.0, t.1, scale.batch, &mut int8);
    let mut int4 = StaticQuantExecutor::int(4);
    let acc4 = evaluate(&model, t.0, t.1, scale.batch, &mut int4);

    // Calibrate separately per precision pair (8-bit predictor partials
    // live on a different scale).
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, a_bits, low_bits) in [("ODQ 8/4", 8u8, 4u8), ("ODQ 4/2 (paper)", 4, 2)] {
        // Quantile calibration against this precision's predictor.
        let mut probe = engine_with_cfg(OdqCfg {
            a_bits,
            w_bits: a_bits,
            a_clip: 1.0,
            low_bits,
            threshold: 0.0,
        });
        let _ = model.forward_eval(&test.images, &mut probe);
        // threshold from reference magnitudes at the 65th percentile:
        // reuse layer stats? Simpler: sweep a few thresholds and report the
        // one closest to ~35% sensitive.
        let mut best = (0.0f32, 1.0f64, 0.0f32);
        for thr in [0.05f32, 0.1, 0.2, 0.4, 0.8, 1.6] {
            let mut e = engine_with_cfg(OdqCfg {
                a_bits,
                w_bits: a_bits,
                a_clip: 1.0,
                low_bits,
                threshold: thr,
            });
            let acc = evaluate(&model, t.0, t.1, scale.batch, &mut e);
            let sens = e.stats.overall_sensitive_fraction();
            if (sens - 0.35).abs() < (best.1 - 0.35).abs() {
                best = (thr, sens, acc);
            }
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", best.0),
            format!("{:.1}", 100.0 * best.1),
            format!("{:.1}", 100.0 * best.2),
        ]);
        json.push(serde_json::json!({
            "mode": name, "threshold": best.0, "sensitive": best.1, "accuracy": best.2,
        }));
    }
    print_table(
        &format!(
            "ODQ precision extension (INT8 static {:.1}%, INT4 static {:.1}%)",
            100.0 * acc8,
            100.0 * acc4
        ),
        &["mode", "threshold", "sensitive %", "Top-1 acc % (no retrain)"],
        &rows,
    );
    println!(
        "\nThe 8/4 split needs no code changes: OdqCfg {{ a_bits: 8, low_bits: 4 }} — \
         Eq. 3 and the predictor generalize over the plane width."
    );
    write_json("ext_int8_odq", &json);
}
