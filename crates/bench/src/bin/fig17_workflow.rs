//! Figure 17 — the accelerator's execution workflow, walked by the
//! event-driven pipeline simulator: predictor waves fill the output-buffer
//! backlog, the controller reconfigures the 12 flexible PE arrays as the
//! measured sensitive fraction settles, and the executor drains the
//! backlog. Cross-validates the event-driven and analytical models.

use odq_accel::pipeline::{simulate_layer_pipeline, simulate_network_pipeline};
use odq_accel::sim::simulate_layer;
use odq_accel::AccelConfig;
use odq_bench::{print_table, uniform_workloads, write_json};
use odq_nn::Arch;

fn main() {
    println!("Fig. 17: ODQ execution workflow (event-driven pipeline vs analytical model)");
    let cfg = AccelConfig::odq();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for s in [0.05f64, 0.15, 0.3, 0.5] {
        let ws = uniform_workloads(Arch::ResNet20, 32, s);
        let event = simulate_network_pipeline(&ws);
        let analytic: f64 = ws.iter().map(|w| simulate_layer(&cfg, w).compute_cycles).sum();
        let l5 = simulate_layer_pipeline(&ws[5]);
        rows.push(vec![
            format!("{:.0}%", s * 100.0),
            format!("{}", event.total_cycles),
            format!("{:.0}", analytic),
            format!("{:.2}", event.total_cycles as f64 / analytic),
            event.reconfigurations.to_string(),
            format!("{:.1}", l5.mean_predictor_arrays),
            format!("{:.0}%", 100.0 * l5.utilization),
        ]);
        json.push(serde_json::json!({
            "sensitive": s,
            "event_cycles": event.total_cycles,
            "analytic_cycles": analytic,
            "reconfigurations": event.reconfigurations,
        }));
    }
    print_table(
        "full ResNet-20, uniform sensitive fraction",
        &[
            "sensitive",
            "event cycles",
            "analytic cycles",
            "ratio",
            "#reconfig",
            "mean pred arrays (C6)",
            "util (C6)",
        ],
        &rows,
    );
    println!(
        "\nFig. 17's walkthrough: start with all 12 flexible arrays predicting, measure\n\
         ~15% sensitive, reconfigure to 18 predictor / 9 executor arrays. The event\n\
         model shows exactly that allocation trajectory; its makespans track the\n\
         analytical model within fill/drain + reconfiguration overhead."
    );
    write_json("fig17_workflow", &json);
}
