//! Figure 21 — normalized energy consumption of the four DNNs on the four
//! accelerators, with the DRAM / Buffer / Cores breakdown.

use odq_accel::sim::simulate_network;
use odq_accel::{AccelConfig, EnergyModel};
use odq_bench::{measured_workloads, print_table, write_json, ExpScale};
use odq_nn::Arch;

fn main() {
    let scale = ExpScale::from_args();
    println!("Fig. 21: normalized energy per accelerator (DRAM/Buffer/Cores)");
    let em = EnergyModel::default();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut sav16 = Vec::new();
    let mut sav8 = Vec::new();
    let mut savdrq = Vec::new();
    for arch in Arch::EVAL_MODELS {
        // Quantiles echo Table 3's relative thresholds: DenseNet's tiny
        // threshold (0.05) keeps more outputs sensitive.
        let q = match arch {
            Arch::DenseNet => 0.55,
            Arch::Vgg16 => 0.65,
            _ => 0.7,
        };
        let ws = measured_workloads(arch, scale, 0xF21, q);
        let results: Vec<_> =
            AccelConfig::table2().iter().map(|c| simulate_network(c, &ws, &em)).collect();
        let base = results[0].energy.total_nj();
        for r in &results {
            let e = &r.energy;
            rows.push(vec![
                format!("{} / {}", arch.name(), r.config),
                format!("{:.3}", e.total_nj() / base),
                format!("{:.3}", e.dram_nj / base),
                format!("{:.3}", e.buffer_nj / base),
                format!("{:.3}", e.cores_nj / base),
            ]);
            json.push(serde_json::json!({
                "model": arch.name(), "config": r.config,
                "total": e.total_nj()/base, "dram": e.dram_nj/base,
                "buffer": e.buffer_nj/base, "cores": e.cores_nj/base,
            }));
        }
        sav16.push(1.0 - results[3].energy.total_nj() / results[0].energy.total_nj());
        sav8.push(1.0 - results[3].energy.total_nj() / results[1].energy.total_nj());
        savdrq.push(1.0 - results[3].energy.total_nj() / results[2].energy.total_nj());
    }
    print_table(
        "energy normalized to INT16 (per model)",
        &["model / config", "total", "DRAM", "Buffer", "Cores"],
        &rows,
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nODQ mean energy saving: vs INT16 {:.1}% (paper 97.6%), vs INT8 {:.1}% \
         (paper 93.5%), vs DRQ {:.1}% (paper 66.9%).",
        100.0 * mean(&sav16),
        100.0 * mean(&sav8),
        100.0 * mean(&savdrq)
    );
    write_json("fig21_energy", &json);
}
