//! Figure 4 — percentage of high-precision inputs used in generating
//! *insensitive* outputs under DRQ (ResNet-20), per layer, quartile
//! buckets.

use odq_bench::{motivation_run, print_table, write_json, ExpScale};

fn main() {
    println!("Fig. 4: HP-input share of insensitive outputs (DRQ INT8-INT4, ResNet-20)");
    let stats = motivation_run(ExpScale::from_args());
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for l in &stats.layers {
        let p = l.hp_share_insensitive.percentages();
        rows.push(vec![
            l.name.clone(),
            format!("{:.1}", p[0]),
            format!("{:.1}", p[1]),
            format!("{:.1}", p[2]),
            format!("{:.1}", p[3]),
        ]);
        json.push((l.name.clone(), p));
    }
    print_table(
        "share of insensitive outputs by HP-input fraction bucket (%)",
        &["layer", "0-25%", "25-50%", "50-75%", "75-100%"],
        &rows,
    );
    let wasted: f64 = stats
        .layers
        .iter()
        .map(|l| l.hp_share_insensitive.percentages()[1..].iter().sum::<f64>())
        .sum::<f64>()
        / stats.layers.len().max(1) as f64;
    println!(
        "\nPaper's observation: >25% HP inputs feed insensitive outputs in multiple \
         layers (wasted high-precision compute). Measured mean: {wasted:.1}%"
    );
    write_json("fig04_hp_inputs", &json);
}
