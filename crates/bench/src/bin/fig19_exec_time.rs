//! Figure 19 — normalized execution time of the four DNNs on the four
//! accelerators (INT16 / INT8 / DRQ / ODQ). Workloads use each network's
//! full-size layer geometry with per-layer sensitive fractions measured on
//! the trained scaled models.

use odq_accel::sim::simulate_network;
use odq_accel::{AccelConfig, EnergyModel};
use odq_bench::{measured_workloads, print_table, write_json, ExpScale};
use odq_nn::Arch;

fn main() {
    let scale = ExpScale::from_args();
    println!("Fig. 19: normalized execution time per accelerator");
    let em = EnergyModel::default();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut improv_drq = Vec::new();
    let mut improv_int16 = Vec::new();
    let mut improv_int8 = Vec::new();
    for arch in Arch::EVAL_MODELS {
        // Quantiles echo Table 3's relative thresholds: DenseNet's tiny
        // threshold (0.05) keeps more outputs sensitive.
        let q = match arch {
            Arch::DenseNet => 0.55,
            Arch::Vgg16 => 0.65,
            _ => 0.7,
        };
        let ws = measured_workloads(arch, scale, 0xF19, q);
        let times: Vec<f64> = AccelConfig::table2()
            .iter()
            .map(|c| simulate_network(c, &ws, &em).total_cycles)
            .collect();
        let base = times[0]; // normalize to INT16
        rows.push(vec![
            arch.name().to_string(),
            "1.000".into(),
            format!("{:.3}", times[1] / base),
            format!("{:.3}", times[2] / base),
            format!("{:.3}", times[3] / base),
        ]);
        improv_int16.push(1.0 - times[3] / times[0]);
        improv_int8.push(1.0 - times[3] / times[1]);
        improv_drq.push(1.0 - times[3] / times[2]);
        json.push(serde_json::json!({
            "model": arch.name(),
            "int16": 1.0, "int8": times[1]/base, "drq": times[2]/base, "odq": times[3]/base,
        }));
    }
    print_table(
        "execution time normalized to INT16",
        &["model", "INT16", "INT8", "DRQ", "ODQ"],
        &rows,
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nODQ mean improvement: vs INT16 {:.1}% (paper 97.8%), vs INT8 {:.1}% \
         (paper 95.8%), vs DRQ {:.1}% (paper 67.6%).",
        100.0 * mean(&improv_int16),
        100.0 * mean(&improv_int8),
        100.0 * mean(&improv_drq)
    );
    write_json("fig19_exec_time", &json);
}
