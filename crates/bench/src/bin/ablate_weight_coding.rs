//! Ablation: offset-binary (DoReFa-faithful) vs signed-symmetric weight
//! coding at low bit widths.
//!
//! The symmetric max-abs grid maps most of a Gaussian weight distribution
//! onto the zero code at ≤4 bits, collapsing the model; the offset grid
//! (no zero level) keeps every weight informative. This choice is what
//! makes the paper's INT4/INT2 arithmetic viable (DESIGN.md, "ablations").

use odq_bench::{print_table, trained_model, write_json, ExpScale};
use odq_nn::executor::{ConvCtx, ConvExecutor, FloatConvExecutor};
use odq_nn::train::evaluate;
use odq_nn::Arch;
use odq_quant::{quantize_activation, quantize_weights, quantize_weights_symmetric};
use odq_tensor::Tensor;

struct Exec {
    bits: u8,
    symmetric: bool,
}

impl ConvExecutor for Exec {
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let qx = quantize_activation(x, self.bits, 1.0);
        let qw = if self.symmetric {
            quantize_weights_symmetric(ctx.weights, self.bits)
        } else {
            quantize_weights(ctx.weights, self.bits)
        };
        let mut y = odq_quant::qconv::qconv2d(&qx, &qw, &ctx.geom);
        if let Some(b) = ctx.bias {
            odq_nn::executor::add_bias(&mut y, b, &ctx.geom);
        }
        y
    }
}

fn main() {
    let scale = ExpScale::from_args();
    println!("Ablation: weight coding (offset-binary vs signed-symmetric)");
    let (mut model, _train, test) = trained_model(Arch::ResNet20, 10, scale, 0xAB1);
    let t = (&test.images, test.labels.as_slice());
    let float = evaluate(&model, t.0, t.1, scale.batch, &mut FloatConvExecutor);
    // SQNR of each coding over the model's own first-layer weights (the
    // MSE view; note SQNR and accuracy *disagree* at low bits — see
    // odq_quant::sqnr's docs).
    let mut w0 = None;
    {
        let mut m = model;
        use odq_nn::Layer as _;
        m.net.visit_convs_mut(&mut |c| {
            if w0.is_none() {
                w0 = Some(c.weight.value.clone());
            }
        });
        model = m;
    }
    let w0 = w0.expect("model has conv layers");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for bits in [8u8, 4, 3, 2] {
        let off = evaluate(&model, t.0, t.1, scale.batch, &mut Exec { bits, symmetric: false });
        let sym = evaluate(&model, t.0, t.1, scale.batch, &mut Exec { bits, symmetric: true });
        let sq_off = odq_quant::sqnr::weight_sqnr_db(&w0, bits);
        let sq_sym = odq_quant::sqnr::weight_symmetric_sqnr_db(&w0, bits);
        rows.push(vec![
            format!("INT{bits}"),
            format!("{:.1}", 100.0 * off),
            format!("{:.1}", 100.0 * sym),
            format!("{sq_off:.1}"),
            format!("{sq_sym:.1}"),
        ]);
        json.push(serde_json::json!({
            "bits": bits, "offset": off, "symmetric": sym,
            "sqnr_offset_db": sq_off, "sqnr_symmetric_db": sq_sym,
        }));
    }
    print_table(
        &format!("Top-1 accuracy (%) and weight SQNR (dB), float baseline {:.1}%", 100.0 * float),
        &["scheme", "acc offset", "acc symmetric", "SQNR offset", "SQNR symmetric"],
        &rows,
    );
    println!("\nExpected: the codings converge at 8 bits and diverge sharply at 2-3 bits.");
    write_json("ablate_weight_coding", &json);
}
