//! Ablation: predictor estimate quality with and without the expectation
//! corrections (raw `HH << 2N` vs the corrected estimate of
//! `odq_quant::predict`). The paper's Eq. 3 term alone is biased because
//! the dropped planes are non-negative.

use odq_bench::{print_table, trained_model, write_json, ExpScale};
use odq_nn::executor::{ConvCtx, ConvExecutor};
use odq_nn::Arch;
use odq_quant::{quantize_activation, quantize_weights, split_qtensor};
use odq_tensor::stats::quantile;
use odq_tensor::Tensor;

#[derive(Default)]
struct Stats {
    agree_raw: u64,
    agree_corr: u64,
    recall_raw: u64,
    recall_corr: u64,
    truth: u64,
    total: u64,
}

struct Probe {
    stats: Stats,
}

impl ConvExecutor for Probe {
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let qx = quantize_activation(x, 4, 1.0);
        let qw = quantize_weights(ctx.weights, 4);
        let xp = split_qtensor(&qx, 2);
        let wp = split_qtensor(&qw, 2);
        let scale = qx.scale * qw.scale;
        let pred = odq_quant::odq_predict(&xp.high, &wp, qw.zero, scale, &ctx.geom);
        // Raw predictor term (paper's Eq. 3 HH only, affine-corrected with
        // the *exact* Σa so only the plane expectations differ).
        let planes = odq_quant::qconv::qconv2d_planes(&xp, &wp, &ctx.geom);
        let raw = planes.predictor_codes();
        let sa = odq_quant::qconv::receptive_sums(&qx.codes, &ctx.geom);
        let full = odq_quant::qconv::qconv2d(&qx, &qw, &ctx.geom);

        let abs: Vec<f32> = full.as_slice().iter().map(|v| v.abs()).collect();
        let thr = quantile(&abs, 0.65);
        let spatial = ctx.geom.out_spatial();
        let co = ctx.geom.out_channels;
        let n = x.dims()[0];
        let pow = 4.0f32;
        for img in 0..n {
            for f in 0..co {
                let base = (img * co + f) * spatial;
                for sp in 0..spatial {
                    let i = base + sp;
                    let truth = full.as_slice()[i].abs() >= thr;
                    let raw_v = scale
                        * (raw.as_slice()[i] as f32
                            - qw.zero * pow * sa.as_slice()[img * spatial + sp] as f32 / pow);
                    let corr_v = pred.estimate.as_slice()[i];
                    let p_raw = raw_v.abs() >= thr;
                    let p_corr = corr_v.abs() >= thr;
                    self.stats.total += 1;
                    self.stats.agree_raw += (p_raw == truth) as u64;
                    self.stats.agree_corr += (p_corr == truth) as u64;
                    if truth {
                        self.stats.truth += 1;
                        self.stats.recall_raw += p_raw as u64;
                        self.stats.recall_corr += p_corr as u64;
                    }
                }
            }
        }
        let mut y = full;
        if let Some(b) = ctx.bias {
            odq_nn::executor::add_bias(&mut y, b, &ctx.geom);
        }
        y
    }
}

fn main() {
    let scale = ExpScale::from_args();
    println!("Ablation: predictor estimate corrections (raw HH vs corrected)");
    let (model, _train, test) = trained_model(Arch::ResNet20, 10, scale, 0xAB3);
    let mut probe = Probe { stats: Stats::default() };
    let _ = model.forward_eval(&test.images, &mut probe);
    let s = &probe.stats;
    let pct = |a: u64, b: u64| 100.0 * a as f64 / b.max(1) as f64;
    print_table(
        "mask prediction quality at the 65th-percentile threshold",
        &["estimator", "agreement %", "sensitive recall %"],
        &[
            vec![
                "raw HH term".into(),
                format!("{:.1}", pct(s.agree_raw, s.total)),
                format!("{:.1}", pct(s.recall_raw, s.truth)),
            ],
            vec![
                "corrected (ours)".into(),
                format!("{:.1}", pct(s.agree_corr, s.total)),
                format!("{:.1}", pct(s.recall_corr, s.truth)),
            ],
        ],
    );
    write_json(
        "ablate_predictor",
        &serde_json::json!({
            "raw": {"agree": pct(s.agree_raw, s.total), "recall": pct(s.recall_raw, s.truth)},
            "corrected": {"agree": pct(s.agree_corr, s.total), "recall": pct(s.recall_corr, s.truth)},
        }),
    );
}
