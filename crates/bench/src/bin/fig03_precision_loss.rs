//! Figure 3 — average precision loss on sensitive outputs caused by
//! low-precision inputs (DRQ on ResNet-20), per layer. With `--odq` also
//! prints ODQ's per-layer precision loss (the Sec. 6.1 C1..C16 numbers)
//! for comparison.

use odq_bench::{odq_retrain, print_table, trained_model, write_json, ExpScale};
use odq_core::OdqEngine;
use odq_nn::Arch;

fn main() {
    let scale = ExpScale::from_args();
    println!("Fig. 3: precision loss on sensitive outputs per layer (DRQ vs ODQ)");
    let stats = odq_bench::motivation_run(scale);

    // ODQ comparison on the same architecture/data, at a calibrated
    // threshold (~35% sensitive, the paper's operating range), measured on
    // the threshold-retrained model — the configuration ODQ deploys
    // (Sec. 3's retraining step precedes all of the paper's measurements).
    let (mut model, train, test) = trained_model(Arch::ResNet20, 10, scale, 0xF16);
    let thr0 = odq_bench::calibrated_threshold(&model, &test.images, 0.65);
    odq_retrain(&mut model, &train, thr0, scale, 0xF16);
    // Recalibrate on the retrained weights (their output scales moved).
    let thr = odq_bench::calibrated_threshold(&model, &test.images, 0.65);
    let mut odq = OdqEngine::new(thr);
    let _ = model.forward_eval(&test.images, &mut odq);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for l in &stats.layers {
        let odq_loss = odq.stats.layer(&l.name).map(|o| o.mean_precision_loss()).unwrap_or(0.0);
        rows.push(vec![
            l.name.clone(),
            format!("{:.4}", l.mean_precision_loss()),
            format!("{:.4}", odq_loss),
        ]);
        json.push((l.name.clone(), l.mean_precision_loss(), odq_loss));
    }
    print_table(
        "mean |O_method − O_full| over sensitive outputs",
        &["layer", "DRQ loss", "ODQ loss"],
        &rows,
    );
    let drq_mean: f64 = json.iter().map(|r| r.1).sum::<f64>() / json.len().max(1) as f64;
    let odq_mean: f64 = json.iter().map(|r| r.2).sum::<f64>() / json.len().max(1) as f64;
    println!(
        "\nPaper: DRQ's loss exceeds 0.1 in most layers while ODQ stays at 0.02-0.1\n\
         (with threshold 0.5, i.e. normalized loss 0.04-0.2 per unit threshold).\n\
         Measured means: DRQ {drq_mean:.4}; ODQ {odq_mean:.4} at threshold {thr:.2}\n\
         (normalized {:.3} per unit threshold vs the paper's 0.04-0.2 — our\n\
         width-scaled models have ~4x fewer taps per output, so the\n\
         predictor's relative estimate noise is correspondingly larger).",
        odq_mean / thr.max(1e-9) as f64
    );
    write_json("fig03_precision_loss", &json);
}
