//! Figure 5 — computation waste (the paper's Eq. 1 "extra precision"):
//! `max |O_IDQ − O_LP_input|` over insensitive outputs, per layer of
//! ResNet-20 under DRQ. Small values mean the high-precision compute spent
//! on insensitive outputs bought almost nothing.

use odq_bench::{motivation_run, print_table, write_json, ExpScale};

fn main() {
    println!("Fig. 5: computation waste on insensitive outputs (Eq. 1)");
    let stats = motivation_run(ExpScale::from_args());
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for l in &stats.layers {
        rows.push(vec![l.name.clone(), format!("{:.4}", l.extra_precision_max)]);
        json.push((l.name.clone(), l.extra_precision_max));
    }
    print_table("extra precision per layer", &["layer", "max |O_IDQ - O_LP|"], &rows);
    let max_all = json.iter().map(|r| r.1).fold(0.0f64, f64::max);
    println!(
        "\nPaper: removing the extra precision costs at most ~0.21 of noise — \
         tolerable for insensitive outputs. Measured max across layers: {max_all:.4}"
    );
    write_json("fig05_comp_waste", &json);
}
