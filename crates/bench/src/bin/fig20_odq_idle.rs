//! Figure 20 — percentage of idle PEs with the reconfigured (dynamic) ODQ
//! accelerator, per layer of ResNet-20. The paper's headline: at most 18%
//! idle, versus up to 50% for static allocation (Fig. 11).

use odq_accel::sim::simulate_layer;
use odq_accel::AccelConfig;
use odq_bench::{measured_workloads, print_table, write_json, ExpScale};
use odq_nn::Arch;

fn main() {
    println!("Fig. 20: idle PEs with dynamic (reconfigurable) ODQ allocation");
    let scale = ExpScale::from_args();
    let workloads = measured_workloads(Arch::ResNet20, scale, 0x20, 0.7);

    let cfg = AccelConfig::odq();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for w in &workloads {
        let r = simulate_layer(&cfg, w);
        let alloc = r.allocation.expect("odq sets allocation");
        rows.push(vec![
            w.name.clone(),
            format!("{:.1}", 100.0 * w.odq_sensitive_fraction),
            format!("{}p/{}e", alloc.predictor_arrays, alloc.executor_arrays),
            format!("{:.1}", 100.0 * r.idle_fraction),
        ]);
        json.push((w.name.clone(), r.idle_fraction));
    }
    print_table(
        "idle PEs per layer (%), dynamic allocation",
        &["layer", "sensitive %", "allocation", "idle %"],
        &rows,
    );
    let max = json.iter().map(|r| r.1).fold(0.0, f64::max) * 100.0;
    println!("\nPaper: highest observed idleness 18%. Measured max: {max:.1}%.");
    write_json("fig20_odq_idle", &json);
}
