//! Figure 11 — percentage of idle PEs under *static* PE allocation, per
//! layer of ResNet-20, for the two splits the paper plots:
//! (a) 15 predictor / 12 executor arrays, (b) 18 predictor / 9 executor.

use odq_accel::sim::simulate_layer;
use odq_accel::AccelConfig;
use odq_bench::{measured_workloads, print_table, write_json, ExpScale};
use odq_nn::Arch;

fn main() {
    println!("Fig. 11: idle PEs with static PE allocation (ResNet-20 workload)");
    let scale = ExpScale::from_args();
    let workloads = measured_workloads(Arch::ResNet20, scale, 0x20, 0.7);

    let cfg_a = AccelConfig::odq_static(15).expect("15 pred / 12 exec is in range"); // (a)
    let cfg_b = AccelConfig::odq_static(18).expect("18 pred / 9 exec is in range"); // (b)

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for w in &workloads {
        let a = simulate_layer(&cfg_a, w);
        let b = simulate_layer(&cfg_b, w);
        rows.push(vec![
            w.name.clone(),
            format!("{:.1}", 100.0 * w.odq_sensitive_fraction),
            format!("{:.1}", 100.0 * a.idle_fraction),
            format!("{:.1}", 100.0 * b.idle_fraction),
        ]);
        json.push((w.name.clone(), a.idle_fraction, b.idle_fraction));
    }
    print_table(
        "idle PEs per layer (%)",
        &["layer", "sensitive %", "(a) 15p/12e idle %", "(b) 18p/9e idle %"],
        &rows,
    );
    let max_a = json.iter().map(|r| r.1).fold(0.0, f64::max) * 100.0;
    let max_b = json.iter().map(|r| r.2).fold(0.0, f64::max) * 100.0;
    println!(
        "\nPaper: static allocation idles 14-50% of PEs. Measured maxima: \
         (a) {max_a:.1}%, (b) {max_b:.1}%."
    );
    write_json("fig11_static_idle", &json);
}
