//! Aggregate `results/*.json` into a terminal report with ASCII versions of
//! the paper's headline figures. Run after `./run_experiments.sh`.

use odq_bench::chart::{bar_chart, grouped_bar_chart};

fn load(name: &str) -> Option<serde_json::Value> {
    let path = format!("results/{name}.json");
    let s = std::fs::read_to_string(&path).ok()?;
    serde_json::from_str(&s).ok()
}

fn main() {
    println!("ODQ reproduction report (from results/*.json)");
    println!("==============================================");

    if let Some(v) = load("fig19_exec_time") {
        let rows: Vec<(String, Vec<f64>)> = v
            .as_array()
            .map(|a| {
                a.iter()
                    .map(|r| {
                        (
                            r["model"].as_str().unwrap_or("?").to_string(),
                            vec![
                                r["int16"].as_f64().unwrap_or(0.0),
                                r["int8"].as_f64().unwrap_or(0.0),
                                r["drq"].as_f64().unwrap_or(0.0),
                                r["odq"].as_f64().unwrap_or(0.0),
                            ],
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        println!(
            "{}",
            grouped_bar_chart(
                "Fig. 19 — normalized execution time (lower is better)",
                &["INT16", "INT8", "DRQ", "ODQ"],
                &rows,
                40,
            )
        );
    } else {
        println!("(fig19 results missing — run ./run_experiments.sh)");
    }

    if let Some(v) = load("fig18_accuracy") {
        if let Some(rows) = v.as_array() {
            let chart_rows: Vec<(String, Vec<f64>)> = rows
                .iter()
                .filter(|r| r["dataset"].as_str() == Some("SynthCIFAR-10"))
                .map(|r| {
                    (
                        r["model"].as_str().unwrap_or("?").to_string(),
                        vec![
                            r["int16"].as_f64().unwrap_or(0.0) * 100.0,
                            r["drq_8_4"].as_f64().unwrap_or(0.0) * 100.0,
                            r["drq_4_2"].as_f64().unwrap_or(0.0) * 100.0,
                            r["odq"].as_f64().unwrap_or(0.0) * 100.0,
                        ],
                    )
                })
                .collect();
            println!(
                "{}",
                grouped_bar_chart(
                    "Fig. 18 — Top-1 accuracy %, SynthCIFAR-10",
                    &["INT16", "DRQ 8-4", "DRQ 4-2", "ODQ"],
                    &chart_rows,
                    40,
                )
            );
        }
    }

    if let Some(v) = load("fig22_threshold") {
        if let Some(rows) = v.as_array() {
            let acc: Vec<(String, f64)> = rows
                .iter()
                .map(|r| {
                    (
                        format!("thr {:.2}", r["threshold"].as_f64().unwrap_or(0.0)),
                        r["accuracy"].as_f64().unwrap_or(0.0) * 100.0,
                    )
                })
                .collect();
            println!("{}", bar_chart("Fig. 22 — accuracy vs threshold (%)", &acc, 40, "%"));
            let ins: Vec<(String, f64)> = rows
                .iter()
                .map(|r| {
                    (
                        format!("thr {:.2}", r["threshold"].as_f64().unwrap_or(0.0)),
                        r["insensitive"].as_f64().unwrap_or(0.0) * 100.0,
                    )
                })
                .collect();
            println!(
                "{}",
                bar_chart("Fig. 22 — insensitive (INT2) share vs threshold (%)", &ins, 40, "%")
            );
        }
    }

    if let Some(v) = load("fig10_insensitive_r20") {
        if let Some(rows) = v.as_array() {
            let r: Vec<(String, f64)> = rows
                .iter()
                .filter_map(|e| {
                    let pair = e.as_array()?;
                    Some((pair[0].as_str()?.to_string(), pair[1].as_f64()?))
                })
                .collect();
            println!(
                "{}",
                bar_chart("Fig. 10 — insensitive outputs per layer, ResNet-20 (%)", &r, 40, "%")
            );
        }
    }

    println!("\nSee EXPERIMENTS.md for the full paper-vs-measured record.");
}
