//! Figure 10 — percentage of insensitive output features per layer of
//! ResNet-20 under ODQ (threshold 0.5, Table 3).

use odq_bench::{
    calibrated_threshold, measured_fractions, print_table, trained_model, write_json, ExpScale,
};
use odq_nn::Arch;

fn main() {
    println!("Fig. 10: insensitive output features per layer, ResNet-20 under ODQ (thr 0.5)");
    let scale = ExpScale::from_args();
    let (model, _train, test) = trained_model(Arch::ResNet20, 10, scale, 0x20);
    let thr = calibrated_threshold(&model, &test.images, 0.7);
    println!("calibrated threshold: {thr:.3} (paper uses 0.5 on real CIFAR scales)");
    let fr = measured_fractions(&model, &test.images, thr);
    let rows: Vec<Vec<String>> =
        fr.iter().map(|(n, s)| vec![n.clone(), format!("{:.1}", 100.0 * (1.0 - s))]).collect();
    print_table("insensitive outputs (%)", &["layer", "insensitive %"], &rows);
    let json: Vec<(String, f64)> = fr.iter().map(|(n, s)| (n.clone(), 100.0 * (1.0 - s))).collect();
    write_json("fig10_insensitive_r20", &json);
}
