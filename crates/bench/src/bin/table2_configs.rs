//! Table 2 — the four accelerator configurations (PE counts, bit widths,
//! on-chip memory, area check).

use odq_accel::AccelConfig;
use odq_bench::{print_table, write_json};

fn main() {
    println!("Table 2: accelerator configurations");
    let paper_pes = [120usize, 1692, 1692, 4860];
    let mut rows = Vec::new();
    for (c, &p) in AccelConfig::table2().iter().zip(&paper_pes) {
        rows.push(vec![
            c.name.clone(),
            c.total_pes.to_string(),
            p.to_string(),
            format!("INT{}", c.pe_bits),
            format!("{:.2}", c.onchip_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.3}", c.pe_area_mm2()),
        ]);
    }
    print_table(
        "Table 2 (ours vs paper PE counts)",
        &["config", "#PEs", "paper #PEs", "PE bitwidth", "on-chip (MB)", "PE area (mm^2)"],
        &rows,
    );
    write_json("table2_configs", &AccelConfig::table2());
}
