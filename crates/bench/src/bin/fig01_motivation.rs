//! Figure 1 — the motivating illustration: under input-directed (DRQ)
//! quantization of LeNet-5 on (Synth)MNIST, sensitive *outputs* are
//! computed from mostly-insensitive *inputs* and vice versa.
//!
//! Prints, for each conv layer, concrete counts of the two failure cases
//! the figure illustrates:
//!  (1) sensitive outputs computed with >50% low-precision inputs;
//!  (2) insensitive outputs computed with >50% high-precision inputs.

use odq_bench::{print_table, write_json, ExpScale};
use odq_data::SynthSpec;
use odq_drq::{DrqCfg, MotivationExecutor};
use odq_nn::models::{Model, ModelCfg};
use odq_nn::param::init_rng;
use odq_nn::train::{train_epoch, SgdCfg};
use odq_nn::Arch;

fn main() {
    let scale = ExpScale::from_args();
    println!("Fig. 1 reproduction: LeNet-5 on SynthMNIST under input-directed DRQ");

    let mut cfg = ModelCfg::small(Arch::LeNet5, 10);
    cfg.in_channels = 1;
    cfg.input_hw = scale.hw.max(12);
    cfg.width_div = 1;
    let mut model = Model::build(cfg);
    let spec = SynthSpec::mnist(cfg.input_hw);
    let (train, test) = spec.generate_split(scale.n_train, scale.n_test.min(32));
    let mut rng = init_rng(42);
    let sgd = SgdCfg::default();
    for _ in 0..scale.epochs {
        train_epoch(&mut model, &train.images, &train.labels, scale.batch, &sgd, &mut rng);
    }

    let mut exec = MotivationExecutor::new(DrqCfg::int8_int4(0.4), 0.75);
    let _ = model.forward_eval(&test.images, &mut exec);

    let mut rows = Vec::new();
    #[derive(serde::Serialize)]
    struct Row {
        layer: String,
        case1_sensitive_from_lp: u64,
        sensitive_total: u64,
        case2_insensitive_from_hp: u64,
        insensitive_total: u64,
    }
    let mut json = Vec::new();
    for l in &exec.stats.layers {
        // Case (1): sensitive outputs whose receptive field was >50% LP.
        let case1: u64 = l.lp_share_sensitive.counts[2..].iter().sum();
        // Case (2): insensitive outputs with >50% HP inputs.
        let case2: u64 = l.hp_share_insensitive.counts[2..].iter().sum();
        let sens = l.lp_share_sensitive.total();
        let insens = l.hp_share_insensitive.total();
        rows.push(vec![
            l.name.clone(),
            format!("{case1} / {sens}"),
            format!("{:.1}%", 100.0 * case1 as f64 / sens.max(1) as f64),
            format!("{case2} / {insens}"),
            format!("{:.1}%", 100.0 * case2 as f64 / insens.max(1) as f64),
        ]);
        json.push(Row {
            layer: l.name.clone(),
            case1_sensitive_from_lp: case1,
            sensitive_total: sens,
            case2_insensitive_from_hp: case2,
            insensitive_total: insens,
        });
    }
    print_table(
        "Fig. 1: input-directed quantization's two failure cases (LeNet-5)",
        &[
            "layer",
            "case1: sens. outs from >50% LP inputs",
            "case1 %",
            "case2: insens. outs from >50% HP inputs",
            "case2 %",
        ],
        &rows,
    );
    println!(
        "\nBoth cases occur, motivating output-directed quantization \
         (paper Fig. 1's black/gray square illustration)."
    );
    write_json("fig01_motivation", &json);
}
