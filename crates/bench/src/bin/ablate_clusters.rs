//! Ablation: executor cluster count and line buffers — on-chip traffic
//! through the exact memory model (Sec. 4.3: 3 clusters amortize each
//! sparse fetch; Fig. 12: line buffers give dense reuse).

use odq_accel::memory::{layer_traffic, network_traffic, MemoryCfg};
use odq_bench::{print_table, uniform_workloads, write_json};
use odq_nn::Arch;

fn main() {
    println!("Ablation: memory-system features (line buffers, cluster sharing)");
    let ws = uniform_workloads(Arch::ResNet20, 32, 0.3);
    // Dense-only view (no executor gathers) isolates the line buffers'
    // receptive-field reuse.
    let ws_dense = uniform_workloads(Arch::ResNet20, 32, 0.0);
    let dense_with = network_traffic(&ws_dense, &MemoryCfg::default());
    let dense_without =
        network_traffic(&ws_dense, &MemoryCfg { line_buffers: false, ..MemoryCfg::default() });

    let base = MemoryCfg::default();
    let no_lb = MemoryCfg { line_buffers: false, ..base };
    let with = network_traffic(&ws, &base);
    let without = network_traffic(&ws, &no_lb);

    let mut rows = vec![
        vec![
            "with line buffers".to_string(),
            format!("{:.2}", with.onchip_total() / 1e6),
            format!("{:.2}", with.dram_total() / 1e6),
        ],
        vec![
            "without line buffers".to_string(),
            format!("{:.2}", without.onchip_total() / 1e6),
            format!("{:.2}", without.dram_total() / 1e6),
        ],
    ];

    // Cluster sharing: the memory model divides sparse gathers by the
    // cluster count; emulate 1 cluster by scaling that term back up.
    let mut one_cluster_extra = 0.0;
    for w in &ws {
        let t3 = layer_traffic(w, &base);
        // sparse term = gbuf_read - dense part; recompute dense via s=0.
        let mut w0 = w.clone();
        w0.odq_sensitive_fraction = 0.0;
        let dense = layer_traffic(&w0, &base);
        let sparse3 = t3.gbuf_read - dense.gbuf_read;
        one_cluster_extra += sparse3 * 2.0; // 3x the sparse traffic total
    }
    rows.push(vec![
        "1 executor cluster (no fetch sharing)".to_string(),
        format!("{:.2}", (with.onchip_total() + one_cluster_extra) / 1e6),
        format!("{:.2}", with.dram_total() / 1e6),
    ]);

    print_table(
        "ResNet-20 @ 30% sensitive, per image",
        &["configuration", "on-chip traffic (MB)", "DRAM traffic (MB)"],
        &rows,
    );
    println!(
        "\nDense (predictor) stream alone: {:.2} MB with line buffers vs {:.2} MB \
         without ({:.1}x reuse — approaching K^2 for 3x3 kernels). At 30% sensitive \
         the executor's sparse gathers dominate on-chip traffic, which is exactly \
         why Sec. 4.3's 3-cluster fetch sharing matters (3x on that component).",
        dense_with.onchip_total() / 1e6,
        dense_without.onchip_total() / 1e6,
        dense_without.gbuf_read / dense_with.gbuf_read.max(1.0),
    );
    write_json(
        "ablate_clusters",
        &serde_json::json!({
            "with_lb_mb": with.onchip_total() / 1e6,
            "without_lb_mb": without.onchip_total() / 1e6,
            "one_cluster_mb": (with.onchip_total() + one_cluster_extra) / 1e6,
        }),
    );
}
