//! Policy sweep — the cost/accuracy frontier of auto-built per-layer
//! precision policies.
//!
//! For a grid of [`AutoPolicyCfg`] knobs (ODQ routing ceiling × weight
//! SQNR floor) this builds the greedy cheapest-bits policy from recorded
//! ODQ sensitivity, evaluates Top-1 accuracy under the routed engines,
//! and costs each route group on its Table 2 accelerator — the same
//! per-route attribution `odq-serve` reports in `stats_json`. The
//! uniform INT16 policy anchors the frontier.
//!
//! ```sh
//! cargo run --release --bin policy_sweep            # quick scale
//! cargo run --release --bin policy_sweep -- --full
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use odq_accel::{simulate_network, AccelConfig, EnergyModel, LayerWorkload};
use odq_bench::{print_table, trained_model, write_json, ExpScale};
use odq_core::OdqEngine;
use odq_drq::{DrqCfg, DrqEngine};
use odq_nn::executor::{ConvCtx, ConvExecutor, FloatConvExecutor, StaticQuantExecutor};
use odq_nn::models::Model;
use odq_nn::policy::{auto_policy, AutoPolicyCfg, PrecisionPolicy, Route};
use odq_nn::train::evaluate;
use odq_nn::Arch;
use odq_quant::plan::PlanCache;
use odq_tensor::{ConvGeom, Tensor};

/// One route's engine, shaped like `odq-serve`'s executor so per-route
/// statistics stay reachable after evaluation.
enum Exec {
    Float(FloatConvExecutor),
    Static(StaticQuantExecutor),
    Drq(DrqEngine),
    Odq(OdqEngine),
}

impl Exec {
    fn build(route: Route, plans: Arc<PlanCache>) -> Self {
        match route {
            Route::Float => Exec::Float(FloatConvExecutor),
            Route::Static { w_bits, a_bits, a_clip } => {
                Exec::Static(StaticQuantExecutor::with_plan_cache(w_bits, a_bits, a_clip, plans))
            }
            Route::Drq { hi_bits, lo_bits, a_clip, region, input_threshold } => {
                Exec::Drq(DrqEngine::with_plan_cache(
                    DrqCfg { hi_bits, lo_bits, a_clip, region: region as usize, input_threshold },
                    plans,
                ))
            }
            Route::Odq { threshold, sparse } => {
                let mut e = OdqEngine::with_plan_cache(threshold, plans);
                e.sparse = sparse;
                Exec::Odq(e)
            }
        }
    }

    fn as_executor(&mut self) -> &mut dyn ConvExecutor {
        match self {
            Exec::Float(e) => e,
            Exec::Static(e) => e,
            Exec::Drq(e) => e,
            Exec::Odq(e) => e,
        }
    }
}

/// The Table 2 configuration a route is costed on (mirrors
/// `odq-serve::route_accel_config`).
fn route_accel_config(route: Route) -> AccelConfig {
    match route {
        Route::Float => AccelConfig::int16(),
        Route::Static { w_bits, .. } if w_bits <= 8 => AccelConfig::int8(),
        Route::Static { .. } => AccelConfig::int16(),
        Route::Drq { .. } => AccelConfig::drq(),
        Route::Odq { .. } => AccelConfig::odq(),
    }
}

/// A minimal policy-routed executor: one engine per distinct route, all
/// sharing one plan cache, with every layer's geometry and dispatch
/// remembered for per-route cost attribution afterwards.
struct RoutedExec {
    policy: Arc<PrecisionPolicy>,
    plans: Arc<PlanCache>,
    engines: Vec<(Route, Exec)>,
    dispatch: HashMap<String, usize>,
    geoms: Vec<(String, ConvGeom)>,
}

impl RoutedExec {
    fn new(policy: Arc<PrecisionPolicy>) -> Self {
        Self {
            policy,
            plans: Arc::new(PlanCache::new()),
            engines: Vec::new(),
            dispatch: HashMap::new(),
            geoms: Vec::new(),
        }
    }

    /// Fold per-engine measurements into `(label, accel, workloads)`
    /// groups: ODQ routes from real channel counts, DRQ routes from
    /// measured high-precision MAC fractions, float/static routes as
    /// uniform full-precision work.
    fn route_groups(&mut self) -> Vec<(String, AccelConfig, Vec<LayerWorkload>)> {
        let dispatch = &self.dispatch;
        let geoms = &self.geoms;
        let mut groups = Vec::new();
        for (i, (route, exec)) in self.engines.iter_mut().enumerate() {
            let mine = || geoms.iter().filter(|(n, _)| dispatch.get(n) == Some(&i));
            let ws: Vec<LayerWorkload> = match exec {
                Exec::Odq(e) => e
                    .stats
                    .layers
                    .iter()
                    .map(|l| LayerWorkload::from_channel_counts(&l.name, l.geom, &l.channel_counts))
                    .collect(),
                Exec::Drq(e) => mine()
                    .map(|(name, geom)| {
                        let frac = e
                            .stats
                            .iter()
                            .find(|l| &l.name == name)
                            .map_or(1.0, |l| l.hi_mac_fraction());
                        LayerWorkload::uniform(name.clone(), *geom, frac)
                    })
                    .collect(),
                Exec::Float(_) | Exec::Static(_) => mine()
                    .map(|(name, geom)| LayerWorkload::uniform(name.clone(), *geom, 1.0))
                    .collect(),
            };
            if !ws.is_empty() {
                groups.push((route.label().into_owned(), route_accel_config(*route), ws));
            }
        }
        groups
    }
}

impl ConvExecutor for RoutedExec {
    fn begin_pass(&mut self) {
        for (_, e) in &mut self.engines {
            e.as_executor().begin_pass();
        }
    }

    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        let i = match self.dispatch.get(ctx.name) {
            Some(&i) => i,
            None => {
                let route = self.policy.route_for(ctx.name);
                let i = self.engines.iter().position(|(r, _)| *r == route).unwrap_or_else(|| {
                    self.engines.push((route, Exec::build(route, Arc::clone(&self.plans))));
                    self.engines.len() - 1
                });
                self.dispatch.insert(ctx.name.to_string(), i);
                self.geoms.push((ctx.name.to_string(), ctx.geom));
                i
            }
        };
        self.engines[i].1.as_executor().conv(ctx, x)
    }
}

/// Accuracy + summed per-route accelerator cost of one policy.
fn run_policy(
    model: &Model,
    test: (&Tensor, &[usize]),
    batch: usize,
    policy: PrecisionPolicy,
    em: &EnergyModel,
) -> (f32, f64, f64, Vec<(String, f64)>) {
    let mut exec = RoutedExec::new(Arc::new(policy));
    let acc = evaluate(model, test.0, test.1, batch, &mut exec);
    let mut cycles = 0.0;
    let mut energy = 0.0;
    let mut per_route = Vec::new();
    for (label, accel, ws) in exec.route_groups() {
        let r = simulate_network(&accel, &ws, em);
        cycles += r.total_cycles;
        energy += r.energy.total_nj();
        per_route.push((label, r.total_cycles));
    }
    (acc, cycles, energy, per_route)
}

fn main() {
    let scale = ExpScale::from_args();
    println!("Policy sweep: auto-policy cost/accuracy frontier (ResNet-20)");
    let em = EnergyModel::default();
    let (model, _train, test) = trained_model(Arch::ResNet20, 10, scale, 0x9011);
    let t = (&test.images, test.labels.as_slice());

    // Calibrate: record each conv layer's sensitive-output fraction under
    // ODQ on the test set (stand-in for a held-out calibration split).
    let mut recorder = OdqEngine::new(0.3);
    let _ = evaluate(&model, t.0, t.1, scale.batch, &mut recorder);
    let sensitivity: Vec<(String, f64)> =
        recorder.stats.layers.iter().map(|l| (l.name.clone(), l.sensitive_fraction())).collect();

    // The uniform INT16 anchor every policy is normalized against.
    let mut model = model;
    let anchor = PrecisionPolicy::uniform(Route::Static { w_bits: 16, a_bits: 15, a_clip: 1.0 });
    let (acc16, cyc16, nrg16, _) = run_policy(&model, t, scale.batch, anchor, &em);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    rows.push(vec![
        "uniform int16 (anchor)".to_string(),
        format!("{:.1}", 100.0 * acc16),
        "1.000".to_string(),
        "1.000".to_string(),
        "int16: all layers".to_string(),
    ]);
    for odq_ceiling in [0.0, 0.4, 0.6, 0.8] {
        for sqnr_floor_db in [10.0f32, 16.0, 24.0] {
            let cfg = AutoPolicyCfg { odq_ceiling, sqnr_floor_db, ..Default::default() };
            let policy = auto_policy(&mut model, &sensitivity, &cfg);
            let mut mix: HashMap<String, usize> = HashMap::new();
            for (_, route) in policy.layers() {
                *mix.entry(route.label().into_owned()).or_default() += 1;
            }
            let mut mix: Vec<_> = mix.into_iter().collect();
            mix.sort();
            let mix_s = mix.iter().map(|(l, n)| format!("{l}:{n}")).collect::<Vec<_>>().join(" ");
            let (acc, cycles, energy, per_route) = run_policy(&model, t, scale.batch, policy, &em);
            rows.push(vec![
                format!("ceil {odq_ceiling:.1} / floor {sqnr_floor_db:.0} dB"),
                format!("{:.1}", 100.0 * acc),
                format!("{:.3}", cycles / cyc16),
                format!("{:.3}", energy / nrg16),
                mix_s.clone(),
            ]);
            json.push(serde_json::json!({
                "odq_ceiling": odq_ceiling, "sqnr_floor_db": sqnr_floor_db,
                "accuracy": acc, "cycles": cycles, "energy_nj": energy,
                "cycles_vs_int16": cycles / cyc16, "energy_vs_int16": energy / nrg16,
                "route_mix": mix_s,
                "per_route_cycles": per_route.iter()
                    .map(|(l, c)| serde_json::json!({"route": l, "cycles": c}))
                    .collect::<Vec<_>>(),
            }));
        }
    }
    print_table(
        "auto-policy frontier (normalized to uniform INT16)",
        &["policy knobs", "top-1 %", "cycles", "energy", "route mix"],
        &rows,
    );
    write_json("policy_sweep", &json);
}
