//! Ablation: static vs dynamic executor workload scheduling (Sec. 4.3,
//! Figs. 14-16) across randomized per-channel workloads.

use odq_accel::sched::{schedule_dynamic, schedule_static};
use odq_bench::{print_table, write_json};

fn main() {
    println!("Ablation: executor workload scheduling (static vs dynamic)");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for &(n_ofm, n_arrays) in &[(16usize, 6usize), (32, 9), (64, 9), (64, 18), (128, 18)] {
        let mut speedups = Vec::new();
        let mut idle_static = 0.0;
        let mut idle_dynamic = 0.0;
        const TRIALS: usize = 50;
        for _ in 0..TRIALS {
            let w: Vec<u32> = (0..n_ofm).map(|_| next() % 40).collect();
            let st = schedule_static(&w, n_arrays);
            let dy = schedule_dynamic(&w, n_arrays);
            if dy.makespan > 0 {
                speedups.push(st.makespan as f64 / dy.makespan as f64);
            }
            idle_static += st.idle_fraction();
            idle_dynamic += dy.idle_fraction();
        }
        let mean = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
        let max = speedups.iter().cloned().fold(1.0, f64::max);
        rows.push(vec![
            format!("{n_ofm} OFMs / {n_arrays} arrays"),
            format!("{mean:.2}x"),
            format!("{max:.2}x"),
            format!("{:.1}%", 100.0 * idle_static / TRIALS as f64),
            format!("{:.1}%", 100.0 * idle_dynamic / TRIALS as f64),
        ]);
        json.push(serde_json::json!({
            "ofms": n_ofm, "arrays": n_arrays, "mean_speedup": mean, "max_speedup": max,
        }));
    }
    print_table(
        "dynamic-over-static makespan speedup (50 random workloads each)",
        &["shape", "mean speedup", "max speedup", "static idle", "dynamic idle"],
        &rows,
    );
    println!("\nPaper's walkthrough (Figs. 14-16): 21 -> 15 cycles = 1.4x on its example.");
    write_json("ablate_scheduling", &json);
}
