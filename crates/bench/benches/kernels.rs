//! Microbenchmarks for the compute kernels underlying every experiment:
//! float/integer GEMM, im2col lowering, and quantization.

use criterion::{criterion_group, criterion_main, Criterion};
use odq_tensor::gemm::{gemm_f32, gemm_i16_i32};
use odq_tensor::im2col::im2col;
use odq_tensor::{ConvGeom, Tensor};

fn bench_gemm(c: &mut Criterion) {
    let (m, k, n) = (64, 144, 256);
    let a_f: Vec<f32> = (0..m * k).map(|i| (i % 17) as f32 - 8.0).collect();
    let b_f: Vec<f32> = (0..k * n).map(|i| (i % 13) as f32 - 6.0).collect();
    let mut c_f = vec![0.0f32; m * n];
    c.bench_function("gemm_f32 64x144x256", |bch| {
        bch.iter(|| gemm_f32(&a_f, &b_f, &mut c_f, m, k, n))
    });

    let a_i: Vec<i16> = (0..m * k).map(|i| (i % 15) as i16).collect();
    let b_i: Vec<i16> = (0..k * n).map(|i| (i % 15) as i16).collect();
    let mut c_i = vec![0i32; m * n];
    c.bench_function("gemm_i16_i32 64x144x256", |bch| {
        bch.iter(|| gemm_i16_i32(&a_i, &b_i, &mut c_i, m, k, n))
    });
}

fn bench_im2col(c: &mut Criterion) {
    let g = ConvGeom::new(16, 16, 32, 32, 3, 1, 1);
    let x: Vec<f32> = (0..16 * 32 * 32).map(|i| (i % 100) as f32 / 100.0).collect();
    c.bench_function("im2col 16x32x32 k3", |bch| bch.iter(|| im2col(&x, &g)));
}

fn bench_quantize(c: &mut Criterion) {
    let x = Tensor::from_vec(
        [16, 32, 32],
        (0..16 * 1024).map(|i| (i % 256) as f32 / 255.0).collect::<Vec<_>>(),
    );
    c.bench_function("quantize_activation int4 16k", |bch| {
        bch.iter(|| odq_quant::quantize_activation(&x, 4, 1.0))
    });
    c.bench_function("quantize_weights offset int4 16k", |bch| {
        bch.iter(|| odq_quant::quantize_weights(&x, 4))
    });
}

criterion_group!(benches, bench_gemm, bench_im2col, bench_quantize);
criterion_main!(benches);
