//! Microbenchmarks for the compute kernels underlying every experiment:
//! float/integer GEMM, im2col lowering, quantization, and the planned vs
//! per-call ODQ convolution drivers.

use criterion::{criterion_group, criterion_main, Criterion};
use odq_core::{odq_conv2d, odq_conv2d_planned, OdqCfg};
use odq_quant::plan::{PlanSpec, QConvPlan};
use odq_quant::quantize_activation;
use odq_tensor::gemm::{gemm_f32, gemm_i16_i32};
use odq_tensor::im2col::im2col;
use odq_tensor::workspace::WorkspacePool;
use odq_tensor::{ConvGeom, Tensor};

fn bench_gemm(c: &mut Criterion) {
    let (m, k, n) = (64, 144, 256);
    let a_f: Vec<f32> = (0..m * k).map(|i| (i % 17) as f32 - 8.0).collect();
    let b_f: Vec<f32> = (0..k * n).map(|i| (i % 13) as f32 - 6.0).collect();
    let mut c_f = vec![0.0f32; m * n];
    c.bench_function("gemm_f32 64x144x256", |bch| {
        bch.iter(|| gemm_f32(&a_f, &b_f, &mut c_f, m, k, n))
    });

    let a_i: Vec<i16> = (0..m * k).map(|i| (i % 15) as i16).collect();
    let b_i: Vec<i16> = (0..k * n).map(|i| (i % 15) as i16).collect();
    let mut c_i = vec![0i32; m * n];
    c.bench_function("gemm_i16_i32 64x144x256", |bch| {
        bch.iter(|| gemm_i16_i32(&a_i, &b_i, &mut c_i, m, k, n))
    });
}

fn bench_im2col(c: &mut Criterion) {
    let g = ConvGeom::new(16, 16, 32, 32, 3, 1, 1);
    let x: Vec<f32> = (0..16 * 32 * 32).map(|i| (i % 100) as f32 / 100.0).collect();
    c.bench_function("im2col 16x32x32 k3", |bch| bch.iter(|| im2col(&x, &g)));
}

fn bench_quantize(c: &mut Criterion) {
    let x = Tensor::from_vec(
        [16, 32, 32],
        (0..16 * 1024).map(|i| (i % 256) as f32 / 255.0).collect::<Vec<_>>(),
    );
    c.bench_function("quantize_activation int4 16k", |bch| {
        bch.iter(|| odq_quant::quantize_activation(&x, 4, 1.0))
    });
    c.bench_function("quantize_weights offset int4 16k", |bch| {
        bch.iter(|| odq_quant::quantize_weights(&x, 4))
    });
}

/// Per-call ODQ conv (quantize + split weights and lower three times on
/// every call) against the planned driver (prepacked `QConvPlan`, pooled
/// scratch, one lowering per image) on one ResNet-style layer.
fn bench_conv_plan(c: &mut Criterion) {
    let g = ConvGeom::new(16, 16, 16, 16, 3, 1, 1);
    let n = 4;
    let x = Tensor::from_vec(
        g.input_shape(n),
        (0..n * 16 * 256).map(|i| (i % 100) as f32 / 100.0).collect::<Vec<_>>(),
    );
    let w = Tensor::from_vec(
        g.weight_shape(),
        (0..16 * 16 * 9).map(|i| (i % 200) as f32 / 100.0 - 1.0).collect::<Vec<_>>(),
    );
    let cfg = OdqCfg::int4(0.3);

    let mut grp = c.benchmark_group("odq_conv 16x16x16 k3 n4");
    grp.bench_function("per-call", |bch| bch.iter(|| odq_conv2d(&x, &w, None, &g, &cfg)));

    let plan = QConvPlan::build(&w, PlanSpec::odq(cfg.w_bits, cfg.low_bits));
    let pool = WorkspacePool::new();
    grp.bench_function("planned", |bch| {
        bch.iter(|| {
            let qx = quantize_activation(&x, cfg.a_bits, cfg.a_clip);
            odq_conv2d_planned(&qx, &plan, None, &g, &cfg, &pool)
        })
    });
    grp.finish();
}

criterion_group!(benches, bench_gemm, bench_im2col, bench_quantize, bench_conv_plan);
criterion_main!(benches);
