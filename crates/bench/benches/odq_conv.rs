//! ODQ convolution benchmarks: the headline property is that the sparse
//! executor's work scales with the sensitive fraction (threshold), while
//! the dense INT4 baseline pays full price regardless.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odq_core::odq_conv::{odq_conv2d, odq_conv2d_sparse, OdqCfg};
use odq_drq::{drq_conv2d, DrqCfg};
use odq_quant::{quantize_activation, quantize_weights};
use odq_tensor::{ConvGeom, Tensor};

fn setup() -> (Tensor, Tensor, ConvGeom) {
    let g = ConvGeom::new(16, 16, 16, 16, 3, 1, 1);
    let x = Tensor::from_vec(
        g.input_shape(1),
        (0..16 * 256).map(|i| ((i * 7) % 100) as f32 / 100.0).collect::<Vec<_>>(),
    );
    let w = Tensor::from_vec(
        g.weight_shape(),
        (0..16 * 16 * 9).map(|i| ((i * 13) % 200) as f32 / 100.0 - 1.0).collect::<Vec<_>>(),
    );
    (x, w, g)
}

fn bench_paths(c: &mut Criterion) {
    let (x, w, g) = setup();
    let mut group = c.benchmark_group("conv_paths");
    group.bench_function("int4_static", |b| {
        b.iter(|| {
            let qx = quantize_activation(&x, 4, 1.0);
            let qw = quantize_weights(&w, 4);
            odq_quant::qconv::qconv2d(&qx, &qw, &g)
        })
    });
    group.bench_function("odq_dense_instrumented", |b| {
        b.iter(|| odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(0.5)))
    });
    group.bench_function("drq_int8_int4", |b| {
        b.iter(|| drq_conv2d(&x, &w, None, &g, &DrqCfg::int8_int4(0.4)))
    });
    group.finish();
}

fn bench_sparse_scaling(c: &mut Criterion) {
    let (x, w, g) = setup();
    // Calibrate thresholds giving different sensitive fractions.
    let probe = odq_conv2d(&x, &w, None, &g, &OdqCfg::int4(0.0));
    let abs: Vec<f32> = probe.reference.as_slice().iter().map(|v| v.abs()).collect();
    let mut group = c.benchmark_group("odq_sparse_by_sensitivity");
    for q in [0.5f32, 0.75, 0.95] {
        let thr = odq_tensor::stats::quantile(&abs, q);
        let frac = 1.0 - q;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sens~{:.0}%", frac * 100.0)),
            &thr,
            |b, &thr| b.iter(|| odq_conv2d_sparse(&x, &w, None, &g, &OdqCfg::int4(thr))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paths, bench_sparse_scaling);
criterion_main!(benches);
