//! Accelerator-simulator throughput: simulating a full ResNet-20 workload
//! on each Table 2 configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odq_accel::sim::simulate_network;
use odq_accel::{AccelConfig, EnergyModel, LayerWorkload};
use odq_nn::Arch;

fn bench_pipeline(c: &mut Criterion) {
    use odq_accel::pipeline::simulate_network_pipeline;
    let workloads: Vec<LayerWorkload> = Arch::ResNet20
        .conv_geometries(32)
        .iter()
        .enumerate()
        .map(|(i, nc)| {
            LayerWorkload::uniform(nc.name.clone(), nc.geom, 0.1 + 0.03 * (i % 10) as f64)
        })
        .collect();
    c.bench_function("pipeline_event_driven_resnet20", |b| {
        b.iter(|| simulate_network_pipeline(&workloads))
    });
}

fn bench_memory(c: &mut Criterion) {
    use odq_accel::memory::{network_traffic, MemoryCfg};
    let workloads: Vec<LayerWorkload> = Arch::Vgg16
        .conv_geometries(32)
        .iter()
        .map(|nc| LayerWorkload::uniform(nc.name.clone(), nc.geom, 0.3))
        .collect();
    let cfg = MemoryCfg::default();
    c.bench_function("memory_traffic_vgg16", |b| b.iter(|| network_traffic(&workloads, &cfg)));
}

fn bench_sim(c: &mut Criterion) {
    let workloads: Vec<LayerWorkload> = Arch::ResNet20
        .conv_geometries(32)
        .iter()
        .enumerate()
        .map(|(i, nc)| {
            LayerWorkload::uniform(nc.name.clone(), nc.geom, 0.1 + 0.03 * (i % 10) as f64)
        })
        .collect();
    let em = EnergyModel::default();
    let mut group = c.benchmark_group("simulate_resnet20");
    for cfg in AccelConfig::table2() {
        group.bench_with_input(BenchmarkId::from_parameter(&cfg.name), &cfg, |b, cfg| {
            b.iter(|| simulate_network(cfg, &workloads, &em))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim, bench_pipeline, bench_memory);
criterion_main!(benches);
