//! Committed golden fixtures.
//!
//! A handful of small, deterministic layer cases whose oracle outputs are
//! serialized (via `odq_nn::serialize`'s ODQT tensor container) and
//! checked in under `tests/fixtures/`. Differential tests catch an engine
//! drifting from the oracle; the committed goldens additionally catch the
//! case where *both* sides drift together (an oracle edit that silently
//! changes semantics, a refactor that "fixes" kernel and reference in the
//! same commit).
//!
//! * `conformance_check --regen` rewrites the fixture files from the
//!   current oracle (do this only when an output change is intended, and
//!   say why in the commit message).
//! * `conformance_check --verify-fixtures` (and the `conformance` CI job)
//!   recomputes everything and fails on any drift: oracle outputs must
//!   match the files bit for bit, and every engine path must still meet
//!   its divergence bound against the stored goldens.

use std::io;
use std::path::{Path, PathBuf};

use odq_core::odq_conv::{odq_conv2d, OdqCfg};
use odq_drq::drq_conv::drq_conv2d;
use odq_nn::executor::{ConvExecutor, FloatConvExecutor, StaticQuantExecutor};
use odq_nn::serialize::{load_tensors, save_tensors};
use odq_nn::ConvCtx;
use odq_tensor::{ConvGeom, Tensor};

use crate::oracle::{
    ref_add_bias, ref_conv2d, ref_drq_conv2d, ref_odq_conv2d, ref_qconv2d_affine,
    ref_quantize_activation, ref_quantize_weights,
};
use crate::runner::{gen_bias, gen_input, gen_weights, ulp_diff, LayerSpec};

/// One committed fixture case.
pub struct FixtureCase {
    /// File stem under `tests/fixtures/` (`{name}.odqt`).
    pub name: &'static str,
    /// The layer spec the fixture pins.
    pub spec: LayerSpec,
}

/// The committed cases: small but collectively covering padding, stride,
/// non-square maps, pointwise kernels and bias presence/absence.
pub fn fixture_cases() -> Vec<FixtureCase> {
    vec![
        FixtureCase {
            name: "conv3x3_pad1",
            spec: LayerSpec {
                geom: ConvGeom::new(3, 4, 8, 8, 3, 1, 1),
                batch: 2,
                seed: 11,
                with_bias: true,
            },
        },
        FixtureCase {
            name: "stride2_nonsquare",
            spec: LayerSpec {
                geom: ConvGeom::new(2, 3, 9, 6, 3, 2, 1),
                batch: 1,
                seed: 12,
                with_bias: true,
            },
        },
        FixtureCase {
            name: "pointwise_1x1",
            spec: LayerSpec {
                geom: ConvGeom::new(4, 5, 5, 5, 1, 1, 0),
                batch: 2,
                seed: 13,
                with_bias: false,
            },
        },
        FixtureCase {
            name: "kernel5_pad2",
            spec: LayerSpec {
                geom: ConvGeom::new(2, 2, 7, 7, 5, 1, 2),
                batch: 1,
                seed: 14,
                with_bias: true,
            },
        },
    ]
}

/// The committed fixtures directory (`tests/fixtures/` at the workspace
/// root).
pub fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("tests/fixtures")
}

fn bool_tensor(shape: odq_tensor::Shape, bits: &[bool]) -> Tensor {
    Tensor::from_vec(shape, bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect())
}

/// Oracle-computed fixture entries for one spec: the generated data plus
/// each path family's golden outputs.
pub fn compute_entries(spec: &LayerSpec) -> Vec<(String, Tensor)> {
    let g = spec.geom;
    let n = spec.batch;
    let x = gen_input(spec);
    let w = gen_weights(spec);
    let bias_v = gen_bias(spec);
    let bias = bias_v.as_deref();
    let out_shape = g.output_shape(n);

    let mut entries: Vec<(String, Tensor)> =
        vec![("input".into(), x.clone()), ("weights".into(), w.clone())];
    if let Some(b) = bias {
        entries.push(("bias".into(), Tensor::from_vec([b.len()], b.to_vec())));
    }

    let float = ref_conv2d(x.as_slice(), w.as_slice(), bias, n, &g);
    entries.push(("float".into(), Tensor::from_vec(out_shape.clone(), float)));

    let qx = ref_quantize_activation(x.as_slice(), 8, 1.0);
    let qw = ref_quantize_weights(w.as_slice(), 8);
    let mut s8 = ref_qconv2d_affine(&qx, &qw, n, &g);
    if let Some(b) = bias {
        ref_add_bias(&mut s8, b, n, &g);
    }
    entries.push(("static8".into(), Tensor::from_vec(out_shape.clone(), s8)));

    let ocfg = OdqCfg::int4(spec.odq_threshold());
    let odq = ref_odq_conv2d(x.as_slice(), w.as_slice(), bias, n, &g, &ocfg);
    entries.push(("odq_output".into(), Tensor::from_vec(out_shape.clone(), odq.output)));
    entries.push(("odq_reference".into(), Tensor::from_vec(out_shape.clone(), odq.reference)));
    entries.push(("odq_mask".into(), bool_tensor(out_shape.clone(), &odq.mask)));

    let dcfg = spec.drq_cfg();
    let drq = ref_drq_conv2d(x.as_slice(), w.as_slice(), bias, n, &g, &dcfg);
    entries.push(("drq_output".into(), Tensor::from_vec(out_shape, drq.output)));
    entries.push(("drq_mask".into(), bool_tensor(g.input_shape(n), &drq.input_mask)));

    entries
}

/// Regenerate every fixture file into `dir`, returning the written paths.
pub fn regenerate_into(dir: &Path) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for case in fixture_cases() {
        let entries = compute_entries(&case.spec);
        let refs: Vec<(&str, &Tensor)> = entries.iter().map(|(n, t)| (n.as_str(), t)).collect();
        let path = dir.join(format!("{}.odqt", case.name));
        save_tensors(&path, &refs)?;
        written.push(path);
    }
    Ok(written)
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn max_ulp(a: &Tensor, b: &Tensor) -> u64 {
    a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| ulp_diff(x, y)).max().unwrap_or(0)
}

/// Verify every committed fixture in `dir` against (a) the current oracle
/// — bit-exact — and (b) the current engines — each within its
/// conformance bound. Returns a list of human-readable drift messages
/// (empty = clean).
pub fn verify_against(dir: &Path) -> Result<(), Vec<String>> {
    let mut drift = Vec::new();
    for case in fixture_cases() {
        let path = dir.join(format!("{}.odqt", case.name));
        let stored = match load_tensors(&path) {
            Ok(s) => s,
            Err(e) => {
                drift.push(format!("{}: cannot load fixture: {e}", case.name));
                continue;
            }
        };
        let lookup = |name: &str| stored.iter().find(|(n, _)| n == name).map(|(_, t)| t);

        // (a) oracle drift: every entry must match the recomputation bit
        // for bit (including the generated input/weights, pinning the
        // deterministic generators themselves).
        let fresh = compute_entries(&case.spec);
        if fresh.len() != stored.len() {
            drift.push(format!(
                "{}: entry count changed ({} stored, {} recomputed) — regen needed?",
                case.name,
                stored.len(),
                fresh.len()
            ));
        }
        for (name, t) in &fresh {
            match lookup(name) {
                Some(s) if bits_equal(s, t) => {}
                Some(_) => drift.push(format!("{}: oracle drift in entry `{name}`", case.name)),
                None => drift.push(format!("{}: missing entry `{name}`", case.name)),
            }
        }

        // (b) engine drift against the stored goldens.
        let spec = &case.spec;
        let g = spec.geom;
        let x = gen_input(spec);
        let w = gen_weights(spec);
        let bias_v = gen_bias(spec);
        let bias = bias_v.as_deref();
        let ctx = ConvCtx { name: "fixture", geom: g, weights: &w, bias, qat: None };

        let mut check = |label: &str, golden: &str, engine: &Tensor, bound: u64| match lookup(
            golden,
        ) {
            Some(gold) => {
                let u = max_ulp(gold, engine);
                if u > bound || gold.dims() != engine.dims() {
                    drift.push(format!(
                            "{}: engine `{label}` diverges from golden `{golden}` by {u} ulp (bound {bound})",
                            case.name
                        ));
                }
            }
            None => drift.push(format!("{}: golden `{golden}` missing", case.name)),
        };

        let y = FloatConvExecutor.conv(&ctx, &x);
        check("float/executor", "float", &y, 1);
        let y = StaticQuantExecutor::int(8).conv(&ctx, &x);
        check("static8/executor", "static8", &y, 0);
        let r = odq_conv2d(&x, &w, bias, &g, &OdqCfg::int4(spec.odq_threshold()));
        check("odq/dense", "odq_output", &r.output, 0);
        check("odq/reference", "odq_reference", &r.reference, 0);
        check("odq/mask", "odq_mask", &bool_tensor(g.output_shape(spec.batch), r.mask.bits()), 0);
        let r = drq_conv2d(&x, &w, bias, &g, &spec.drq_cfg());
        check("drq/drq_conv2d", "drq_output", &r.output, 0);
        check("drq/mask", "drq_mask", &bool_tensor(g.input_shape(spec.batch), &r.input_mask), 0);
    }
    if drift.is_empty() {
        Ok(())
    } else {
        Err(drift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regen_then_verify_roundtrips() {
        let dir = std::env::temp_dir().join("odq-conformance-fixture-test");
        regenerate_into(&dir).unwrap();
        verify_against(&dir).unwrap_or_else(|d| panic!("drift on fresh regen: {d:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
