//! Scalar golden-oracle kernels.
//!
//! Every function here is a deliberately slow, obviously-correct
//! transcription of one piece of the quantized-convolution pipeline —
//! plain nested loops over `(image, filter, output y, output x, channel,
//! kernel y, kernel x)`, no im2col, no rayon, no GEMM, no fusion. They
//! exist so the production engines (per-call kernels, planned/fused
//! drivers, the sparse ODQ executor, the serving fleet) can all be pinned
//! to one independent reference instead of only to each other.
//!
//! Numerical contract (asserted by `tests/conformance.rs`):
//!
//! * **Integer paths are bit-exact.** Integer accumulation is associative,
//!   so the naive loops here must agree with the GEMM paths to the last
//!   bit, as must every f32 expression computed *from* those integers —
//!   the oracle transcribes the engines' dequantization / estimate
//!   operation orders exactly (see the doc comments on each function).
//! * **The float path is bit-exact too**, because the oracle accumulates
//!   each output's taps in the same `(channel, ky, kx)` order as the
//!   im2col rows, and `gemm_f32` reduces every output element
//!   sequentially over exactly that order. The ≤1-ulp allowance in the
//!   conformance tests is headroom for future reduction-order changes,
//!   not something the current kernels need.
//!
//! Paper references: Eq. 2 (convolution), Eq. 3 (bit-plane split
//! `Σ a·n = 2^2d·HH + 2^d·(HL+LH) + LL`), Sec. 3 step 1 (predictor =
//! `HH` + receptive sums + offline per-filter constants), Sec. 3 step 2
//! (executor computes the three cross terms for sensitive outputs only).

use odq_core::odq_conv::OdqCfg;
use odq_drq::drq_conv::DrqCfg;
use odq_tensor::ConvGeom;

/// A scalar quantization result: codes plus the affine decode parameters
/// (`value = scale · (code − zero)`).
#[derive(Clone, Debug)]
pub struct RefQuant {
    /// Quantized codes, same layout as the input slice.
    pub codes: Vec<i16>,
    /// Decode scale.
    pub scale: f32,
    /// Decode zero point (offset-binary weights; 0 for activations).
    pub zero: f32,
}

fn max_abs(v: &[f32]) -> f32 {
    v.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// DoReFa activation quantizer (scalar transcription of
/// `odq_quant::dorefa::quantize_activation`): clamp to `[0, clip]`, then
/// `code = round(v · (2^bits − 1)/clip)`.
///
/// The forward mapping multiplies by `max_code/clip` directly — deriving
/// it as `1/scale` would lose a ulp and mis-round exact half-steps.
pub fn ref_quantize_activation(x: &[f32], bits: u8, clip: f32) -> RefQuant {
    assert!((1..=15).contains(&bits), "activation bits must be in 1..=15");
    assert!(clip > 0.0, "clip must be positive");
    let max_code = ((1i32 << bits) - 1) as f32;
    let scale = clip / max_code;
    let inv = max_code / clip;
    let codes = x.iter().map(|&v| (v.clamp(0.0, clip) * inv).round() as i16).collect();
    RefQuant { codes, scale, zero: 0.0 }
}

/// DoReFa offset-binary weight quantizer (scalar transcription of
/// `odq_quant::dorefa::quantize_weights`): a uniform grid over
/// `[-max|w|, +max|w|]` with zero point `(2^bits − 1)/2` and no zero
/// level.
pub fn ref_quantize_weights(w: &[f32], bits: u8) -> RefQuant {
    assert!((2..=15).contains(&bits), "weight bits must be in 2..=15");
    let max_code = ((1i32 << bits) - 1) as f32;
    let zero = max_code / 2.0;
    let ma = max_abs(w);
    let scale = if ma == 0.0 { 1.0 } else { 2.0 * ma / max_code };
    let inv = 1.0 / scale;
    let codes = w.iter().map(|&v| (v * inv + zero).round().clamp(0.0, max_code) as i16).collect();
    RefQuant { codes, scale, zero }
}

/// Signed-symmetric weight quantizer (scalar transcription of
/// `odq_quant::dorefa::quantize_weights_symmetric`, the ablation coding
/// used by 16-bit static quantization).
pub fn ref_quantize_weights_symmetric(w: &[f32], bits: u8) -> RefQuant {
    assert!((2..=16).contains(&bits), "weight bits must be in 2..=16");
    let max_code = ((1i32 << (bits - 1)) - 1) as f32;
    let ma = max_abs(w);
    let scale = if ma == 0.0 { 1.0 } else { ma / max_code };
    let inv = if ma == 0.0 { 1.0 } else { max_code / ma };
    let codes = w.iter().map(|&v| (v * inv).round().clamp(-max_code, max_code) as i16).collect();
    RefQuant { codes, scale, zero: 0.0 }
}

/// Eq. 3 bit-plane split: `high = c >> low_bits`, `low = c & (2^low_bits − 1)`.
pub fn ref_split_codes(codes: &[i16], low_bits: u8) -> (Vec<i16>, Vec<i16>) {
    assert!(low_bits > 0 && low_bits < 15, "low_bits must be in 1..15");
    let mask = (1i16 << low_bits) - 1;
    (codes.iter().map(|&c| c >> low_bits).collect(), codes.iter().map(|&c| c & mask).collect())
}

/// Iterate one output's receptive field in im2col row order
/// `(channel, ky, kx)`, yielding the flat input index (`None` for padded
/// taps). This single helper fixes the tap order for every oracle kernel.
fn for_each_tap(g: &ConvGeom, oy: usize, ox: usize, mut f: impl FnMut(Option<usize>)) {
    let (h, w, k) = (g.in_h as isize, g.in_w as isize, g.kernel);
    for ci in 0..g.in_channels {
        for ki in 0..k {
            let iy = (oy * g.stride + ki) as isize - g.padding as isize;
            for kj in 0..k {
                let ix = (ox * g.stride + kj) as isize - g.padding as isize;
                if iy < 0 || iy >= h || ix < 0 || ix >= w {
                    f(None);
                } else {
                    f(Some((ci as isize * h * w + iy * w + ix) as usize));
                }
            }
        }
    }
}

/// Naive f32 convolution (Eq. 2): `x: [n, Ci, H, W]` flat, `w: [Co, Ci,
/// K, K]` flat, optional per-channel bias, output `[n, Co, OH, OW]` flat.
///
/// The accumulation visits taps in im2col row order and skips zero
/// *weights* (padded inputs still contribute a literal `w·0.0` add) —
/// exactly the reduction `gemm_f32` performs — so this matches
/// `odq_tensor::conv::conv2d` bit for bit.
pub fn ref_conv2d(x: &[f32], w: &[f32], bias: Option<&[f32]>, n: usize, g: &ConvGeom) -> Vec<f32> {
    let (oh, ow) = (g.out_h(), g.out_w());
    let in_sz = g.in_channels * g.in_h * g.in_w;
    let kk = g.in_channels * g.kernel * g.kernel;
    assert_eq!(x.len(), n * in_sz, "input length mismatch");
    assert_eq!(w.len(), g.out_channels * kk, "weight length mismatch");
    let mut out = vec![0.0f32; n * g.out_channels * oh * ow];
    for img in 0..n {
        let xi = &x[img * in_sz..(img + 1) * in_sz];
        for co in 0..g.out_channels {
            let wf = &w[co * kk..(co + 1) * kk];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    let mut t = 0usize;
                    for_each_tap(g, oy, ox, |src| {
                        let wv = wf[t];
                        t += 1;
                        if wv == 0.0 {
                            return;
                        }
                        let xv = src.map_or(0.0, |i| xi[i]);
                        acc += wv * xv;
                    });
                    let mut v = acc;
                    if let Some(b) = bias {
                        v += b[co];
                    }
                    out[((img * g.out_channels + co) * oh + oy) * ow + ox] = v;
                }
            }
        }
    }
    out
}

/// Naive integer convolution `Σ a·n` with `i64` accumulation (exact for
/// every bit-width pairing in the workspace; narrower engine paths that
/// accumulate in `i32` agree exactly because they are asserted not to
/// overflow).
pub fn ref_qconv2d_codes(x: &[i16], w: &[i16], n: usize, g: &ConvGeom) -> Vec<i64> {
    let (oh, ow) = (g.out_h(), g.out_w());
    let in_sz = g.in_channels * g.in_h * g.in_w;
    let kk = g.in_channels * g.kernel * g.kernel;
    assert_eq!(x.len(), n * in_sz, "input length mismatch");
    assert_eq!(w.len(), g.out_channels * kk, "weight length mismatch");
    let mut out = vec![0i64; n * g.out_channels * oh * ow];
    for img in 0..n {
        let xi = &x[img * in_sz..(img + 1) * in_sz];
        for co in 0..g.out_channels {
            let wf = &w[co * kk..(co + 1) * kk];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0i64;
                    let mut t = 0usize;
                    for_each_tap(g, oy, ox, |src| {
                        if let Some(i) = src {
                            acc += wf[t] as i64 * xi[i] as i64;
                        }
                        t += 1;
                    });
                    out[((img * g.out_channels + co) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    out
}

/// Receptive sums `Σ a`: per output *position* (shared by all filters),
/// the sum of in-bounds input codes in its receptive field. `[n, OH, OW]`
/// flat.
pub fn ref_receptive_sums(x: &[i16], n: usize, g: &ConvGeom) -> Vec<i32> {
    let (oh, ow) = (g.out_h(), g.out_w());
    let in_sz = g.in_channels * g.in_h * g.in_w;
    assert_eq!(x.len(), n * in_sz, "input length mismatch");
    let mut out = vec![0i32; n * oh * ow];
    for img in 0..n {
        let xi = &x[img * in_sz..(img + 1) * in_sz];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0i32;
                for_each_tap(g, oy, ox, |src| {
                    if let Some(i) = src {
                        acc += xi[i] as i32;
                    }
                });
                out[(img * oh + oy) * ow + ox] = acc;
            }
        }
    }
    out
}

/// Per-output-position count of in-bounds taps (spatial taps × input
/// channels), `[OH, OW]` flat — the predictor's `valid` constants.
pub fn ref_valid_tap_counts(g: &ConvGeom) -> Vec<u32> {
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut out = vec![0u32; oh * ow];
    for oy in 0..oh {
        for ox in 0..ow {
            let mut c = 0u32;
            for_each_tap(g, oy, ox, |src| {
                if src.is_some() {
                    c += 1;
                }
            });
            out[oy * ow + ox] = c;
        }
    }
    out
}

/// Per-filter code sums `Σ n` over one filter's weights, `[Co]`.
pub fn ref_filter_code_sums(w: &[i16], out_channels: usize) -> Vec<i32> {
    let kk = w.len() / out_channels;
    (0..out_channels).map(|co| w[co * kk..(co + 1) * kk].iter().map(|&c| c as i32).sum()).collect()
}

/// Affine-dequantized integer convolution
/// `y = s_a·s_w · (Σ a·n − z_w · Σ a)` — the scalar counterpart of
/// `odq_quant::qconv::qconv2d`. The f32 expression matches the engine's
/// `fill_affine` operation order (`s · (p − z_w·Σa)` with the integer
/// product converted to f32 first), so results are bit-exact.
pub fn ref_qconv2d_affine(x: &RefQuant, w: &RefQuant, n: usize, g: &ConvGeom) -> Vec<f32> {
    let s = x.scale * w.scale;
    let zw = w.zero;
    let p = ref_qconv2d_codes(&x.codes, &w.codes, n, g);
    let spatial = g.out_spatial();
    let co = g.out_channels;
    let mut out = vec![0.0f32; n * co * spatial];
    if zw != 0.0 {
        let sa = ref_receptive_sums(&x.codes, n, g);
        for img in 0..n {
            for f in 0..co {
                let base = (img * co + f) * spatial;
                for sp in 0..spatial {
                    let a_sum = sa[img * spatial + sp] as f32;
                    out[base + sp] = s * (p[base + sp] as f32 - zw * a_sum);
                }
            }
        }
    } else {
        for (o, &pv) in out.iter_mut().zip(&p) {
            *o = s * pv as f32;
        }
    }
    out
}

/// The predictor's estimate (Sec. 3 step 1 / DESIGN.md §6.2): `HH` plus
/// expectation corrections for the unseen low planes. A term-for-term
/// transcription of `odq_quant::predict::odq_estimate_precomputed`'s f32
/// operation order, so results are bit-identical given identical integer
/// inputs.
#[allow(clippy::too_many_arguments)]
pub fn ref_odq_estimate(
    hh: &[i64],
    sa_h: &[i32],
    sum_nh: &[i32],
    sum_nl: &[i32],
    valid: &[u32],
    low_bits: u8,
    w_zero: f32,
    scale: f32,
    n: usize,
    g: &ConvGeom,
) -> Vec<f32> {
    let pow = (1u32 << low_bits as u32) as f32;
    let mean_low = (pow - 1.0) / 2.0;
    let k = g.col_len() as f32;
    let co = g.out_channels;
    let spatial = g.out_spatial();
    let mut est = vec![0.0f32; n * co * spatial];
    for img in 0..n {
        for f in 0..co {
            let snh = sum_nh[f] as f32;
            let snl = sum_nl[f] as f32;
            let base = (img * co + f) * spatial;
            for sp in 0..spatial {
                let v = valid[sp] as f32;
                let sah = sa_h[img * spatial + sp] as f32;
                let hh_v = hh[base + sp] as f32;
                let mean_ah = if v > 0.0 { sah / v } else { 0.0 };
                let frac = v / k;
                let code_est = pow * pow * hh_v
                    + pow * mean_ah * snl * frac
                    + pow * mean_low * snh * frac
                    + mean_low * snl * frac
                    - w_zero * (pow * sah + mean_low * v);
                est[base + sp] = scale * code_est;
            }
        }
    }
    est
}

/// Scalar ODQ convolution output: the composed result, the predictor's
/// sensitivity mask, and the exact-INT reference (Eq. 3 fully evaluated
/// everywhere).
pub struct RefOdqOutput {
    /// Composed outputs (`sensitive ? exact : estimate`), `[n, Co, OH, OW]`.
    pub output: Vec<f32>,
    /// Predictor mask (`|p̂| ≥ threshold`), same layout.
    pub mask: Vec<bool>,
    /// Exact reference (both planes everywhere), same layout.
    pub reference: Vec<f32>,
}

/// Two-step ODQ convolution, scalar form (Sec. 3 / Eq. 3): quantize,
/// split planes, compute `HH` (predictor) and the three cross terms
/// `HL`, `LH`, `LL` (executor) with naive loops, estimate, threshold,
/// compose. The composition's f32 expressions transcribe
/// `odq_core::odq_conv::odq_conv2d_quantized` operation for operation.
pub fn ref_odq_conv2d(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    n: usize,
    g: &ConvGeom,
    cfg: &OdqCfg,
) -> RefOdqOutput {
    let qx = ref_quantize_activation(x, cfg.a_bits, cfg.a_clip);
    let qw = ref_quantize_weights(w, cfg.w_bits);
    let scale = qx.scale * qw.scale;
    let d = cfg.low_bits;

    let (xh, xl) = ref_split_codes(&qx.codes, d);
    let (wh, wl) = ref_split_codes(&qw.codes, d);

    // Eq. 3's four partial products, each a naive integer conv.
    let hh = ref_qconv2d_codes(&xh, &wh, n, g);
    let hl = ref_qconv2d_codes(&xh, &wl, n, g);
    let lh = ref_qconv2d_codes(&xl, &wh, n, g);
    let ll = ref_qconv2d_codes(&xl, &wl, n, g);

    // Predictor inputs (Sec. 3 step 1).
    let sa_h = ref_receptive_sums(&xh, n, g);
    let sum_nh = ref_filter_code_sums(&wh, g.out_channels);
    let sum_nl = ref_filter_code_sums(&wl, g.out_channels);
    let valid = ref_valid_tap_counts(g);
    let est = ref_odq_estimate(&hh, &sa_h, &sum_nh, &sum_nl, &valid, d, qw.zero, scale, n, g);

    // Eq. 3 recombination: Σ a·n = 2^2d·HH + 2^d·(HL+LH) + LL.
    let full_codes: Vec<i64> =
        (0..hh.len()).map(|i| (hh[i] << (2 * d)) + ((hl[i] + lh[i]) << d) + ll[i]).collect();
    let sa = ref_receptive_sums(&qx.codes, n, g);

    let spatial = g.out_spatial();
    let co = g.out_channels;
    let total = n * co * spatial;
    let mut mask = vec![false; total];
    let mut out = vec![0.0f32; total];
    let mut reference = vec![0.0f32; total];
    for img in 0..n {
        for f in 0..co {
            let base = (img * co + f) * spatial;
            for sp in 0..spatial {
                let i = base + sp;
                let full = scale * (full_codes[i] as f32 - qw.zero * sa[img * spatial + sp] as f32);
                let p_hat = est[i];
                let sensitive = p_hat.abs() >= cfg.threshold;
                mask[i] = sensitive;
                out[i] = if sensitive { full } else { p_hat };
                reference[i] = full;
            }
        }
    }
    if let Some(b) = bias {
        ref_add_bias(&mut out, b, n, g);
        ref_add_bias(&mut reference, b, n, g);
    }
    RefOdqOutput { output: out, mask, reference }
}

/// Scalar DRQ convolution output.
pub struct RefDrqOutput {
    /// Mixed-precision outputs, `[n, Co, OH, OW]` flat.
    pub output: Vec<f32>,
    /// Per-input-feature sensitivity (true = high precision), `[n, Ci, H, W]`.
    pub input_mask: Vec<bool>,
}

/// DRQ's input-region sensitivity mask, scalar transcription of
/// `odq_drq::drq_conv::region_sensitivity_mask`: each `region × region`
/// tile (clipped at borders) of each channel is sensitive iff its mean
/// `|value|` meets the threshold.
pub fn ref_region_mask(
    x: &[f32],
    n: usize,
    g: &ConvGeom,
    region: usize,
    threshold: f32,
) -> Vec<bool> {
    let (c, h, w) = (g.in_channels, g.in_h, g.in_w);
    let r = region.max(1);
    let mut mask = vec![false; x.len()];
    for img_ch in 0..n * c {
        let base = img_ch * h * w;
        let mut y0 = 0;
        while y0 < h {
            let y1 = (y0 + r).min(h);
            let mut x0 = 0;
            while x0 < w {
                let x1 = (x0 + r).min(w);
                let mut sum = 0.0f32;
                for y in y0..y1 {
                    for xx in x0..x1 {
                        sum += x[base + y * w + xx].abs();
                    }
                }
                let mean = sum / ((y1 - y0) * (x1 - x0)) as f32;
                if mean >= threshold {
                    for y in y0..y1 {
                        for xx in x0..x1 {
                            mask[base + y * w + xx] = true;
                        }
                    }
                }
                x0 = x1;
            }
            y0 = y1;
        }
    }
    mask
}

/// Requantize codes onto the coarse grid: `c' = round(c/step)·step`
/// (scalar transcription of `odq_quant::qconv::requantize_codes`).
pub fn ref_requantize(codes: &[i16], step: i16) -> Vec<i16> {
    assert!(step > 0, "step must be positive");
    codes.iter().map(|&c| ((c as f32 / step as f32).round() as i16) * step).collect()
}

/// Input-directed DRQ convolution, scalar form — transcribes
/// `odq_drq::drq_conv::drq_conv2d`'s mixed path: split input codes by
/// region sensitivity, requantize the insensitive inputs *and* the
/// weights onto the coarse grid, sum both branches' products and
/// receptive sums in code domain, and dequantize once.
pub fn ref_drq_conv2d(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    n: usize,
    g: &ConvGeom,
    cfg: &DrqCfg,
) -> RefDrqOutput {
    let qx = ref_quantize_activation(x, cfg.hi_bits, cfg.a_clip);
    let qw = ref_quantize_weights(w, cfg.hi_bits);
    let scale = qx.scale * qw.scale;
    let zw = qw.zero;
    let step = cfg.step();

    let input_mask = ref_region_mask(x, n, g, cfg.region, cfg.input_threshold);

    let mut x_hi = vec![0i16; qx.codes.len()];
    let mut x_lo = vec![0i16; qx.codes.len()];
    for (i, (&c, &m)) in qx.codes.iter().zip(&input_mask).enumerate() {
        if m {
            x_hi[i] = c;
        } else {
            x_lo[i] = ((c as f32 / step as f32).round() as i16) * step;
        }
    }
    let w_lo = ref_requantize(&qw.codes, step);

    let y_hi = ref_qconv2d_codes(&x_hi, &qw.codes, n, g);
    let y_lo = ref_qconv2d_codes(&x_lo, &w_lo, n, g);
    let sa_hi = ref_receptive_sums(&x_hi, n, g);
    let sa_lo = ref_receptive_sums(&x_lo, n, g);

    let spatial = g.out_spatial();
    let co = g.out_channels;
    let mut out = vec![0.0f32; n * co * spatial];
    for img in 0..n {
        for f in 0..co {
            let base = (img * co + f) * spatial;
            for sp in 0..spatial {
                let code = (y_hi[base + sp] + y_lo[base + sp]) as f32;
                let sa = (sa_hi[img * spatial + sp] + sa_lo[img * spatial + sp]) as f32;
                out[base + sp] = scale * (code - zw * sa);
            }
        }
    }
    if let Some(b) = bias {
        ref_add_bias(&mut out, b, n, g);
    }
    RefDrqOutput { output: out, input_mask }
}

/// Add a per-output-channel bias to a flat `[n, Co, OH, OW]` buffer.
pub fn ref_add_bias(y: &mut [f32], bias: &[f32], n: usize, g: &ConvGeom) {
    let spatial = g.out_spatial();
    let co = g.out_channels;
    for img in 0..n {
        for (f, &b) in bias.iter().enumerate().take(co) {
            let base = (img * co + f) * spatial;
            for v in &mut y[base..base + spatial] {
                *v += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_recombines() {
        for c in 0i16..=15 {
            let (h, l) = ref_split_codes(&[c], 2);
            assert_eq!((h[0] << 2) + l[0], c);
        }
    }

    #[test]
    fn activation_quantizer_matches_known_codes() {
        let q = ref_quantize_activation(&[-0.5, 0.0, 0.5, 1.0, 2.0], 4, 1.0);
        assert_eq!(q.codes, vec![0, 0, 8, 15, 15]);
    }

    #[test]
    fn conv_identity_kernel_copies_input() {
        let g = ConvGeom::new(1, 1, 3, 3, 1, 1, 0);
        let x: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let y = ref_conv2d(&x, &[1.0], None, 1, &g);
        assert_eq!(x, y);
    }

    #[test]
    fn valid_taps_full_inside_padded_border() {
        let g = ConvGeom::new(2, 1, 4, 4, 3, 1, 1);
        let v = ref_valid_tap_counts(&g);
        // Interior outputs see all 2*3*3 taps; the corner sees 2*2*2.
        assert_eq!(v[5], 18);
        assert_eq!(v[0], 8);
    }
}
