//! Per-layer precision-policy conformance: the routed oracle, a routed
//! real-engine executor, and the policy-aware publish gate.
//!
//! `odq-serve`'s `PolicyExecutor` dispatches each conv layer to the engine
//! its [`PrecisionPolicy`] route names. This module pins that composition
//! to the scalar reference from two independent directions:
//!
//! * [`PolicyOracleExecutor`] composes the *scalar per-path oracles*
//!   layer-by-layer: each conv is computed by the `ref_*` transcription of
//!   its route's arithmetic, so a whole-model forward under a mixed policy
//!   has a golden answer that never touches engine code.
//! * [`RoutedEngine`] composes the *real engines* layer-by-layer, each
//!   route built exactly as the serving path builds it (same
//!   constructors, same configurations, shared [`PlanCache`]). Because
//!   every engine quantizes per layer with batch-independent scales,
//!   routing layer `L` to engine `E` inside a mixed forward is bit-
//!   identical to layer `L`'s output in a whole-model forward under `E`
//!   alone — the differential sweep in `tests/conformance.rs` proves the
//!   mixed forward equals the stitched single-engine outputs.
//! * [`PolicyOracleGate`] is the registry door for policy-published
//!   versions: a candidate must forward bit-identically to the routed
//!   oracle *under its policy* before it becomes routable.

use std::sync::Arc;

use odq_core::engine::OdqEngine;
use odq_core::odq_conv::OdqCfg;
use odq_drq::{DrqCfg, DrqEngine};
use odq_nn::executor::{ConvCtx, ConvExecutor, FloatConvExecutor, StaticQuantExecutor};
use odq_nn::models::Model;
use odq_nn::policy::{PrecisionPolicy, Route};
use odq_quant::plan::PlanCache;
use odq_registry::PublishGate;
use odq_tensor::Tensor;

use crate::oracle::{
    ref_add_bias, ref_conv2d, ref_drq_conv2d, ref_odq_conv2d, ref_qconv2d_affine,
    ref_quantize_activation, ref_quantize_weights, ref_quantize_weights_symmetric, RefQuant,
};
use crate::runner::compare;

/// The DRQ configuration a [`Route::Drq`] describes.
fn drq_cfg(hi_bits: u8, lo_bits: u8, a_clip: f32, region: u32, input_threshold: f32) -> DrqCfg {
    DrqCfg { hi_bits, lo_bits, a_clip, region: region as usize, input_threshold }
}

/// A [`ConvExecutor`] computing every conv with the scalar oracle of the
/// route its policy assigns — the golden forward for a mixed-precision
/// model.
pub struct PolicyOracleExecutor {
    /// The per-layer route table.
    pub policy: Arc<PrecisionPolicy>,
}

impl ConvExecutor for PolicyOracleExecutor {
    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        assert!(ctx.qat.is_none(), "oracle executor does not model QAT layers");
        let g = ctx.geom;
        let n = x.dims()[0];
        let (xs, ws) = (x.as_slice(), ctx.weights.as_slice());
        let out = match self.policy.route_for(ctx.name) {
            Route::Float => ref_conv2d(xs, ws, ctx.bias, n, &g),
            Route::Static { w_bits, a_bits, a_clip } => {
                let qx = ref_quantize_activation(xs, a_bits, a_clip);
                let qw: RefQuant = if w_bits > 15 {
                    ref_quantize_weights_symmetric(ws, w_bits)
                } else {
                    ref_quantize_weights(ws, w_bits)
                };
                let mut o = ref_qconv2d_affine(&qx, &qw, n, &g);
                if let Some(b) = ctx.bias {
                    ref_add_bias(&mut o, b, n, &g);
                }
                o
            }
            // `sparse` changes the execution strategy, never the values.
            Route::Odq { threshold, sparse: _ } => {
                ref_odq_conv2d(xs, ws, ctx.bias, n, &g, &OdqCfg::int4(threshold)).output
            }
            Route::Drq { hi_bits, lo_bits, a_clip, region, input_threshold } => {
                let cfg = drq_cfg(hi_bits, lo_bits, a_clip, region, input_threshold);
                ref_drq_conv2d(xs, ws, ctx.bias, n, &g, &cfg).output
            }
        };
        Tensor::from_vec(g.output_shape(n), out)
    }
}

/// A [`ConvExecutor`] routing each conv layer to a *real* engine built the
/// way the serving path builds it — the conformance-side twin of
/// `odq_serve::PolicyExecutor` (which this crate cannot depend on without
/// a cycle). One engine per distinct route, lazily built, all sharing one
/// [`PlanCache`].
pub struct RoutedEngine {
    policy: Arc<PrecisionPolicy>,
    plans: Arc<PlanCache>,
    engines: Vec<(Route, Box<dyn ConvExecutor>)>,
}

impl RoutedEngine {
    /// A routed engine over `policy` with a fresh shared plan cache.
    pub fn new(policy: Arc<PrecisionPolicy>) -> Self {
        Self { policy, plans: Arc::new(PlanCache::new()), engines: Vec::new() }
    }

    /// Build the real engine for one route, mirroring the serving path's
    /// constructors and configurations exactly.
    pub fn build_route(route: Route, plans: Arc<PlanCache>) -> Box<dyn ConvExecutor> {
        match route {
            Route::Float => Box::new(FloatConvExecutor),
            Route::Static { w_bits, a_bits, a_clip } => {
                Box::new(StaticQuantExecutor::with_plan_cache(w_bits, a_bits, a_clip, plans))
            }
            Route::Odq { threshold, sparse } => {
                let mut e = OdqEngine::with_plan_cache(threshold, plans);
                e.sparse = sparse;
                Box::new(e)
            }
            Route::Drq { hi_bits, lo_bits, a_clip, region, input_threshold } => {
                Box::new(DrqEngine::with_plan_cache(
                    drq_cfg(hi_bits, lo_bits, a_clip, region, input_threshold),
                    plans,
                ))
            }
        }
    }

    fn engine_for(&mut self, name: &str) -> &mut Box<dyn ConvExecutor> {
        let route = self.policy.route_for(name);
        let i = match self.engines.iter().position(|(r, _)| *r == route) {
            Some(i) => i,
            None => {
                self.engines.push((route, Self::build_route(route, Arc::clone(&self.plans))));
                self.engines.len() - 1
            }
        };
        &mut self.engines[i].1
    }
}

impl ConvExecutor for RoutedEngine {
    fn begin_pass(&mut self) {
        for (_, e) in &mut self.engines {
            e.begin_pass();
        }
    }

    fn conv(&mut self, ctx: &ConvCtx<'_>, x: &Tensor) -> Tensor {
        self.engine_for(ctx.name).conv(ctx, x)
    }
}

/// A [`PublishGate`] for policy-published versions: forwards a
/// deterministic probe batch through the candidate twice — once on the
/// [`RoutedEngine`] (real engines, routed per layer), once on the
/// [`PolicyOracleExecutor`] (scalar oracles, routed per layer) — and
/// rejects the publish unless the logits agree bit-for-bit. Gating a
/// registry with this and publishing via `publish_with_policy` means a
/// version that becomes routable has already proven its *mixed-precision*
/// serving arithmetic conformant, route by route.
#[derive(Clone, Debug)]
pub struct PolicyOracleGate {
    /// The policy the candidate will be served under.
    pub policy: Arc<PrecisionPolicy>,
    /// Probe batch size (≥1; each sample gets a distinct input pattern).
    pub probes: usize,
}

impl PolicyOracleGate {
    /// Gate under `policy` with a 2-sample probe.
    pub fn new(policy: Arc<PrecisionPolicy>) -> Self {
        Self { policy, probes: 2 }
    }
}

impl PublishGate for PolicyOracleGate {
    fn label(&self) -> &str {
        "policy-oracle-conformance"
    }

    fn check(&self, _name: &str, model: &mut Model) -> Result<(), String> {
        self.policy.validate(model).map_err(|e| format!("policy does not fit candidate: {e}"))?;
        let qat = model.cfg.qat;
        model.set_qat(None);
        let x =
            crate::gate::probe_input(self.probes.max(1), model.cfg.in_channels, model.cfg.input_hw);
        let engine_out = model.forward_eval(&x, &mut RoutedEngine::new(Arc::clone(&self.policy)));
        let oracle_out =
            model.forward_eval(&x, &mut PolicyOracleExecutor { policy: Arc::clone(&self.policy) });
        model.set_qat(qat);

        let div = compare(oracle_out.as_slice(), engine_out.as_slice());
        if div.max_ulp == 0 {
            Ok(())
        } else {
            Err(format!(
                "policy-routed logits diverge from the routed scalar oracle: max {} ulp \
                 (abs {:.3e}) at flat index {}",
                div.max_ulp, div.max_abs, div.worst_index
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odq_nn::models::ModelCfg;
    use odq_nn::Arch;
    use odq_registry::ModelRegistry;

    fn model() -> Model {
        let mut cfg = ModelCfg::small(Arch::LeNet5, 4);
        cfg.input_hw = 8;
        cfg.in_channels = 1;
        Model::build(cfg)
    }

    fn mixed_policy() -> Arc<PrecisionPolicy> {
        Arc::new(
            PrecisionPolicy::uniform(Route::Static { w_bits: 8, a_bits: 8, a_clip: 1.0 })
                .with("C1", Route::Odq { threshold: 0.3, sparse: false })
                .with("C2", Route::Float),
        )
    }

    #[test]
    fn routed_engine_matches_routed_oracle_bit_exactly() {
        let policy = mixed_policy();
        let m = model();
        let x = crate::gate::probe_input(2, m.cfg.in_channels, m.cfg.input_hw);
        let engine = m.forward_eval(&x, &mut RoutedEngine::new(Arc::clone(&policy)));
        let oracle = m.forward_eval(&x, &mut PolicyOracleExecutor { policy });
        let div = compare(oracle.as_slice(), engine.as_slice());
        assert_eq!(div.max_ulp, 0, "max {} ulp at {}", div.max_ulp, div.worst_index);
    }

    #[test]
    fn policy_gate_accepts_conformant_candidate_and_rejects_bad_policy() {
        let reg = ModelRegistry::gated(PolicyOracleGate::new(mixed_policy()));
        assert_eq!(reg.publish("lenet", model(), vec![]).unwrap(), 1);

        let bad = Arc::new(
            PrecisionPolicy::uniform(Route::Float)
                .with("C99", Route::Odq { threshold: 0.3, sparse: false }),
        );
        let reg = ModelRegistry::gated(PolicyOracleGate::new(bad));
        assert!(reg.publish("lenet", model(), vec![]).is_err());
    }
}
