//! odq-conformance — scalar golden oracle and cross-engine differential
//! harness.
//!
//! The workspace executes every convolution four ways: per-call kernels
//! (`odq_quant::qconv`, `odq_core::odq_conv`, `odq_drq::drq_conv`),
//! planned/fused drivers, the genuinely sparse ODQ executor, and the
//! `odq-serve` worker fleet. Their correctness anchors elsewhere are
//! *pairwise* property tests — which cannot see a bug shared by both
//! sides of a pair. This crate pins all of them to an independent,
//! deliberately slow scalar reference instead, in the style of
//! exact-emulation quantized-DNN libraries (Kiyama et al.) and AdaPT's
//! reference-vs-accelerated differential testing:
//!
//! * [`oracle`] — naive nested-loop transcriptions of every kernel:
//!   f32 conv (Eq. 2), DoReFa quantizers, the Eq. 3 HBS/LBS bit-plane
//!   split, integer conv with offset-binary affine correction, the
//!   predictor's partial sums and estimate, the ODQ executor's three
//!   cross terms, and DRQ's region-masked mixed-precision path.
//! * [`runner`] — given a [`runner::LayerSpec`], executes every engine
//!   path against the oracle and reports per-element max ulp/abs
//!   divergence, with greedy shrinking of failing specs
//!   ([`runner::minimize`]) and an oracle-backed `ConvExecutor`
//!   ([`runner::OracleExecutor`]) for pinning whole-model forwards (the
//!   serve round-trip) to the oracle.
//! * [`policy`] — per-layer precision-policy conformance: a routed
//!   scalar oracle ([`PolicyOracleExecutor`]), a routed real-engine
//!   executor mirroring serving's `PolicyExecutor` ([`RoutedEngine`]),
//!   and the policy-aware publish gate ([`PolicyOracleGate`]).
//! * [`fixtures`] — small deterministic golden tensors committed under
//!   `tests/fixtures/` (ODQT files written by `odq_nn::serialize`), so a
//!   refactor that changes kernel *and* reference together is still
//!   caught.
//! * [`strategies`] — shared proptest strategies over layer geometry.
//!
//! Driven by `tests/conformance.rs` (CI) and the `conformance_check` bin
//! (manual triage, `--regen`, `--verify-fixtures`).

pub mod fixtures;
pub mod gate;
pub mod oracle;
pub mod policy;
pub mod runner;
pub mod strategies;

pub use gate::OracleGate;
pub use policy::{PolicyOracleExecutor, PolicyOracleGate, RoutedEngine};
pub use runner::{
    compare, minimize, run_layer_diff, ulp_diff, DiffReport, Divergence, LayerSpec, OracleExecutor,
    OracleKind, PathClass, PathReport,
};
pub use strategies::{GeomStrategy, LayerSpecStrategy};
