//! Shared proptest strategies for convolution layer geometry.
//!
//! One place defines what "a random conv layer" means for every
//! conformance test: strides > 1, zero and nonzero padding, 1×1
//! (pointwise) kernels, non-square feature maps, and 2–16 channels per
//! side. Dilation is not a parameter — `ConvGeom` models the paper's
//! accelerator, which is dilation-free, so all strategies fix it at 1.

use odq_tensor::ConvGeom;
use proptest::prelude::{Strategy, TestRng};
use rand::Rng;

use crate::runner::LayerSpec;

/// Strategy over [`ConvGeom`] covering the geometry space the engines
/// must agree on.
#[derive(Clone, Copy, Debug)]
pub struct GeomStrategy {
    /// Inclusive channel bounds for both input and output channels.
    pub channels: (usize, usize),
    /// Inclusive spatial bound for each of `in_h`/`in_w` (lower bound is
    /// the sampled kernel size, so every geometry is valid).
    pub max_hw: usize,
    /// Largest stride to sample.
    pub max_stride: usize,
}

impl Default for GeomStrategy {
    fn default() -> Self {
        Self { channels: (2, 16), max_hw: 10, max_stride: 3 }
    }
}

impl Strategy for GeomStrategy {
    type Value = ConvGeom;

    fn sample(&self, rng: &mut TestRng) -> ConvGeom {
        let (cmin, cmax) = self.channels;
        let kernel = *[1usize, 2, 3, 5].get(rng.gen_range(0usize..4)).unwrap();
        let in_h = rng.gen_range(kernel..=self.max_hw.max(kernel));
        let in_w = rng.gen_range(kernel..=self.max_hw.max(kernel));
        let stride = rng.gen_range(1usize..=self.max_stride);
        let padding = rng.gen_range(0usize..=kernel / 2 + 1);
        ConvGeom::new(
            rng.gen_range(cmin..=cmax),
            rng.gen_range(cmin..=cmax),
            in_h,
            in_w,
            kernel,
            stride,
            padding,
        )
    }
}

/// Strategy over full differential cases: geometry plus batch size, data
/// seed and bias presence.
#[derive(Clone, Copy, Debug, Default)]
pub struct LayerSpecStrategy {
    /// Geometry sub-strategy.
    pub geom: GeomStrategy,
}

impl Strategy for LayerSpecStrategy {
    type Value = LayerSpec;

    fn sample(&self, rng: &mut TestRng) -> LayerSpec {
        LayerSpec {
            geom: self.geom.sample(rng),
            batch: rng.gen_range(1usize..=3),
            seed: rng.gen_range(0u64..=u64::MAX - 1),
            with_bias: rng.gen_range(0u32..2) == 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_geometries_are_valid_and_varied() {
        let mut rng = TestRng::new(0xC0FFEE);
        let s = GeomStrategy::default();
        let mut kernels = std::collections::HashSet::new();
        let mut nonsquare = false;
        for _ in 0..200 {
            let g = s.sample(&mut rng);
            assert!(g.out_h() >= 1 && g.out_w() >= 1);
            assert!((2..=16).contains(&g.in_channels) && (2..=16).contains(&g.out_channels));
            kernels.insert(g.kernel);
            nonsquare |= g.in_h != g.in_w;
        }
        assert!(kernels.contains(&1), "1x1 kernels must be covered");
        assert!(kernels.len() >= 3, "kernel variety");
        assert!(nonsquare, "non-square maps must be covered");
    }
}
